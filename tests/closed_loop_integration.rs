//! Cross-crate integration tests: the full PARALEON closed loop over the
//! packet simulator, exercising monitor + trigger + tuner + dispatch
//! together (the paper's Figure 1 pipeline).

use paraleon::prelude::*;

fn small_clos() -> Topology {
    Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000)
}

#[test]
fn paraleon_full_pipeline_reacts_to_workload_shift() {
    let mut cl = ClosedLoop::builder(small_clos())
        .scheme(SchemeKind::Paraleon)
        .monitor(MonitorKind::Paraleon)
        .seed(3)
        .build();
    // Elephant phase: sustained cross-ToR elephants.
    for i in 0..4usize {
        cl.sim.add_flow(i, 4 + i, 16 << 20, 0);
    }
    for _ in 0..8 {
        cl.step();
    }
    // Mice influx.
    for burst in 0..6u64 {
        let now = cl.sim.now();
        for k in 0..60usize {
            cl.sim
                .add_flow(k % 8, (k + 5) % 8, 4_096, now + burst + k as u64);
        }
        cl.step();
    }
    for _ in 0..6 {
        cl.step();
    }
    assert!(
        cl.cell.history.iter().any(|r| r.triggered),
        "the KL detector must fire on the elephant→mice shift"
    );
    assert!(
        cl.cell.history.iter().filter(|r| r.dispatched).count() >= 2,
        "a trigger must start an SA episode with dispatches"
    );
    // The deployed parameters must have moved off the default.
    assert_ne!(cl.cell.last_params, DcqcnParams::nvidia_default());
}

#[test]
fn all_schemes_survive_the_same_scenario() {
    for scheme in [
        SchemeKind::Default,
        SchemeKind::Expert,
        SchemeKind::DcqcnPlus,
        SchemeKind::Acc,
        SchemeKind::Paraleon,
        SchemeKind::ParaleonNaiveSa,
    ] {
        let name = scheme.name();
        let mut cl = ClosedLoop::builder(small_clos())
            .scheme(scheme)
            .loop_config(LoopConfig {
                force_tuning: true,
                ..LoopConfig::default()
            })
            .build();
        for i in 0..6usize {
            cl.sim.add_flow(i % 8, (i + 3) % 8, 1 << 20, 0);
        }
        assert!(cl.run_to_completion(2 * SEC), "{name}: flows must complete");
        assert_eq!(cl.completions.len(), 6, "{name}");
        assert_eq!(cl.sim.total_drops(), 0, "{name}: lossless invariant");
    }
}

#[test]
fn monitoring_schemes_feed_the_same_loop() {
    for monitor in [
        MonitorKind::Paraleon,
        MonitorKind::NaiveSketch,
        MonitorKind::NetFlow,
        MonitorKind::NoFsd,
    ] {
        let name = monitor.name();
        let mut cl = ClosedLoop::builder(small_clos())
            .scheme(SchemeKind::Expert)
            .monitor(monitor)
            .build();
        cl.sim.add_flow(0, 5, 4 << 20, 0);
        cl.run_to_completion(SEC);
        assert_eq!(cl.completions.len(), 1, "{name}");
    }
}

#[test]
fn fsd_accuracy_ranks_paraleon_above_naive() {
    // End-to-end Figure 10/11 mechanism: same traffic, same tuner; the
    // windowed monitor must measure the FSD at least as accurately as the
    // naive per-interval one.
    let accuracy = |monitor: MonitorKind| {
        let sim_cfg = SimConfig {
            track_ground_truth: true,
            ..SimConfig::default()
        };
        let mut cl = ClosedLoop::builder(small_clos())
            .scheme(SchemeKind::Expert)
            .monitor(monitor)
            .sim_config(sim_cfg)
            .build();
        // Elephants throttled by competition: the naive classifier's
        // failure mode.
        for i in 0..4usize {
            cl.sim.add_flow(i, 4, 8 << 20, 0); // incast onto host 4
        }
        for _ in 0..25 {
            cl.step();
        }
        let acc: Vec<f64> = cl
            .cell
            .history
            .iter()
            .filter_map(|r| r.fsd_accuracy)
            .collect();
        stats::mean(&acc)
    };
    let naive = accuracy(MonitorKind::NaiveSketch);
    let para = accuracy(MonitorKind::Paraleon);
    assert!(
        para > naive,
        "PARALEON accuracy {para:.3} must beat naive {naive:.3}"
    );
    assert!(
        para > 0.9,
        "windowed accuracy should be near-perfect: {para:.3}"
    );
}

#[test]
fn dcqcn_plus_reduces_cnp_load_under_incast() {
    let run = |plus: bool| {
        let cfg = SimConfig {
            dcqcn_plus: plus,
            ..SimConfig::default()
        };
        let mut cl = ClosedLoop::builder(small_clos())
            .scheme(if plus {
                SchemeKind::DcqcnPlus
            } else {
                SchemeKind::Default
            })
            .sim_config(cfg)
            .build();
        for src in 1..8usize {
            cl.sim.add_flow(src, 0, 2 << 20, 0);
        }
        for _ in 0..10 {
            cl.step();
        }
        cl.cell.history.iter().map(|r| r.cnps).sum::<u64>()
    };
    let base = run(false);
    let plus = run(true);
    assert!(
        plus < base,
        "DCQCN+ incast scaling must reduce CNPs: {plus} vs {base}"
    );
}

#[test]
fn deterministic_end_to_end_replay() {
    let run = || {
        let mut cl = ClosedLoop::builder(small_clos())
            .scheme(SchemeKind::Paraleon)
            .loop_config(LoopConfig {
                force_tuning: true,
                ..LoopConfig::default()
            })
            .seed(99)
            .build();
        for i in 0..8usize {
            cl.sim
                .add_flow(i % 8, (i + 1) % 8, 500_000 + i as u64 * 1000, 0);
        }
        for _ in 0..20 {
            cl.step();
        }
        (
            cl.cell.last_params.to_vector(),
            cl.completions.len(),
            cl.cell.history.iter().map(|r| r.cnps).sum::<u64>(),
        )
    };
    assert_eq!(run(), run(), "full pipeline must replay deterministically");
}

#[test]
fn utility_improves_over_a_forced_episode_on_stable_traffic() {
    // With stable elephant traffic and a forced tuning episode, the best
    // deployed setting should end at least as good as the starting one.
    let mut cl = ClosedLoop::builder(small_clos())
        .scheme(SchemeKind::Paraleon)
        .loop_config(LoopConfig {
            force_tuning: true,
            weights: UtilityWeights::throughput_sensitive(),
            ..LoopConfig::default()
        })
        .build();
    // Continuous elephant supply.
    let mut next_flow_at = 0u64;
    for step in 0..60 {
        if cl.sim.now() >= next_flow_at {
            for i in 0..4usize {
                cl.sim.add_flow(i, 4 + i, 4 << 20, cl.sim.now());
            }
            next_flow_at = cl.sim.now() + 2 * MILLI;
        }
        cl.step();
        let _ = step;
    }
    let first5: Vec<f64> = cl.cell.history[1..6].iter().map(|r| r.utility).collect();
    let last5: Vec<f64> = cl.cell.history[cl.cell.history.len() - 5..]
        .iter()
        .map(|r| r.utility)
        .collect();
    assert!(
        stats::mean(&last5) >= stats::mean(&first5) - 0.1,
        "tuning should not end in a materially worse state: {:.3} -> {:.3}",
        stats::mean(&first5),
        stats::mean(&last5)
    );
}

#[test]
fn ledger_matches_paper_scale_of_transfers() {
    let mut cl = ClosedLoop::builder(small_clos())
        .scheme(SchemeKind::Paraleon)
        .loop_config(LoopConfig {
            force_tuning: true,
            ..LoopConfig::default()
        })
        .build();
    cl.sim.add_flow(0, 5, 4 << 20, 0);
    for _ in 0..10 {
        cl.step();
    }
    let (sw, rnic, disp) = cl.cell.ledger.per_interval();
    // Hundreds of bytes per interval, as Table IV reports — never MBs.
    assert!(sw > 0.0 && sw < 10_000.0, "switch upload {sw}");
    assert!(rnic > 0.0 && rnic < 10_000.0, "rnic upload {rnic}");
    assert!(disp < 10_000.0, "dispatch {disp}");
}
