//! Integration tests of the workload generators driving the simulator
//! through the shared drivers.

use paraleon::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn clos32() -> Topology {
    Topology::two_tier_clos(4, 8, 2, 100.0, 100.0, 5_000)
}

#[test]
fn fb_hadoop_schedule_runs_end_to_end() {
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: 32,
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.2,
            start: 0,
            end: 10 * MILLI,
        },
        FlowSizeDist::fb_hadoop(),
    );
    let mut rng = StdRng::seed_from_u64(1);
    let flows = wl.generate(&mut rng);
    assert!(!flows.is_empty());
    let mut cl = ClosedLoop::builder(clos32())
        .scheme(SchemeKind::Expert)
        .build();
    let admitted = drivers::run_schedule(&mut cl, &flows, 10 * MILLI);
    assert_eq!(admitted, flows.len());
    assert!(cl.run_to_completion(5 * SEC), "all FB_Hadoop flows finish");
    assert_eq!(cl.completions.len(), flows.len());
    // Heavy-tail sanity: byte-weighted mean far exceeds count-weighted
    // median in the completed set.
    let mut sizes: Vec<f64> = cl.completions.iter().map(|r| r.bytes as f64).collect();
    let median = stats::percentile(&mut sizes, 50.0);
    let mean = stats::mean(&sizes);
    assert!(mean > 3.0 * median, "mean {mean} vs median {median}");
}

#[test]
fn alltoall_rounds_are_synchronized_and_gapped() {
    let mut cl = ClosedLoop::builder(clos32())
        .scheme(SchemeKind::Expert)
        .build();
    let off = 4 * MILLI;
    let mut a2a = AllToAll::new(AllToAllConfig {
        workers: (0..8).map(|i| i * 4).collect(),
        message_bytes: 256 * 1024,
        off_time: off,
        rounds: Some(3),
    });
    let records = drivers::run_alltoall(&mut cl, &mut a2a, 0, 10 * SEC);
    assert!(a2a.finished());
    assert_eq!(records.len(), 3 * 8 * 7);
    assert_eq!(a2a.round_durations.len(), 3);
    // Verify the OFF gap: the earliest start of round k+1 is at least
    // off_time after the last finish of round k.
    let mut finishes: Vec<u64> = records.iter().map(|r| r.finish).collect();
    finishes.sort_unstable();
    let mut starts: Vec<u64> = records.iter().map(|r| r.start).collect();
    starts.sort_unstable();
    // 56 flows per round: round boundaries in the sorted start list.
    let round2_start = starts[56];
    let round1_end = finishes[55];
    assert!(
        round2_start >= round1_end + off,
        "round 2 must wait for the OFF period: {round2_start} vs {round1_end}"
    );
}

#[test]
fn solar_rpc_flows_are_all_mice_and_fast() {
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: 32,
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.05,
            start: 0,
            end: 5 * MILLI,
        },
        FlowSizeDist::solar_rpc(),
    );
    let mut rng = StdRng::seed_from_u64(2);
    let flows = wl.generate(&mut rng);
    let mut cl = ClosedLoop::builder(clos32())
        .scheme(SchemeKind::Default)
        .build();
    drivers::run_schedule(&mut cl, &flows, 5 * MILLI);
    cl.run_to_completion(SEC);
    assert_eq!(cl.completions.len(), flows.len());
    for r in &cl.completions {
        assert!(r.bytes <= 131_072, "SolarRPC is mice-only");
        assert!(
            r.fct() < 5 * MILLI,
            "an RPC on a lightly loaded fabric must finish in ms: {}",
            r.fct()
        );
    }
}

#[test]
fn mixed_workloads_share_the_fabric() {
    // Elephants + RPC mice concurrently; both classes must complete and
    // the mice must not starve (tail far below the elephants' FCT).
    let mut cl = ClosedLoop::builder(clos32())
        .scheme(SchemeKind::Expert)
        .build();
    for i in 0..4usize {
        cl.sim.add_flow(i, 16 + i, 16 << 20, 0);
    }
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: 32,
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.05,
            start: 0,
            end: 5 * MILLI,
        },
        FlowSizeDist::solar_rpc(),
    );
    let mut rng = StdRng::seed_from_u64(4);
    let mice = wl.generate(&mut rng);
    drivers::run_schedule(&mut cl, &mice, 5 * MILLI);
    assert!(cl.run_to_completion(10 * SEC));
    let elephant_max_fct = cl
        .completions
        .iter()
        .filter(|r| r.bytes >= 16 << 20)
        .map(|r| r.fct())
        .max()
        .unwrap();
    let mut mice_fcts: Vec<f64> = cl
        .completions
        .iter()
        .filter(|r| r.bytes <= 131_072)
        .map(|r| r.fct() as f64)
        .collect();
    assert!(!mice_fcts.is_empty());
    let mice_p99 = stats::percentile(&mut mice_fcts, 99.0);
    assert!(
        mice_p99 < elephant_max_fct as f64 / 2.0,
        "mice p99 {mice_p99} should be far below elephant FCT {elephant_max_fct}"
    );
}
