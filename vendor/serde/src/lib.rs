//! Offline-vendored, API-compatible subset of `serde`.
//!
//! The real serde models serialization through a visitor over a
//! `Serializer`; this vendored stand-in collapses that to a single
//! JSON-like [`Value`] tree, which is all the workspace needs (every
//! consumer ultimately writes JSON via `serde_json`). The
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros are
//! re-exported from the companion hand-rolled `serde_derive` proc-macro
//! crate, so existing `use serde::{Serialize, Deserialize}` code compiles
//! unchanged.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree — the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup by key (mirrors `serde_json::Value::get`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view as `f64` (accepts Int/UInt/Float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric view as `u64` (accepts non-negative Int/UInt).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Types that can turn themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the serialization data model.
    fn serialize_value(&self) -> Value;
}

/// Marker for deserializable types. The workspace never deserializes
/// through serde (readers are hand-rolled), so no methods are required;
/// the derive emits an empty impl to keep `#[derive(Deserialize)]`
/// compiling.
pub trait Deserialize {}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.serialize_value(), Value::UInt(3));
        assert_eq!((-3i64).serialize_value(), Value::Int(-3));
        assert_eq!(1.5f64.serialize_value(), Value::Float(1.5));
        assert_eq!(true.serialize_value(), Value::Bool(true));
        assert_eq!(
            "hi".to_string().serialize_value(),
            Value::String("hi".into())
        );
        assert_eq!(Option::<u8>::None.serialize_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1u64, 2.0f64)];
        assert_eq!(
            v.serialize_value(),
            Value::Array(vec![Value::Array(vec![Value::UInt(1), Value::Float(2.0)])])
        );
    }
}
