//! Offline-vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` 0.8 it actually uses: [`RngCore`],
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] and [`rngs::StdRng`]. The generator is xoshiro256**
//! seeded through SplitMix64 — not the upstream ChaCha12, but a
//! high-quality, deterministic PRNG that satisfies every statistical
//! assumption the test-suite makes (uniformity, seed diffusion,
//! reproducibility under a fixed seed).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// range, `bool` fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, diffused through SplitMix64 so nearby seeds
    /// yield uncorrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&out[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Standard-distribution sampling for `Rng::gen`.
pub trait Standard {
    /// Draw one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo over a 64-bit draw: bias is < span / 2^64,
                // negligible for every span the workspace uses.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = <f64 as Standard>::sample_standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let u = <f64 as Standard>::sample_standard(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// The generator's raw internal state — four xoshiro256** words.
        /// Exposed so deterministic harnesses can snapshot a stream
        /// mid-run (controller crash/restore in `paraleon-core`) and
        /// resume it byte-identically with [`StdRng::from_state`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot. The
        /// all-zero state is invalid for xoshiro and is remapped to the
        /// same non-zero fallback `from_seed` uses.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as SeedableRng>::from_seed([0u8; 32]);
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 3, 4];
            }
            Self { s }
        }
    }
}

/// One random value from a thread-less global (mirrors `rand::random`;
/// deterministic here, seeded per call site would defeat the purpose —
/// the workspace only uses seeded `StdRng`s, this exists for completeness).
pub fn random<T: Standard>() -> T {
    use std::cell::Cell;
    thread_local! {
        static STATE: Cell<u64> = const { Cell::new(0x5EED_CAFE_F00D_D00D) };
    }
    STATE.with(|s| {
        let mut v = s.get();
        let out = splitmix64(&mut v);
        s.set(v);
        let mut one = OneShot(out);
        T::sample_standard(&mut one)
    })
}

struct OneShot(u64);
impl RngCore for OneShot {
    fn next_u64(&mut self) -> u64 {
        let mut s = self.0;
        self.0 = self.0.wrapping_add(1);
        splitmix64(&mut s)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.5f64..1.0);
            assert!((0.5..1.0).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(11);
        let heads = (0..100_000).filter(|_| r.gen::<bool>()).count();
        assert!((45_000..55_000).contains(&heads), "{heads}");
    }

    #[test]
    fn seed_diffusion_decorrelates_adjacent_seeds() {
        // Low bits of the first draws must differ across nearby seeds.
        let firsts: Vec<u64> = (0..64)
            .map(|s| {
                use super::RngCore;
                StdRng::seed_from_u64(s).next_u64()
            })
            .collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len(), "collisions across seeds");
    }
}
