//! Offline-vendored, API-compatible subset of `serde_json`: renders the
//! vendored serde's [`Value`] tree as JSON text (`to_string`,
//! `to_string_pretty`) and parses JSON text back into a [`Value`]
//! (`from_str_value`) for the few readers that need it.

use std::fmt;

use serde::Serialize;
pub use serde::Value;

/// Serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON (two-space indentation, like upstream).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Round-trippable shortest representation, with a decimal marker
        // so integral floats still read back as floats.
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; upstream errors, we emit null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`] (upstream's `from_str::<Value>`).
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("malformed object at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("malformed array at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error("invalid utf-8".into()))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_value() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(3)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(0.5), Value::Null]),
            ),
            ("s".into(), Value::String("x\"y".into())),
            ("neg".into(), Value::Int(-7)),
        ]);
        for render in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str_value(&render).unwrap(), v);
        }
    }

    #[test]
    fn floats_keep_a_decimal_marker() {
        let s = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str_value(&s).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = from_str_value(" { \"k\" : [ 1 , -2 , 3.5, \"\\u0041\\n\" ] } ").unwrap();
        assert_eq!(
            v,
            Value::Object(vec![(
                "k".into(),
                Value::Array(vec![
                    Value::UInt(1),
                    Value::Int(-2),
                    Value::Float(3.5),
                    Value::String("A\n".into()),
                ])
            )])
        );
    }
}
