//! Collection strategies: `collection::vec`.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Strategy for vectors of values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..=self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
