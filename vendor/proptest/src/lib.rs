//! Offline-vendored, API-compatible subset of `proptest`.
//!
//! Implements the slice of proptest the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, `collection::vec`, `Just`, `any`, `prop_oneof!`,
//! the `proptest!` test macro with `#![proptest_config(...)]`, and the
//! `prop_assert*` macros. No shrinking: a failing case panics with the
//! sampled inputs' debug output via the standard assert message, which
//! is enough for a deterministic, seeded runner.
//!
//! Sampling is fully deterministic: each test's RNG is seeded from a
//! hash of the test name plus the case index, so failures reproduce
//! across runs.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

// Re-exported so the `proptest!` expansion can name the RNG without the
// consuming crate depending on `rand` itself.
#[doc(hidden)]
pub use rand;

/// Re-export of the strategy module contents under the crate root, like
/// upstream (`proptest::strategy::Strategy` etc. both resolve).
pub mod prelude {
    /// Upstream's prelude exposes the crate itself as `prop`, which is
    /// how `prop::collection::vec` resolves.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// FNV-1a hash of the test name, used to decorrelate test seeds.
#[doc(hidden)]
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

pub mod macros {
    //! The test-definition and assertion macros (exported at crate root).
}

/// Define property tests. Each function parameter is drawn from its
/// strategy once per case; the body runs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut rng =
                        <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                            $crate::seed_for(stringify!($name), case),
                        );
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u64, bool)>> {
        prop::collection::vec((0u64..100, any::<bool>()), 1..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in pairs()) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (n, _) in v {
                prop_assert!(n < 100);
            }
        }

        #[test]
        fn oneof_and_flat_map_compose(
            v in (1usize..5).prop_flat_map(|n| prop::collection::vec(
                prop_oneof![Just(0u64), 10u64..20, (90u64..100).prop_map(|x| x + 1)],
                n,
            )),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in v {
                prop_assert!(x == 0 || (10..20).contains(&x) || (91..=100).contains(&x));
            }
        }
    }
}
