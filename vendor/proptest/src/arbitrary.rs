//! `any::<T>()` — strategies for types with a canonical full-range
//! distribution.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a default "anything goes" strategy.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Strategy over the full range of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}
