//! Test-runner configuration.

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Upstream defaults to 256 cases; 64 keeps the suite fast while
    /// still exercising a meaningful spread of inputs.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
