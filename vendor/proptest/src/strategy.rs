//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream (value trees + shrinking), this vendored version
/// samples concrete values directly; the deterministic per-case seed
/// makes failures reproducible without shrinking machinery.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then build and sample a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase for heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Strategies behind a reference still sample.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Object-safe sampling, so strategies of one value type can be boxed
/// together (the generic default methods on [`Strategy`] make it
/// non-object-safe directly).
trait DynStrategy {
    type Value;
    fn dyn_sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_sample(&self, rng: &mut StdRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        self.0.dyn_sample(rng)
    }
}

/// Uniform choice among alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from at least one alternative.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
