//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stand-in.
//!
//! No `syn`/`quote` (the build environment is offline), so the derive
//! input is parsed directly from the `proc_macro::TokenStream`. The
//! supported shapes are exactly what the workspace uses:
//!
//! * structs with named fields → JSON objects;
//! * tuple structs → JSON arrays;
//! * unit structs → `null`;
//! * enums whose variants are all unit variants → the variant name as a
//!   JSON string.
//!
//! Anything else (generics, data-carrying enum variants) produces a
//! `compile_error!` naming the limitation, which is better than silently
//! generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => emit_serialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

/// Derive `serde::Deserialize` (marker impl only; see the serde stub).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let name = match &item {
                Item::NamedStruct { name, .. }
                | Item::TupleStruct { name, .. }
                | Item::UnitStruct { name }
                | Item::UnitEnum { name, .. } => name,
            };
            format!("impl ::serde::Deserialize for {name} {{}}")
                .parse()
                .expect("generated impl parses")
        }
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error parses")
}

/// Parse the derive input down to the shape information we need.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including expanded doc comments)
    // and visibility.
    let mut kind: Option<String> = None;
    for tt in iter.by_ref() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => continue,
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => continue,
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "pub" {
                    continue;
                }
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    break;
                }
                return Err(format!("serde_derive: unexpected token `{s}`"));
            }
            // `pub(crate)` visibility group.
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => continue,
            other => return Err(format!("serde_derive: unexpected token `{other}`")),
        }
    }
    let kind = kind.ok_or("serde_derive: no struct/enum keyword found")?;
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected type name, got {other:?}")),
    };
    // Reject generics: the workspace derives only on concrete types.
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive: generic type `{name}` is not supported by the vendored derive"
            ));
        }
    }
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            } else {
                Ok(Item::UnitEnum {
                    name,
                    variants: parse_unit_variants(g.stream())?,
                })
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                return Err("serde_derive: malformed enum".into());
            }
            Ok(Item::TupleStruct {
                name,
                arity: split_top_level_commas(g.stream()).len(),
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
        None => Ok(Item::UnitStruct { name }),
        other => Err(format!("serde_derive: unexpected item body {other:?}")),
    }
}

/// Split a token stream on commas that sit outside any `<...>` nesting
/// (groups are single `TokenTree`s, so only angle brackets need manual
/// depth tracking).
fn split_top_level_commas(ts: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for tt in ts {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field names of a named-field struct body.
fn parse_named_fields(ts: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level_commas(ts) {
        let mut name: Option<String> = None;
        for tt in chunk {
            match tt {
                // Attributes / doc comments on the field.
                TokenTree::Punct(p) if p.as_char() == '#' => continue,
                TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => continue,
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => continue,
                TokenTree::Ident(id) => {
                    let s = id.to_string();
                    if s == "pub" {
                        continue;
                    }
                    name = Some(s);
                    break; // everything after `name` is `: Type`
                }
                other => return Err(format!("serde_derive: unexpected field token `{other}`")),
            }
        }
        fields.push(name.ok_or("serde_derive: field without a name")?);
    }
    Ok(fields)
}

/// Variant names of an enum body; rejects data-carrying variants.
fn parse_unit_variants(ts: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level_commas(ts) {
        let mut name: Option<String> = None;
        let mut after_eq = false;
        for tt in chunk {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => continue,
                TokenTree::Punct(p) if p.as_char() == '=' => after_eq = true,
                _ if after_eq => continue, // explicit discriminant value
                TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => continue,
                TokenTree::Ident(id) => {
                    if name.is_some() {
                        return Err(
                            "serde_derive: data-carrying enum variants are not supported \
                             by the vendored derive"
                                .into(),
                        );
                    }
                    name = Some(id.to_string());
                }
                TokenTree::Group(_) => {
                    return Err(
                        "serde_derive: data-carrying enum variants are not supported by \
                         the vendored derive"
                            .into(),
                    );
                }
                other => return Err(format!("serde_derive: unexpected variant token `{other}`")),
            }
        }
        variants.push(name.ok_or("serde_derive: variant without a name")?);
    }
    Ok(variants)
}

fn emit_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((String::from({f:?}), \
                         ::serde::Serialize::serialize_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                 let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
                 }}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let pushes: String = (0..*arity)
                .map(|i| format!("items.push(::serde::Serialize::serialize_value(&self.{i}));\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                 let mut items: Vec<::serde::Value> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Array(items)\n\
                 }}\n}}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::String(String::from(match self {{\n{arms}}}))\n\
                 }}\n}}"
            )
        }
    }
}
