//! Offline-vendored, API-compatible subset of `criterion`.
//!
//! Implements the benchmark surface the workspace uses — `Criterion`,
//! `benchmark_group`, `Bencher::iter` / `iter_batched`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple wall-clock measurement loop instead of upstream's
//! statistical machinery. Each benchmark warms up briefly, then runs
//! enough iterations to fill a fixed measurement window and reports the
//! mean time per iteration (plus element/byte throughput when
//! configured).
//!
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets), every routine runs exactly once so
//! the suite stays fast and merely proves the benches execute.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for reporting throughput alongside time per iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost. The vendored runner treats
/// all sizes identically (setup is excluded from timing either way).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
            measurement_time: Duration::from_millis(300),
            warm_up_time: Duration::from_millis(30),
        }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Set the measurement window per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Report throughput in these units for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the vendored runner's iteration
    /// count is driven by the measurement window, not a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            measurement_time: self.criterion.measurement_time,
            warm_up_time: self.criterion.warm_up_time,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&self.name, &id.into(), &b, self.throughput);
        self
    }

    /// End the group (upstream flushes reports here; we report inline).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{group}/{id}: no iterations recorded");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let mut line = format!("{group}/{id}: {ns_per_iter:.1} ns/iter ({} iters)", b.iters);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns_per_iter * 1e-9);
            line.push_str(&format!(", {:.2} Melem/s", rate / 1e6));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (ns_per_iter * 1e-9);
            line.push_str(&format!(", {:.2} MiB/s", rate / (1024.0 * 1024.0)));
        }
        None => {}
    }
    println!("{line}");
}

/// Times a closure over many iterations.
pub struct Bencher {
    test_mode: bool,
    measurement_time: Duration,
    warm_up_time: Duration,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.elapsed = Duration::from_nanos(1);
            self.iters = 1;
            return;
        }
        // Warm-up: also calibrates how many iterations fit the window.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target = ((self.measurement_time.as_secs_f64() / per_iter.max(1e-9)) as u64)
            .clamp(1, 1_000_000_000);
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = target;
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            self.elapsed = Duration::from_nanos(1);
            self.iters = 1;
            return;
        }
        let warm_start = Instant::now();
        let mut per_iter = {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            t.elapsed().as_secs_f64()
        };
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            per_iter = 0.5 * per_iter + 0.5 * t.elapsed().as_secs_f64();
        }
        let target = ((self.measurement_time.as_secs_f64() / per_iter.max(1e-9)) as u64)
            .clamp(1, 100_000_000);
        let mut elapsed = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            elapsed += t.elapsed();
        }
        self.elapsed = elapsed;
        self.iters = target;
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_time() {
        let mut c = Criterion {
            test_mode: false,
            measurement_time: Duration::from_millis(5),
            warm_up_time: Duration::from_millis(1),
        };
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(1));
        let mut x = 0u64;
        g.bench_function("add", |b| {
            b.iter(|| {
                x = x.wrapping_add(black_box(3));
                x
            })
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| 7u64, |v| v.wrapping_mul(3), BatchSize::SmallInput)
        });
        g.finish();
        assert!(x > 0);
    }
}
