//! Property-based tests for the tuning schemes.

use proptest::prelude::*;

use paraleon_dcqcn::{DcqcnParams, ParamSpace};
use paraleon_monitor::MetricSample;
use paraleon_sketch::FlowType;
use paraleon_tuner::{
    AccConfig, AccScheme, Observation, ParaleonScheme, ParaleonSchemeConfig, SaConfig, SaTuner,
    SwitchLocalObs, TuningAction, TuningScheme,
};

fn obs(utility: f64, mu: f64, elephant: bool, triggered: bool) -> Observation {
    Observation {
        now: 0,
        utility,
        sample: MetricSample::new(utility, utility, 1.0),
        dominant: if elephant {
            FlowType::Elephant
        } else {
            FlowType::Mice
        },
        mu,
        tuning_triggered: triggered,
        switch_obs: vec![SwitchLocalObs {
            switch_index: 0,
            tx_utilization: utility,
            marking_rate: 1.0 - utility,
            queue_frac: 0.5,
        }],
    }
}

proptest! {
    /// Every SA candidate stays inside the parameter space, for any
    /// utility stream and any guidance inputs.
    #[test]
    fn sa_candidates_always_in_bounds(
        utilities in prop::collection::vec(0.0f64..1.0, 1..120),
        mus in prop::collection::vec(0.0f64..1.0, 1..120),
        elephant in any::<bool>(),
        seed in 0u64..500,
    ) {
        let space = ParamSpace::standard();
        let mut t = SaTuner::new(
            space.clone(),
            SaConfig::paper_default(),
            DcqcnParams::nvidia_default(),
            seed,
        );
        let dom = if elephant { FlowType::Elephant } else { FlowType::Mice };
        for (u, mu) in utilities.iter().zip(mus.iter().cycle()) {
            match t.step(*u, dom, *mu) {
                Some(p) => {
                    for spec in space.iter() {
                        let v = p.get(spec.id);
                        prop_assert!(v >= spec.min && v <= spec.max);
                    }
                    prop_assert!(p.k_min <= p.k_max);
                }
                None => break,
            }
        }
        // best() is also a valid setting.
        let best = t.best();
        for spec in space.iter() {
            let v = best.get(spec.id);
            prop_assert!(v >= spec.min && v <= spec.max);
        }
    }

    /// The best utility recorded never decreases across an episode.
    #[test]
    fn sa_best_is_monotone(
        utilities in prop::collection::vec(0.0f64..1.0, 1..150),
        seed in 0u64..500,
    ) {
        let mut t = SaTuner::new(
            ParamSpace::standard(),
            SaConfig::paper_default(),
            DcqcnParams::nvidia_default(),
            seed,
        );
        let mut last_best = f64::NEG_INFINITY;
        for u in utilities {
            if t.step(u, FlowType::Elephant, 0.8).is_none() {
                break;
            }
            prop_assert!(t.best_util() >= last_best);
            prop_assert!(t.best_util() <= 1.0 + 1e-9);
            last_best = t.best_util();
        }
    }

    /// ParaleonScheme never dispatches while idle without a trigger, and
    /// episodes always terminate within the configured budget.
    #[test]
    fn scheme_episodes_terminate(
        utilities in prop::collection::vec(0.0f64..1.0, 1..50),
        seed in 0u64..200,
    ) {
        let cfg = ParaleonSchemeConfig {
            sa: SaConfig {
                total_iter_num: 4,
                cooling_rate: 0.5,
                ..SaConfig::paper_default()
            },
            initial: DcqcnParams::nvidia_default(),
            seed,
            eval_intervals: 2,
        };
        let budget = 2 * (cfg.sa.episode_len() + 4) * cfg.eval_intervals;
        let mut s = ParaleonScheme::new(cfg);
        // Idle phase: no dispatches without a trigger.
        for u in &utilities {
            prop_assert!(s.on_interval(&obs(*u, 0.7, true, false)).is_none());
        }
        // Trigger once; the episode must end within budget.
        s.on_interval(&obs(0.5, 0.7, true, true));
        let mut rounds = 0u32;
        while s.tuning() {
            s.on_interval(&obs(0.5, 0.7, true, false));
            rounds += 1;
            prop_assert!(rounds <= budget, "episode exceeded {budget} rounds");
        }
        prop_assert_eq!(s.episodes, 1);
    }

    /// ACC actions always address existing switches with in-bounds ECN
    /// settings and never touch RNIC parameters.
    #[test]
    fn acc_actions_are_well_formed(
        utils in prop::collection::vec(0.0f64..1.0, 1..60),
        n_switches in 1usize..6,
        seed in 0u64..200,
    ) {
        let space = ParamSpace::standard();
        let mut acc = AccScheme::new(
            AccConfig { seed, ..AccConfig::default() },
            DcqcnParams::nvidia_default(),
        );
        for u in utils {
            let mut o = obs(u, 0.6, true, false);
            o.switch_obs = (0..n_switches)
                .map(|i| SwitchLocalObs {
                    switch_index: i,
                    tx_utilization: u,
                    marking_rate: (1.0 - u) / 2.0,
                    queue_frac: u / 2.0,
                })
                .collect();
            match acc.on_interval(&o) {
                Some(TuningAction::PerSwitchEcn(v)) => {
                    prop_assert_eq!(v.len(), n_switches);
                    let d = DcqcnParams::nvidia_default();
                    for (idx, p) in v {
                        prop_assert!(idx < n_switches);
                        prop_assert!(p.k_min <= p.k_max);
                        prop_assert!(p.k_min >= space.spec(paraleon_dcqcn::ParamId::KMin).min);
                        prop_assert!(p.k_max <= space.spec(paraleon_dcqcn::ParamId::KMax).max);
                        prop_assert_eq!(p.ai_rate, d.ai_rate);
                        prop_assert_eq!(p.hai_rate, d.hai_rate);
                        prop_assert_eq!(p.rate_reduce_monitor_period, d.rate_reduce_monitor_period);
                    }
                }
                Some(TuningAction::Global(_)) => prop_assert!(false, "ACC is per-switch only"),
                None => {}
            }
        }
    }
}
