//! The improved simulated-annealing tuner (Algorithm 1 of the paper).
//!
//! SA runs *interactively*: each candidate parameter setting `P_m` is
//! dispatched to the fabric, the controller waits one monitor interval
//! λ_MI for the resulting metrics, and the measured utility drives the
//! accept/reject decision. [`SaTuner`] is therefore a state machine — the
//! closed loop calls [`SaTuner::step`] once per interval with the utility
//! measured *under the previously returned candidate*.
//!
//! PARALEON's two optimizations over naive SA (§III-C) are both
//! reproducible knobs so the Figure 12 ablation can toggle them:
//!
//! 1. **Guided randomness** (`guided = true`): each parameter moves in
//!    the dominant flow type's friendly direction with probability
//!    `min(µ, η)` (η caps exploitation) and in the anti-dominant
//!    direction otherwise, with a bounded random step
//!    `s'_p = s_p × rand(0.5, 1)`. Naive SA moves each parameter in a
//!    uniformly random direction.
//! 2. **Relaxed temperature** (`initial_temp`/`cooling_rate`/`final_temp`
//!    defaults 90 / 0.85 / 10): few temperature levels, so an episode
//!    finishes within dozens of monitor intervals. The naive preset uses
//!    a slow classical schedule.
//!
//! Utilities are in `[0, 1]`; the acceptance test treats them as
//! percentages (`Δ × 100`) so the paper's temperature range 90 → 10 spans
//! meaningful acceptance probabilities.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use paraleon_dcqcn::{DcqcnParams, Direction, ParamSpace};
use paraleon_sketch::FlowType;
use paraleon_telemetry as tel;

/// SA schedule and mutation configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SaConfig {
    /// Iterations (monitor intervals) per temperature level.
    pub total_iter_num: u32,
    /// Geometric cooling factor.
    pub cooling_rate: f64,
    /// Starting temperature.
    pub initial_temp: f64,
    /// Episode ends when temperature drops below this.
    pub final_temp: f64,
    /// Maximum exploitation rate η.
    pub eta: f64,
    /// Optimization 1: guided randomness (false = naive mutation).
    pub guided: bool,
    /// Global multiplier on the empirical steps `s_p`.
    pub step_scale: f64,
}

impl SaConfig {
    /// The paper's Table III settings (improved SA).
    pub fn paper_default() -> Self {
        Self {
            total_iter_num: 20,
            cooling_rate: 0.85,
            initial_temp: 90.0,
            final_temp: 10.0,
            eta: 0.8,
            guided: true,
            step_scale: 1.0,
        }
    }

    /// Naive SA for the Figure 12 ablation: unguided mutation and a slow
    /// classical cooling schedule.
    pub fn naive() -> Self {
        Self {
            guided: false,
            cooling_rate: 0.97,
            final_temp: 1.0,
            ..Self::paper_default()
        }
    }

    /// Approximate episode length in monitor intervals.
    pub fn episode_len(&self) -> u32 {
        let levels = ((self.final_temp / self.initial_temp).ln() / self.cooling_rate.ln())
            .ceil()
            .max(1.0) as u32;
        levels * self.total_iter_num
    }
}

/// The interactive SA state machine.
#[derive(Debug, Clone)]
pub struct SaTuner {
    space: ParamSpace,
    cfg: SaConfig,
    rng: StdRng,
    /// Accepted solution.
    current: DcqcnParams,
    current_util: f64,
    /// Best solution seen this episode.
    best: DcqcnParams,
    best_util: f64,
    /// Candidate currently dispatched and awaiting measurement.
    candidate: DcqcnParams,
    temp: f64,
    iter: u32,
    finished: bool,
    /// Total SA steps taken (statistics).
    pub steps: u64,
    /// Accepted moves (statistics).
    pub accepts: u64,
}

// `StdRng` has no `Serialize`; the tuner serializes by hand so SA state
// (including the exact RNG stream position) is inspectable in snapshot
// dumps and byte-stable across a crash/restore round trip.
impl Serialize for SaTuner {
    fn serialize_value(&self) -> serde::Value {
        use serde::Value;
        let rng = self
            .rng
            .state()
            .iter()
            .map(|w| Value::UInt(*w))
            .collect::<Vec<_>>();
        Value::Object(vec![
            (String::from("cfg"), self.cfg.serialize_value()),
            (String::from("rng_state"), Value::Array(rng)),
            (String::from("current"), self.current.serialize_value()),
            (
                String::from("current_util"),
                Value::Float(self.current_util),
            ),
            (String::from("best"), self.best.serialize_value()),
            (String::from("best_util"), Value::Float(self.best_util)),
            (String::from("candidate"), self.candidate.serialize_value()),
            (String::from("temp"), Value::Float(self.temp)),
            (String::from("iter"), Value::UInt(self.iter as u64)),
            (String::from("finished"), Value::Bool(self.finished)),
            (String::from("steps"), Value::UInt(self.steps)),
            (String::from("accepts"), Value::UInt(self.accepts)),
        ])
    }
}

impl SaTuner {
    /// Start an episode from `initial` (typically the currently deployed
    /// setting).
    pub fn new(space: ParamSpace, cfg: SaConfig, initial: DcqcnParams, seed: u64) -> Self {
        let temp = cfg.initial_temp;
        Self {
            space,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            current: initial,
            current_util: f64::NEG_INFINITY,
            best: initial,
            best_util: f64::NEG_INFINITY,
            candidate: initial,
            temp,
            iter: 0,
            finished: false,
            steps: 0,
            accepts: 0,
        }
    }

    /// Whether the episode has converged (temperature below final).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Best setting found so far this episode.
    pub fn best(&self) -> &DcqcnParams {
        &self.best
    }

    /// Best utility observed this episode.
    pub fn best_util(&self) -> f64 {
        self.best_util
    }

    /// Current temperature (diagnostics).
    pub fn temperature(&self) -> f64 {
        self.temp
    }

    /// Restart the episode from `from` (a new tuning trigger): resets the
    /// temperature and statistics but keeps the RNG stream.
    pub fn restart(&mut self, from: DcqcnParams) {
        self.current = from;
        self.candidate = from;
        self.best = from;
        self.current_util = f64::NEG_INFINITY;
        self.best_util = f64::NEG_INFINITY;
        self.temp = self.cfg.initial_temp;
        self.iter = 0;
        self.finished = false;
    }

    /// One Algorithm-1 round: `measured_util` is the utility observed
    /// under the last returned candidate; `dominant`/`mu` come from the
    /// interval's FSD. Returns the next candidate to dispatch, or `None`
    /// once the episode has converged (caller should then dispatch
    /// [`SaTuner::best`]).
    pub fn step(&mut self, measured_util: f64, dominant: FlowType, mu: f64) -> Option<DcqcnParams> {
        if self.finished {
            return None;
        }
        self.steps += 1;
        // Accept/reject the measured candidate (lines 6-13).
        let delta = measured_util - self.current_util;
        let accept = delta > 0.0
            || (self.temp > 0.0 && ((delta * 100.0) / self.temp).exp() > self.rng.gen::<f64>());
        if accept {
            self.current = self.candidate;
            self.current_util = measured_util;
            self.accepts += 1;
            tel::event(tel::Event::SaAccept {
                temp: self.temp,
                utility: measured_util,
            });
        } else {
            tel::event(tel::Event::SaReject {
                temp: self.temp,
                utility: measured_util,
            });
        }
        tel::gauge_set(tel::Gauge::SaTemp, self.temp);
        if self.current_util > self.best_util {
            self.best = self.current;
            self.best_util = self.current_util;
        }
        // Mutate a new candidate from the accepted solution (lines 14-22).
        self.candidate = self.mutate(dominant, mu);
        // Temperature schedule (lines 3, 24-25).
        self.iter += 1;
        if self.iter >= self.cfg.total_iter_num {
            self.iter = 0;
            self.temp *= self.cfg.cooling_rate;
            if self.temp < self.cfg.final_temp {
                self.finished = true;
                tel::event(tel::Event::SaEpisodeEnd {
                    best_utility: self.best_util,
                });
                return None;
            }
        }
        Some(self.candidate)
    }

    fn mutate(&mut self, dominant: FlowType, mu: f64) -> DcqcnParams {
        let mut p = self.current;
        let exploit = mu.min(self.cfg.eta).max(0.0);
        // High temperature explores "in more random directions and
        // steps" (paper §III-C): the step amplitude shrinks as the
        // system cools, so a fresh (or restarted) episode moves fast and
        // the end-game fine-tunes.
        let temp_boost = 1.0 + 3.0 * (self.temp / self.cfg.initial_temp.max(1e-9)).min(1.0);
        for spec in self.space.clone().iter() {
            let s = spec.step * self.cfg.step_scale * temp_boost * self.rng.gen_range(0.5..1.0);
            let dominant_sign = match (dominant, spec.throughput_friendly) {
                (FlowType::Elephant, Direction::Increase) => 1.0,
                (FlowType::Elephant, Direction::Decrease) => -1.0,
                (FlowType::Mice, Direction::Increase) => -1.0,
                (FlowType::Mice, Direction::Decrease) => 1.0,
            };
            let sign = if self.cfg.guided {
                if self.rng.gen::<f64>() < exploit {
                    dominant_sign
                } else {
                    -dominant_sign
                }
            } else if self.rng.gen::<bool>() {
                1.0
            } else {
                -1.0
            };
            let v = spec.clamp(p.get(spec.id) + sign * s);
            p.set(spec.id, v);
        }
        p.normalize(&self.space);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraleon_dcqcn::ParamId;

    fn tuner(cfg: SaConfig) -> SaTuner {
        SaTuner::new(
            ParamSpace::standard(),
            cfg,
            DcqcnParams::nvidia_default(),
            7,
        )
    }

    /// A synthetic utility landscape: prefers large K_max and large
    /// rate_reduce_monitor_period (throughput-ish), quadratic peak.
    fn toy_utility(p: &DcqcnParams) -> f64 {
        let a = 1.0 - ((p.k_max - 6000.0) / 12800.0).powi(2);
        let b = 1.0 - ((p.rate_reduce_monitor_period - 300.0) / 500.0).powi(2);
        ((a + b) / 2.0).clamp(0.0, 1.0)
    }

    #[test]
    fn episode_terminates_within_configured_length() {
        let cfg = SaConfig::paper_default();
        let max_steps = cfg.episode_len() + cfg.total_iter_num;
        let mut t = tuner(cfg);
        let mut cand = DcqcnParams::nvidia_default();
        let mut steps = 0;
        while let Some(next) = t.step(toy_utility(&cand), FlowType::Elephant, 0.8) {
            cand = next;
            steps += 1;
            assert!(steps <= max_steps, "episode failed to terminate");
        }
        assert!(t.finished());
        assert!(steps > 10, "episode too short ({steps} steps)");
    }

    #[test]
    fn improves_utility_on_a_smooth_landscape() {
        let mut t = tuner(SaConfig::paper_default());
        let start = toy_utility(&DcqcnParams::nvidia_default());
        let mut cand = DcqcnParams::nvidia_default();
        while let Some(next) = t.step(toy_utility(&cand), FlowType::Elephant, 0.8) {
            cand = next;
        }
        assert!(
            t.best_util() > start + 0.05,
            "best {} should beat start {start}",
            t.best_util()
        );
    }

    #[test]
    fn guided_converges_faster_than_naive() {
        // Guided randomness helps when the dominant flow type's friendly
        // direction is actually the profitable one (the premise of
        // Optimization 1): use a landscape that rewards
        // throughput-friendly extremes under elephant dominance, and
        // compare how quickly each variant's best utility rises within a
        // small budget of 12 rounds.
        let aligned_utility = |p: &DcqcnParams| {
            let a = p.k_max / 12800.0;
            let b = p.rate_reduce_monitor_period / 500.0;
            ((a + b) / 2.0).clamp(0.0, 1.0)
        };
        let run = |cfg: SaConfig, seed: u64| {
            let mut t = SaTuner::new(
                ParamSpace::standard(),
                cfg,
                DcqcnParams::nvidia_default(),
                seed,
            );
            let mut cand = DcqcnParams::nvidia_default();
            for _ in 0..12 {
                match t.step(aligned_utility(&cand), FlowType::Elephant, 0.9) {
                    Some(next) => cand = next,
                    None => break,
                }
            }
            t.best_util()
        };
        let mut guided_wins = 0;
        for seed in 0..9u64 {
            let g = run(SaConfig::paper_default(), seed);
            let n = run(SaConfig::naive(), seed);
            if g >= n {
                guided_wins += 1;
            }
        }
        assert!(
            guided_wins >= 6,
            "guided should usually converge faster ({guided_wins}/9)"
        );
    }

    #[test]
    fn candidates_respect_bounds() {
        let space = ParamSpace::standard();
        let mut t = tuner(SaConfig::paper_default());
        for i in 0..100 {
            let Some(cand) = t.step((i % 10) as f64 / 10.0, FlowType::Mice, 0.7) else {
                break;
            };
            for spec in space.iter() {
                let v = cand.get(spec.id);
                assert!(
                    v >= spec.min && v <= spec.max,
                    "{} = {v} out of bounds",
                    spec.id.name()
                );
            }
            assert!(cand.k_min <= cand.k_max);
        }
    }

    #[test]
    fn mice_guidance_pushes_delay_friendly() {
        // With µ = 1.0 (η caps at 0.8) and mice dominant, the *first*
        // mutation from a mid-range start should move K_max down with
        // probability ≈ 0.8. Examine only the first move per seed so
        // boundary clamping and the k_min/k_max swap cannot bias the
        // statistic.
        let mut down = 0;
        let n = 200;
        for seed in 0..n {
            // Expert K_max = 6400: mid-range, no clamping on one step.
            let start = DcqcnParams::expert();
            let mut t = SaTuner::new(
                ParamSpace::standard(),
                SaConfig::paper_default(),
                start,
                seed,
            );
            let cand = t.step(0.5, FlowType::Mice, 1.0).expect("first move");
            if cand.get(ParamId::KMax) < start.k_max {
                down += 1;
            }
        }
        let frac = down as f64 / n as f64;
        assert!(
            (0.68..=0.92).contains(&frac),
            "P(delay-friendly K_max move) should be ≈0.8, got {frac}"
        );
    }

    #[test]
    fn restart_resets_the_schedule() {
        let mut t = tuner(SaConfig::paper_default());
        let mut cand = DcqcnParams::nvidia_default();
        while let Some(next) = t.step(0.5, FlowType::Elephant, 0.8) {
            cand = next;
        }
        assert!(t.finished());
        t.restart(cand);
        assert!(!t.finished());
        assert_eq!(t.temperature(), SaConfig::paper_default().initial_temp);
        assert!(t.step(0.4, FlowType::Elephant, 0.8).is_some());
    }

    #[test]
    fn better_utility_is_always_accepted() {
        let mut t = tuner(SaConfig::paper_default());
        t.step(0.1, FlowType::Elephant, 0.8);
        t.step(0.9, FlowType::Elephant, 0.8);
        assert_eq!(t.accepts, 2, "strictly improving moves always accept");
        assert_eq!(t.best_util(), 0.9);
    }

    #[test]
    fn worse_moves_accepted_more_at_high_temperature() {
        let accept_rate = |temp: f64| {
            let cfg = SaConfig {
                initial_temp: temp,
                final_temp: temp * 0.99,
                total_iter_num: 10_000,
                ..SaConfig::paper_default()
            };
            let mut t = tuner(cfg);
            // Alternate good/bad measurements so each bad move is judged
            // against a freshly re-established 0.9 baseline.
            let mut worse_accepts = 0;
            for _ in 0..200 {
                t.step(0.9, FlowType::Elephant, 0.8); // always accepted
                let before = t.accepts;
                t.step(0.5, FlowType::Elephant, 0.8); // much worse
                worse_accepts += t.accepts - before;
            }
            worse_accepts as f64 / 200.0
        };
        let hot = accept_rate(90.0);
        let cold = accept_rate(10.0);
        assert!(
            hot > cold + 0.2,
            "hot {hot} should accept far more worse moves than cold {cold}"
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let mut t = tuner(SaConfig::paper_default());
            let mut cand = DcqcnParams::nvidia_default();
            for i in 0..30 {
                if let Some(n) = t.step((i as f64 * 0.618) % 1.0, FlowType::Elephant, 0.8) {
                    cand = n;
                }
            }
            cand
        };
        assert_eq!(run(), run());
    }
}
