//! Performance-oriented tuning (paper §III-C): the improved simulated-
//! annealing search over the full DCQCN parameter vector, plus every
//! tuning baseline the paper compares against.
//!
//! All tuners implement [`TuningScheme`]: once per monitor interval the
//! closed loop hands them an [`Observation`] (utility value, metric
//! sample, dominant flow type, per-switch local state, trigger flag) and
//! they may answer with a [`TuningAction`] to dispatch.
//!
//! * [`sa::SaTuner`] / [`paraleon_scheme::ParaleonScheme`] — PARALEON's
//!   own tuner: event-driven SA episodes with *guided randomness*
//!   (parameters steered toward the dominant flow type's friendly
//!   direction with probability `min(µ, η)`) and a *relaxed temperature*
//!   schedule for timely convergence.
//! * [`acc::AccScheme`] — the ACC baseline (SIGCOMM 2021): per-switch
//!   agents tuning **only** ECN thresholds from **local** observations,
//!   with the published DRL agent replaced by tabular double-Q-learning
//!   over a discretised action space (see DESIGN.md §4 for why this
//!   preserves the comparison).
//! * [`dcqcn_plus::DcqcnPlusScheme`] — the DCQCN+ baseline (ICNP 2018):
//!   the adaptation is a distributed NP/RP protocol implemented inside
//!   the simulator (`SimConfig::dcqcn_plus`); the scheme itself holds
//!   parameters static and documents that coupling.
//! * [`static_scheme::StaticScheme`] — fixed settings (NVIDIA default,
//!   expert Table I, or PARALEON-pretrained snapshots).

pub mod acc;
pub mod dcqcn_plus;
pub mod paraleon_scheme;
pub mod sa;
pub mod static_scheme;

pub use acc::{AccConfig, AccScheme};
pub use dcqcn_plus::DcqcnPlusScheme;
pub use paraleon_scheme::{ParaleonScheme, ParaleonSchemeConfig};
pub use sa::{SaConfig, SaTuner};
pub use static_scheme::StaticScheme;

use std::any::Any;

use paraleon_dcqcn::DcqcnParams;
use paraleon_monitor::MetricSample;
use paraleon_sketch::FlowType;

/// Nanoseconds (simulator clock).
pub type Nanos = u64;

/// One switch's locally visible state (the ACC agent inputs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchLocalObs {
    /// Which switch this is (stable index, `0..n_switches`). Under fault
    /// injection `Observation::switch_obs` only carries the switches
    /// that are still reachable, so positions in the vector are *not* a
    /// stable identity — this field is.
    pub switch_index: usize,
    /// Mean egress utilization, `[0, 1]`.
    pub tx_utilization: f64,
    /// ECN marking rate, `[0, 1]`.
    pub marking_rate: f64,
    /// Buffer occupancy fraction, `[0, 1]`.
    pub queue_frac: f64,
}

/// Everything a tuner can see at the end of one monitor interval.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Interval end time.
    pub now: Nanos,
    /// Utility function value (Equation (1)) under the operator weights.
    pub utility: f64,
    /// The three normalized utility inputs.
    pub sample: MetricSample,
    /// Dominant flow type from the network-wide FSD.
    pub dominant: FlowType,
    /// Its proportion µ.
    pub mu: f64,
    /// Whether the KL change detector fired this interval.
    pub tuning_triggered: bool,
    /// Per-switch local observations.
    pub switch_obs: Vec<SwitchLocalObs>,
}

/// What a tuner asks the fabric to change.
#[derive(Debug, Clone, PartialEq)]
pub enum TuningAction {
    /// Dispatch one setting to every RNIC and switch (PARALEON's
    /// homogeneous centralized model).
    Global(DcqcnParams),
    /// Override only switch-side ECN thresholds, per switch (ACC's
    /// per-agent model): `(switch_index, params)`.
    PerSwitchEcn(Vec<(usize, DcqcnParams)>),
}

/// Control-plane feedback from the dispatch path (the guardrail in
/// `paraleon-core`) back into the tuner: candidates can be refused
/// before they reach the fabric, undone after they collapse it, or the
/// whole search can be frozen.
#[derive(Debug, Clone, PartialEq)]
pub enum TuningFeedback {
    /// The candidate failed validation and was never dispatched;
    /// `deployed` is what actually remains active in the fabric.
    Rejected {
        /// The setting still deployed.
        deployed: DcqcnParams,
    },
    /// A dispatched candidate collapsed the fabric; the guardrail
    /// restored `restored` (the last-known-good snapshot).
    RolledBack {
        /// The setting now deployed.
        restored: DcqcnParams,
    },
    /// Tuning is frozen (safe mode): `fallback` was deployed and any
    /// action the scheme emits will be suppressed until further notice.
    Frozen {
        /// The safe fallback setting now deployed.
        fallback: DcqcnParams,
    },
    /// Safe mode ended; the scheme may tune again.
    Unfrozen,
}

/// Opaque snapshot of a scheme's internal state, produced by
/// [`TuningScheme::snapshot_state`] and consumed by
/// [`TuningScheme::restore_state`] on the *same scheme type*. Stored
/// type-erased so the closed loop's controller snapshot can hold any
/// scheme's state without knowing its concrete type.
pub type SchemeState = Box<dyn Any + Send>;

/// A pluggable DCQCN tuning scheme driven once per monitor interval.
pub trait TuningScheme: Send {
    /// Consume one interval's observation; optionally emit an action.
    fn on_interval(&mut self, obs: &Observation) -> Option<TuningAction>;

    /// Scheme name for experiment tables.
    fn name(&self) -> &'static str;

    /// Snapshot the scheme's internal state (SA episode, RNG stream,
    /// learned tables) for controller crash/restore. Default: `None` —
    /// stateless schemes have nothing to save, and a warm restart of
    /// one simply rebuilds it.
    fn snapshot_state(&self) -> Option<SchemeState> {
        None
    }

    /// Restore state captured by [`TuningScheme::snapshot_state`] on the
    /// same scheme type. Returns `false` (state untouched) when the
    /// snapshot is of a different type or the scheme keeps no state.
    fn restore_state(&mut self, _snap: &SchemeState) -> bool {
        false
    }

    /// Dispatch-path feedback (rejection, rollback, freeze). Default:
    /// ignored — schemes without episode state need nothing here.
    fn on_feedback(&mut self, _feedback: &TuningFeedback) {}

    /// Bytes the controller dispatches per action (Table IV accounting):
    /// default = one parameter vector.
    fn dispatch_bytes(&self, action: &TuningAction) -> u64 {
        match action {
            TuningAction::Global(p) => p.wire_size_bytes() as u64,
            TuningAction::PerSwitchEcn(v) => v.len() as u64 * 3 * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_bytes_accounting() {
        struct Dummy;
        impl TuningScheme for Dummy {
            fn on_interval(&mut self, _o: &Observation) -> Option<TuningAction> {
                None
            }
            fn name(&self) -> &'static str {
                "dummy"
            }
        }
        let d = Dummy;
        let g = TuningAction::Global(DcqcnParams::nvidia_default());
        assert_eq!(d.dispatch_bytes(&g), 13 * 8);
        let p = TuningAction::PerSwitchEcn(vec![
            (0, DcqcnParams::nvidia_default()),
            (1, DcqcnParams::nvidia_default()),
        ]);
        assert_eq!(d.dispatch_bytes(&p), 48);
    }
}
