//! The DCQCN+ baseline (Gao et al., ICNP 2018).
//!
//! DCQCN+ is not a controller: it is a distributed NP/RP protocol change.
//! The NP stretches the CNP interval proportionally to the number of
//! concurrently congested flows and advertises that interval inside each
//! CNP; the RP scales its rate-increase steps and timers down by the
//! advertised factor. Both halves live in the data path:
//! `paraleon_dcqcn::IncastScaler` (NP side) and
//! `RpState::set_increase_scale` (RP side), wired together by the
//! simulator when `SimConfig::dcqcn_plus` is set.
//!
//! This scheme therefore never emits controller actions — which is
//! precisely the paper's point about why ACC and DCQCN+ cannot be
//! combined (incompatible monitoring/tuning loops) and why DCQCN+ leaves
//! switch-side ECN thresholds untuned.

use crate::{Observation, TuningAction, TuningScheme};

/// Marker scheme for DCQCN+ runs (adaptation happens in-network).
#[derive(Debug, Default)]
pub struct DcqcnPlusScheme {
    /// Intervals observed (statistics only).
    pub intervals: u64,
}

impl DcqcnPlusScheme {
    /// Create the marker scheme. Remember to enable
    /// `SimConfig::dcqcn_plus` on the simulator side.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TuningScheme for DcqcnPlusScheme {
    fn on_interval(&mut self, _obs: &Observation) -> Option<TuningAction> {
        self.intervals += 1;
        None
    }

    fn name(&self) -> &'static str {
        "DCQCN+"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraleon_monitor::MetricSample;
    use paraleon_sketch::FlowType;

    #[test]
    fn never_emits_controller_actions() {
        let mut s = DcqcnPlusScheme::new();
        let obs = Observation {
            now: 0,
            utility: 0.2,
            sample: MetricSample::new(0.2, 0.2, 0.2),
            dominant: FlowType::Mice,
            mu: 0.9,
            tuning_triggered: true,
            switch_obs: Vec::new(),
        };
        for _ in 0..5 {
            assert!(s.on_interval(&obs).is_none());
        }
        assert_eq!(s.intervals, 5);
    }
}
