//! PARALEON's full closed-loop tuning scheme: KL-triggered SA episodes.
//!
//! Idle until the monitor's change detector fires; then runs one
//! interactive SA episode (one candidate per monitor interval), and when
//! the temperature bottoms out, dispatches the best setting found and
//! returns to idle. A new trigger during or after an episode restarts
//! the search from the best known setting.

use paraleon_dcqcn::{DcqcnParams, ParamSpace};

use crate::sa::{SaConfig, SaTuner};
use crate::{Observation, SchemeState, TuningAction, TuningFeedback, TuningScheme};

/// Configuration of the full scheme.
#[derive(Debug, Clone)]
pub struct ParaleonSchemeConfig {
    /// SA schedule/mutation settings.
    pub sa: SaConfig,
    /// Initial (deployed) parameter setting.
    pub initial: DcqcnParams,
    /// RNG seed for the SA mutation stream.
    pub seed: u64,
    /// Monitor intervals each candidate is evaluated over before the SA
    /// accept/reject decision (utility is averaged across them). The
    /// paper uses 1 (one λ_MI per Algorithm-1 round); small fabrics
    /// benefit from >1 because per-interval utility is noisier with
    /// fewer flows.
    pub eval_intervals: u32,
}

impl Default for ParaleonSchemeConfig {
    fn default() -> Self {
        Self {
            sa: SaConfig::paper_default(),
            initial: DcqcnParams::nvidia_default(),
            seed: 42,
            eval_intervals: 1,
        }
    }
}

#[derive(Clone, Copy)]
enum Phase {
    Idle,
    /// An SA episode is running; the utility arriving next interval
    /// belongs to the candidate we dispatched last interval.
    Tuning,
}

/// The event-driven PARALEON tuner.
#[derive(Clone)]
pub struct ParaleonScheme {
    tuner: SaTuner,
    phase: Phase,
    deployed: DcqcnParams,
    /// Dominant flow type when the running episode started.
    episode_dominant: Option<paraleon_sketch::FlowType>,
    /// Episodes completed (statistics).
    pub episodes: u64,
    eval_intervals: u32,
    /// Utility accumulator for the candidate under evaluation.
    eval_sum: f64,
    eval_count: u32,
    /// The candidate under evaluation was refused or rolled back by the
    /// guardrail: complete its SA round with zero utility so the search
    /// moves away from it instead of waiting out the evaluation window.
    penalty_pending: bool,
}

impl ParaleonScheme {
    /// Build the scheme.
    pub fn new(cfg: ParaleonSchemeConfig) -> Self {
        let tuner = SaTuner::new(ParamSpace::standard(), cfg.sa, cfg.initial, cfg.seed);
        Self {
            tuner,
            phase: Phase::Idle,
            deployed: cfg.initial,
            episode_dominant: None,
            episodes: 0,
            eval_intervals: cfg.eval_intervals.max(1),
            eval_sum: 0.0,
            eval_count: 0,
            penalty_pending: false,
        }
    }

    /// The setting currently deployed in the fabric.
    pub fn deployed(&self) -> &DcqcnParams {
        &self.deployed
    }

    /// Whether an SA episode is in progress.
    pub fn tuning(&self) -> bool {
        matches!(self.phase, Phase::Tuning)
    }
}

impl TuningScheme for ParaleonScheme {
    fn on_interval(&mut self, obs: &Observation) -> Option<TuningAction> {
        match self.phase {
            Phase::Idle => {
                if obs.tuning_triggered {
                    self.tuner.restart(self.deployed);
                    self.phase = Phase::Tuning;
                    self.episode_dominant = Some(obs.dominant);
                    self.eval_sum = 0.0;
                    self.eval_count = 0;
                    self.penalty_pending = false;
                    // First candidate: mutate immediately using the fresh
                    // FSD; the measured utility of the *deployed* setting
                    // seeds the accept baseline.
                    match self.tuner.step(obs.utility, obs.dominant, obs.mu) {
                        Some(p) => {
                            self.deployed = p;
                            Some(TuningAction::Global(p))
                        }
                        None => None,
                    }
                } else {
                    None
                }
            }
            Phase::Tuning => {
                // A mid-episode trigger restarts the search immediately
                // (the paper's semantics: new parameters for the new
                // traffic pattern as soon as it is detected) — but only
                // when the dominant flow type actually changed, so
                // trigger-window boundary noise cannot keep resetting a
                // young episode that is already tuning for this pattern.
                if obs.tuning_triggered && self.episode_dominant != Some(obs.dominant) {
                    self.episodes += 1;
                    self.tuner.restart(self.deployed);
                    self.episode_dominant = Some(obs.dominant);
                    self.eval_sum = 0.0;
                    self.eval_count = 0;
                    self.penalty_pending = false;
                    match self.tuner.step(obs.utility, obs.dominant, obs.mu) {
                        Some(p) => {
                            self.deployed = p;
                            return Some(TuningAction::Global(p));
                        }
                        None => return None,
                    }
                }
                // Accumulate the candidate's utility; only complete an
                // Algorithm-1 round once it has been measured for
                // `eval_intervals` monitor intervals. A guardrail
                // rejection/rollback short-circuits the window: the
                // candidate scores zero and the search moves on now.
                let mean_util = if self.penalty_pending {
                    self.penalty_pending = false;
                    self.eval_sum = 0.0;
                    self.eval_count = 0;
                    0.0
                } else {
                    self.eval_sum += obs.utility;
                    self.eval_count += 1;
                    if self.eval_count < self.eval_intervals {
                        return None;
                    }
                    let m = self.eval_sum / self.eval_count as f64;
                    self.eval_sum = 0.0;
                    self.eval_count = 0;
                    m
                };
                match self.tuner.step(mean_util, obs.dominant, obs.mu) {
                    Some(p) => {
                        self.deployed = p;
                        Some(TuningAction::Global(p))
                    }
                    None => {
                        // Episode converged: deploy the best found.
                        self.episodes += 1;
                        let best = *self.tuner.best();
                        self.deployed = best;
                        self.phase = Phase::Idle;
                        Some(TuningAction::Global(best))
                    }
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "PARALEON"
    }

    fn snapshot_state(&self) -> Option<SchemeState> {
        // The whole scheme is cloneable — SA episode, RNG stream
        // position, evaluation window — so a snapshot is a deep copy and
        // a warm restore resumes the episode mid-candidate.
        Some(Box::new(self.clone()))
    }

    fn restore_state(&mut self, snap: &SchemeState) -> bool {
        match snap.downcast_ref::<ParaleonScheme>() {
            Some(s) => {
                *self = s.clone();
                true
            }
            None => false,
        }
    }

    fn on_feedback(&mut self, feedback: &TuningFeedback) {
        match feedback {
            TuningFeedback::Rejected { deployed } => {
                // The candidate never reached the fabric: what we thought
                // we deployed is wrong, and the candidate must score 0.
                self.deployed = *deployed;
                if self.tuning() {
                    self.penalty_pending = true;
                }
            }
            TuningFeedback::RolledBack { restored } => {
                self.deployed = *restored;
                if self.tuning() {
                    self.penalty_pending = true;
                }
            }
            TuningFeedback::Frozen { fallback } => {
                // Safe mode: abandon the episode entirely; a fresh KL
                // trigger after the freeze starts a new search from the
                // fallback setting.
                if self.tuning() {
                    self.episodes += 1;
                }
                self.phase = Phase::Idle;
                self.deployed = *fallback;
                self.episode_dominant = None;
                self.eval_sum = 0.0;
                self.eval_count = 0;
                self.penalty_pending = false;
            }
            TuningFeedback::Unfrozen => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraleon_monitor::MetricSample;
    use paraleon_sketch::FlowType;

    fn obs(utility: f64, triggered: bool) -> Observation {
        obs_with(utility, triggered, FlowType::Elephant)
    }

    fn obs_with(utility: f64, triggered: bool, dominant: FlowType) -> Observation {
        Observation {
            now: 0,
            utility,
            sample: MetricSample::new(utility, utility, 1.0),
            dominant,
            mu: 0.8,
            tuning_triggered: triggered,
            switch_obs: Vec::new(),
        }
    }

    #[test]
    fn idle_until_triggered() {
        let mut s = ParaleonScheme::new(ParaleonSchemeConfig::default());
        for _ in 0..10 {
            assert!(s.on_interval(&obs(0.5, false)).is_none());
        }
        assert!(!s.tuning());
        assert!(s.on_interval(&obs(0.5, true)).is_some());
        assert!(s.tuning());
    }

    #[test]
    fn episode_runs_then_returns_to_idle_with_best() {
        let mut s = ParaleonScheme::new(ParaleonSchemeConfig::default());
        s.on_interval(&obs(0.3, true));
        let mut rounds = 0;
        let budget = SaConfig::paper_default().episode_len() + 30;
        while s.tuning() {
            // Reward higher K_max-ish moves with a synthetic landscape:
            // simply feed the utility of the deployed candidate's K_max.
            let u = (s.deployed().k_max / 12800.0).clamp(0.0, 1.0);
            s.on_interval(&obs(u, false));
            rounds += 1;
            assert!(rounds < budget, "episode must converge");
        }
        assert_eq!(s.episodes, 1);
        // Deployed = best of the episode, which should have drifted to a
        // higher K_max than the NVIDIA default under this landscape.
        assert!(s.deployed().k_max >= DcqcnParams::nvidia_default().k_max);
    }

    #[test]
    fn retrigger_during_episode_restarts_immediately_on_pattern_flip() {
        let mut s = ParaleonScheme::new(ParaleonSchemeConfig::default());
        s.on_interval(&obs(0.3, true)); // episode starts elephant-dominant
        for _ in 0..5 {
            s.on_interval(&obs(0.4, false));
        }
        // Same-dominant trigger mid-episode: ignored (boundary noise).
        s.on_interval(&obs(0.4, true));
        assert_eq!(s.episodes, 0, "same-pattern trigger must not restart");
        // Dominant flips to mice: the search restarts at full temperature
        // right away (counted as closing one episode).
        assert!(s
            .on_interval(&obs_with(0.4, true, FlowType::Mice))
            .is_some());
        assert_eq!(s.episodes, 1);
        assert!(s.tuning());
        // And the new episode still terminates.
        let budget = SaConfig::paper_default().episode_len() + 30;
        let mut rounds = 0;
        while s.tuning() && rounds < budget {
            s.on_interval(&obs(0.4, false));
            rounds += 1;
        }
        assert!(!s.tuning(), "restarted episode must converge");
        assert_eq!(s.episodes, 2);
    }

    #[test]
    fn rollback_feedback_penalizes_candidate_and_resyncs_deployed() {
        let mut s = ParaleonScheme::new(ParaleonSchemeConfig {
            eval_intervals: 4,
            ..Default::default()
        });
        s.on_interval(&obs(0.5, true));
        let candidate = *s.deployed();
        let good = DcqcnParams::expert();
        s.on_feedback(&TuningFeedback::RolledBack { restored: good });
        assert_eq!(s.deployed(), &good, "deployed must track the rollback");
        // The next interval completes the round immediately (no waiting
        // out the 4-interval evaluation window) and moves to a new
        // candidate.
        let next = s.on_interval(&obs(0.9, false));
        assert!(next.is_some(), "penalized round must emit a new candidate");
        if let Some(TuningAction::Global(p)) = next {
            assert_ne!(p, candidate, "the collapsed candidate is abandoned");
        }
    }

    #[test]
    fn frozen_feedback_abandons_episode_until_next_trigger() {
        let mut s = ParaleonScheme::new(ParaleonSchemeConfig::default());
        s.on_interval(&obs(0.5, true));
        assert!(s.tuning());
        let fallback = DcqcnParams::nvidia_default();
        s.on_feedback(&TuningFeedback::Frozen { fallback });
        assert!(!s.tuning(), "freeze must end the episode");
        assert_eq!(s.deployed(), &fallback);
        assert_eq!(s.episodes, 1, "the aborted episode is accounted");
        // Quiet intervals keep it idle; a new trigger starts tuning again.
        assert!(s.on_interval(&obs(0.5, false)).is_none());
        s.on_feedback(&TuningFeedback::Unfrozen);
        assert!(s.on_interval(&obs(0.5, true)).is_some());
        assert!(s.tuning());
    }

    #[test]
    fn snapshot_restore_resumes_the_episode_byte_identically() {
        // Drive one scheme 5 intervals into an episode, snapshot it,
        // drive both the original and a restored copy through the same
        // observations: every subsequent action must be identical (the
        // snapshot captures the SA RNG stream position exactly).
        let mut a = ParaleonScheme::new(ParaleonSchemeConfig::default());
        a.on_interval(&obs(0.3, true));
        for i in 0..4 {
            a.on_interval(&obs(0.3 + 0.1 * i as f64, false));
        }
        let snap = a.snapshot_state().expect("paraleon snapshots");
        let mut b = ParaleonScheme::new(ParaleonSchemeConfig {
            seed: 999, // divergent until restored
            ..Default::default()
        });
        assert!(b.restore_state(&snap));
        assert_eq!(a.deployed(), b.deployed());
        for i in 0..20 {
            let o = obs((i as f64 * 0.37) % 1.0, i == 10);
            assert_eq!(a.on_interval(&o), b.on_interval(&o), "interval {i}");
        }
    }

    #[test]
    fn every_candidate_is_dispatched() {
        let mut s = ParaleonScheme::new(ParaleonSchemeConfig::default());
        let first = s.on_interval(&obs(0.3, true)).unwrap();
        match first {
            TuningAction::Global(p) => assert_eq!(&p, s.deployed()),
            _ => panic!("paraleon dispatches globally"),
        }
        while s.tuning() {
            if let Some(TuningAction::Global(p)) = s.on_interval(&obs(0.5, false)) {
                assert_eq!(&p, s.deployed());
            }
        }
    }
}
