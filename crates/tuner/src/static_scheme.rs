//! Static parameter settings: the NVIDIA default, the expert Table I
//! values, or PARALEON-pretrained snapshots (the Figure 9 baselines).

use paraleon_dcqcn::DcqcnParams;

use crate::{Observation, TuningAction, TuningScheme};

/// A scheme that dispatches one fixed setting at startup and never
/// adapts.
pub struct StaticScheme {
    params: DcqcnParams,
    label: &'static str,
    dispatched: bool,
}

impl StaticScheme {
    /// A fixed setting with a display label.
    pub fn new(params: DcqcnParams, label: &'static str) -> Self {
        Self {
            params,
            label,
            dispatched: false,
        }
    }

    /// The NVIDIA default setting.
    pub fn nvidia_default() -> Self {
        Self::new(DcqcnParams::nvidia_default(), "Default")
    }

    /// The expert setting from Table I.
    pub fn expert() -> Self {
        Self::new(DcqcnParams::expert(), "Expert")
    }

    /// The fixed setting.
    pub fn params(&self) -> &DcqcnParams {
        &self.params
    }
}

impl TuningScheme for StaticScheme {
    fn on_interval(&mut self, _obs: &Observation) -> Option<TuningAction> {
        if self.dispatched {
            None
        } else {
            self.dispatched = true;
            Some(TuningAction::Global(self.params))
        }
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraleon_monitor::MetricSample;
    use paraleon_sketch::FlowType;

    #[test]
    fn dispatches_exactly_once() {
        let mut s = StaticScheme::expert();
        let obs = Observation {
            now: 0,
            utility: 0.1,
            sample: MetricSample::new(0.1, 0.1, 0.1),
            dominant: FlowType::Mice,
            mu: 0.9,
            tuning_triggered: true, // static schemes ignore triggers
            switch_obs: Vec::new(),
        };
        match s.on_interval(&obs) {
            Some(TuningAction::Global(p)) => assert_eq!(p, DcqcnParams::expert()),
            _ => panic!("first interval must dispatch"),
        }
        assert!(s.on_interval(&obs).is_none());
        assert_eq!(s.name(), "Expert");
    }
}
