//! The ACC baseline (Yan et al., SIGCOMM 2021): per-switch agents that
//! tune **only** the ECN thresholds from **local** observations.
//!
//! ACC's published system runs a Deep Double Q-Network per switch control
//! plane; the artifact is closed source. We preserve exactly the
//! properties the paper's comparison relies on — per-switch locality,
//! ECN-only action space, RL-style trial-and-error — with a **tabular
//! double-Q-learning** agent over discretised observations and a
//! multiplicative ECN action set (DESIGN.md §4 documents the
//! substitution). The RNIC-side DCQCN parameters are never touched,
//! which is the limitation PARALEON's evaluation exploits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use paraleon_dcqcn::{DcqcnParams, ParamSpace};

use crate::{Observation, TuningAction, TuningScheme};

/// Number of discretisation buckets per observation dimension.
const BUCKETS: usize = 4;
/// Actions: scale (K_min, K_max) jointly by {×2, ÷2}, shift K_min or
/// K_max alone, adjust P_max, or hold.
const ACTIONS: usize = 7;

/// ACC agent configuration.
#[derive(Debug, Clone)]
pub struct AccConfig {
    /// Learning rate.
    pub alpha: f64,
    /// Discount factor.
    pub gamma: f64,
    /// ε-greedy exploration rate.
    pub epsilon: f64,
    /// Reward weights: throughput bonus, queue penalty, marking penalty.
    pub w_tx: f64,
    /// Queue-occupancy penalty weight.
    pub w_queue: f64,
    /// Marking-rate penalty weight.
    pub w_mark: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AccConfig {
    fn default() -> Self {
        Self {
            alpha: 0.3,
            gamma: 0.6,
            epsilon: 0.1,
            w_tx: 1.0,
            w_queue: 0.6,
            w_mark: 0.2,
            seed: 99,
        }
    }
}

/// One per-switch double-Q agent.
#[derive(Clone)]
struct Agent {
    q1: Vec<[f64; ACTIONS]>,
    q2: Vec<[f64; ACTIONS]>,
    last: Option<(usize, usize)>, // (state, action)
    ecn: DcqcnParams,             // only the CP fields matter
}

impl Agent {
    fn new(initial: &DcqcnParams) -> Self {
        let states = BUCKETS * BUCKETS * BUCKETS;
        Self {
            q1: vec![[0.0; ACTIONS]; states],
            q2: vec![[0.0; ACTIONS]; states],
            last: None,
            ecn: *initial,
        }
    }

    fn state_index(obs: &crate::SwitchLocalObs) -> usize {
        let b = |v: f64| ((v * BUCKETS as f64) as usize).min(BUCKETS - 1);
        (b(obs.tx_utilization) * BUCKETS + b(obs.queue_frac)) * BUCKETS + b(obs.marking_rate)
    }

    fn reward(cfg: &AccConfig, obs: &crate::SwitchLocalObs) -> f64 {
        cfg.w_tx * obs.tx_utilization - cfg.w_queue * obs.queue_frac - cfg.w_mark * obs.marking_rate
    }

    fn apply_action(&mut self, action: usize, space: &ParamSpace) {
        let p = &mut self.ecn;
        match action {
            0 => {
                p.k_min *= 2.0;
                p.k_max *= 2.0;
            }
            1 => {
                p.k_min /= 2.0;
                p.k_max /= 2.0;
            }
            2 => p.k_min *= 1.5,
            3 => p.k_max *= 1.5,
            4 => p.p_max += 0.05,
            5 => p.p_max -= 0.05,
            _ => {} // hold
        }
        p.normalize(space);
    }

    /// One double-Q update + ε-greedy action selection.
    fn step(
        &mut self,
        cfg: &AccConfig,
        obs: &crate::SwitchLocalObs,
        space: &ParamSpace,
        rng: &mut StdRng,
    ) -> DcqcnParams {
        let s = Self::state_index(obs);
        let r = Self::reward(cfg, obs);
        if let Some((ps, pa)) = self.last {
            // Double Q-learning: flip a coin over which table to update,
            // using the other for the bootstrap value.
            if rng.gen::<bool>() {
                let a_star = argmax(&self.q1[s]);
                let target = r + cfg.gamma * self.q2[s][a_star];
                self.q1[ps][pa] += cfg.alpha * (target - self.q1[ps][pa]);
            } else {
                let a_star = argmax(&self.q2[s]);
                let target = r + cfg.gamma * self.q1[s][a_star];
                self.q2[ps][pa] += cfg.alpha * (target - self.q2[ps][pa]);
            }
        }
        let action = if rng.gen::<f64>() < cfg.epsilon {
            rng.gen_range(0..ACTIONS)
        } else {
            let combined: Vec<f64> = (0..ACTIONS)
                .map(|a| self.q1[s][a] + self.q2[s][a])
                .collect();
            argmax(&combined)
        };
        self.last = Some((s, action));
        self.apply_action(action, space);
        self.ecn
    }
}

fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

/// The ACC tuning scheme: one agent per switch.
#[derive(Clone)]
pub struct AccScheme {
    cfg: AccConfig,
    space: ParamSpace,
    agents: Vec<Agent>,
    rng: StdRng,
    initial: DcqcnParams,
}

impl AccScheme {
    /// Create with `initial` ECN settings (RNIC fields are carried along
    /// but never modified).
    pub fn new(cfg: AccConfig, initial: DcqcnParams) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            space: ParamSpace::standard(),
            agents: Vec::new(),
            rng,
            initial,
        }
    }

    /// Current ECN setting of agent `i` (diagnostics).
    pub fn agent_ecn(&self, i: usize) -> Option<&DcqcnParams> {
        self.agents.get(i).map(|a| &a.ecn)
    }
}

impl TuningScheme for AccScheme {
    fn on_interval(&mut self, obs: &Observation) -> Option<TuningAction> {
        if obs.switch_obs.is_empty() {
            return None;
        }
        // Agents are keyed by the stable `switch_index`, not the position
        // in `switch_obs`: under fault injection unreachable switches are
        // absent from the observation and positions shift.
        let max_index = obs
            .switch_obs
            .iter()
            .map(|s| s.switch_index)
            .max()
            .unwrap_or(0);
        while self.agents.len() <= max_index {
            self.agents.push(Agent::new(&self.initial));
        }
        let mut updates = Vec::with_capacity(obs.switch_obs.len());
        for local in &obs.switch_obs {
            let ecn =
                self.agents[local.switch_index].step(&self.cfg, local, &self.space, &mut self.rng);
            updates.push((local.switch_index, ecn));
        }
        Some(TuningAction::PerSwitchEcn(updates))
    }

    fn name(&self) -> &'static str {
        "ACC"
    }

    fn snapshot_state(&self) -> Option<crate::SchemeState> {
        Some(Box::new(self.clone()))
    }

    fn restore_state(&mut self, snap: &crate::SchemeState) -> bool {
        match snap.downcast_ref::<AccScheme>() {
            Some(s) => {
                *self = s.clone();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwitchLocalObs;
    use paraleon_monitor::MetricSample;
    use paraleon_sketch::FlowType;

    fn obs_with(switches: Vec<SwitchLocalObs>) -> Observation {
        Observation {
            now: 0,
            utility: 0.5,
            sample: MetricSample::new(0.5, 0.5, 1.0),
            dominant: FlowType::Elephant,
            mu: 0.8,
            tuning_triggered: false,
            switch_obs: switches,
        }
    }

    fn local(tx: f64, mark: f64, q: f64) -> SwitchLocalObs {
        SwitchLocalObs {
            switch_index: 0,
            tx_utilization: tx,
            marking_rate: mark,
            queue_frac: q,
        }
    }

    #[test]
    fn emits_per_switch_ecn_actions_only() {
        let mut acc = AccScheme::new(AccConfig::default(), DcqcnParams::nvidia_default());
        let switches: Vec<SwitchLocalObs> = (0..3)
            .map(|i| SwitchLocalObs {
                switch_index: i,
                ..local(0.5, 0.1, 0.2)
            })
            .collect();
        let action = acc.on_interval(&obs_with(switches)).unwrap();
        match action {
            TuningAction::PerSwitchEcn(v) => {
                assert_eq!(v.len(), 3);
                for (_, p) in &v {
                    // RNIC-side parameters must be untouched.
                    let d = DcqcnParams::nvidia_default();
                    assert_eq!(p.ai_rate, d.ai_rate);
                    assert_eq!(p.min_time_between_cnps, d.min_time_between_cnps);
                }
            }
            _ => panic!("ACC must act per switch"),
        }
    }

    #[test]
    fn thresholds_stay_in_bounds_over_many_steps() {
        let mut acc = AccScheme::new(AccConfig::default(), DcqcnParams::nvidia_default());
        let space = ParamSpace::standard();
        for i in 0..300 {
            let tx = (i % 10) as f64 / 10.0;
            let action = acc
                .on_interval(&obs_with(vec![local(tx, 0.3, 0.6)]))
                .unwrap();
            if let TuningAction::PerSwitchEcn(v) = action {
                for (_, p) in v {
                    for id in [
                        paraleon_dcqcn::ParamId::KMin,
                        paraleon_dcqcn::ParamId::KMax,
                        paraleon_dcqcn::ParamId::PMax,
                    ] {
                        let spec = space.spec(id);
                        let val = p.get(id);
                        assert!(val >= spec.min && val <= spec.max);
                    }
                    assert!(p.k_min <= p.k_max);
                }
            }
        }
    }

    #[test]
    fn learns_to_avoid_punished_actions() {
        // Construct a loop where any deviation from "hold" yields a bad
        // next observation: the agent should increasingly pick hold-ish
        // behaviour, i.e. its ECN settings stop moving.
        let cfg = AccConfig {
            epsilon: 0.05,
            ..AccConfig::default()
        };
        let mut acc = AccScheme::new(cfg, DcqcnParams::nvidia_default());
        let mut last_kmax = DcqcnParams::nvidia_default().k_max;
        let mut changes_late = 0;
        for i in 0..400 {
            // Reward structure: good obs always (tx high, queue low) so Q
            // values converge; movement then tracks exploration only.
            let action = acc
                .on_interval(&obs_with(vec![local(0.9, 0.0, 0.05)]))
                .unwrap();
            if let TuningAction::PerSwitchEcn(v) = action {
                let kmax = v[0].1.k_max;
                if i > 300 && (kmax - last_kmax).abs() > 1e-9 {
                    changes_late += 1;
                }
                last_kmax = kmax;
            }
        }
        // With ε = 0.05 and converged tables, late-phase movement should
        // be rare (exploration plus occasional ties).
        assert!(changes_late < 60, "agent kept thrashing: {changes_late}");
    }

    #[test]
    fn no_observations_no_action() {
        let mut acc = AccScheme::new(AccConfig::default(), DcqcnParams::nvidia_default());
        assert!(acc.on_interval(&obs_with(vec![])).is_none());
    }
}
