//! Property tests for the log-bucketed histogram: its quantiles must
//! track exact sorted-vector quantiles within the bucketing error
//! bound, for any input distribution.

use proptest::prelude::*;

use paraleon_telemetry::hist::{LogHistogram, SUB_BUCKETS};

/// Exact quantile: the rank-`ceil(q·n)` element of the sorted samples
/// (matching the histogram's rank definition).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        // Uniform small values (exercises the exact region).
        prop::collection::vec(0u64..64, 1..400),
        // Wide log-uniform-ish values via (mantissa, shift).
        prop::collection::vec((1u64..1024, 0u32..40), 1..400)
            .prop_map(|pairs| pairs.into_iter().map(|(m, s)| m << s.min(53)).collect()),
        // Heavy-tailed mixture: mostly small, occasional huge.
        prop::collection::vec((0u64..1000, 0u64..1_000_000_000_000), 1..400).prop_map(|pairs| {
            pairs
                .into_iter()
                .map(|(small, big)| if big % 10 == 0 { big } else { small })
                .collect()
        }),
    ]
}

proptest! {
    /// For any sample set and quantile, the histogram's answer is within
    /// the log-bucket relative error (1/SUB_BUCKETS) of the exact
    /// sorted-vec quantile, and never outside the observed range.
    #[test]
    fn quantiles_match_exact_within_bucket_error(
        values in samples(),
        qs in prop::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        for &q in &qs {
            let approx = h.value_at_quantile(q);
            let exact = exact_quantile(&sorted, q);
            prop_assert!(approx >= h.min() && approx <= h.max());
            // The histogram answers with the floor of the bucket holding
            // the exact rank-q value: it never overshoots, and it
            // undershoots by less than one bucket width, which is at
            // most exact/SUB_BUCKETS (+1 for the exact integer region).
            let tol = exact / SUB_BUCKETS as u64 + 1;
            prop_assert!(
                approx <= exact,
                "quantile {q}: approx {approx} overshoots exact {exact}"
            );
            prop_assert!(
                exact - approx <= tol,
                "quantile {q}: approx {approx} undershoots exact {exact} beyond tol {tol}"
            );
        }
    }

    /// The quantile function is monotone in q.
    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(0u64..1_000_000_000, 1..300)) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = 0u64;
        for k in 0..=20 {
            let v = h.value_at_quantile(k as f64 / 20.0);
            prop_assert!(v >= last, "quantile function decreased at {k}/20");
            last = v;
        }
    }

    /// Merging two histograms equals recording the union.
    #[test]
    fn merge_is_union(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        let mut hu = LogHistogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        for k in 0..=10 {
            let q = k as f64 / 10.0;
            prop_assert_eq!(ha.value_at_quantile(q), hu.value_at_quantile(q));
        }
    }
}
