//! Overhead proof for the telemetry hot paths: the disabled path must
//! be branch-cheap (~1 ns) and the enabled counter/histogram path in
//! the low nanoseconds, so instrumentation can stay on in experiments
//! without distorting them.
//!
//! Run: `cargo bench -p paraleon-telemetry`

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use paraleon_telemetry as tel;
use paraleon_telemetry::{Ctr, Event, Hist};

fn bench_disabled(c: &mut Criterion) {
    let mut g = c.benchmark_group("disabled");
    g.throughput(Throughput::Elements(1));
    tel::set_enabled(false);
    g.bench_function("counter_add", |b| {
        b.iter(|| tel::count(black_box(Ctr::EcnMarks)))
    });
    g.bench_function("hist_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(997);
            tel::observe(black_box(Hist::RttNs), black_box(v));
        })
    });
    g.bench_function("event", |b| {
        b.iter(|| {
            tel::event(black_box(Event::RateIncrease));
        })
    });
    g.finish();
}

fn bench_enabled(c: &mut Criterion) {
    let mut g = c.benchmark_group("enabled");
    g.throughput(Throughput::Elements(1));
    tel::set_enabled(true);
    g.bench_function("counter_add", |b| {
        b.iter(|| tel::count(black_box(Ctr::EcnMarks)))
    });
    g.bench_function("hist_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(997);
            tel::observe(black_box(Hist::RttNs), black_box(v % 10_000_000));
        })
    });
    g.bench_function("event_ring", |b| {
        b.iter(|| {
            tel::event(black_box(Event::RateIncrease));
        })
    });
    g.bench_function("series_push", |b| {
        let mut t = 0u64;
        tel::set_time(1);
        b.iter(|| {
            t += 1;
            // Bound the append log so the measurement reflects the push,
            // not unbounded growth across millions of iterations.
            if t.is_multiple_of(65_536) {
                tel::reset();
            }
            tel::series(black_box("bench_metric"), 0, black_box(t as f64));
        })
    });
    tel::reset();
    tel::set_enabled(false);
    g.finish();
}

fn bench_quantile_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("query");
    let mut h = tel::LogHistogram::new();
    let mut v = 1u64;
    for _ in 0..100_000 {
        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
        h.record(v % 50_000_000);
    }
    g.bench_function("value_at_quantile", |b| {
        b.iter(|| black_box(h.value_at_quantile(black_box(0.99))))
    });
    g.finish();
}

criterion_group!(benches, bench_disabled, bench_enabled, bench_quantile_query);
criterion_main!(benches);
