//! Serialize the registry to JSONL/CSV under `results/` and read it
//! back.
//!
//! One JSONL file carries the full registry state — counters, gauges,
//! histogram summaries, every time-series point, and the flight
//! recorder — one self-describing object per line tagged with `kind`.
//! The figure binaries run an experiment with telemetry enabled, export
//! here, then rebuild their plot data from [`read_jsonl`] instead of
//! keeping bespoke in-memory accumulators.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use serde_json::Value;

use crate::{
    counters_snapshot, flight_dropped, flight_events, gauges_snapshot, histogram, series_points,
    Hist,
};

/// Quantiles exported per histogram.
const QUANTILES: [(&str, f64); 4] = [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("p999", 0.999)];

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Export the whole registry as JSONL. Parent directories are created;
/// returns the path written.
pub fn write_jsonl(path: impl AsRef<Path>) -> io::Result<PathBuf> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut out = io::BufWriter::new(fs::File::create(path)?);
    let line = |out: &mut dyn Write, v: &Value| -> io::Result<()> {
        let s = serde_json::to_string(v).expect("telemetry values always serialize");
        writeln!(out, "{s}")
    };

    for (name, value) in counters_snapshot() {
        line(
            &mut out,
            &obj(vec![
                ("kind", Value::String("counter".into())),
                ("name", Value::String(name.into())),
                ("value", Value::UInt(value)),
            ]),
        )?;
    }
    for (name, value) in gauges_snapshot() {
        line(
            &mut out,
            &obj(vec![
                ("kind", Value::String("gauge".into())),
                ("name", Value::String(name.into())),
                ("value", Value::Float(value)),
            ]),
        )?;
    }
    for h in Hist::ALL {
        let snap = histogram(h);
        let mut entries = vec![
            ("kind", Value::String("hist".into())),
            ("name", Value::String(h.name().into())),
            ("count", Value::UInt(snap.count())),
            ("min", Value::UInt(snap.min())),
            ("max", Value::UInt(snap.max())),
            ("mean", Value::Float(snap.mean())),
        ];
        for (label, q) in QUANTILES {
            entries.push((label, Value::UInt(snap.value_at_quantile(q))));
        }
        line(&mut out, &obj(entries))?;
    }
    for p in series_points() {
        line(
            &mut out,
            &obj(vec![
                ("kind", Value::String("series".into())),
                ("metric", Value::String(p.metric.into())),
                ("entity", Value::UInt(p.entity as u64)),
                ("t_ns", Value::UInt(p.t_ns)),
                ("value", Value::Float(p.value)),
            ]),
        )?;
    }
    for ev in flight_events() {
        let mut entries = vec![
            ("kind", Value::String("event".into())),
            ("t_ns", Value::UInt(ev.t_ns)),
            ("event", Value::String(ev.event.name().into())),
        ];
        if ev.tenant != 0 {
            // Only multi-tenant (fleet) runs carry the dimension, so
            // standalone dumps stay byte-identical to older exports.
            entries.push(("tenant", Value::UInt(ev.tenant as u64)));
        }
        for (field, value) in ev.event.fields() {
            entries.push((field, Value::Float(value)));
        }
        line(&mut out, &obj(entries))?;
    }
    line(
        &mut out,
        &obj(vec![
            ("kind", Value::String("flight_meta".into())),
            ("dropped", Value::UInt(flight_dropped())),
        ]),
    )?;
    out.flush()?;
    Ok(path.to_path_buf())
}

/// Export only the time series as CSV (`metric,entity,t_ns,value`).
pub fn write_series_csv(path: impl AsRef<Path>) -> io::Result<PathBuf> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut out = io::BufWriter::new(fs::File::create(path)?);
    writeln!(out, "metric,entity,t_ns,value")?;
    for p in series_points() {
        writeln!(out, "{},{},{},{}", p.metric, p.entity, p.t_ns, p.value)?;
    }
    out.flush()?;
    Ok(path.to_path_buf())
}

/// A histogram's exported summary.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Histogram name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// A time-series point read back from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedSeriesPoint {
    /// Metric name.
    pub metric: String,
    /// Entity index.
    pub entity: u32,
    /// Simulation time, nanoseconds.
    pub t_ns: u64,
    /// Sample value.
    pub value: f64,
}

/// A flight-recorder event read back from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedEvent {
    /// Simulation time, nanoseconds.
    pub t_ns: u64,
    /// Owning tenant (0 = standalone/default; absent in the file).
    pub tenant: u32,
    /// Event type name (e.g. `"sa_accept"`).
    pub name: String,
    /// Event payload fields.
    pub fields: Vec<(String, f64)>,
}

impl OwnedEvent {
    /// Look up one payload field.
    pub fn field(&self, name: &str) -> Option<f64> {
        self.fields.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }
}

/// Everything one exported JSONL file contained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryDump {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<HistSummary>,
    /// All series points, in file (= time) order.
    pub series: Vec<OwnedSeriesPoint>,
    /// Flight-recorder events, oldest first.
    pub events: Vec<OwnedEvent>,
    /// Events the flight recorder evicted before export.
    pub flight_dropped: u64,
}

impl TelemetryDump {
    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |&(_, v)| v)
    }

    /// A gauge's value (0.0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0.0, |&(_, v)| v)
    }

    /// A histogram summary by name.
    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// `(t_ns, value)` pairs of one `(metric, entity)` series.
    pub fn series_get(&self, metric: &str, entity: u32) -> Vec<(u64, f64)> {
        self.series
            .iter()
            .filter(|p| p.metric == metric && p.entity == entity)
            .map(|p| (p.t_ns, p.value))
            .collect()
    }

    /// Events of one type, oldest first.
    pub fn events_named(&self, name: &str) -> Vec<&OwnedEvent> {
        self.events.iter().filter(|e| e.name == name).collect()
    }
}

fn field<'v>(entries: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(u) => Some(*u),
        Value::Int(i) if *i >= 0 => Some(*i as u64),
        Value::Float(f) if *f >= 0.0 => Some(*f as u64),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::String(s) => Some(s),
        _ => None,
    }
}

fn bad(line_no: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("telemetry jsonl line {line_no}: {what}"),
    )
}

/// Read a file written by [`write_jsonl`].
pub fn read_jsonl(path: impl AsRef<Path>) -> io::Result<TelemetryDump> {
    let text = fs::read_to_string(path.as_ref())?;
    let mut dump = TelemetryDump::default();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let value = serde_json::from_str_value(raw)
            .map_err(|e| bad(line_no, &format!("parse error: {e}")))?;
        let Value::Object(entries) = value else {
            return Err(bad(line_no, "not an object"));
        };
        let kind = field(&entries, "kind")
            .and_then(as_str)
            .ok_or_else(|| bad(line_no, "missing kind"))?;
        let req_u64 = |key: &str| -> io::Result<u64> {
            field(&entries, key)
                .and_then(as_u64)
                .ok_or_else(|| bad(line_no, &format!("missing {key}")))
        };
        let req_f64 = |key: &str| -> io::Result<f64> {
            field(&entries, key)
                .and_then(as_f64)
                .ok_or_else(|| bad(line_no, &format!("missing {key}")))
        };
        let req_str = |key: &str| -> io::Result<String> {
            field(&entries, key)
                .and_then(as_str)
                .map(String::from)
                .ok_or_else(|| bad(line_no, &format!("missing {key}")))
        };
        match kind {
            "counter" => dump.counters.push((req_str("name")?, req_u64("value")?)),
            "gauge" => dump.gauges.push((req_str("name")?, req_f64("value")?)),
            "hist" => dump.histograms.push(HistSummary {
                name: req_str("name")?,
                count: req_u64("count")?,
                min: req_u64("min")?,
                max: req_u64("max")?,
                mean: req_f64("mean")?,
                p50: req_u64("p50")?,
                p90: req_u64("p90")?,
                p99: req_u64("p99")?,
                p999: req_u64("p999")?,
            }),
            "series" => dump.series.push(OwnedSeriesPoint {
                metric: req_str("metric")?,
                entity: req_u64("entity")? as u32,
                t_ns: req_u64("t_ns")?,
                value: req_f64("value")?,
            }),
            "event" => dump.events.push(OwnedEvent {
                t_ns: req_u64("t_ns")?,
                tenant: field(&entries, "tenant").and_then(as_u64).unwrap_or(0) as u32,
                name: req_str("event")?,
                fields: entries
                    .iter()
                    .filter(|(k, _)| !matches!(k.as_str(), "kind" | "t_ns" | "event" | "tenant"))
                    .filter_map(|(k, v)| as_f64(v).map(|f| (k.clone(), f)))
                    .collect(),
            }),
            "flight_meta" => dump.flight_dropped = req_u64("dropped")?,
            other => return Err(bad(line_no, &format!("unknown kind `{other}`"))),
        }
    }
    Ok(dump)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ctr, DispatchScope, Event, Gauge};

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        crate::reset();
        crate::set_enabled(true);
        crate::set_time(1_000);
        crate::count_n(Ctr::EcnMarks, 7);
        crate::gauge_set(Gauge::SaTemp, 12.5);
        for v in [100u64, 2_000, 30_000] {
            crate::observe(Hist::RttNs, v);
        }
        crate::series("goodput_gbps", 0, 80.5);
        crate::set_time(2_000);
        crate::series("goodput_gbps", 0, 81.5);
        crate::event(Event::KlTrigger {
            kl: 0.02,
            theta: 0.01,
        });
        crate::event(Event::Dispatch {
            scope: DispatchScope::Global,
        });

        let dir = std::env::temp_dir().join("paraleon-telemetry-test");
        let path = dir.join("round_trip.jsonl");
        write_jsonl(&path).unwrap();
        let dump = read_jsonl(&path).unwrap();

        assert_eq!(dump.counter("ecn_marks"), 7);
        assert_eq!(dump.counter("kl_triggers"), 1);
        assert_eq!(dump.counter("dispatches"), 1);
        assert_eq!(dump.gauge("sa_temp"), 12.5);
        let h = dump.hist("rtt_ns").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 100);
        assert_eq!(h.max, 30_000);
        assert_eq!(
            dump.series_get("goodput_gbps", 0),
            vec![(1_000, 80.5), (2_000, 81.5)]
        );
        let kl = dump.events_named("kl_trigger");
        assert_eq!(kl.len(), 1);
        assert_eq!(kl[0].t_ns, 2_000);
        assert_eq!(kl[0].field("kl"), Some(0.02));
        assert_eq!(dump.flight_dropped, 0);
        crate::reset();
        crate::set_enabled(false);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_lists_series_points() {
        crate::reset();
        crate::set_enabled(true);
        crate::set_time(5);
        crate::series("m", 1, 0.25);
        let dir = std::env::temp_dir().join("paraleon-telemetry-test-csv");
        let path = dir.join("series.csv");
        write_series_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("metric,entity,t_ns,value"));
        assert_eq!(lines.next(), Some("m,1,5,0.25"));
        crate::reset();
        crate::set_enabled(false);
        let _ = std::fs::remove_dir_all(dir);
    }
}
