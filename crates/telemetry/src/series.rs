//! Per-interval time series keyed by `(metric, entity)`.
//!
//! The closed loop appends one point per metric per λ_MI interval; the
//! experiment binaries later export the log and rebuild their figure
//! data from it. Points are stored in one flat append-only log (cheap
//! pushes, no per-key allocation) and grouped on demand.

/// One sample of one metric for one entity at one simulation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Metric name (static: instrumentation sites use literals).
    pub metric: &'static str,
    /// Entity index (0 for fabric-global metrics, switch/host index for
    /// per-device metrics).
    pub entity: u32,
    /// Simulation time in nanoseconds.
    pub t_ns: u64,
    /// Sample value.
    pub value: f64,
}

/// Append-only log of [`SeriesPoint`]s.
#[derive(Debug, Default)]
pub struct SeriesStore {
    points: Vec<SeriesPoint>,
}

impl SeriesStore {
    /// Empty store.
    pub fn new() -> Self {
        SeriesStore::default()
    }

    /// Append one sample.
    #[inline]
    pub fn push(&mut self, metric: &'static str, entity: u32, t_ns: u64, value: f64) {
        self.points.push(SeriesPoint {
            metric,
            entity,
            t_ns,
            value,
        });
    }

    /// All points in append order.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Points for one `(metric, entity)` key, in time order (append
    /// order is time order for a monotone clock).
    pub fn get(&self, metric: &str, entity: u32) -> Vec<SeriesPoint> {
        self.points
            .iter()
            .filter(|p| p.metric == metric && p.entity == entity)
            .copied()
            .collect()
    }

    /// Distinct `(metric, entity)` keys present, in first-seen order.
    pub fn keys(&self) -> Vec<(&'static str, u32)> {
        let mut keys: Vec<(&'static str, u32)> = Vec::new();
        for p in &self.points {
            if !keys.contains(&(p.metric, p.entity)) {
                keys.push((p.metric, p.entity));
            }
        }
        keys
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points are stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Discard all points.
    pub fn clear(&mut self) {
        self.points.clear();
    }

    /// Heap + inline bytes held by the log.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.points.capacity() * std::mem::size_of::<SeriesPoint>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_group_by_key() {
        let mut s = SeriesStore::new();
        s.push("goodput_gbps", 0, 100, 40.0);
        s.push("rtt_us", 0, 100, 12.0);
        s.push("goodput_gbps", 0, 200, 45.0);
        s.push("queue_frac", 2, 200, 0.3);
        assert_eq!(s.len(), 4);
        let g = s.get("goodput_gbps", 0);
        assert_eq!(g.len(), 2);
        assert_eq!((g[0].t_ns, g[0].value), (100, 40.0));
        assert_eq!((g[1].t_ns, g[1].value), (200, 45.0));
        assert_eq!(
            s.keys(),
            vec![("goodput_gbps", 0), ("rtt_us", 0), ("queue_frac", 2)]
        );
    }
}
