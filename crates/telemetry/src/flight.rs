//! Bounded flight recorder: a ring buffer of typed control-plane and
//! data-plane events, dumpable on demand for post-mortem analysis.

use std::collections::VecDeque;

/// Which layer an adaptive dispatch targeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchScope {
    /// One parameter set applied to every RNIC and switch.
    Global,
    /// Per-switch ECN thresholds (ACC-style actions).
    PerSwitch,
}

impl DispatchScope {
    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            DispatchScope::Global => "global",
            DispatchScope::PerSwitch => "per_switch",
        }
    }
}

/// A typed event worth keeping in the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A switch ingress crossed the PFC pause threshold.
    PfcXoff { switch: u32, port: u32 },
    /// A paused ingress drained below the resume threshold.
    PfcXon { switch: u32, port: u32 },
    /// An egress queue probabilistically marked a packet.
    EcnMark { switch: u32, queue_bytes: u64 },
    /// A notification point emitted a CNP toward `host` for `flow`.
    CnpSent { host: u32, flow: u64 },
    /// A reaction point cut its rate in response to a CNP. Reaction
    /// points have no fabric-wide identity, so the event carries the
    /// post-cut rate instead of a host id.
    RateDecrease { rate_bytes_per_sec: f64 },
    /// A reaction point ran a (fast/additive/hyper) increase step.
    RateIncrease,
    /// The KL-divergence FSD change detector fired.
    KlTrigger { kl: f64, theta: f64 },
    /// Simulated annealing accepted a candidate.
    SaAccept { temp: f64, utility: f64 },
    /// Simulated annealing rejected a candidate.
    SaReject { temp: f64, utility: f64 },
    /// A tuning episode finished.
    SaEpisodeEnd { best_utility: f64 },
    /// The closed loop pushed parameters to the fabric.
    Dispatch { scope: DispatchScope },
}

impl Event {
    /// Stable export name for the event type.
    pub fn name(&self) -> &'static str {
        match self {
            Event::PfcXoff { .. } => "pfc_xoff",
            Event::PfcXon { .. } => "pfc_xon",
            Event::EcnMark { .. } => "ecn_mark",
            Event::CnpSent { .. } => "cnp_sent",
            Event::RateDecrease { .. } => "rate_decrease",
            Event::RateIncrease => "rate_increase",
            Event::KlTrigger { .. } => "kl_trigger",
            Event::SaAccept { .. } => "sa_accept",
            Event::SaReject { .. } => "sa_reject",
            Event::SaEpisodeEnd { .. } => "sa_episode_end",
            Event::Dispatch { .. } => "dispatch",
        }
    }

    /// The event's payload as `(field, value)` pairs for export.
    pub fn fields(&self) -> Vec<(&'static str, f64)> {
        match *self {
            Event::PfcXoff { switch, port } | Event::PfcXon { switch, port } => {
                vec![("switch", switch as f64), ("port", port as f64)]
            }
            Event::EcnMark {
                switch,
                queue_bytes,
            } => vec![
                ("switch", switch as f64),
                ("queue_bytes", queue_bytes as f64),
            ],
            Event::CnpSent { host, flow } => {
                vec![("host", host as f64), ("flow", flow as f64)]
            }
            Event::RateDecrease { rate_bytes_per_sec } => {
                vec![("rate_bytes_per_sec", rate_bytes_per_sec)]
            }
            Event::RateIncrease => vec![],
            Event::KlTrigger { kl, theta } => vec![("kl", kl), ("theta", theta)],
            Event::SaAccept { temp, utility } | Event::SaReject { temp, utility } => {
                vec![("temp", temp), ("utility", utility)]
            }
            Event::SaEpisodeEnd { best_utility } => vec![("best_utility", best_utility)],
            Event::Dispatch { scope } => vec![(
                "per_switch",
                match scope {
                    DispatchScope::Global => 0.0,
                    DispatchScope::PerSwitch => 1.0,
                },
            )],
        }
    }
}

/// An event stamped with simulation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// Simulation time in nanoseconds.
    pub t_ns: u64,
    /// The event payload.
    pub event: Event,
}

/// Fixed-capacity ring of recent [`TimedEvent`]s. When full, the oldest
/// entry is evicted and counted in `dropped`.
#[derive(Debug)]
pub struct FlightRecorder {
    buf: VecDeque<TimedEvent>,
    capacity: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// Ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            buf: VecDeque::with_capacity(capacity),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest when at capacity.
    #[inline]
    pub fn push(&mut self, t_ns: u64, event: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TimedEvent { t_ns, event });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Discard all retained events and the drop counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }

    /// Heap + inline bytes held by this recorder (capacity-based: the
    /// ring pre-allocates).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.buf.capacity() * std::mem::size_of::<TimedEvent>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.push(i, Event::RateIncrease);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let ts: Vec<u64> = fr.events().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn event_names_and_fields_are_stable() {
        let e = Event::SaAccept {
            temp: 50.0,
            utility: 0.9,
        };
        assert_eq!(e.name(), "sa_accept");
        assert_eq!(e.fields(), vec![("temp", 50.0), ("utility", 0.9)]);
        assert_eq!(
            Event::Dispatch {
                scope: DispatchScope::PerSwitch
            }
            .fields(),
            vec![("per_switch", 1.0)]
        );
    }
}
