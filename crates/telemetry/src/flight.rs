//! Bounded flight recorder: a ring buffer of typed control-plane and
//! data-plane events, dumpable on demand for post-mortem analysis.

use std::collections::{BTreeMap, VecDeque};

/// Which layer an adaptive dispatch targeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchScope {
    /// One parameter set applied to every RNIC and switch.
    Global,
    /// Per-switch ECN thresholds (ACC-style actions).
    PerSwitch,
}

impl DispatchScope {
    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            DispatchScope::Global => "global",
            DispatchScope::PerSwitch => "per_switch",
        }
    }
}

/// A typed event worth keeping in the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A switch ingress crossed the PFC pause threshold.
    PfcXoff { switch: u32, port: u32 },
    /// A paused ingress drained below the resume threshold.
    PfcXon { switch: u32, port: u32 },
    /// An egress queue probabilistically marked a packet.
    EcnMark { switch: u32, queue_bytes: u64 },
    /// A notification point emitted a CNP toward `host` for `flow`.
    CnpSent { host: u32, flow: u64 },
    /// A reaction point cut its rate in response to a CNP. Reaction
    /// points have no fabric-wide identity, so the event carries the
    /// post-cut rate instead of a host id.
    RateDecrease { rate_bytes_per_sec: f64 },
    /// A reaction point ran a (fast/additive/hyper) increase step.
    RateIncrease,
    /// The KL-divergence FSD change detector fired.
    KlTrigger { kl: f64, theta: f64 },
    /// Simulated annealing accepted a candidate.
    SaAccept { temp: f64, utility: f64 },
    /// Simulated annealing rejected a candidate.
    SaReject { temp: f64, utility: f64 },
    /// A tuning episode finished.
    SaEpisodeEnd { best_utility: f64 },
    /// The closed loop pushed parameters to the fabric.
    Dispatch { scope: DispatchScope },
    /// A fault took a link out of service (both directions).
    FaultLinkDown { node: u32, port: u32 },
    /// A faulted link returned to service.
    FaultLinkUp { node: u32, port: u32 },
    /// A fault degraded a link to `factor` × its nominal rate.
    FaultDegrade { node: u32, port: u32, factor: f64 },
    /// A fault set a per-packet random loss probability on a link
    /// (0.0 restores clean transmission).
    FaultPktLoss {
        node: u32,
        port: u32,
        drop_prob: f64,
    },
    /// A misbehaving host began a sustained-XOFF PFC storm toward its
    /// ToR down-port.
    PfcStormStart { host: u32 },
    /// The PFC storm ended; the paused down-port resumed.
    PfcStormEnd { host: u32 },
    /// The guardrail refused to dispatch a candidate parameter set.
    GuardrailReject,
    /// The guardrail restored the last-known-good parameter set after
    /// detecting post-dispatch collapse.
    GuardrailRollback,
    /// The guardrail entered safe mode: fallback parameters deployed,
    /// tuning frozen for `backoff_intervals` monitor intervals.
    SafeModeEnter { backoff_intervals: u32 },
    /// Safe-mode backoff expired; tuning may resume.
    SafeModeExit,
    /// The control-plane channel's impairment changed (all-zero values
    /// restore a clean channel).
    CtrlImpairSet { loss: f64, delay_max: u32, dup: f64 },
    /// The controller crashed (`warm`: a snapshot survived).
    CtrlCrash { warm: bool },
    /// A parameter dispatch was resent after its ACK timed out.
    CtrlRetry { epoch: u64 },
    /// A restarted controller re-asserted its believed parameters
    /// toward the fabric at `epoch`.
    CtrlResync { epoch: u64 },
}

impl Event {
    /// Whether this is a rare control-plane transition (fault, guardrail,
    /// safe-mode, trigger, dispatch) as opposed to a per-packet
    /// data-plane event. Control-plane events live in their own
    /// flight-recorder lane so a data-plane flood cannot evict them.
    pub fn is_control_plane(&self) -> bool {
        matches!(
            self,
            Event::KlTrigger { .. }
                | Event::SaEpisodeEnd { .. }
                | Event::Dispatch { .. }
                | Event::FaultLinkDown { .. }
                | Event::FaultLinkUp { .. }
                | Event::FaultDegrade { .. }
                | Event::FaultPktLoss { .. }
                | Event::PfcStormStart { .. }
                | Event::PfcStormEnd { .. }
                | Event::GuardrailReject
                | Event::GuardrailRollback
                | Event::SafeModeEnter { .. }
                | Event::SafeModeExit
                | Event::CtrlImpairSet { .. }
                | Event::CtrlCrash { .. }
                | Event::CtrlRetry { .. }
                | Event::CtrlResync { .. }
        )
    }

    /// Stable export name for the event type.
    pub fn name(&self) -> &'static str {
        match self {
            Event::PfcXoff { .. } => "pfc_xoff",
            Event::PfcXon { .. } => "pfc_xon",
            Event::EcnMark { .. } => "ecn_mark",
            Event::CnpSent { .. } => "cnp_sent",
            Event::RateDecrease { .. } => "rate_decrease",
            Event::RateIncrease => "rate_increase",
            Event::KlTrigger { .. } => "kl_trigger",
            Event::SaAccept { .. } => "sa_accept",
            Event::SaReject { .. } => "sa_reject",
            Event::SaEpisodeEnd { .. } => "sa_episode_end",
            Event::Dispatch { .. } => "dispatch",
            Event::FaultLinkDown { .. } => "fault_link_down",
            Event::FaultLinkUp { .. } => "fault_link_up",
            Event::FaultDegrade { .. } => "fault_degrade",
            Event::FaultPktLoss { .. } => "fault_pkt_loss",
            Event::PfcStormStart { .. } => "pfc_storm_start",
            Event::PfcStormEnd { .. } => "pfc_storm_end",
            Event::GuardrailReject => "guardrail_reject",
            Event::GuardrailRollback => "guardrail_rollback",
            Event::SafeModeEnter { .. } => "safe_mode_enter",
            Event::SafeModeExit => "safe_mode_exit",
            Event::CtrlImpairSet { .. } => "ctrl_impair",
            Event::CtrlCrash { .. } => "ctrl_crash",
            Event::CtrlRetry { .. } => "ctrl_retry",
            Event::CtrlResync { .. } => "ctrl_resync",
        }
    }

    /// The event's payload as `(field, value)` pairs for export.
    pub fn fields(&self) -> Vec<(&'static str, f64)> {
        match *self {
            Event::PfcXoff { switch, port } | Event::PfcXon { switch, port } => {
                vec![("switch", switch as f64), ("port", port as f64)]
            }
            Event::EcnMark {
                switch,
                queue_bytes,
            } => vec![
                ("switch", switch as f64),
                ("queue_bytes", queue_bytes as f64),
            ],
            Event::CnpSent { host, flow } => {
                vec![("host", host as f64), ("flow", flow as f64)]
            }
            Event::RateDecrease { rate_bytes_per_sec } => {
                vec![("rate_bytes_per_sec", rate_bytes_per_sec)]
            }
            Event::RateIncrease => vec![],
            Event::KlTrigger { kl, theta } => vec![("kl", kl), ("theta", theta)],
            Event::SaAccept { temp, utility } | Event::SaReject { temp, utility } => {
                vec![("temp", temp), ("utility", utility)]
            }
            Event::SaEpisodeEnd { best_utility } => vec![("best_utility", best_utility)],
            Event::FaultLinkDown { node, port } | Event::FaultLinkUp { node, port } => {
                vec![("node", node as f64), ("port", port as f64)]
            }
            Event::FaultDegrade { node, port, factor } => vec![
                ("node", node as f64),
                ("port", port as f64),
                ("factor", factor),
            ],
            Event::FaultPktLoss {
                node,
                port,
                drop_prob,
            } => vec![
                ("node", node as f64),
                ("port", port as f64),
                ("drop_prob", drop_prob),
            ],
            Event::PfcStormStart { host } | Event::PfcStormEnd { host } => {
                vec![("host", host as f64)]
            }
            Event::GuardrailReject | Event::GuardrailRollback | Event::SafeModeExit => vec![],
            Event::SafeModeEnter { backoff_intervals } => {
                vec![("backoff_intervals", backoff_intervals as f64)]
            }
            Event::Dispatch { scope } => vec![(
                "per_switch",
                match scope {
                    DispatchScope::Global => 0.0,
                    DispatchScope::PerSwitch => 1.0,
                },
            )],
            Event::CtrlImpairSet {
                loss,
                delay_max,
                dup,
            } => vec![
                ("loss", loss),
                ("delay_max", delay_max as f64),
                ("dup", dup),
            ],
            Event::CtrlCrash { warm } => vec![("warm", if warm { 1.0 } else { 0.0 })],
            Event::CtrlRetry { epoch } | Event::CtrlResync { epoch } => {
                vec![("epoch", epoch as f64)]
            }
        }
    }
}

/// An event stamped with simulation time and owning tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// Simulation time in nanoseconds.
    pub t_ns: u64,
    /// Owning tenant (0 = the standalone/default tenant).
    pub tenant: u32,
    /// The event payload.
    pub event: Event,
}

/// Fixed-capacity ring of recent [`TimedEvent`]s. When full, the oldest
/// entry is evicted and counted in `dropped`.
///
/// Per-packet data-plane events (ECN marks, CNPs, rate changes) share
/// one lane; rare control-plane transitions (faults, guardrail actions,
/// dispatches — see [`Event::is_control_plane`]) get **one lane per
/// tenant**. Each lane only evicts its own kind, so a data-plane flood
/// can never push a fault or rollback record out of the post-mortem
/// window — and in a multi-tenant fleet, one noisy tenant's control
/// churn can never evict another tenant's control-plane events.
#[derive(Debug)]
pub struct FlightRecorder {
    data: VecDeque<TimedEvent>,
    control: BTreeMap<u32, VecDeque<TimedEvent>>,
    data_capacity: usize,
    control_capacity: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// Ring holding at most `capacity` data-plane events plus, per
    /// tenant, a quarter of that (at least 64) control-plane
    /// transitions.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            data: VecDeque::with_capacity(capacity),
            control: BTreeMap::new(),
            data_capacity: capacity,
            control_capacity: (capacity / 4).max(64),
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest of its lane when full.
    #[inline]
    pub fn push(&mut self, t_ns: u64, tenant: u32, event: Event) {
        let (lane, cap) = if event.is_control_plane() {
            (
                self.control.entry(tenant).or_default(),
                self.control_capacity,
            )
        } else {
            (&mut self.data, self.data_capacity)
        };
        if lane.len() == cap {
            lane.pop_front();
            self.dropped += 1;
        }
        lane.push_back(TimedEvent {
            t_ns,
            tenant,
            event,
        });
    }

    /// Events currently retained, merged across all lanes oldest first.
    /// Ties resolve control-plane first (the transition is the cause,
    /// the data-plane burst the effect), then by ascending tenant.
    /// Within a lane, insertion order is preserved — a backdated
    /// `event_at` stays where it was pushed, exactly as in the
    /// single-tenant two-lane merge.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        let mut merged: Vec<&TimedEvent> = Vec::with_capacity(self.len());
        // One cursor per lane (control lanes in ascending tenant order,
        // then the data lane); repeatedly emit the head with the
        // smallest (t_ns, rank, tenant) key, rank 0 = control.
        let mut lanes: Vec<(
            u8,
            u32,
            std::iter::Peekable<std::collections::vec_deque::Iter<'_, TimedEvent>>,
        )> = self
            .control
            .iter()
            .map(|(&t, lane)| (0u8, t, lane.iter().peekable()))
            .collect();
        lanes.push((1, 0, self.data.iter().peekable()));
        loop {
            let mut best: Option<(usize, (u64, u8, u32))> = None;
            for (i, (rank, tenant, it)) in lanes.iter_mut().enumerate() {
                if let Some(e) = it.peek() {
                    let key = (e.t_ns, *rank, *tenant);
                    if best.is_none_or(|(_, bk)| key < bk) {
                        best = Some((i, key));
                    }
                }
            }
            match best {
                Some((i, _)) => merged.push(lanes[i].2.next().unwrap()),
                None => break,
            }
        }
        merged.into_iter()
    }

    /// Number of retained events across all lanes.
    pub fn len(&self) -> usize {
        self.data.len() + self.control.values().map(VecDeque::len).sum::<usize>()
    }

    /// Whether all lanes are empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty() && self.control.values().all(VecDeque::is_empty)
    }

    /// Events evicted so far because a lane was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum retained events: the data lane plus one control lane per
    /// tenant seen so far (at least one).
    pub fn capacity(&self) -> usize {
        self.data_capacity + self.control_capacity * self.control.len().max(1)
    }

    /// Control-plane lanes currently allocated (= tenants that have
    /// recorded at least one control-plane event).
    pub fn control_lanes(&self) -> usize {
        self.control.len()
    }

    /// Discard all retained events and the drop counter.
    pub fn clear(&mut self) {
        self.data.clear();
        self.control.clear();
        self.dropped = 0;
    }

    /// Heap + inline bytes held by this recorder (capacity-based: the
    /// data lane pre-allocates).
    pub fn memory_bytes(&self) -> usize {
        let control: usize = self.control.values().map(VecDeque::capacity).sum();
        std::mem::size_of::<Self>()
            + (self.data.capacity() + control) * std::mem::size_of::<TimedEvent>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.push(i, 0, Event::RateIncrease);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let ts: Vec<u64> = fr.events().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn control_plane_events_survive_a_data_plane_flood() {
        let mut fr = FlightRecorder::new(8);
        fr.push(5, 0, Event::FaultLinkDown { node: 8, port: 4 });
        for i in 0..1_000u64 {
            fr.push(
                10 + i,
                0,
                Event::EcnMark {
                    switch: 8,
                    queue_bytes: i,
                },
            );
        }
        fr.push(2_000, 0, Event::FaultLinkUp { node: 8, port: 4 });
        let names: Vec<&str> = fr.events().map(|e| e.event.name()).collect();
        assert_eq!(names.first(), Some(&"fault_link_down"));
        assert_eq!(names.last(), Some(&"fault_link_up"));
        assert!(fr.dropped() > 0);
    }

    #[test]
    fn noisy_tenant_cannot_evict_another_tenants_control_events() {
        let mut fr = FlightRecorder::new(8); // control lane cap = 64/tenant
                                             // Tenant 1 records one precious rollback early.
        fr.push(5, 1, Event::GuardrailRollback);
        // Tenant 2 floods its control lane far past its own capacity.
        for i in 0..10_000u64 {
            fr.push(10 + i, 2, Event::CtrlRetry { epoch: i });
        }
        assert!(fr.dropped() > 0, "tenant 2's own lane must have evicted");
        assert_eq!(fr.control_lanes(), 2);
        let tenant1: Vec<&TimedEvent> = fr.events().filter(|e| e.tenant == 1).collect();
        assert_eq!(tenant1.len(), 1, "tenant 1's event survives the flood");
        assert_eq!(tenant1[0].event.name(), "guardrail_rollback");
        assert_eq!(tenant1[0].t_ns, 5);
        // Tenant 2 keeps only the newest `control_capacity` of its own.
        let tenant2 = fr.events().filter(|e| e.tenant == 2).count();
        assert_eq!(tenant2 as u64 + fr.dropped(), 10_000);
    }

    #[test]
    fn merged_events_order_by_time_then_lane_then_tenant() {
        let mut fr = FlightRecorder::new(8);
        fr.push(50, 0, Event::RateIncrease);
        fr.push(
            100,
            2,
            Event::EcnMark {
                switch: 0,
                queue_bytes: 1,
            },
        );
        fr.push(100, 2, Event::GuardrailReject);
        fr.push(100, 1, Event::GuardrailRollback);
        let got: Vec<(u64, u32, &str)> = fr
            .events()
            .map(|e| (e.t_ns, e.tenant, e.event.name()))
            .collect();
        assert_eq!(
            got,
            vec![
                (50, 0, "rate_increase"),
                (100, 1, "guardrail_rollback"),
                (100, 2, "guardrail_reject"),
                (100, 2, "ecn_mark"),
            ],
            "ties: control before data, then ascending tenant"
        );
    }

    #[test]
    fn event_names_and_fields_are_stable() {
        let e = Event::SaAccept {
            temp: 50.0,
            utility: 0.9,
        };
        assert_eq!(e.name(), "sa_accept");
        assert_eq!(e.fields(), vec![("temp", 50.0), ("utility", 0.9)]);
        assert_eq!(
            Event::Dispatch {
                scope: DispatchScope::PerSwitch
            }
            .fields(),
            vec![("per_switch", 1.0)]
        );
    }
}
