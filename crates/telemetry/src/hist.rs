//! Log-bucketed (HDR-style) histogram for latency / size / depth
//! distributions.
//!
//! Values are `u64` (nanoseconds, bytes, packets — caller's choice of
//! unit). Buckets are exact below [`SUB_BUCKETS`] and logarithmic above
//! with [`SUB_BUCKETS`] sub-buckets per octave, bounding the relative
//! quantile error at `1 / SUB_BUCKETS` (≈3.1%). Recording is two array
//! index computations and an increment — no allocation, no float math.

/// Sub-buckets per octave (power of two).
pub const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Total bucket count: exact region + one row per remaining octave.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Fixed-size log-bucketed histogram.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Map a value to its bucket index.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let row = (msb - SUB_BITS + 1) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        row * SUB_BUCKETS + sub
    }
}

/// Lowest value that lands in bucket `idx` (the bucket's representative
/// value for quantile queries).
#[inline]
fn bucket_floor(idx: usize) -> u64 {
    let row = idx / SUB_BUCKETS;
    let sub = (idx % SUB_BUCKETS) as u64;
    if row == 0 {
        sub
    } else {
        let msb = row as u32 + SUB_BITS - 1;
        (1u64 << msb) | (sub << (msb - SUB_BITS))
    }
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value. O(1), allocation-free.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the floor of the bucket
    /// containing the rank-`ceil(q·n)` value, clamped to the observed
    /// min/max so exact extremes survive bucketing.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Forget all samples.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Heap + inline bytes held by this histogram.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + std::mem::size_of::<[u64; NUM_BUCKETS]>()
    }

    /// Non-empty buckets as `(floor_value, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_floor(i), c))
            .collect()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("mean", &self.mean())
            .field("p50", &self.value_at_quantile(0.5))
            .field("p99", &self.value_at_quantile(0.99))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_round_trips() {
        for v in (0u64..100).chain([1 << 20, u64::MAX, 12345678, 31, 32, 33]) {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "index {idx} out of range for {v}");
            let lo = bucket_floor(idx);
            assert!(lo <= v, "floor {lo} above value {v}");
            // The next bucket's floor must be above v.
            if idx + 1 < NUM_BUCKETS {
                assert!(bucket_floor(idx + 1) > v, "value {v} not below next bucket");
            }
        }
    }

    #[test]
    fn exact_region_is_exact() {
        let mut h = LogHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), 31);
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let (mut a, mut b, mut c) = (
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        );
        for v in [1u64, 500, 90_000, 3] {
            a.record(v);
            c.record(v);
        }
        for v in [7u64, 7_000_000, 42] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.value_at_quantile(q), c.value_at_quantile(q));
        }
    }
}
