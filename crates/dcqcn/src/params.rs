//! The DCQCN parameter space: every tunable knob at RNICs (RP/NP) and
//! switches (CP), their bounds, presets, and empirical tuning directions.
//!
//! The set mirrors the NVIDIA DCQCN parameter documentation the paper cites
//! (\[21\]) and Table I of the paper. Parameters fall into the paper's four
//! RNIC-side categories — *Rate Increase*, *Rate Decrease*, *Alpha Update*,
//! *Notification Point* — plus the switch-side ECN thresholds.
//!
//! For each parameter the paper's §III-C derives a **throughput-friendly**
//! direction (the sign in which moving the parameter tends to raise
//! throughput at the cost of queueing delay) and an empirical step size
//! `s_p`; both are encoded in [`ParamSpec`] and consumed by the guided
//! simulated-annealing tuner.

use serde::{Deserialize, Serialize};

/// Identifier for one tunable DCQCN parameter.
///
/// The order of variants defines the canonical layout of the parameter
/// vector used by tuners ([`DcqcnParams::to_vector`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ParamId {
    // --- RP: Rate Increase ---
    /// Additive-increase step (Mbps) applied to the target rate in the
    /// additive-increase stage.
    AiRate,
    /// Hyper-increase step (Mbps) applied in the hyper-increase stage.
    HaiRate,
    /// Rate-increase timer period (µs); each expiry advances the increase
    /// state machine (`rpg_time_reset` in NVIDIA terms).
    RpgTimeReset,
    /// Byte counter threshold (KB); every `rpg_byte_reset` bytes sent
    /// advances the increase state machine (`rpg_byte_reset`).
    RpgByteReset,
    /// Number of timer/byte-counter expirations spent in fast recovery
    /// before moving to additive increase (`rpg_threshold`).
    RpgThreshold,
    // --- RP: Rate Decrease ---
    /// Minimum time between consecutive multiplicative decreases (µs)
    /// (`rate_reduce_monitor_period`).
    RateReduceMonitorPeriod,
    /// Minimum sending rate (Mbps) the RP will not cut below
    /// (`rpg_min_rate`).
    MinRate,
    // --- RP: Alpha Update ---
    /// Gain `g` of the congestion-estimate EWMA, expressed as `1/2^k`
    /// exponent `k` (`dce_tcp_g`; larger k = smaller gain = gentler cuts).
    AlphaGExp,
    /// Alpha decay timer period (µs) (`dce_tcp_rtt`): without CNPs, alpha
    /// decays every period.
    AlphaTimer,
    // --- NP ---
    /// Minimum spacing between CNPs generated for one flow (µs)
    /// (`min_time_between_cnps`).
    MinTimeBetweenCnps,
    // --- CP: ECN thresholds ---
    /// ECN marking lower threshold (KB): below it nothing is marked.
    KMin,
    /// ECN marking upper threshold (KB): above it everything is marked.
    KMax,
    /// Marking probability at `K_max` (dimensionless, 0..=1).
    PMax,
}

/// All tunable parameters in canonical vector order.
pub const ALL_PARAMS: [ParamId; 13] = [
    ParamId::AiRate,
    ParamId::HaiRate,
    ParamId::RpgTimeReset,
    ParamId::RpgByteReset,
    ParamId::RpgThreshold,
    ParamId::RateReduceMonitorPeriod,
    ParamId::MinRate,
    ParamId::AlphaGExp,
    ParamId::AlphaTimer,
    ParamId::MinTimeBetweenCnps,
    ParamId::KMin,
    ParamId::KMax,
    ParamId::PMax,
];

impl ParamId {
    /// Index of this parameter in the canonical vector layout.
    pub fn index(self) -> usize {
        ALL_PARAMS.iter().position(|&p| p == self).expect("listed")
    }

    /// Human-readable name matching the paper / NVIDIA documentation.
    pub fn name(self) -> &'static str {
        match self {
            ParamId::AiRate => "ai_rate",
            ParamId::HaiRate => "hai_rate",
            ParamId::RpgTimeReset => "rpg_time_reset",
            ParamId::RpgByteReset => "rpg_byte_reset",
            ParamId::RpgThreshold => "rpg_threshold",
            ParamId::RateReduceMonitorPeriod => "rate_reduce_monitor_period",
            ParamId::MinRate => "rpg_min_rate",
            ParamId::AlphaGExp => "dce_tcp_g_exp",
            ParamId::AlphaTimer => "dce_tcp_rtt",
            ParamId::MinTimeBetweenCnps => "min_time_between_cnps",
            ParamId::KMin => "k_min",
            ParamId::KMax => "k_max",
            ParamId::PMax => "p_max",
        }
    }

    /// True for switch-side (CP) parameters, false for RNIC-side ones.
    pub fn is_switch_side(self) -> bool {
        matches!(self, ParamId::KMin | ParamId::KMax | ParamId::PMax)
    }

    /// The [`DcqcnParams`] struct field holding this parameter — the key
    /// the derived `Serialize` emits (differs from [`ParamId::name`] for
    /// the parameters whose NVIDIA doc name is not the field name).
    pub fn json_field(self) -> &'static str {
        match self {
            ParamId::MinRate => "min_rate",
            ParamId::AlphaGExp => "alpha_g_exp",
            ParamId::AlphaTimer => "alpha_timer",
            other => other.name(),
        }
    }
}

/// Direction in which moving a parameter favours throughput over delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Increasing the value is throughput-friendly (decreasing is
    /// delay-friendly).
    Increase,
    /// Decreasing the value is throughput-friendly.
    Decrease,
}

impl Direction {
    /// Signed unit step for the throughput-friendly direction.
    pub fn sign(self) -> f64 {
        match self {
            Direction::Increase => 1.0,
            Direction::Decrease => -1.0,
        }
    }
}

/// Static description of one tunable parameter: bounds, empirical step and
/// throughput-friendly direction (paper §III-C, "Observations on parameter
/// impacts").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Which parameter this describes.
    pub id: ParamId,
    /// Inclusive lower bound in the parameter's natural unit.
    pub min: f64,
    /// Inclusive upper bound in the parameter's natural unit.
    pub max: f64,
    /// Empirical step size `s_p` used by the guided SA mutation.
    pub step: f64,
    /// Direction in which the parameter is throughput-friendly.
    pub throughput_friendly: Direction,
    /// If true, the value is rounded to an integer after mutation.
    pub integer: bool,
}

impl ParamSpec {
    /// Clamp `v` into this parameter's bounds (and round if integral).
    pub fn clamp(&self, v: f64) -> f64 {
        let v = v.clamp(self.min, self.max);
        if self.integer {
            v.round()
        } else {
            v
        }
    }
}

/// The complete tunable parameter space: one [`ParamSpec`] per parameter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamSpace {
    specs: Vec<ParamSpec>,
}

impl Default for ParamSpace {
    fn default() -> Self {
        Self::standard()
    }
}

impl ParamSpace {
    /// The standard space used throughout the reproduction. Bounds span the
    /// NVIDIA defaults and the expert values in Table I with generous
    /// headroom; steps are the empirical `s_p` values.
    pub fn standard() -> Self {
        use Direction::*;
        use ParamId::*;
        // Empirical steps s_p sized at roughly 1/16 of each parameter's
        // range so a guided episode can traverse the space within its
        // round budget (the temperature boost coarsens early steps
        // further).
        let specs = vec![
            // Larger AI step injects faster => throughput-friendly up.
            spec(AiRate, 1.0, 400.0, 25.0, Increase, false),
            spec(HaiRate, 10.0, 2000.0, 120.0, Increase, false),
            // Shorter increase timer recovers rate faster.
            spec(RpgTimeReset, 5.0, 1500.0, 90.0, Decrease, true),
            // Smaller byte counter advances the increase FSM sooner.
            spec(RpgByteReset, 16.0, 4096.0, 250.0, Decrease, true),
            // Fewer fast-recovery rounds reaches hyper-increase sooner.
            spec(RpgThreshold, 1.0, 10.0, 1.0, Decrease, true),
            // Longer decrease-monitor period means fewer rate cuts.
            spec(RateReduceMonitorPeriod, 2.0, 500.0, 30.0, Increase, true),
            spec(MinRate, 1.0, 1000.0, 60.0, Increase, false),
            // Bigger exponent = smaller alpha gain = gentler cuts.
            spec(AlphaGExp, 4.0, 12.0, 1.0, Increase, true),
            // Faster alpha decay forgets congestion sooner.
            spec(AlphaTimer, 1.0, 500.0, 30.0, Decrease, true),
            // Sparser CNPs cut rate less often.
            spec(MinTimeBetweenCnps, 0.0, 500.0, 30.0, Increase, true),
            // Higher ECN thresholds allow deeper queues before marking.
            spec(KMin, 5.0, 3200.0, 200.0, Increase, false),
            spec(KMax, 30.0, 12800.0, 800.0, Increase, false),
            // Lower marking ceiling marks less aggressively.
            spec(PMax, 0.01, 1.0, 0.06, Decrease, false),
        ];
        debug_assert_eq!(specs.len(), ALL_PARAMS.len());
        Self { specs }
    }

    /// The spec for a given parameter.
    pub fn spec(&self, id: ParamId) -> &ParamSpec {
        &self.specs[id.index()]
    }

    /// Iterate over all parameter specs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &ParamSpec> {
        self.specs.iter()
    }

    /// Number of tunable parameters.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the space is empty (never true for the standard space).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Clamp every component of `params` into its bounds in place.
    pub fn clamp(&self, params: &mut DcqcnParams) {
        for s in &self.specs {
            params.set(s.id, s.clamp(params.get(s.id)));
        }
    }
}

fn spec(
    id: ParamId,
    min: f64,
    max: f64,
    step: f64,
    throughput_friendly: Direction,
    integer: bool,
) -> ParamSpec {
    ParamSpec {
        id,
        min,
        max,
        step,
        throughput_friendly,
        integer,
    }
}

/// A complete DCQCN parameter setting for both RNICs and switches.
///
/// Units follow the NVIDIA documentation: rates in Mbps, times in µs,
/// byte counters and ECN thresholds in KB, probabilities dimensionless.
///
/// The struct is `Copy` (13 × f64 + bool, no heap): per-flow RP/NP state
/// embeds its own parameter block by plain bitwise copy, so admitting a
/// flow or dispatching a tuning round never allocates or clones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DcqcnParams {
    /// Additive-increase step, Mbps.
    pub ai_rate: f64,
    /// Hyper-increase step, Mbps.
    pub hai_rate: f64,
    /// Rate-increase timer period, µs.
    pub rpg_time_reset: f64,
    /// Byte-counter threshold, KB.
    pub rpg_byte_reset: f64,
    /// Fast-recovery rounds before additive increase.
    pub rpg_threshold: f64,
    /// Minimum time between rate decreases, µs.
    pub rate_reduce_monitor_period: f64,
    /// Minimum rate, Mbps.
    pub min_rate: f64,
    /// Alpha EWMA gain exponent: g = 1 / 2^alpha_g_exp.
    pub alpha_g_exp: f64,
    /// Alpha decay timer, µs.
    pub alpha_timer: f64,
    /// Minimum time between CNPs per flow, µs.
    pub min_time_between_cnps: f64,
    /// ECN lower threshold, KB.
    pub k_min: f64,
    /// ECN upper threshold, KB.
    pub k_max: f64,
    /// Marking probability at `k_max`.
    pub p_max: f64,
    /// `clamp_tgt_rate`: if true, the target rate is clamped to the
    /// current rate on *every* decrease (pure SIGCOMM'15 DCQCN); if false
    /// (the NVIDIA firmware default) it is clamped only on the first CNP
    /// of a congestion episode, so fast recovery springs back toward the
    /// pre-congestion rate. Not part of the tuned vector.
    pub clamp_tgt_rate: bool,
}

impl Default for DcqcnParams {
    fn default() -> Self {
        Self::nvidia_default()
    }
}

impl DcqcnParams {
    /// The NVIDIA default setting the paper calls "default" (\[21\]),
    /// scaled for a 100 Gbps fabric.
    pub fn nvidia_default() -> Self {
        Self {
            ai_rate: 5.0,
            hai_rate: 50.0,
            rpg_time_reset: 300.0,
            rpg_byte_reset: 32.0,
            rpg_threshold: 5.0,
            rate_reduce_monitor_period: 4.0,
            min_rate: 1.0,
            alpha_g_exp: 8.0, // g = 1/256, the DCQCN paper's setting
            alpha_timer: 55.0,
            min_time_between_cnps: 4.0,
            k_min: 100.0,
            k_max: 400.0,
            p_max: 0.2,
            clamp_tgt_rate: false,
        }
    }

    /// The expert-tuned setting from Table I of the paper (parameters not
    /// listed there remain at their defaults).
    pub fn expert() -> Self {
        Self {
            ai_rate: 50.0,
            hai_rate: 150.0,
            rate_reduce_monitor_period: 80.0,
            min_time_between_cnps: 96.0,
            k_min: 1600.0,
            k_max: 6400.0,
            p_max: 0.2,
            ..Self::nvidia_default()
        }
    }

    /// Read a parameter by id.
    pub fn get(&self, id: ParamId) -> f64 {
        match id {
            ParamId::AiRate => self.ai_rate,
            ParamId::HaiRate => self.hai_rate,
            ParamId::RpgTimeReset => self.rpg_time_reset,
            ParamId::RpgByteReset => self.rpg_byte_reset,
            ParamId::RpgThreshold => self.rpg_threshold,
            ParamId::RateReduceMonitorPeriod => self.rate_reduce_monitor_period,
            ParamId::MinRate => self.min_rate,
            ParamId::AlphaGExp => self.alpha_g_exp,
            ParamId::AlphaTimer => self.alpha_timer,
            ParamId::MinTimeBetweenCnps => self.min_time_between_cnps,
            ParamId::KMin => self.k_min,
            ParamId::KMax => self.k_max,
            ParamId::PMax => self.p_max,
        }
    }

    /// Write a parameter by id.
    pub fn set(&mut self, id: ParamId, v: f64) {
        match id {
            ParamId::AiRate => self.ai_rate = v,
            ParamId::HaiRate => self.hai_rate = v,
            ParamId::RpgTimeReset => self.rpg_time_reset = v,
            ParamId::RpgByteReset => self.rpg_byte_reset = v,
            ParamId::RpgThreshold => self.rpg_threshold = v,
            ParamId::RateReduceMonitorPeriod => self.rate_reduce_monitor_period = v,
            ParamId::MinRate => self.min_rate = v,
            ParamId::AlphaGExp => self.alpha_g_exp = v,
            ParamId::AlphaTimer => self.alpha_timer = v,
            ParamId::MinTimeBetweenCnps => self.min_time_between_cnps = v,
            ParamId::KMin => self.k_min = v,
            ParamId::KMax => self.k_max = v,
            ParamId::PMax => self.p_max = v,
        }
    }

    /// Serialize to the canonical vector layout (for tuners).
    pub fn to_vector(&self) -> Vec<f64> {
        ALL_PARAMS.iter().map(|&p| self.get(p)).collect()
    }

    /// Deserialize from the canonical vector layout.
    pub fn from_vector(v: &[f64]) -> Self {
        assert_eq!(v.len(), ALL_PARAMS.len(), "parameter vector length");
        let mut p = Self::nvidia_default();
        for (i, &id) in ALL_PARAMS.iter().enumerate() {
            p.set(id, v[i]);
        }
        p
    }

    /// Ensure internal consistency constraints that the raw bounds cannot
    /// express: `k_min <= k_max`, `rpg_min_rate <= line rates`, etc.
    /// Call after any mutation.
    pub fn normalize(&mut self, space: &ParamSpace) {
        space.clamp(self);
        if self.k_min > self.k_max {
            std::mem::swap(&mut self.k_min, &mut self.k_max);
        }
    }

    /// Reconstruct from the [`Serialize`] representation (the vendored
    /// serde has no derived deserialization, so readers are hand-rolled).
    pub fn from_value(v: &serde::Value) -> Result<Self, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(serde::Value::as_f64)
                .ok_or_else(|| format!("DcqcnParams: missing `{name}`"))
        };
        let mut p = Self::nvidia_default();
        for id in ALL_PARAMS {
            p.set(id, field(id.json_field())?);
        }
        p.clamp_tgt_rate = v
            .get("clamp_tgt_rate")
            .and_then(serde::Value::as_bool)
            .ok_or("DcqcnParams: missing `clamp_tgt_rate`")?;
        Ok(p)
    }

    /// Alpha EWMA gain `g` as a fraction.
    pub fn alpha_g(&self) -> f64 {
        1.0 / 2f64.powf(self.alpha_g_exp)
    }

    /// Wire-format size of a full parameter setting (f64 per parameter),
    /// used by the Table IV overhead accounting.
    pub fn wire_size_bytes(&self) -> usize {
        ALL_PARAMS.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_vector_round_trips() {
        let p = DcqcnParams::expert();
        let v = p.to_vector();
        assert_eq!(DcqcnParams::from_vector(&v), p);
    }

    #[test]
    fn all_params_indices_are_consistent() {
        for (i, &p) in ALL_PARAMS.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn expert_matches_table_one() {
        let e = DcqcnParams::expert();
        assert_eq!(e.ai_rate, 50.0);
        assert_eq!(e.hai_rate, 150.0);
        assert_eq!(e.rate_reduce_monitor_period, 80.0);
        assert_eq!(e.min_time_between_cnps, 96.0);
        assert_eq!(e.k_min, 1600.0);
        assert_eq!(e.k_max, 6400.0);
        assert_eq!(e.p_max, 0.2);
    }

    #[test]
    fn defaults_lie_within_standard_bounds() {
        let space = ParamSpace::standard();
        for preset in [DcqcnParams::nvidia_default(), DcqcnParams::expert()] {
            for s in space.iter() {
                let v = preset.get(s.id);
                assert!(
                    v >= s.min && v <= s.max,
                    "{} = {v} outside [{}, {}]",
                    s.id.name(),
                    s.min,
                    s.max
                );
            }
        }
    }

    #[test]
    fn clamp_respects_bounds_and_integrality() {
        let space = ParamSpace::standard();
        let s = space.spec(ParamId::RpgTimeReset);
        assert_eq!(s.clamp(-5.0), s.min);
        assert_eq!(s.clamp(1e9), s.max);
        assert_eq!(s.clamp(10.4), 10.0);
    }

    #[test]
    fn normalize_fixes_inverted_ecn_thresholds() {
        let space = ParamSpace::standard();
        let mut p = DcqcnParams::nvidia_default();
        p.k_min = 900.0;
        p.k_max = 100.0;
        p.normalize(&space);
        assert!(p.k_min <= p.k_max);
    }

    #[test]
    fn alpha_gain_matches_exponent() {
        let p = DcqcnParams::nvidia_default();
        assert!((p.alpha_g() - 1.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn switch_side_classification() {
        assert!(ParamId::KMin.is_switch_side());
        assert!(ParamId::PMax.is_switch_side());
        assert!(!ParamId::AiRate.is_switch_side());
        let n_switch = ALL_PARAMS.iter().filter(|p| p.is_switch_side()).count();
        assert_eq!(n_switch, 3);
    }

    #[test]
    fn params_round_trip_through_value() {
        use serde::Serialize;
        let mut p = DcqcnParams::expert();
        p.clamp_tgt_rate = true;
        let back = DcqcnParams::from_value(&p.serialize_value()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn param_names_are_unique() {
        let mut names: Vec<_> = ALL_PARAMS.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_PARAMS.len());
    }
}
