//! DCQCN congestion control for RoCEv2, plus its full tunable parameter
//! space.
//!
//! DCQCN (Data Center Quantized Congestion Notification, Zhu et al.,
//! SIGCOMM 2015) is the default congestion-control algorithm of NVIDIA
//! RNICs and the de-facto standard in large-scale RDMA deployments. It is
//! an AIMD scheme with three parties:
//!
//! * **CP (Congestion Point)** — the switch marks packets with ECN when the
//!   egress queue exceeds configurable thresholds
//!   ([`cp::EcnMarker`], parameters `K_min`, `K_max`, `P_max`).
//! * **NP (Notification Point)** — the receiver RNIC converts ECN-marked
//!   arrivals into Congestion Notification Packets (CNPs), rate-limited by
//!   `min_time_between_cnps` ([`np::NpState`]).
//! * **RP (Reaction Point)** — the sender RNIC cuts the sending rate
//!   multiplicatively on CNP arrival and otherwise increases it through
//!   fast-recovery / additive-increase / hyper-increase stages
//!   ([`rp::RpState`]).
//!
//! The PARALEON paper's core observation is that the 10+ parameters
//! governing this machinery (see [`params::DcqcnParams`]) dramatically
//! affect network performance and must be tuned per environment and per
//! workload. [`params::ParamSpace`] captures the tunable space: bounds,
//! empirical step sizes and the *throughput-friendly* direction of each
//! parameter (§III-C of the paper), which the tuner crate's guided
//! simulated annealing exploits.
//!
//! All state machines in this crate are pure and deterministic: they take
//! explicit timestamps (`u64` nanoseconds) and carry no global state, so
//! the simulator can drive thousands of independent QP instances.

pub mod cp;
pub mod np;
pub mod params;
pub mod rp;

pub use cp::EcnMarker;
pub use np::{CnpSignal, IncastScaler, NpState};
pub use params::{DcqcnParams, Direction, ParamId, ParamSpace, ParamSpec, ALL_PARAMS};
pub use rp::RpState;

/// Nanoseconds since simulation start. Mirrors `paraleon-netsim`'s clock.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICRO: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLI: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SEC: Nanos = 1_000_000_000;

/// Convert a rate in megabits per second to bytes per second.
#[inline]
pub fn mbps_to_bytes_per_sec(mbps: f64) -> f64 {
    mbps * 1e6 / 8.0
}

/// Convert a rate in bytes per second to megabits per second.
#[inline]
pub fn bytes_per_sec_to_mbps(bps: f64) -> f64 {
    bps * 8.0 / 1e6
}

/// Convert a rate in gigabits per second to bytes per second.
#[inline]
pub fn gbps_to_bytes_per_sec(gbps: f64) -> f64 {
    gbps * 1e9 / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_conversions_round_trip() {
        let mbps = 40_000.0;
        let bps = mbps_to_bytes_per_sec(mbps);
        assert!((bytes_per_sec_to_mbps(bps) - mbps).abs() < 1e-9);
    }

    #[test]
    fn gbps_is_1000x_mbps() {
        assert_eq!(gbps_to_bytes_per_sec(1.0), mbps_to_bytes_per_sec(1000.0));
    }

    #[test]
    fn time_unit_constants() {
        assert_eq!(MICRO * 1000, MILLI);
        assert_eq!(MILLI * 1000, SEC);
    }
}
