//! Reaction Point (RP): the sender-side DCQCN rate state machine.
//!
//! One [`RpState`] instance governs one QP. The machine follows the
//! DCQCN paper (Zhu et al., SIGCOMM 2015) with the parameterisation of the
//! NVIDIA implementation:
//!
//! * **Rate decrease** — on CNP arrival (at most once per
//!   `rate_reduce_monitor_period`):
//!   `R_T ← R_C`, `R_C ← R_C · (1 − α/2)`, `α ← (1−g)·α + g`, and the
//!   increase state machine resets.
//! * **Alpha decay** — every `alpha_timer` µs without a CNP:
//!   `α ← (1−g)·α`.
//! * **Rate increase** — driven by two counters since the last decrease: a
//!   timer (`rpg_time_reset`) and a byte counter (`rpg_byte_reset`). Each
//!   expiry is one *increase event*:
//!   - *fast recovery* while `max(T, BC) ≤ F` (`F = rpg_threshold`):
//!     `R_C ← (R_T + R_C)/2`;
//!   - *additive increase* when one counter exceeds `F`:
//!     `R_T ← R_T + ai_rate`, then the same averaging step;
//!   - *hyper increase* when both exceed `F`:
//!     `R_T ← R_T + i · hai_rate` with `i` the hyper round index.
//!
//! Timers are evaluated **lazily**: the simulator calls
//! [`RpState::advance`] with the current clock before reading the rate, and
//! the machine catches up on all expirations since the last call. This
//! avoids scheduling per-QP timer events and keeps the hot path allocation
//! free, at identical observable behaviour (rates only matter when a packet
//! is about to be paced).

use crate::params::DcqcnParams;
use crate::{mbps_to_bytes_per_sec, Nanos, MICRO};

/// Sender-side DCQCN state for one QP.
#[derive(Debug, Clone)]
pub struct RpState {
    /// Line rate of the underlying port, bytes/sec; upper clamp for rates.
    line_rate: f64,
    /// Current sending rate `R_C`, bytes/sec.
    rate_current: f64,
    /// Target rate `R_T`, bytes/sec.
    rate_target: f64,
    /// Congestion estimate α ∈ [0, 1].
    alpha: f64,
    /// Timer-expiration count since the last rate decrease.
    timer_count: u32,
    /// Byte-counter-expiration count since the last rate decrease.
    byte_count: u32,
    /// Bytes accumulated toward the next byte-counter expiration.
    bytes_acc: u64,
    /// Hyper-increase rounds since the last decrease (the `i` in
    /// `R_T ← R_T + i · hai_rate`). Counts hyper *events*, not raw
    /// counter expirations — the two disagree whenever only one counter
    /// advances past the threshold.
    hyper_round: u32,
    /// Time of the last rate-increase timer reset.
    timer_anchor: Nanos,
    /// Time of the last alpha update (CNP or decay).
    alpha_anchor: Nanos,
    /// Time of the last applied rate decrease.
    last_decrease: Option<Nanos>,
    /// Whether a CNP arrived during the current decrease-monitor window and
    /// is waiting for the window to reopen.
    cnp_pending: bool,
    /// Multiplier applied to `ai_rate`/`hai_rate` (DCQCN+ hook; 1.0 = off).
    increase_scale: f64,
    /// Whether any increase event fired since the last decrease
    /// (`clamp_tgt_rate_after_time_inc` firmware semantics: a decrease
    /// clamps the target iff the rate had been increased since the
    /// previous decrease, so mid-burst cuts keep a springy target while
    /// separate congestion episodes re-clamp).
    increased_since_decrease: bool,
    /// Active parameter set.
    params: DcqcnParams,
    /// Total CNPs processed (statistics).
    pub cnps_received: u64,
    /// Total rate decreases applied (statistics).
    pub decreases_applied: u64,
}

impl RpState {
    /// Create a fresh RP for a QP on a port with `line_rate` bytes/sec.
    /// New QPs start at line rate, as NVIDIA RNICs do.
    pub fn new(line_rate: f64, params: DcqcnParams, now: Nanos) -> Self {
        assert!(line_rate > 0.0, "line rate must be positive");
        Self {
            line_rate,
            rate_current: line_rate,
            rate_target: line_rate,
            alpha: 1.0,
            timer_count: 0,
            byte_count: 0,
            bytes_acc: 0,
            hyper_round: 0,
            timer_anchor: now,
            alpha_anchor: now,
            last_decrease: None,
            cnp_pending: false,
            increase_scale: 1.0,
            increased_since_decrease: false,
            params,
            cnps_received: 0,
            decreases_applied: 0,
        }
    }

    /// Current sending rate in bytes/sec. Call [`RpState::advance`] first
    /// to account for elapsed timers.
    pub fn rate(&self) -> f64 {
        self.rate_current
    }

    /// Target rate in bytes/sec (diagnostics).
    pub fn target_rate(&self) -> f64 {
        self.rate_target
    }

    /// Congestion estimate α (diagnostics).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Line rate this QP is clamped to.
    pub fn line_rate(&self) -> f64 {
        self.line_rate
    }

    /// Replace the active parameter set (live retuning by the controller).
    /// Rates and counters carry over; only the knobs change.
    pub fn set_params(&mut self, params: DcqcnParams) {
        self.params = params;
        self.clamp_rates();
    }

    /// Active parameter set.
    pub fn params(&self) -> &DcqcnParams {
        &self.params
    }

    /// Scale factor for rate-increase steps (DCQCN+ uses this to slow the
    /// additive/hyper steps proportionally to the NP-advertised CNP
    /// interval under large incast).
    pub fn set_increase_scale(&mut self, scale: f64) {
        self.increase_scale = scale.clamp(0.01, 100.0);
    }

    fn min_rate(&self) -> f64 {
        mbps_to_bytes_per_sec(self.params.min_rate).min(self.line_rate)
    }

    fn clamp_rates(&mut self) {
        let lo = self.min_rate();
        self.rate_current = self.rate_current.clamp(lo, self.line_rate);
        self.rate_target = self.rate_target.clamp(lo, self.line_rate);
    }

    /// Process all timer expirations up to `now` (alpha decay + rate
    /// increase events). Idempotent for equal `now`.
    pub fn advance(&mut self, now: Nanos) {
        self.advance_inner(now);
        self.audit_bounds();
    }

    fn advance_inner(&mut self, now: Nanos) {
        // A pending CNP applies the instant the decrease-monitor window
        // reopens, not whenever the machine next happens to be observed:
        // stamping the cut at `now` would let the observation cadence
        // leak into alpha decay, the next monitor window and the increase
        // timer anchor. Alpha catches up to the reopen instant first so
        // the cut uses the α the machine had at that moment.
        if self.cnp_pending {
            if let Some(last) = self.last_decrease {
                let window = (self.params.rate_reduce_monitor_period * MICRO as f64) as Nanos;
                let reopen = last.saturating_add(window);
                if now >= reopen {
                    self.decay_alpha(reopen);
                    self.apply_decrease(reopen);
                }
            }
        }
        self.decay_alpha(now);
        let period = (self.params.rpg_time_reset.max(1.0) * MICRO as f64) as Nanos;
        let period = period.max(1);
        // Shortcut: once both rates sit at line rate further increase
        // events are no-ops, so just move the anchor.
        if self.rate_current >= self.line_rate && self.rate_target >= self.line_rate {
            if now > self.timer_anchor {
                let n = (now - self.timer_anchor) / period;
                self.timer_anchor += n * period;
                self.timer_count = self.timer_count.saturating_add(n as u32);
            }
            return;
        }
        while now >= self.timer_anchor + period {
            self.timer_anchor += period;
            self.timer_count = self.timer_count.saturating_add(1);
            self.increase_event();
            if self.rate_current >= self.line_rate && self.rate_target >= self.line_rate {
                // Skip the rest of the catch-up; nothing more can change.
                let n = (now - self.timer_anchor) / period;
                self.timer_anchor += n * period;
                self.timer_count = self.timer_count.saturating_add(n as u32);
                break;
            }
        }
    }

    fn decay_alpha(&mut self, now: Nanos) {
        let period = (self.params.alpha_timer.max(1.0) * MICRO as f64) as Nanos;
        let period = period.max(1);
        if now < self.alpha_anchor + period {
            return;
        }
        let n = (now - self.alpha_anchor) / period;
        self.alpha_anchor += n * period;
        let g = self.params.alpha_g();
        self.alpha *= (1.0 - g).powi(n.min(1 << 20) as i32);
    }

    /// Account `bytes` just handed to the wire; may fire byte-counter
    /// increase events.
    pub fn on_send(&mut self, now: Nanos, bytes: u64) {
        self.advance(now);
        self.bytes_acc += bytes;
        let threshold = (self.params.rpg_byte_reset.max(1.0) * 1024.0) as u64;
        while self.bytes_acc >= threshold {
            self.bytes_acc -= threshold;
            self.byte_count = self.byte_count.saturating_add(1);
            self.increase_event();
        }
        self.audit_bounds();
    }

    /// Process a CNP received at `now`. The multiplicative decrease applies
    /// immediately if the decrease-monitor window is open, otherwise it is
    /// deferred until the window reopens (NVIDIA semantics: at most one cut
    /// per `rate_reduce_monitor_period`).
    pub fn on_cnp(&mut self, now: Nanos) {
        self.advance(now);
        self.cnps_received += 1;
        let window = (self.params.rate_reduce_monitor_period * MICRO as f64) as Nanos;
        match self.last_decrease {
            Some(last) if now < last.saturating_add(window) => {
                self.cnp_pending = true;
            }
            _ => self.apply_decrease(now),
        }
        self.audit_bounds();
    }

    /// Invariant epilogue for the audit feature: the machine must keep
    /// `min_rate ≤ R_C ≤ R_T ≤ line_rate` and `α ∈ [0, 1]` at every
    /// observable instant. Folds to nothing unless `audit` is on.
    #[inline]
    fn audit_bounds(&self) {
        use paraleon_audit as audit;
        if !audit::enabled() {
            return;
        }
        // Rates are ~1e10 bytes/sec; tolerate relative f64 rounding.
        let eps = 1e-9 * self.line_rate;
        let lo = self.min_rate();
        audit::check(
            self.rate_current >= lo - eps
                && self.rate_current <= self.rate_target + eps
                && self.rate_target <= self.line_rate + eps,
            || audit::AuditViolation::RateBounds {
                rate_current: self.rate_current,
                rate_target: self.rate_target,
                min_rate: lo,
                line_rate: self.line_rate,
            },
        );
        audit::check(self.alpha >= 0.0 && self.alpha <= 1.0, || {
            audit::AuditViolation::AlphaBounds { alpha: self.alpha }
        });
    }

    fn apply_decrease(&mut self, now: Nanos) {
        let g = self.params.alpha_g();
        // NVIDIA semantics: with `clamp_tgt_rate` set the target follows
        // the current rate down on every cut. With it clear (firmware
        // default) the target clamps only when the rate has been
        // *increased* since the previous decrease
        // (`clamp_tgt_rate_after_time_inc`): the first cut of each
        // congestion episode clamps, while back-to-back cuts within one
        // burst keep the pre-burst target so fast recovery springs back
        // instead of death-spiralling.
        if self.params.clamp_tgt_rate
            || self.decreases_applied == 0
            || self.increased_since_decrease
            || self.rate_target < self.rate_current
        {
            self.rate_target = self.rate_current;
        }
        self.increased_since_decrease = false;
        self.rate_current *= 1.0 - self.alpha / 2.0;
        self.alpha = (1.0 - g) * self.alpha + g;
        self.alpha_anchor = now;
        self.clamp_rates();
        self.timer_count = 0;
        self.byte_count = 0;
        self.bytes_acc = 0;
        self.hyper_round = 0;
        self.timer_anchor = now;
        self.last_decrease = Some(now);
        self.cnp_pending = false;
        self.decreases_applied += 1;
        paraleon_telemetry::event_at(
            now,
            paraleon_telemetry::Event::RateDecrease {
                rate_bytes_per_sec: self.rate_current,
            },
        );
    }

    /// One increase event (timer or byte-counter expiry).
    fn increase_event(&mut self) {
        let f = self.params.rpg_threshold.max(1.0) as u32;
        let t = self.timer_count;
        let b = self.byte_count;
        if t > f && b > f {
            // Hyper increase: step grows with the hyper round index.
            self.hyper_round += 1;
            let i = self.hyper_round as f64;
            let hai = mbps_to_bytes_per_sec(self.params.hai_rate) * self.increase_scale;
            self.rate_target += i * hai;
        } else if t > f || b > f {
            // Additive increase.
            let ai = mbps_to_bytes_per_sec(self.params.ai_rate) * self.increase_scale;
            self.rate_target += ai;
        }
        // Fast recovery (and every stage): converge toward the target.
        self.rate_current = (self.rate_target + self.rate_current) / 2.0;
        self.increased_since_decrease = true;
        self.clamp_rates();
        // Increase events fire in catch-up batches with no timestamp of
        // their own; a counter is enough (the flight recorder would churn).
        paraleon_telemetry::count(paraleon_telemetry::Ctr::RateIncreases);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SEC;

    const LINE: f64 = 12.5e9; // 100 Gbps in bytes/sec

    fn rp() -> RpState {
        RpState::new(LINE, DcqcnParams::nvidia_default(), 0)
    }

    #[test]
    fn starts_at_line_rate_with_full_alpha() {
        let r = rp();
        assert_eq!(r.rate(), LINE);
        assert_eq!(r.alpha(), 1.0);
    }

    #[test]
    fn first_cnp_halves_rate() {
        // With alpha = 1 the first cut is R_C * (1 - 1/2).
        let mut r = rp();
        r.on_cnp(1000);
        assert!((r.rate() - LINE * 0.5).abs() < 1.0);
        assert_eq!(r.target_rate(), LINE);
        assert_eq!(r.decreases_applied, 1);
    }

    #[test]
    fn cnp_burst_within_monitor_period_cuts_once() {
        let mut r = rp();
        r.on_cnp(1000);
        let after_first = r.rate();
        // Default rate_reduce_monitor_period is 4 µs; these land inside it.
        r.on_cnp(1500);
        r.on_cnp(2000);
        assert_eq!(r.rate(), after_first);
        assert_eq!(r.cnps_received, 3);
        assert_eq!(r.decreases_applied, 1);
    }

    #[test]
    fn pending_cnp_applies_when_window_reopens() {
        let mut r = rp();
        r.on_cnp(1000);
        r.on_cnp(2000); // pending
        let after_first = r.rate();
        r.advance(1000 + 5 * MICRO); // window (4 µs) reopens
        assert!(r.rate() < after_first);
        assert_eq!(r.decreases_applied, 2);
    }

    #[test]
    fn pending_decrease_is_observation_cadence_invariant() {
        // Lazy evaluation must be unobservable: a machine polled every
        // microsecond and one polled once, long after the fact, must agree
        // on when a deferred CNP cut took effect — and therefore on rate,
        // target and alpha ever after. Stamping the deferred cut at the
        // observation instant (instead of the window-reopen instant) makes
        // the trajectory depend on who calls `advance` when.
        let mut fine = rp();
        let mut coarse = rp();
        for r in [&mut fine, &mut coarse] {
            r.on_cnp(1000);
            r.on_cnp(2000); // inside the 4 µs monitor window: deferred
        }
        let horizon = 2 * 1000 * MICRO;
        let mut t = 2000;
        while t < horizon {
            t += MICRO;
            fine.advance(t.min(horizon));
        }
        coarse.advance(horizon);
        assert_eq!(fine.decreases_applied, coarse.decreases_applied);
        assert!(
            (fine.rate() - coarse.rate()).abs() < 1.0,
            "rate diverged: fine {} vs coarse {}",
            fine.rate(),
            coarse.rate()
        );
        assert!(
            (fine.target_rate() - coarse.target_rate()).abs() < 1.0,
            "target diverged: fine {} vs coarse {}",
            fine.target_rate(),
            coarse.target_rate()
        );
        assert!(
            (fine.alpha() - coarse.alpha()).abs() < 1e-9,
            "alpha diverged: fine {} vs coarse {}",
            fine.alpha(),
            coarse.alpha()
        );
    }

    #[test]
    fn alpha_rises_on_cnp_and_decays_without() {
        let mut r = rp();
        // Decay alpha a while first so a rise is observable.
        r.advance(SEC / 100);
        let decayed = r.alpha();
        assert!(decayed < 1.0);
        r.on_cnp(SEC / 100 + 1);
        assert!(r.alpha() > decayed);
        let post_cnp = r.alpha();
        r.advance(SEC / 100 + SEC / 50);
        assert!(r.alpha() < post_cnp);
    }

    #[test]
    fn fast_recovery_converges_to_target() {
        let mut r = rp();
        r.on_cnp(0);
        let target = r.target_rate();
        // Default rpg_time_reset = 300 µs, threshold F = 5: five timer
        // expirations of fast recovery halve the gap each time.
        r.advance(5 * 300 * MICRO + 1);
        let gap = (target - r.rate()) / target;
        assert!(gap < 0.05, "gap {gap} should be < 5% after 5 halvings");
        assert!(r.rate() <= target + 1.0);
    }

    #[test]
    fn additive_then_hyper_increase_raises_target() {
        let mut r = rp();
        r.on_cnp(0);
        // Run long enough for timer counts to pass the threshold.
        r.advance(20 * 300 * MICRO);
        assert!(r.target_rate() > r.line_rate() * 0.5);
        // Eventually recovers to line rate.
        r.advance(2 * SEC);
        assert_eq!(r.rate(), LINE);
    }

    #[test]
    fn hyper_increase_step_grows_with_each_hyper_event() {
        // DCQCN's hyper stage steps the target by i·hai_rate with i the
        // *hyper round index* — 1 for the first hyper event since the last
        // decrease, 2 for the second, and so on. Deriving i from the raw
        // counters (min(T, BC) − F) breaks that: when only one counter
        // advances (timer expirations with no new sends), min(T, BC)
        // freezes and every subsequent hyper event repeats the same step.
        let mut p = DcqcnParams::nvidia_default();
        p.rpg_threshold = 1.0; // F = 1: hyper after two expiries of each
        let mut r = RpState::new(LINE, p, 0);
        let threshold = (r.params().rpg_byte_reset * 1024.0) as u64;

        // Two cuts with an increase in between so the target clamps below
        // line rate and increase steps are observable.
        r.on_cnp(0);
        r.on_send(MICRO, threshold); // fast recovery; marks "increased"
        r.on_cnp(5 * MICRO); // window reopened: clamps target down
        assert!(r.target_rate() < LINE);

        // Byte counter to 2 (> F) with no further timer expirations.
        r.on_send(5 * MICRO + 1, 2 * threshold);
        let period = (r.params().rpg_time_reset * MICRO as f64) as Nanos;
        let t0 = 5 * MICRO;

        // Timer expiry 1: T=1 ≤ F, BC=2 > F → additive.
        r.advance(t0 + period + 1);
        let after_additive = r.target_rate();
        // Timer expiry 2: T=2, BC=2 both > F → hyper round 1.
        r.advance(t0 + 2 * period + 1);
        let after_hyper1 = r.target_rate();
        // Timer expiry 3: T=3, BC=2 → hyper round 2.
        r.advance(t0 + 3 * period + 1);
        let after_hyper2 = r.target_rate();

        let hai = mbps_to_bytes_per_sec(r.params().hai_rate);
        let step1 = after_hyper1 - after_additive;
        let step2 = after_hyper2 - after_hyper1;
        assert!(
            (step1 - hai).abs() < 1.0,
            "first hyper step should be 1·hai ({hai}), got {step1}"
        );
        assert!(
            (step2 - 2.0 * hai).abs() < 1.0,
            "second hyper step should be 2·hai ({}), got {step2}",
            2.0 * hai
        );
    }

    #[test]
    fn byte_counter_fires_increase_events() {
        let mut r = rp();
        r.on_cnp(0);
        let before = r.rate();
        // Send ten byte-counter thresholds' worth within the same instant:
        // ten fast-recovery halvings toward target.
        let threshold = (r.params().rpg_byte_reset * 1024.0) as u64;
        r.on_send(1, 10 * threshold);
        assert!(r.rate() > before);
    }

    #[test]
    fn rate_never_below_min_rate() {
        let mut r = rp();
        for i in 0..10_000u64 {
            r.on_cnp(i * 10 * MICRO);
        }
        let min = mbps_to_bytes_per_sec(r.params().min_rate);
        assert!(r.rate() >= min - 1e-6);
    }

    #[test]
    fn rate_never_exceeds_line_rate() {
        let mut r = rp();
        r.advance(10 * SEC);
        assert!(r.rate() <= LINE);
        assert!(r.target_rate() <= LINE);
    }

    #[test]
    fn increase_scale_slows_recovery() {
        let mut fast = rp();
        let mut slow = rp();
        slow.set_increase_scale(0.1);
        fast.on_cnp(0);
        slow.on_cnp(0);
        // Both reach additive increase; the scaled one grows target slower.
        fast.advance(10 * 300 * MICRO);
        slow.advance(10 * 300 * MICRO);
        assert!(slow.target_rate() <= fast.target_rate());
    }

    #[test]
    fn set_params_applies_live() {
        let mut r = rp();
        r.on_cnp(0);
        let mut p = DcqcnParams::nvidia_default();
        p.ai_rate = 400.0;
        p.rpg_time_reset = 10.0;
        r.set_params(p);
        r.advance(100 * MICRO);
        // Aggressive increase parameters recover much faster than default.
        let mut r2 = rp();
        r2.on_cnp(0);
        r2.advance(100 * MICRO);
        assert!(r.rate() > r2.rate());
    }

    #[test]
    fn advance_is_idempotent_at_same_instant() {
        let mut r = rp();
        r.on_cnp(0);
        r.advance(1_000_000);
        let rate = r.rate();
        let alpha = r.alpha();
        r.advance(1_000_000);
        assert_eq!(r.rate(), rate);
        assert_eq!(r.alpha(), alpha);
    }

    #[test]
    fn idle_catch_up_is_cheap_and_bounded() {
        let mut r = rp();
        r.on_cnp(0);
        // A 10-simulated-second gap must not hang (lazy catch-up shortcut).
        r.advance(10 * SEC);
        assert_eq!(r.rate(), LINE);
    }
}
