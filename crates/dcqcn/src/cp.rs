//! Congestion Point (CP): the switch-side RED/ECN marker.
//!
//! DCQCN switches mark packets with ECN CE using a RED-like probability
//! ramp over the *instantaneous* egress queue length `q`:
//!
//! ```text
//!           0                    q <= K_min
//! P(mark) = P_max·(q-K_min)/(K_max-K_min)   K_min < q < K_max
//!           1                    q >= K_max
//! ```
//!
//! `K_min`, `K_max` (bytes) and `P_max` are the three switch-side tunables
//! PARALEON adjusts. This module keeps the marker pure: the caller supplies
//! the queue length and a uniform random sample, so the simulator stays
//! deterministic under a seeded RNG.

use crate::params::DcqcnParams;

/// Switch-side ECN marking logic for one egress queue.
#[derive(Debug, Clone)]
pub struct EcnMarker {
    k_min_bytes: f64,
    k_max_bytes: f64,
    p_max: f64,
    /// Packets examined (statistics).
    pub seen: u64,
    /// Packets marked (statistics).
    pub marked: u64,
}

impl EcnMarker {
    /// Build a marker from the switch-side fields of `params`
    /// (`k_min`/`k_max` are stored in KB there).
    pub fn from_params(params: &DcqcnParams) -> Self {
        Self::new(params.k_min * 1024.0, params.k_max * 1024.0, params.p_max)
    }

    /// Build a marker from explicit thresholds in **bytes**.
    pub fn new(k_min_bytes: f64, k_max_bytes: f64, p_max: f64) -> Self {
        assert!(k_min_bytes >= 0.0 && k_max_bytes >= k_min_bytes);
        Self {
            k_min_bytes,
            k_max_bytes,
            p_max: p_max.clamp(0.0, 1.0),
            seen: 0,
            marked: 0,
        }
    }

    /// Replace thresholds (live retuning). Statistics carry over.
    pub fn set_params(&mut self, params: &DcqcnParams) {
        let mut k_min = params.k_min * 1024.0;
        let mut k_max = params.k_max * 1024.0;
        if k_min > k_max {
            std::mem::swap(&mut k_min, &mut k_max);
        }
        self.k_min_bytes = k_min;
        self.k_max_bytes = k_max;
        self.p_max = params.p_max.clamp(0.0, 1.0);
    }

    /// Marking probability for instantaneous queue length `q` bytes.
    pub fn probability(&self, q_bytes: f64) -> f64 {
        if q_bytes <= self.k_min_bytes {
            0.0
        } else if q_bytes >= self.k_max_bytes {
            1.0
        } else {
            let span = self.k_max_bytes - self.k_min_bytes;
            if span <= 0.0 {
                1.0
            } else {
                self.p_max * (q_bytes - self.k_min_bytes) / span
            }
        }
    }

    /// Decide whether to mark a packet enqueued behind `q_bytes` of data.
    /// `uniform` must be a fresh sample from `U[0,1)`.
    pub fn should_mark(&mut self, q_bytes: f64, uniform: f64) -> bool {
        self.seen += 1;
        let mark = uniform < self.probability(q_bytes);
        if mark {
            self.marked += 1;
        }
        mark
    }

    /// Observed marking rate so far (statistics; the ACC baseline reads
    /// this as one of its local observations).
    pub fn marking_rate(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.marked as f64 / self.seen as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marker() -> EcnMarker {
        // 100 KB / 400 KB / 0.2 — the reproduction's default CP setting.
        EcnMarker::new(100.0 * 1024.0, 400.0 * 1024.0, 0.2)
    }

    #[test]
    fn below_kmin_never_marks() {
        let mut m = marker();
        assert_eq!(m.probability(0.0), 0.0);
        assert_eq!(m.probability(100.0 * 1024.0), 0.0);
        assert!(!m.should_mark(50.0 * 1024.0, 0.0));
    }

    #[test]
    fn above_kmax_always_marks() {
        let mut m = marker();
        assert_eq!(m.probability(400.0 * 1024.0), 1.0);
        assert!(m.should_mark(500.0 * 1024.0, 0.999_999));
    }

    #[test]
    fn ramp_is_linear_and_monotonic() {
        let m = marker();
        let mid = m.probability(250.0 * 1024.0);
        assert!((mid - 0.1).abs() < 1e-9, "midpoint should be P_max/2");
        let mut last = 0.0;
        for q in (0..=500).map(|k| k as f64 * 1024.0) {
            let p = m.probability(q);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn from_params_uses_kb_units() {
        let p = DcqcnParams::nvidia_default();
        let m = EcnMarker::from_params(&p);
        assert_eq!(m.probability(p.k_min * 1024.0), 0.0);
        assert_eq!(m.probability(p.k_max * 1024.0), 1.0);
    }

    #[test]
    fn marking_rate_tracks_decisions() {
        let mut m = marker();
        for i in 0..100 {
            let u = i as f64 / 100.0;
            m.should_mark(250.0 * 1024.0, u);
        }
        // P(mark) = 0.1 at midpoint: exactly the 10 samples below 0.1 mark.
        assert_eq!(m.marked, 10);
        assert!((m.marking_rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn set_params_swaps_inverted_thresholds() {
        let mut m = marker();
        let mut p = DcqcnParams::nvidia_default();
        p.k_min = 500.0;
        p.k_max = 100.0;
        m.set_params(&p);
        assert_eq!(m.probability(50.0 * 1024.0), 0.0);
        assert_eq!(m.probability(600.0 * 1024.0), 1.0);
    }

    #[test]
    fn degenerate_equal_thresholds_step_function() {
        let m = EcnMarker::new(1000.0, 1000.0, 0.5);
        assert_eq!(m.probability(999.0), 0.0);
        assert_eq!(m.probability(1001.0), 1.0);
    }
}
