//! Notification Point (NP): the receiver-side CNP generator.
//!
//! For each QP, the NP watches arriving data packets. When a packet
//! carries an ECN CE mark, the NP emits a Congestion Notification Packet
//! (CNP) back to the sender — but at most one per
//! `min_time_between_cnps` µs per flow, which is the NP-side tunable the
//! paper lists in Table I (expert value 96 µs vs. a 4 µs default).
//!
//! The module also implements the NP half of the **DCQCN+** baseline (Gao
//! et al., ICNP 2018): the NP counts how many distinct flows are currently
//! congested (received an ECN mark within a sliding window) and stretches
//! the advertised CNP interval proportionally, so that large incasts do
//! not drown the RP in CNPs. The advertised interval travels inside the
//! CNP ([`CnpSignal::advertised_interval_us`]) and the RP scales its rate
//! increase accordingly (see `tuner::dcqcn_plus`).

use std::collections::HashMap;

use crate::params::DcqcnParams;
use crate::{Nanos, MICRO};

/// What the NP tells the RP when it decides to emit a CNP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnpSignal {
    /// When the CNP was generated.
    pub at: Nanos,
    /// DCQCN+ only: the CNP interval (µs) the NP is currently applying,
    /// carried in the CNP so the RP can scale its increase steps/timers.
    /// `None` under plain DCQCN.
    pub advertised_interval_us: Option<f64>,
}

/// Per-QP notification-point state.
#[derive(Debug, Clone)]
pub struct NpState {
    /// Last time a CNP was sent for this flow.
    last_cnp: Option<Nanos>,
    /// Active parameters (only `min_time_between_cnps` is read).
    params: DcqcnParams,
    /// Total ECN-marked packets observed (statistics).
    pub marked_seen: u64,
    /// Total CNPs emitted (statistics).
    pub cnps_sent: u64,
}

impl NpState {
    /// Fresh NP state for one QP.
    pub fn new(params: DcqcnParams) -> Self {
        Self {
            last_cnp: None,
            params,
            marked_seen: 0,
            cnps_sent: 0,
        }
    }

    /// Replace the active parameter set (live retuning).
    pub fn set_params(&mut self, params: DcqcnParams) {
        self.params = params;
    }

    /// Record the arrival of a data packet at `now`. Returns a
    /// [`CnpSignal`] if a CNP must be sent to the RP.
    ///
    /// `interval_override_us` replaces `min_time_between_cnps` when the
    /// DCQCN+ incast scaler is active; pass `None` for plain DCQCN.
    pub fn on_packet(
        &mut self,
        now: Nanos,
        ecn_marked: bool,
        interval_override_us: Option<f64>,
    ) -> Option<CnpSignal> {
        if !ecn_marked {
            return None;
        }
        self.marked_seen += 1;
        let interval_us = interval_override_us.unwrap_or(self.params.min_time_between_cnps);
        let gap = (interval_us * MICRO as f64) as Nanos;
        let due = match self.last_cnp {
            None => true,
            Some(last) => now >= last.saturating_add(gap),
        };
        if !due {
            return None;
        }
        self.last_cnp = Some(now);
        self.cnps_sent += 1;
        Some(CnpSignal {
            at: now,
            advertised_interval_us: interval_override_us,
        })
    }
}

/// DCQCN+'s incast-aware CNP interval scaler, shared by all QPs that
/// terminate on one RNIC (the NP observes congestion across flows).
///
/// The published scheme sets the CNP interval proportional to the number
/// of concurrently congested flows `n`: `interval = base · max(1, n)`,
/// so an `n`-way incast generates roughly the same aggregate CNP load as a
/// single congested flow. A flow counts as congested if it received an
/// ECN mark within the last `window`.
#[derive(Debug, Clone)]
pub struct IncastScaler {
    /// Base CNP interval, µs (the plain `min_time_between_cnps`).
    base_interval_us: f64,
    /// How long a flow stays "congested" after its last ECN mark.
    window: Nanos,
    /// flow id -> last ECN mark time.
    congested: HashMap<u64, Nanos>,
}

impl IncastScaler {
    /// Create a scaler with the given base interval (µs) and congestion
    /// window (ns). DCQCN+ uses a window of a few RTTs; 100 µs is a sound
    /// default for a 100 G fabric.
    pub fn new(base_interval_us: f64, window: Nanos) -> Self {
        Self {
            base_interval_us: base_interval_us.max(1.0),
            window,
            congested: HashMap::new(),
        }
    }

    /// Record that `flow` received an ECN mark at `now`, and return the CNP
    /// interval (µs) the NP should currently apply.
    pub fn on_mark(&mut self, flow: u64, now: Nanos) -> f64 {
        self.congested.insert(flow, now);
        self.interval_us(now)
    }

    /// Current advertised interval (µs) without recording a new mark.
    pub fn interval_us(&mut self, now: Nanos) -> f64 {
        let horizon = now.saturating_sub(self.window);
        self.congested.retain(|_, &mut t| t >= horizon);
        self.base_interval_us * self.congested.len().max(1) as f64
    }

    /// Number of currently congested flows (diagnostics).
    pub fn congested_flows(&self) -> usize {
        self.congested.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn np() -> NpState {
        NpState::new(DcqcnParams::nvidia_default())
    }

    #[test]
    fn unmarked_packets_never_generate_cnps() {
        let mut n = np();
        for t in 0..100 {
            assert!(n.on_packet(t * 1000, false, None).is_none());
        }
        assert_eq!(n.cnps_sent, 0);
        assert_eq!(n.marked_seen, 0);
    }

    #[test]
    fn first_mark_generates_cnp_immediately() {
        let mut n = np();
        let sig = n.on_packet(5_000, true, None).expect("cnp");
        assert_eq!(sig.at, 5_000);
        assert_eq!(sig.advertised_interval_us, None);
    }

    #[test]
    fn cnps_are_paced_by_min_time_between_cnps() {
        let mut n = np();
        // default min_time_between_cnps = 4 µs
        assert!(n.on_packet(0, true, None).is_some());
        assert!(n.on_packet(MICRO, true, None).is_none());
        assert!(n.on_packet(3 * MICRO, true, None).is_none());
        assert!(n.on_packet(4 * MICRO, true, None).is_some());
        assert_eq!(n.marked_seen, 4);
        assert_eq!(n.cnps_sent, 2);
    }

    #[test]
    fn expert_interval_suppresses_more_cnps() {
        let mut d = NpState::new(DcqcnParams::nvidia_default());
        let mut e = NpState::new(DcqcnParams::expert());
        for t in 0..100u64 {
            d.on_packet(t * 4 * MICRO, true, None);
            e.on_packet(t * 4 * MICRO, true, None);
        }
        assert!(e.cnps_sent < d.cnps_sent);
    }

    #[test]
    fn override_interval_wins() {
        let mut n = np();
        assert!(n.on_packet(0, true, Some(50.0)).is_some());
        // Default 4 µs would allow this; the 50 µs override suppresses it.
        assert!(n.on_packet(10 * MICRO, true, Some(50.0)).is_none());
        let sig = n.on_packet(50 * MICRO, true, Some(50.0)).expect("cnp");
        assert_eq!(sig.advertised_interval_us, Some(50.0));
    }

    #[test]
    fn incast_scaler_grows_with_congested_flows() {
        let mut s = IncastScaler::new(4.0, 100 * MICRO);
        assert_eq!(s.on_mark(1, 0), 4.0);
        assert_eq!(s.on_mark(2, 10), 8.0);
        assert_eq!(s.on_mark(3, 20), 12.0);
        assert_eq!(s.congested_flows(), 3);
    }

    #[test]
    fn incast_scaler_forgets_stale_flows() {
        let mut s = IncastScaler::new(4.0, 100 * MICRO);
        s.on_mark(1, 0);
        s.on_mark(2, 0);
        // After the window passes, both flows expire; floor is 1x base.
        assert_eq!(s.interval_us(200 * MICRO), 4.0);
        assert_eq!(s.congested_flows(), 0);
    }

    #[test]
    fn set_params_changes_pacing() {
        let mut n = np();
        n.on_packet(0, true, None);
        let mut p = DcqcnParams::nvidia_default();
        p.min_time_between_cnps = 100.0;
        n.set_params(p);
        assert!(n.on_packet(50 * MICRO, true, None).is_none());
        assert!(n.on_packet(101 * MICRO, true, None).is_some());
    }
}
