//! Property-based tests for the DCQCN state machines: invariants that
//! must hold under *any* event sequence.

use proptest::prelude::*;

use paraleon_dcqcn::{
    mbps_to_bytes_per_sec, DcqcnParams, EcnMarker, NpState, ParamSpace, RpState, ALL_PARAMS, MICRO,
};

const LINE: f64 = 12.5e9;

/// An arbitrary RP event: advance time, send bytes, or receive a CNP.
#[derive(Debug, Clone)]
enum RpEvent {
    Advance(u64),
    Send(u64),
    Cnp,
}

fn rp_events() -> impl Strategy<Value = Vec<RpEvent>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..2_000_000).prop_map(RpEvent::Advance),
            (1u64..100_000).prop_map(RpEvent::Send),
            Just(RpEvent::Cnp),
        ],
        1..200,
    )
}

proptest! {
    /// Under any event sequence, the rate stays within
    /// [min_rate, line_rate] and alpha within [0, 1].
    #[test]
    fn rp_rate_and_alpha_stay_bounded(events in rp_events()) {
        let params = DcqcnParams::nvidia_default();
        let min = mbps_to_bytes_per_sec(params.min_rate);
        let mut rp = RpState::new(LINE, params, 0);
        let mut now = 0u64;
        for ev in events {
            match ev {
                RpEvent::Advance(dt) => {
                    now += dt;
                    rp.advance(now);
                }
                RpEvent::Send(b) => rp.on_send(now, b),
                RpEvent::Cnp => rp.on_cnp(now),
            }
            prop_assert!(rp.rate() >= min - 1e-6, "rate {} below min", rp.rate());
            prop_assert!(rp.rate() <= LINE + 1e-6, "rate {} above line", rp.rate());
            prop_assert!(rp.target_rate() <= LINE + 1e-6);
            prop_assert!((0.0..=1.0).contains(&rp.alpha()), "alpha {}", rp.alpha());
        }
    }

    /// advance() must be monotone-safe: calling it twice with the same
    /// timestamp changes nothing.
    #[test]
    fn rp_advance_is_idempotent(
        events in rp_events(),
        probe in 1u64..10_000_000,
    ) {
        let mut rp = RpState::new(LINE, DcqcnParams::nvidia_default(), 0);
        let mut now = 0u64;
        for ev in events {
            match ev {
                RpEvent::Advance(dt) => { now += dt; rp.advance(now); }
                RpEvent::Send(b) => rp.on_send(now, b),
                RpEvent::Cnp => rp.on_cnp(now),
            }
        }
        now += probe;
        rp.advance(now);
        let (r1, a1) = (rp.rate(), rp.alpha());
        rp.advance(now);
        prop_assert_eq!(r1, rp.rate());
        prop_assert_eq!(a1, rp.alpha());
    }

    /// A CNP can never *increase* the current rate.
    #[test]
    fn cnp_never_raises_rate(warmup in 0u64..5_000_000) {
        let mut rp = RpState::new(LINE, DcqcnParams::nvidia_default(), 0);
        rp.on_cnp(0);
        rp.advance(warmup);
        let before = rp.rate();
        rp.on_cnp(warmup);
        prop_assert!(rp.rate() <= before + 1e-6);
    }

    /// NP emits at most one CNP per min_time_between_cnps window,
    /// regardless of arrival pattern.
    #[test]
    fn np_respects_pacing(gaps in prop::collection::vec(0u64..20_000, 1..100)) {
        let params = DcqcnParams::nvidia_default();
        let window = (params.min_time_between_cnps * MICRO as f64) as u64;
        let mut np = NpState::new(params);
        let mut now = 0u64;
        let mut cnp_times = Vec::new();
        for g in gaps {
            now += g;
            if np.on_packet(now, true, None).is_some() {
                cnp_times.push(now);
            }
        }
        for w in cnp_times.windows(2) {
            prop_assert!(w[1] - w[0] >= window, "CNPs {} and {} too close", w[0], w[1]);
        }
    }

    /// The ECN marking probability is monotone in the queue length and
    /// bounded by [0, 1] for any thresholds.
    #[test]
    fn marker_probability_monotone(
        kmin in 0.0f64..1e7,
        span in 1.0f64..1e7,
        pmax in 0.0f64..1.0,
        q1 in 0.0f64..2e7,
        q2 in 0.0f64..2e7,
    ) {
        let m = EcnMarker::new(kmin, kmin + span, pmax);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let (p_lo, p_hi) = (m.probability(lo), m.probability(hi));
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!((0.0..=1.0).contains(&p_hi));
        prop_assert!(p_lo <= p_hi + 1e-12);
    }

    /// Parameter vectors round-trip for any in-bounds values, and
    /// normalize() is idempotent.
    #[test]
    fn param_vector_round_trip(seed_vals in prop::collection::vec(0.0f64..1.0, 13)) {
        let space = ParamSpace::standard();
        let mut p = DcqcnParams::nvidia_default();
        for (i, &id) in ALL_PARAMS.iter().enumerate() {
            let spec = space.spec(id);
            p.set(id, spec.min + seed_vals[i] * (spec.max - spec.min));
        }
        p.normalize(&space);
        let q = DcqcnParams::from_vector(&p.to_vector());
        prop_assert_eq!(p.clone(), q);
        let mut r = p;
        r.normalize(&space);
        prop_assert_eq!(p, r);
    }

    /// Clamp always lands inside the bounds.
    #[test]
    fn clamp_lands_in_bounds(v in -1e12f64..1e12, idx in 0usize..13) {
        let space = ParamSpace::standard();
        let spec = space.spec(ALL_PARAMS[idx]);
        let c = spec.clamp(v);
        prop_assert!(c >= spec.min && c <= spec.max);
    }
}
