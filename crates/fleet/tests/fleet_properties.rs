//! Property tests for the fleet service's two anchor guarantees:
//! snapshot round-trips are identities, and the scheduler's results are
//! invariant to the phase-A thread count.

use paraleon::prelude::*;
use paraleon_fleet::{FleetConfig, FleetService, TenantSpec};
use proptest::prelude::*;

/// A small heterogeneous tenant: topology family, scheme and workload
/// all vary with the generated parameters.
fn tenant_spec(family: u8, seed: u64, load_flows: u64) -> TenantSpec {
    let topo = match family % 3 {
        0 => TopoSpec::TwoTier(ClosSpec {
            n_tor: 2,
            hosts_per_tor: 2,
            n_leaf: 1,
            host_gbps: 25.0,
            uplink_gbps: 50.0,
            delay_ns: 1_000,
        }),
        1 => TopoSpec::Rail(RailSpec {
            n_rail: 2,
            n_server: 2,
            n_spine: 1,
            host_gbps: 25.0,
            uplink_gbps: 50.0,
            delay_ns: 1_500,
        }),
        _ => TopoSpec::MixedRate(MixedRateSpec {
            n_tor: 2,
            hosts_per_tor: 2,
            n_leaf: 2,
            host_gbps: 25.0,
            fast_gbps: 50.0,
            slow_gbps: 25.0,
            delay_ns: 1_000,
        }),
    };
    let mut spec = TenantSpec::new(topo);
    spec.seed = seed;
    spec.scheme = if family % 2 == 0 {
        SchemeKind::Paraleon
    } else {
        SchemeKind::Expert
    };
    spec.schedule = (0..load_flows)
        .map(|i| FlowRequest {
            src: (i % 4) as usize,
            dst: ((i + 2) % 4) as usize,
            bytes: if i % 4 == 0 { 1_500_000 } else { 30_000 },
            start: i * MILLI / 3,
        })
        .collect();
    spec
}

fn fleet_with(specs: &[TenantSpec], threads: usize) -> FleetService {
    let mut fleet = FleetService::new(FleetConfig {
        threads,
        ..FleetConfig::default()
    });
    for s in specs {
        fleet.admit(s.clone());
    }
    fleet
}

fn specs_strategy() -> impl Strategy<Value = Vec<TenantSpec>> {
    proptest::collection::vec((0u8..6, 1u64..1_000, 6u64..18), 2..4).prop_map(|params| {
        params
            .into_iter()
            .map(|(family, seed, flows)| tenant_spec(family, seed, flows))
            .collect()
    })
}

fn assert_fleets_identical(a: &FleetService, b: &FleetService) {
    assert_eq!(a.n_tenants(), b.n_tenants());
    for (x, y) in a.tenants().iter().zip(b.tenants()) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.cell.history, y.cell.history, "tenant {} history", x.id);
        assert_eq!(x.cell.last_params, y.cell.last_params, "tenant {}", x.id);
        assert_eq!(x.completions, y.completions, "tenant {} completions", x.id);
        assert_eq!(x.ticks, y.ticks);
        assert_eq!(x.queue.len(), y.queue.len());
        assert_eq!(x.bucket, y.bucket);
    }
    assert_eq!(a.stats(), b.stats());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Snapshot + immediate restore is an identity: the restored fleet's
    /// continuation is bit-identical to a fleet that never snapshotted.
    #[test]
    fn snapshot_round_trip_is_identity(
        specs in specs_strategy(),
        before in 2u64..8,
        after in 2u64..8,
    ) {
        let mut fleet = fleet_with(&specs, 1);
        let mut control = fleet_with(&specs, 1);
        fleet.run(before);
        control.run(before);
        let snap = fleet.snapshot().expect("armed cells checkpoint");
        fleet.restore(&snap).unwrap();
        fleet.run(after);
        control.run(after);
        assert_fleets_identical(&fleet, &control);
    }

    /// The scheduler's results are invariant to the phase-A thread
    /// count: `threads: N` is byte-identical to `threads: 1`.
    #[test]
    fn scheduler_is_thread_count_invariant(
        specs in specs_strategy(),
        threads in 2usize..5,
        ticks in 4u64..10,
    ) {
        let mut serial = fleet_with(&specs, 1);
        let mut threaded = fleet_with(&specs, threads);
        serial.run(ticks);
        threaded.run(ticks);
        assert_fleets_identical(&serial, &threaded);
    }
}

/// Crash-restoring mid-run re-converges every tenant: once the resync
/// conversations go quiet, no fabric disagrees with its controller's
/// believed parameters.
#[test]
fn crash_restore_reconverges_a_heterogeneous_fleet() {
    let specs: Vec<TenantSpec> = (0..3u8)
        .map(|f| tenant_spec(f, 90 + f as u64, 14))
        .collect();
    let mut fleet = fleet_with(&specs, 1);
    fleet.run(8);
    let snap = fleet.snapshot().unwrap();
    fleet.run(4);
    fleet.crash_restore(&snap).unwrap();
    let mut extra = 0;
    while fleet.tenants().iter().any(|t| !t.cell.ctrl_quiet()) && extra < 30 {
        fleet.tick();
        extra += 1;
    }
    for t in fleet.tenants() {
        assert!(t.cell.ctrl_quiet(), "tenant {} never went quiet", t.id);
        assert!(
            !t.cell.ctrl_diverged(&t.sim),
            "tenant {} diverged after crash restore",
            t.id
        );
    }
}
