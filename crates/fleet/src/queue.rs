//! The fleet's backpressure primitives: bounded per-tenant upload
//! queues and token-bucket rate limiters.
//!
//! A tenant's fabric produces one [`PendingInterval`] per λ_MI whether
//! or not the shared controller can keep up. The [`UploadQueue`] bounds
//! how much of that backlog the service will hold (with an explicit
//! [`DropPolicy`] for overflow), and the [`TokenBucket`] bounds how many
//! controller turns per service tick a single tenant may consume — so a
//! noisy tenant degrades *its own* tuning freshness, never a
//! neighbour's. Both are plain deterministic state: identical operation
//! sequences produce bit-identical queues and buckets, which is what
//! lets the serial and threaded schedulers agree byte-for-byte.

use paraleon_netsim::IntervalMetrics;

/// One fabric interval awaiting its controller turn: the merged metrics
/// the tenant's fabric produced for one λ_MI, parked at the service
/// until the scheduler grants the tenant a tuning turn.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingInterval {
    /// The interval's network-wide metrics (the controller's input).
    pub metrics: IntervalMetrics,
}

impl PendingInterval {
    /// Estimated heap footprint of this queued interval, for the
    /// controller-memory accounting in `exp_fleet`.
    pub fn memory_bytes(&self) -> usize {
        fn vec_bytes<T>(v: &[T]) -> usize {
            std::mem::size_of_val(v)
        }
        let m = &self.metrics;
        std::mem::size_of::<Self>()
            + vec_bytes(&m.switch_obs)
            + vec_bytes(&m.tor_sketches)
            + m.tor_sketches
                .iter()
                .map(|(_, v)| vec_bytes(v))
                .sum::<usize>()
            + vec_bytes(&m.truth_flow_bytes)
    }
}

/// What to shed when a tenant's upload queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPolicy {
    /// Evict the oldest queued interval to admit the new one — the
    /// controller prefers fresh fabric state over an unbroken history
    /// (the [`StalenessMerger`]'s weighting already favours recency).
    ///
    /// [`StalenessMerger`]: paraleon_monitor doc — see crates/monitor.
    DropOldest,
    /// Refuse the incoming interval — the controller prefers an
    /// unbroken prefix of history over recency.
    DropNewest,
}

/// Bounded FIFO of one tenant's not-yet-processed interval uploads.
#[derive(Debug, Clone)]
pub struct UploadQueue {
    items: std::collections::VecDeque<PendingInterval>,
    capacity: usize,
    policy: DropPolicy,
    /// Intervals shed by the drop policy since construction (monotone;
    /// survives snapshot restore — drops that happened, happened).
    pub dropped: u64,
}

impl UploadQueue {
    /// Empty queue holding at most `capacity` intervals (min 1).
    pub fn new(capacity: usize, policy: DropPolicy) -> Self {
        Self {
            items: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
            policy,
            dropped: 0,
        }
    }

    /// Enqueue one interval. Returns `true` if nothing was shed; on a
    /// full queue, sheds per the drop policy (counted in `dropped`) and
    /// returns `false`.
    pub fn push(&mut self, item: PendingInterval) -> bool {
        if self.items.len() < self.capacity {
            self.items.push_back(item);
            return true;
        }
        self.dropped += 1;
        match self.policy {
            DropPolicy::DropOldest => {
                self.items.pop_front();
                self.items.push_back(item);
            }
            DropPolicy::DropNewest => {}
        }
        false
    }

    /// Dequeue the oldest pending interval.
    pub fn pop(&mut self) -> Option<PendingInterval> {
        self.items.pop_front()
    }

    /// Pending intervals (the tenant's controller backlog).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no interval is pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum backlog this queue will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The overflow policy.
    pub fn policy(&self) -> DropPolicy {
        self.policy
    }

    /// Clone out the pending items, oldest first (snapshot support).
    pub fn items(&self) -> Vec<PendingInterval> {
        self.items.iter().cloned().collect()
    }

    /// Replace the pending items (restore support). Capacity, policy
    /// and the monotone drop counter are untouched.
    pub fn restore_items(&mut self, items: Vec<PendingInterval>) {
        self.items = items.into_iter().take(self.capacity).collect();
    }

    /// Estimated heap footprint of the queued backlog.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .items
                .iter()
                .map(PendingInterval::memory_bytes)
                .sum::<usize>()
    }
}

/// Per-tenant controller-turn rate limiter. Refilled once per service
/// tick; each tuning turn costs one token. Plain `f64` state with an
/// identical operation sequence in the serial and threaded schedulers,
/// so the two stay bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    tokens: f64,
    rate: f64,
    burst: f64,
}

impl TokenBucket {
    /// Bucket refilling `rate` tokens per tick, holding at most
    /// `burst`. Starts full so a freshly admitted tenant tunes
    /// immediately.
    pub fn new(rate: f64, burst: f64) -> Self {
        let burst = burst.max(rate);
        Self {
            tokens: burst,
            rate,
            burst,
        }
    }

    /// One service tick's refill.
    pub fn refill(&mut self) {
        self.tokens = (self.tokens + self.rate).min(self.burst);
    }

    /// Spend `n` tokens if available.
    pub fn try_take(&mut self, n: f64) -> bool {
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraleon_netsim::IntervalMetrics;

    fn interval(start: u64) -> PendingInterval {
        PendingInterval {
            metrics: IntervalMetrics {
                start,
                end: start + 1_000_000,
                avg_uplink_utilization: 0.5,
                avg_normalized_rtt: 1.0,
                avg_rtt_ns: 0.0,
                pfc_pause_ratio: 0.0,
                cnps: 0,
                ecn_marks: 0,
                drops: 0,
                fault_drops: 0,
                pfc_events: 0,
                bytes_delivered: 0,
                switch_obs: Vec::new(),
                tor_sketches: Vec::new(),
                truth_flow_bytes: Vec::new(),
            },
        }
    }

    #[test]
    fn drop_oldest_sheds_the_head() {
        let mut q = UploadQueue::new(2, DropPolicy::DropOldest);
        assert!(q.push(interval(0)));
        assert!(q.push(interval(1)));
        assert!(!q.push(interval(2)), "overflow must report the shed");
        assert_eq!(q.dropped, 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().metrics.start, 1, "oldest was shed");
        assert_eq!(q.pop().unwrap().metrics.start, 2);
    }

    #[test]
    fn drop_newest_refuses_the_incoming() {
        let mut q = UploadQueue::new(2, DropPolicy::DropNewest);
        q.push(interval(0));
        q.push(interval(1));
        assert!(!q.push(interval(2)));
        assert_eq!(q.dropped, 1);
        assert_eq!(q.pop().unwrap().metrics.start, 0, "prefix kept intact");
        assert_eq!(q.pop().unwrap().metrics.start, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn restore_items_keeps_drop_counter_and_capacity() {
        let mut q = UploadQueue::new(1, DropPolicy::DropOldest);
        q.push(interval(0));
        q.push(interval(1));
        assert_eq!(q.dropped, 1);
        let saved = q.items();
        q.pop();
        q.restore_items(saved);
        assert_eq!(q.len(), 1);
        assert_eq!(q.dropped, 1, "drops that happened, happened");
        assert_eq!(q.capacity(), 1);
    }

    #[test]
    fn bucket_starts_full_refills_and_caps_at_burst() {
        let mut b = TokenBucket::new(0.5, 2.0);
        assert!(b.try_take(1.0));
        assert!(b.try_take(1.0));
        assert!(!b.try_take(1.0), "empty after burst spent");
        b.refill();
        assert!(!b.try_take(1.0), "0.5 tokens is not a full turn");
        b.refill();
        assert!(b.try_take(1.0), "two refills accumulate a turn");
        for _ in 0..100 {
            b.refill();
        }
        assert_eq!(b.tokens(), 2.0, "refill saturates at burst");
    }

    #[test]
    fn bucket_burst_is_at_least_rate() {
        let b = TokenBucket::new(4.0, 1.0);
        assert_eq!(b.tokens(), 4.0, "burst clamps up to rate");
    }
}
