//! The fleet scheduler: one controller process, N tenant fabrics.
//!
//! [`FleetService::tick`] advances the whole fleet by one monitor
//! interval in two phases:
//!
//! * **Phase A (fabric)** — every tenant admits its due flows, delivers
//!   due control-plane dispatches, advances its fabric one λ_MI and
//!   collects interval metrics. Tenants are mutually independent, so
//!   phase A may run on worker threads ([`FleetConfig::threads`]); every
//!   telemetry emission is captured per tenant and replayed by the
//!   coordinator in ascending tenant id — the same order the serial
//!   scheduler emits in, which is what makes `--threads N` byte-
//!   identical to `--serial`.
//! * **Phase B (controller)** — the coordinator drains upload queues
//!   round-robin, spending one token-bucket token per tuning turn, at
//!   most [`FleetConfig::max_turns_per_tick`] turns per tenant per
//!   tick. A tenant whose bucket is empty is throttled (its backlog
//!   waits); a tenant with backlog that got no turn is starved. Both
//!   are counted — fairness is observable, not assumed.
//!
//! With the default config (2 tokens/tick, 2 turns/tick, queue depth
//! 64) the controller always keeps up with one upload per tenant per
//! tick, so each tenant's cell observes exactly the operation sequence
//! of its standalone [`ClosedLoop`] — bit-for-bit, which
//! `tests/fleet_properties.rs` and `exp_fleet --check` enforce.
//!
//! [`ClosedLoop`]: paraleon::prelude::ClosedLoop

use std::time::{Duration, Instant};

use paraleon_telemetry as tel;

use crate::queue::{DropPolicy, PendingInterval, TokenBucket};
use crate::tenant::{Tenant, TenantId, TenantSpec};

/// Scheduler knobs. The defaults guarantee the controller keeps up
/// with one upload per tenant per tick (rate 2 > 1 consumed), which is
/// the regime where fleet tenants match their standalone loops
/// byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Per-tenant upload queue depth.
    pub queue_capacity: usize,
    /// What to shed when a tenant's queue overflows.
    pub drop_policy: DropPolicy,
    /// Controller-turn tokens granted to each tenant per service tick.
    pub tokens_per_tick: f64,
    /// Token-bucket burst (idle tenants accumulate up to this).
    pub burst: f64,
    /// Hard cap on tuning turns one tenant may take in one tick, even
    /// with tokens to spend — bounds per-tick scheduling latency.
    pub max_turns_per_tick: u32,
    /// Phase-A worker threads (1 = serial). Results are byte-identical
    /// across any thread count.
    pub threads: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            drop_policy: DropPolicy::DropOldest,
            tokens_per_tick: 2.0,
            burst: 16.0,
            max_turns_per_tick: 2,
            threads: 1,
        }
    }
}

/// What one service tick did — returned by [`FleetService::tick`] so
/// harnesses can track scheduling latency and fairness live.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickReport {
    /// Tick index just completed (1-based after the first tick).
    pub tick: u64,
    /// Tuning turns granted across all tenants.
    pub turns: u32,
    /// Tenants whose turn was deferred by an empty token bucket.
    pub throttled: u32,
    /// Tenants that had backlog but received no turn at all.
    pub starved: u32,
    /// Interval uploads shed by full queues during enqueue.
    pub dropped: u64,
    /// Wall-clock spent advancing fabrics (phase A).
    pub phase_a: Duration,
    /// Wall-clock spent in the controller (phase B).
    pub phase_b: Duration,
}

/// Cumulative service counters (see also the `fleet_*` telemetry
/// counters, which track the same quantities globally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetStats {
    /// Service ticks completed.
    pub ticks: u64,
    /// Tenants admitted over the service lifetime.
    pub admits: u64,
    /// Tenants evicted over the service lifetime.
    pub evicts: u64,
    /// Turn deferrals due to empty token buckets.
    pub throttled: u64,
    /// Interval uploads shed by full queues (sum over live tenants).
    pub upload_drops: u64,
    /// Backlogged-but-unserved tenant-ticks (sum over live tenants).
    pub starved_turns: u64,
    /// Current total backlog, in intervals.
    pub backlog: usize,
}

/// Controller-as-a-service: one tuner process scheduling monitor
/// merges, tuning episodes and dispatches for a fleet of independent
/// simulated fabrics.
pub struct FleetService {
    /// Scheduler knobs (fixed at construction).
    pub cfg: FleetConfig,
    pub(crate) tenants: Vec<Tenant>,
    pub(crate) tick: u64,
    pub(crate) rr_cursor: usize,
    pub(crate) next_id: TenantId,
    pub(crate) admits: u64,
    pub(crate) evicts: u64,
    pub(crate) throttled: u64,
    /// Starved-turn total carried for tenants that were since evicted.
    pub(crate) starved_evicted: u64,
    /// Upload-drop total carried for tenants that were since evicted.
    pub(crate) drops_evicted: u64,
}

impl FleetService {
    /// Empty service.
    pub fn new(cfg: FleetConfig) -> Self {
        Self {
            cfg,
            tenants: Vec::new(),
            tick: 0,
            rr_cursor: 0,
            next_id: 1,
            admits: 0,
            evicts: 0,
            throttled: 0,
            starved_evicted: 0,
            drops_evicted: 0,
        }
    }

    /// Admit a tenant: build its fabric and cell from `spec` (identical
    /// construction to a standalone loop) and start scheduling it on
    /// the next tick. Returns the fleet-assigned id (nonzero, never
    /// reused).
    pub fn admit(&mut self, spec: TenantSpec) -> TenantId {
        let id = self.next_id;
        self.next_id += 1;
        let bucket = TokenBucket::new(self.cfg.tokens_per_tick, self.cfg.burst);
        self.tenants.push(Tenant::build(
            spec,
            id,
            self.cfg.queue_capacity,
            self.cfg.drop_policy,
            bucket,
        ));
        self.admits += 1;
        tel::count(tel::Ctr::FleetAdmits);
        id
    }

    /// Evict a tenant, returning it (fabric, cell, history and all) for
    /// inspection. `None` if no such tenant.
    pub fn evict(&mut self, id: TenantId) -> Option<Tenant> {
        let pos = self.tenants.iter().position(|t| t.id == id)?;
        let tenant = self.tenants.remove(pos);
        self.evicts += 1;
        self.starved_evicted += tenant.starved;
        self.drops_evicted += tenant.queue.dropped;
        tel::count(tel::Ctr::FleetEvicts);
        Some(tenant)
    }

    /// The tenant with id `id`.
    pub fn tenant(&self, id: TenantId) -> Option<&Tenant> {
        self.tenants.iter().find(|t| t.id == id)
    }

    /// Mutable access to the tenant with id `id`.
    pub fn tenant_mut(&mut self, id: TenantId) -> Option<&mut Tenant> {
        self.tenants.iter_mut().find(|t| t.id == id)
    }

    /// All live tenants, in ascending id order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Live tenant count.
    pub fn n_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Service ticks completed.
    pub fn tick_index(&self) -> u64 {
        self.tick
    }

    /// Cumulative service counters.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            ticks: self.tick,
            admits: self.admits,
            evicts: self.evicts,
            throttled: self.throttled,
            upload_drops: self.drops_evicted
                + self.tenants.iter().map(|t| t.queue.dropped).sum::<u64>(),
            starved_turns: self.starved_evicted
                + self.tenants.iter().map(|t| t.starved).sum::<u64>(),
            backlog: self.tenants.iter().map(|t| t.queue.len()).sum(),
        }
    }

    /// Controller-process memory footprint: every tenant's cell state
    /// plus queued backlog. Excludes the fabrics — this is what the
    /// shared tuner holds, the fleet's headline scaling metric.
    pub fn controller_memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .tenants
                .iter()
                .map(Tenant::controller_memory_bytes)
                .sum::<usize>()
    }

    /// Advance the whole fleet one monitor interval: phase A (fabrics,
    /// possibly threaded) then phase B (shared controller, always on
    /// the coordinator).
    pub fn tick(&mut self) -> TickReport {
        let t0 = Instant::now();
        // Phase A: advance every fabric, capturing telemetry per
        // tenant. The serial path captures on the coordinator, the
        // threaded path on workers — either way nothing is recorded
        // until the replay below, so both paths emit identically.
        let results: Vec<(Vec<tel::Captured>, PendingInterval)> =
            if self.cfg.threads > 1 && self.tenants.len() > 1 {
                self.phase_a_threaded()
            } else {
                self.tenants
                    .iter_mut()
                    .map(Tenant::advance_captured)
                    .collect()
            };
        // Replay and enqueue in ascending tenant id — the one canonical
        // emission order. The tenant id is stamped onto series entities
        // and flight events here (workers run untenanted).
        let mut dropped = 0u64;
        for (t, (captured, pending)) in self.tenants.iter_mut().zip(results) {
            tel::set_tenant(t.id);
            tel::capture_replay(&captured);
            tel::set_tenant(0);
            if !t.queue.push(pending) {
                dropped += 1;
                tel::count(tel::Ctr::FleetUploadDrops);
            }
        }
        let phase_a = t0.elapsed();

        // Phase B: round-robin controller turns, one token each.
        let t1 = Instant::now();
        let mut turns_total = 0u32;
        let mut throttled = 0u32;
        let mut starved = 0u32;
        let n = self.tenants.len();
        if n > 0 {
            let first = self.rr_cursor % n;
            for off in 0..n {
                let t = &mut self.tenants[(first + off) % n];
                t.bucket.refill();
                let mut turns = 0u32;
                while !t.queue.is_empty() && turns < self.cfg.max_turns_per_tick {
                    if !t.bucket.try_take(1.0) {
                        throttled += 1;
                        self.throttled += 1;
                        tel::count(tel::Ctr::FleetThrottled);
                        break;
                    }
                    let pending = t.queue.pop().expect("queue checked non-empty");
                    tel::set_tenant(t.id);
                    t.cell.process_interval(&mut t.sim, &pending.metrics);
                    tel::set_tenant(0);
                    turns += 1;
                }
                turns_total += turns;
                if turns == 0 && !t.queue.is_empty() {
                    t.starved += 1;
                    starved += 1;
                    tel::count(tel::Ctr::FleetStarvedTurns);
                }
            }
            self.rr_cursor = (self.rr_cursor + 1) % n;
        }
        self.tick += 1;
        tel::count(tel::Ctr::FleetTicks);
        TickReport {
            tick: self.tick,
            turns: turns_total,
            throttled,
            starved,
            dropped,
            phase_a,
            phase_b: t1.elapsed(),
        }
    }

    /// Run `n` service ticks.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Phase A on `cfg.threads` scoped workers, tenants split into
    /// contiguous chunks. Workers advance fabrics and capture telemetry
    /// on their own thread-local registries; results are joined back in
    /// chunk (= tenant id) order, so downstream processing is
    /// order-identical to the serial path.
    fn phase_a_threaded(&mut self) -> Vec<(Vec<tel::Captured>, PendingInterval)> {
        let threads = self.cfg.threads.min(self.tenants.len()).max(1);
        let per = self.tenants.len().div_ceil(threads);
        let mut out = Vec::with_capacity(self.tenants.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .tenants
                .chunks_mut(per)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter_mut()
                            .map(Tenant::advance_captured)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("fleet phase-A worker panicked"));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::standalone_run;
    use paraleon::prelude::*;

    fn clos_spec(seed: u64) -> TenantSpec {
        let mut spec = TenantSpec::new(TopoSpec::TwoTier(ClosSpec {
            n_tor: 2,
            hosts_per_tor: 2,
            n_leaf: 1,
            host_gbps: 25.0,
            uplink_gbps: 50.0,
            delay_ns: 1_000,
        }));
        spec.seed = seed;
        spec.schedule = synthetic_schedule(4, seed, 16);
        spec
    }

    fn rail_spec(seed: u64) -> TenantSpec {
        let mut spec = TenantSpec::new(TopoSpec::Rail(RailSpec {
            n_rail: 2,
            n_server: 2,
            n_spine: 1,
            host_gbps: 25.0,
            uplink_gbps: 50.0,
            delay_ns: 1_500,
        }));
        spec.seed = seed;
        spec.scheme = SchemeKind::Expert;
        spec.schedule = synthetic_schedule(4, seed, 16);
        spec
    }

    fn mixed_spec(seed: u64) -> TenantSpec {
        let mut spec = TenantSpec::new(TopoSpec::MixedRate(MixedRateSpec {
            n_tor: 2,
            hosts_per_tor: 2,
            n_leaf: 2,
            host_gbps: 25.0,
            fast_gbps: 50.0,
            slow_gbps: 25.0,
            delay_ns: 1_000,
        }));
        spec.seed = seed;
        spec.monitor = MonitorKind::NaiveSketch;
        spec.schedule = synthetic_schedule(4, seed, 16);
        spec
    }

    /// Deterministic elephant/mice mix: a few large flows early, then
    /// bursts of small flows — enough traffic that tuning has signal.
    fn synthetic_schedule(hosts: usize, seed: u64, intervals: u64) -> Vec<FlowRequest> {
        let half = hosts / 2;
        let mut flows = Vec::new();
        for i in 0..intervals {
            let t0 = i * MILLI;
            if i < 4 {
                flows.push(FlowRequest {
                    src: (i as usize + seed as usize) % half,
                    dst: half + (i as usize) % half,
                    bytes: 4_000_000,
                    start: t0,
                });
            } else {
                for k in 0..8usize {
                    flows.push(FlowRequest {
                        src: (k + seed as usize) % hosts,
                        dst: (k + seed as usize + half) % hosts,
                        bytes: 20_000,
                        start: t0 + k as u64 * 10_000,
                    });
                }
            }
        }
        flows
    }

    fn assert_tenant_matches_standalone(t: &Tenant, spec: &TenantSpec, ticks: u64) {
        let standalone = standalone_run(spec, ticks);
        assert_eq!(
            t.cell.history.len(),
            standalone.cell.history.len(),
            "tenant {} processed a different interval count",
            t.id
        );
        for (k, (a, b)) in t
            .cell
            .history
            .iter()
            .zip(standalone.cell.history.iter())
            .enumerate()
        {
            assert_eq!(a, b, "tenant {} interval {k} diverged", t.id);
        }
        assert_eq!(t.cell.last_params, standalone.cell.last_params);
        assert_eq!(t.completions, standalone.completions);
    }

    #[test]
    fn single_tenant_fleet_matches_standalone_bit_for_bit() {
        let spec = clos_spec(7);
        let mut fleet = FleetService::new(FleetConfig::default());
        let id = fleet.admit(spec.clone());
        fleet.run(16);
        let t = fleet.tenant(id).unwrap();
        assert_eq!(t.ticks, 16);
        assert!(
            t.queue.is_empty(),
            "default config keeps the controller caught up"
        );
        assert_tenant_matches_standalone(t, &spec, 16);
    }

    #[test]
    fn heterogeneous_fleet_every_tenant_matches_its_standalone() {
        let specs = [clos_spec(1), rail_spec(2), mixed_spec(3)];
        let mut fleet = FleetService::new(FleetConfig::default());
        let ids: Vec<_> = specs.iter().map(|s| fleet.admit(s.clone())).collect();
        fleet.run(12);
        for (id, spec) in ids.iter().zip(&specs) {
            assert_tenant_matches_standalone(fleet.tenant(*id).unwrap(), spec, 12);
        }
    }

    #[test]
    fn serial_and_threaded_fleets_are_byte_identical() {
        let specs = [clos_spec(11), rail_spec(12), mixed_spec(13)];
        let mut serial = FleetService::new(FleetConfig::default());
        let mut threaded = FleetService::new(FleetConfig {
            threads: 3,
            ..FleetConfig::default()
        });
        for s in &specs {
            serial.admit(s.clone());
            threaded.admit(s.clone());
        }
        serial.run(12);
        threaded.run(12);
        for (a, b) in serial.tenants().iter().zip(threaded.tenants()) {
            assert_eq!(a.cell.history, b.cell.history, "tenant {} diverged", a.id);
            assert_eq!(a.cell.last_params, b.cell.last_params);
            assert_eq!(a.completions, b.completions);
            assert_eq!(a.queue.len(), b.queue.len());
            assert_eq!(a.bucket, b.bucket);
        }
        assert_eq!(serial.stats(), threaded.stats());
    }

    #[test]
    fn starved_tenant_lags_but_neighbours_are_unaffected() {
        // Rate 0 with burst 2: the victim gets two turns ever, then
        // starves; the well-behaved neighbour must still match its
        // standalone loop exactly.
        let victim = clos_spec(21);
        let neighbour = rail_spec(22);
        let mut fleet = FleetService::new(FleetConfig {
            queue_capacity: 4,
            ..FleetConfig::default()
        });
        let vid = fleet.admit(victim);
        // Drain the victim's bucket to zero and stop refills.
        fleet.tenant_mut(vid).unwrap().bucket = TokenBucket::new(0.0, 0.0);
        let nid = fleet.admit(neighbour.clone());
        fleet.run(16);
        let v = fleet.tenant(vid).unwrap();
        assert_eq!(v.cell.history.len(), 0, "no tokens, no turns");
        assert!(v.starved > 0, "backlogged victim must be counted starved");
        assert!(
            v.queue.dropped > 0,
            "16 intervals into a 4-deep queue must shed"
        );
        assert_eq!(v.queue.len(), 4, "backlog capped at queue depth");
        let s = fleet.stats();
        assert!(s.throttled > 0);
        assert_eq!(s.upload_drops, v.queue.dropped);
        assert_tenant_matches_standalone(fleet.tenant(nid).unwrap(), &neighbour, 16);
    }

    #[test]
    fn admit_and_evict_mid_run() {
        let mut fleet = FleetService::new(FleetConfig::default());
        let a = fleet.admit(clos_spec(31));
        let b = fleet.admit(rail_spec(32));
        fleet.run(5);
        let c = fleet.admit(mixed_spec(33));
        fleet.run(5);
        let evicted = fleet.evict(a).expect("tenant a is live");
        assert_eq!(evicted.cell.history.len(), 10);
        assert!(fleet.evict(a).is_none(), "double-evict is None");
        fleet.run(5);
        assert_eq!(fleet.n_tenants(), 2);
        assert_eq!(fleet.tenant(b).unwrap().cell.history.len(), 15);
        assert_eq!(fleet.tenant(c).unwrap().cell.history.len(), 10);
        let s = fleet.stats();
        assert_eq!((s.admits, s.evicts, s.ticks), (3, 1, 15));
        // Ids are never reused.
        let d = fleet.admit(clos_spec(34));
        assert!(d > c);
    }

    #[test]
    fn telemetry_is_stamped_per_tenant() {
        tel::reset();
        tel::set_enabled(true);
        let mut fleet = FleetService::new(FleetConfig::default());
        let a = fleet.admit(clos_spec(41));
        let b = fleet.admit(rail_spec(42));
        fleet.run(4);
        tel::set_enabled(false);
        assert_eq!(tel::counter(tel::Ctr::FleetTicks), 4);
        assert_eq!(tel::counter(tel::Ctr::FleetAdmits), 2);
        // Each tenant's utility series lands on its own stamped entity.
        for id in [a, b] {
            let pts = tel::series_get("utility", tel::tenant_entity(id, 0));
            assert_eq!(pts.len(), 4, "tenant {id} utility series");
        }
        assert!(
            tel::series_get("utility", 0).is_empty(),
            "no emission leaks onto the untenanted entity"
        );
        tel::reset();
    }
}
