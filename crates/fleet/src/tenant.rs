//! One fleet tenant: a simulated fabric plus the controller-side
//! [`TunerCell`] the service schedules on its behalf.
//!
//! A tenant is exactly the state of one standalone [`ClosedLoop`] —
//! [`Tenant::build`] constructs a `ClosedLoop` through the ordinary
//! builder and destructures it, so a fleet tenant and a standalone loop
//! start from bit-identical state. The difference is *when* the
//! controller half runs: a standalone loop tunes synchronously at every
//! interval boundary, while a fleet tenant's fabric advances in phase A
//! of the service tick and parks its interval metrics on an upload
//! queue for the shared scheduler to process in phase B. When the
//! scheduler keeps up (the default config guarantees one turn per
//! interval), the operation sequence the cell observes is identical to
//! [`ClosedLoop::step`]'s — which is the fleet's headline byte-identity
//! property, checked against [`standalone_run`].

use paraleon::prelude::*;
use paraleon::Nanos;
use paraleon_netsim::Engine;
use paraleon_telemetry as tel;

use crate::queue::{DropPolicy, PendingInterval, TokenBucket, UploadQueue};

/// Fleet-assigned tenant identity. Nonzero — telemetry entity id 0 is
/// reserved for untenanted (standalone) emission, and the tenant id is
/// stamped into the high 16 bits of every series entity the tenant's
/// cell emits (see `paraleon_telemetry::tenant_entity`).
pub type TenantId = u32;

/// Everything needed to (re)build one tenant's fabric and controller:
/// topology, scheme, monitor, guardrail, control plane, loop knobs,
/// simulator config, fault plan, seed and offered workload.
#[derive(Clone)]
pub struct TenantSpec {
    /// Fabric topology family and dimensions.
    pub topo: TopoSpec,
    /// Tuning scheme driven by this tenant's cell.
    pub scheme: SchemeKind,
    /// Controller-side FSD monitor.
    pub monitor: MonitorKind,
    /// Optional deployment guardrail.
    pub guardrail: Option<GuardrailConfig>,
    /// Control-plane knobs. Always armed: the fleet checkpoint requires
    /// it, and an armed clean channel is byte-identical to the direct
    /// loop anyway.
    pub ctrl: CtrlPlaneConfig,
    /// Closed-loop knobs (λ_MI, utility weights, trigger).
    pub loop_cfg: LoopConfig,
    /// Simulator configuration (DCQCN initial parameters, etc.).
    pub sim_cfg: SimConfig,
    /// Optional fault plan (data-plane and control-plane events).
    pub fault_plan: Option<FaultPlan>,
    /// Master seed for the fabric and tuner RNGs.
    pub seed: u64,
    /// Engine shards for this tenant's fabric (1 = serial engine).
    pub engine_threads: usize,
    /// Offered flows, sorted by start time. Admitted with a 2·λ_MI
    /// lookahead horizon as the fabric advances.
    pub schedule: Vec<FlowRequest>,
}

impl TenantSpec {
    /// Spec with the paper-default loop over `topo`: PARALEON scheme
    /// and monitor, default control plane, no guardrail, no faults,
    /// serial engine, empty schedule.
    pub fn new(topo: TopoSpec) -> Self {
        Self {
            topo,
            scheme: SchemeKind::Paraleon,
            monitor: MonitorKind::Paraleon,
            guardrail: None,
            ctrl: CtrlPlaneConfig::default(),
            loop_cfg: LoopConfig::default(),
            sim_cfg: SimConfig::default(),
            fault_plan: None,
            seed: 1,
            engine_threads: 1,
            schedule: Vec::new(),
        }
    }

    /// Build the standalone closed loop this spec describes. Both the
    /// fleet tenant and the [`standalone_run`] comparator construct
    /// through here, so they cannot drift apart.
    pub fn closed_loop(&self) -> ClosedLoop {
        let mut b = ClosedLoop::builder(self.topo.build())
            .scheme(self.scheme.clone())
            .monitor(self.monitor.clone())
            .sim_config(self.sim_cfg.clone())
            .loop_config(self.loop_cfg.clone())
            .ctrl_plane(self.ctrl.clone())
            .seed(self.seed)
            .parallel(self.engine_threads);
        if let Some(g) = &self.guardrail {
            b = b.guardrail(g.clone());
        }
        let mut cl = b.build();
        if let Some(plan) = &self.fault_plan {
            cl.install_fault_plan(plan)
                .expect("tenant fault plan must be valid for its topology");
        }
        cl
    }
}

/// Admit every scheduled flow whose requested start falls within the
/// 2·λ_MI lookahead horizon. Shared verbatim by [`Tenant::advance`] and
/// [`standalone_run`] — the admission rule is part of the byte-identity
/// contract between them.
fn admit_due(sim: &mut Engine, schedule: &[FlowRequest], next: &mut usize, lambda: Nanos) {
    let horizon = sim.now() + 2 * lambda;
    while *next < schedule.len() && schedule[*next].start <= horizon {
        let f = schedule[*next];
        sim.add_flow(f.src, f.dst, f.bytes, f.start.max(sim.now()));
        *next += 1;
    }
}

/// Run `spec` as an ordinary standalone [`ClosedLoop`] for `ticks`
/// monitor intervals — the comparator the fleet's byte-identity checks
/// measure against. Uses [`ClosedLoop::step`], not any fleet code path.
pub fn standalone_run(spec: &TenantSpec, ticks: u64) -> ClosedLoop {
    let mut cl = spec.closed_loop();
    let mut next = 0usize;
    for _ in 0..ticks {
        admit_due(
            &mut cl.sim,
            &spec.schedule,
            &mut next,
            cl.cell.cfg.lambda_mi,
        );
        cl.step();
    }
    cl
}

/// One admitted tenant: fabric, controller cell, upload queue and rate
/// limiter, plus the fabric-side interval clock.
pub struct Tenant {
    /// Fleet-assigned identity (nonzero).
    pub id: TenantId,
    /// The tenant's fabric.
    pub sim: Engine,
    /// The tenant's controller state (monitor merge, trigger, scheme,
    /// guardrail, dispatch protocol, history, ledger).
    pub cell: TunerCell,
    /// All flow completions observed so far.
    pub completions: Vec<FlowRecord>,
    /// Interval uploads awaiting their controller turn.
    pub queue: UploadQueue,
    /// Controller-turn rate limiter.
    pub bucket: TokenBucket,
    /// Monitor intervals the *fabric* has advanced — the tenant's
    /// control-channel clock. Equals `cell.interval_index()` exactly
    /// when the controller has no backlog.
    pub ticks: u64,
    /// Service ticks in which this tenant had backlog but received no
    /// controller turn.
    pub starved: u64,
    spec: TenantSpec,
    next_flow: usize,
}

impl Tenant {
    /// Build a tenant from its spec via the ordinary [`ClosedLoop`]
    /// builder (bit-identical initial state to a standalone loop).
    pub(crate) fn build(
        spec: TenantSpec,
        id: TenantId,
        queue_capacity: usize,
        policy: DropPolicy,
        bucket: TokenBucket,
    ) -> Self {
        let ClosedLoop {
            sim,
            cell,
            completions,
        } = spec.closed_loop();
        Self {
            id,
            sim,
            cell,
            completions,
            queue: UploadQueue::new(queue_capacity, policy),
            bucket,
            ticks: 0,
            starved: 0,
            spec,
            next_flow: 0,
        }
    }

    /// This tenant's monitor interval λ_MI.
    pub fn lambda(&self) -> Nanos {
        self.cell.cfg.lambda_mi
    }

    /// The spec this tenant was admitted with.
    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    /// Pending controller backlog, in intervals.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Scheduled flows not yet admitted to the fabric.
    pub fn flows_not_yet_admitted(&self) -> usize {
        self.spec.schedule.len() - self.next_flow
    }

    /// Phase-A work: admit due flows, deliver due control-plane
    /// dispatches, advance the fabric one λ_MI, and collect the
    /// interval's metrics. Mirrors the fabric half of
    /// [`ClosedLoop::step`] exactly, with the tenant's fabric tick
    /// standing in for the cell's interval index as control-channel
    /// time (they agree whenever the controller has no backlog).
    pub(crate) fn advance(&mut self) -> PendingInterval {
        let lambda = self.cell.cfg.lambda_mi;
        admit_due(
            &mut self.sim,
            &self.spec.schedule,
            &mut self.next_flow,
            lambda,
        );
        self.cell.deliver_due_dispatches(&mut self.sim, self.ticks);
        let target = self.sim.now() + lambda;
        self.sim.run_until(target);
        let metrics = self.sim.collect_interval();
        self.completions.extend(self.sim.take_completions());
        self.ticks += 1;
        PendingInterval { metrics }
    }

    /// [`Tenant::advance`] with every telemetry emission diverted into
    /// a capture buffer, so worker threads need no telemetry state and
    /// the coordinator can replay all tenants' emissions in one
    /// deterministic order (ascending tenant id) in both the serial and
    /// threaded schedulers.
    pub(crate) fn advance_captured(&mut self) -> (Vec<tel::Captured>, PendingInterval) {
        tel::capture_begin();
        let pending = self.advance();
        (tel::capture_take(), pending)
    }

    /// Controller-side memory footprint: cell state plus queued
    /// backlog. Excludes the fabric — the service's headline metric is
    /// what one tuner *process* holds for N tenants.
    pub fn controller_memory_bytes(&self) -> usize {
        self.cell.memory_bytes() + self.queue.memory_bytes() + std::mem::size_of::<TokenBucket>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> TenantSpec {
        let mut spec = TenantSpec::new(TopoSpec::TwoTier(ClosSpec {
            n_tor: 2,
            hosts_per_tor: 2,
            n_leaf: 1,
            host_gbps: 25.0,
            uplink_gbps: 50.0,
            delay_ns: 1_000,
        }));
        spec.schedule = vec![
            FlowRequest {
                src: 0,
                dst: 2,
                bytes: 2_000_000,
                start: 0,
            },
            FlowRequest {
                src: 1,
                dst: 3,
                bytes: 500_000,
                start: 3 * MILLI,
            },
        ];
        spec
    }

    #[test]
    fn standalone_run_admits_and_completes_flows() {
        let cl = standalone_run(&tiny_spec(), 20);
        assert_eq!(cl.cell.history.len(), 20);
        assert_eq!(cl.completions.len(), 2, "both scheduled flows finish");
    }

    #[test]
    fn tenant_fabric_clock_tracks_advances() {
        let mut t = Tenant::build(
            tiny_spec(),
            1,
            8,
            DropPolicy::DropOldest,
            TokenBucket::new(2.0, 4.0),
        );
        for k in 0..5u64 {
            assert_eq!(t.ticks, k);
            let pending = t.advance();
            assert_eq!(pending.metrics.end, (k + 1) * MILLI);
        }
        assert_eq!(t.cell.history.len(), 0, "phase A never runs the cell");
    }
}
