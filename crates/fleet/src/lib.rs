//! Controller-as-a-service: one PARALEON tuner process managing a
//! fleet of simulated fabrics.
//!
//! The paper's deployment story is a *shared* controller: one tuning
//! service monitors and re-parameterizes many independent RDMA fabrics,
//! rather than each fabric running its own controller stack. This crate
//! models that service over the existing building blocks — each tenant
//! is one `(topology, workload, fault plan, DCQCN seed)` fabric on the
//! ordinary [`Engine`], paired with the controller state extracted into
//! [`TunerCell`] — under one deterministic cooperative scheduler.
//!
//! The service tick is two-phase (see [`service`]): fabrics advance one
//! λ_MI each (optionally on worker threads), then the coordinator
//! drains per-tenant upload queues round-robin under token-bucket rate
//! limits. Backpressure is typed and observable — bounded queues with
//! an explicit [`DropPolicy`], throttle/starvation counters — and the
//! whole service checkpoints into a [`FleetSnapshot`] that restores
//! mid-run, with or without crash semantics. Tenants can be admitted
//! and evicted at runtime.
//!
//! Two properties anchor everything (enforced in tests and by
//! `exp_fleet --check`):
//!
//! 1. **Standalone equivalence** — when queues never saturate, each
//!    tenant's interval history, tuned parameters and flow completions
//!    are bit-identical to the same spec run as a standalone
//!    [`ClosedLoop`].
//! 2. **Thread-count invariance** — the fleet's results (including
//!    telemetry emission order) are byte-identical between `threads: 1`
//!    and any `threads: N`.
//!
//! [`Engine`]: paraleon_netsim::Engine
//! [`TunerCell`]: paraleon::prelude::TunerCell
//! [`ClosedLoop`]: paraleon::prelude::ClosedLoop

pub mod queue;
pub mod service;
pub mod snapshot;
pub mod tenant;

pub use queue::{DropPolicy, PendingInterval, TokenBucket, UploadQueue};
pub use service::{FleetConfig, FleetService, FleetStats, TickReport};
pub use snapshot::{FleetSnapshot, RestoreError, TenantSnapshot};
pub use tenant::{standalone_run, Tenant, TenantId, TenantSpec};
