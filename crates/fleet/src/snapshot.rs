//! Whole-service checkpoints: freeze every tenant's controller state,
//! queued backlog and rate-limiter in one [`FleetSnapshot`], and bring
//! a live fleet back to it — either as a pure state restore
//! ([`FleetService::restore`], identity when applied at the snapshot
//! instant) or with crash semantics ([`FleetService::crash_restore`]:
//! in-flight control messages die and every tenant's believed
//! parameters are re-asserted at a fresh epoch).
//!
//! The fabric side is deliberately *not* part of the snapshot: the
//! controller process is what crashes and restores; the fabrics keep
//! running (their clocks, flows and applied parameters are device
//! state). That is why `restore` at an arbitrary later time is not
//! meaningful — use `crash_restore`, whose resync protocol re-converges
//! fabric and controller, for that.

use paraleon::prelude::CellSnapshot;

use crate::queue::{PendingInterval, TokenBucket};
use crate::service::FleetService;
use crate::tenant::TenantId;

/// One tenant's controller-side checkpoint.
pub struct TenantSnapshot {
    /// Which tenant this freezes.
    pub id: TenantId,
    pub(crate) cell: CellSnapshot,
    pub(crate) queue: Vec<PendingInterval>,
    pub(crate) bucket: TokenBucket,
}

/// A whole-service checkpoint: scheduler clocks plus every live
/// tenant's [`TenantSnapshot`], in ascending id order.
pub struct FleetSnapshot {
    pub(crate) tick: u64,
    pub(crate) rr_cursor: usize,
    pub(crate) next_id: TenantId,
    pub(crate) tenants: Vec<TenantSnapshot>,
}

impl FleetSnapshot {
    /// Service tick the snapshot was taken at.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Ids of the tenants frozen in this snapshot.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants.iter().map(|t| t.id).collect()
    }
}

/// Why a restore was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The live tenant set does not match the snapshot's (same ids, in
    /// order, are required — a fabric cannot be conjured from a
    /// controller checkpoint).
    TenantSetMismatch {
        /// Tenant ids frozen in the snapshot.
        snapshot: Vec<TenantId>,
        /// Tenant ids live in the service.
        live: Vec<TenantId>,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::TenantSetMismatch { snapshot, live } => write!(
                f,
                "fleet restore: snapshot tenants {snapshot:?} != live tenants {live:?}"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

impl FleetService {
    /// Checkpoint the whole service. `None` if any tenant's control
    /// plane is not armed (cells checkpoint through their dispatch
    /// protocol; [`crate::TenantSpec`] always arms it).
    pub fn snapshot(&self) -> Option<FleetSnapshot> {
        let mut tenants = Vec::with_capacity(self.tenants.len());
        for t in &self.tenants {
            tenants.push(TenantSnapshot {
                id: t.id,
                cell: t.cell.checkpoint()?,
                queue: t.queue.items(),
                bucket: t.bucket.clone(),
            });
        }
        Some(FleetSnapshot {
            tick: self.tick,
            rr_cursor: self.rr_cursor,
            next_id: self.next_id,
            tenants,
        })
    }

    /// Match live tenants against the snapshot's, in order.
    fn check_tenant_set(&self, snap: &FleetSnapshot) -> Result<(), RestoreError> {
        let live: Vec<TenantId> = self.tenants.iter().map(|t| t.id).collect();
        let snapped = snap.tenant_ids();
        if live != snapped {
            return Err(RestoreError::TenantSetMismatch {
                snapshot: snapped,
                live,
            });
        }
        Ok(())
    }

    /// Pure state restore, no crash side effects: every tenant's cell,
    /// queued backlog and bucket rewind to the snapshot, along with the
    /// scheduler clocks. Only identity-preserving when applied at the
    /// instant the snapshot was taken (the fabrics never rewind); for
    /// restoration at a later time use [`FleetService::crash_restore`].
    pub fn restore(&mut self, snap: &FleetSnapshot) -> Result<(), RestoreError> {
        self.check_tenant_set(snap)?;
        for (t, ts) in self.tenants.iter_mut().zip(&snap.tenants) {
            t.cell.restore(&ts.cell);
            t.queue.restore_items(ts.queue.clone());
            t.bucket = ts.bucket.clone();
        }
        self.tick = snap.tick;
        self.rr_cursor = snap.rr_cursor;
        self.next_id = snap.next_id;
        Ok(())
    }

    /// Warm-restore with crash semantics, mid-run: the controller
    /// process died and came back from this checkpoint while every
    /// fabric kept running. Per tenant: in-flight messages addressed to
    /// the controller die, the cell rewinds to the snapshot, and the
    /// believed parameters are re-asserted at a fresh epoch against the
    /// tenant's *current* fabric clock — so each conversation
    /// re-converges (`ctrl_diverged` returns to `false` once quiet).
    /// Scheduler clocks are not rewound: the service keeps ticking
    /// forward from now.
    pub fn crash_restore(&mut self, snap: &FleetSnapshot) -> Result<(), RestoreError> {
        self.check_tenant_set(snap)?;
        for (t, ts) in self.tenants.iter_mut().zip(&snap.tenants) {
            paraleon_telemetry::set_tenant(t.id);
            t.cell.crash_restore(&ts.cell, t.ticks);
            paraleon_telemetry::set_tenant(0);
            t.queue.restore_items(ts.queue.clone());
            t.bucket = ts.bucket.clone();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{FleetConfig, FleetService};
    use crate::tenant::TenantSpec;
    use paraleon::prelude::*;

    fn spec(seed: u64) -> TenantSpec {
        let mut spec = TenantSpec::new(TopoSpec::TwoTier(ClosSpec {
            n_tor: 2,
            hosts_per_tor: 2,
            n_leaf: 1,
            host_gbps: 25.0,
            uplink_gbps: 50.0,
            delay_ns: 1_000,
        }));
        spec.seed = seed;
        spec.schedule = (0..24u64)
            .map(|i| FlowRequest {
                src: (i % 2) as usize,
                dst: 2 + (i % 2) as usize,
                bytes: if i % 3 == 0 { 2_000_000 } else { 40_000 },
                start: i * MILLI / 2,
            })
            .collect();
        spec
    }

    #[test]
    fn snapshot_restore_at_same_instant_is_identity() {
        let mut fleet = FleetService::new(FleetConfig::default());
        let mut control = FleetService::new(FleetConfig::default());
        for s in [spec(1), spec(2)] {
            fleet.admit(s.clone());
            control.admit(s);
        }
        fleet.run(8);
        control.run(8);
        let snap = fleet.snapshot().expect("armed cells checkpoint");
        assert_eq!(snap.tick(), 8);
        fleet.restore(&snap).unwrap();
        fleet.run(8);
        control.run(8);
        for (a, b) in fleet.tenants().iter().zip(control.tenants()) {
            assert_eq!(a.cell.history, b.cell.history, "tenant {}", a.id);
            assert_eq!(a.cell.last_params, b.cell.last_params);
            assert_eq!(a.completions, b.completions);
        }
        assert_eq!(fleet.tick_index(), control.tick_index());
    }

    #[test]
    fn restore_refuses_a_mismatched_tenant_set() {
        let mut fleet = FleetService::new(FleetConfig::default());
        let a = fleet.admit(spec(1));
        fleet.admit(spec(2));
        fleet.run(2);
        let snap = fleet.snapshot().unwrap();
        fleet.evict(a).unwrap();
        let err = fleet.restore(&snap).unwrap_err();
        let RestoreError::TenantSetMismatch { snapshot, live } = err;
        assert_eq!(snapshot.len(), 2);
        assert_eq!(live.len(), 1);
    }

    #[test]
    fn crash_restore_reconverges_every_tenant() {
        let mut fleet = FleetService::new(FleetConfig::default());
        for s in [spec(5), spec(6)] {
            fleet.admit(s);
        }
        fleet.run(10);
        let snap = fleet.snapshot().unwrap();
        fleet.run(5);
        fleet.crash_restore(&snap).unwrap();
        // The resync dispatch needs a few intervals to land and ACK;
        // settle until every conversation is quiet (bounded).
        let mut extra = 0;
        while fleet.tenants().iter().any(|t| !t.cell.ctrl_quiet()) && extra < 20 {
            fleet.tick();
            extra += 1;
        }
        for t in fleet.tenants() {
            assert!(
                t.cell.ctrl_quiet(),
                "tenant {} control plane still busy",
                t.id
            );
            assert!(
                !t.cell.ctrl_diverged(&t.sim),
                "tenant {} fabric and controller disagree after crash restore",
                t.id
            );
        }
        assert!(
            fleet.tick_index() >= 15,
            "crash restore never rewinds ticks"
        );
    }
}
