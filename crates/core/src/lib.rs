//! PARALEON: automatic and adaptive tuning for DCQCN parameters in RDMA
//! networks — a full reproduction of the paper's system in Rust.
//!
//! This crate is the public face of the reproduction. It wires the
//! substrate crates into the paper's closed loop (Figure 1):
//!
//! ```text
//!            ┌──────────────────────── controller ───────────────────────┐
//!            │  Runtime Metric Monitor          Performance-oriented     │
//!            │  (FSD aggregation, KL trigger)   Tuning (guided SA)       │
//!            └───────▲──────────────────────────────────┬────────────────┘
//!            sketches│ + throughput/RTT/PFC             │ DCQCN params
//!        ┌───────────┴───────────┐          ┌───────────▼───────────┐
//!        │ ToR switches (Elastic │          │  RNICs (per-QP DCQCN  │
//!        │ Sketch, ECN, PFC)     │          │  RP/NP state machines)│
//!        └───────────────────────┘          └───────────────────────┘
//! ```
//!
//! * [`ClosedLoop`] — drives one simulated fabric one monitor interval
//!   (λ_MI) at a time: collect metrics → estimate the network-wide FSD →
//!   KL trigger → tuning round → dispatch.
//! * [`schemes::SchemeKind`] / [`schemes::MonitorKind`] — factories for
//!   every tuning scheme and monitoring scheme the paper evaluates.
//! * [`drivers`] — workload drivers (Poisson open-loop, ON-OFF alltoall)
//!   shared by the examples and the experiment harness.
//! * [`stats`] — FCT/percentile helpers used to regenerate the paper's
//!   tables and figures.
//!
//! # Quickstart
//!
//! ```
//! use paraleon::prelude::*;
//!
//! // A small 2-ToR fabric running PARALEON with the paper's settings.
//! let topo = Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000);
//! let mut cl = ClosedLoop::builder(topo)
//!     .scheme(SchemeKind::Paraleon)
//!     .monitor(MonitorKind::Paraleon)
//!     .build();
//! cl.sim.add_flow(0, 5, 2_000_000, 0);
//! cl.run_until(5 * MILLI);
//! assert_eq!(cl.completions.len(), 1);
//! ```

pub mod closed_loop;
pub mod ctrl_plane;
pub mod drivers;
pub mod guardrail;
pub mod schemes;
pub mod stats;
pub mod tuner_cell;

pub use closed_loop::{ClosedLoop, ClosedLoopBuilder, IntervalRecord, LoopConfig};
pub use ctrl_plane::{CtrlPlane, CtrlPlaneConfig, CtrlPlaneStats, DownMsg, UpMsg};
pub use guardrail::{
    GuardAction, Guardrail, GuardrailConfig, GuardrailStats, RejectReason, ScreenOutcome,
};
pub use schemes::{MonitorKind, SchemeKind};
pub use tuner_cell::{CellSnapshot, TunerCell};

/// Re-exports for harness and example code.
pub mod prelude {
    pub use crate::closed_loop::{ClosedLoop, IntervalRecord, LoopConfig};
    pub use crate::ctrl_plane::{CtrlPlaneConfig, CtrlPlaneStats};
    pub use crate::drivers;
    pub use crate::guardrail::{
        GuardAction, Guardrail, GuardrailConfig, GuardrailStats, ScreenOutcome,
    };
    pub use crate::schemes::{MonitorKind, SchemeKind};
    pub use crate::stats;
    pub use crate::tuner_cell::{CellSnapshot, TunerCell};
    pub use paraleon_dcqcn::{DcqcnParams, ParamId, ParamSpace};
    pub use paraleon_monitor::UtilityWeights;
    pub use paraleon_netsim::{
        ClosSpec, FaultEvent, FaultKind, FaultPlan, FlowRecord, MixedRateSpec, RailSpec, SimConfig,
        SimError, Simulator, ThreeTierSpec, TopoSpec, Topology, MICRO, MILLI, SEC,
    };
    pub use paraleon_sketch::{FlowType, Fsd, WindowConfig};
    pub use paraleon_tuner::SaConfig;
    pub use paraleon_workloads::{
        AllToAll, AllToAllConfig, Collective, CollectiveError, FlowRequest, FlowSizeDist,
        PipelineBurst, PipelineConfig, PoissonConfig, PoissonWorkload, Progress, RingAllreduce,
        RingConfig, TreeAllreduce, TreeConfig,
    };
}

/// Nanoseconds (simulator clock).
pub type Nanos = u64;
