//! Deployment safety for the closed loop: parameter validation,
//! post-dispatch collapse detection with rollback, and safe mode.
//!
//! The poster's pitch is *automatic* tuning of a production RoCEv2
//! fabric — which is only deployable if a bad candidate cannot take the
//! fabric down. One mis-set DCQCN vector (deep ECN thresholds, sparse
//! CNPs, aggressive increase) disables congestion control, fills shared
//! buffers, and turns PFC into a fabric-wide storm. The [`Guardrail`]
//! sits between the tuner and the dispatch path:
//!
//! 1. **Validation** — candidates outside the sane [`ParamSpace`]
//!    bounds (or non-finite, or with inverted ECN thresholds) are
//!    refused before they reach a single device.
//! 2. **Hold-down** — after every global dispatch the fabric is watched
//!    for `hold_down_intervals` monitor intervals; a utility collapse,
//!    PFC pause-ratio spike or goodput floor-break rolls the fabric
//!    back to the last-known-good snapshot.
//! 3. **Safe mode** — after `rollbacks_to_safe_mode` consecutive
//!    rollbacks the guardrail deploys the paper-default fallback and
//!    freezes tuning, with exponential backoff on repeated entries.
//! 4. **Staleness** — switches that stop uploading are aged out of the
//!    health picture instead of silently skewing it.
//!
//! The state machine is pure (no simulator access): `ClosedLoop` calls
//! [`Guardrail::screen`] on every tuner action and
//! [`Guardrail::observe`] on every interval's health signals, and
//! applies whatever comes back.

use std::collections::HashMap;

use paraleon_dcqcn::{DcqcnParams, ParamId, ParamSpace};
use paraleon_tuner::TuningAction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// One serializable snapshot of the guardrail's event counters — what a
/// harness (fault experiment, anomaly-hunter oracle) reads after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct GuardrailStats {
    /// Candidates refused by validation.
    pub rejects: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Safe-mode entries.
    pub safe_mode_entries: u64,
    /// Actions swallowed while frozen.
    pub suppressed: u64,
    /// Whether tuning is frozen right now.
    pub in_safe_mode: bool,
}

/// Why a candidate parameter set was refused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RejectReason {
    /// A parameter is NaN or infinite.
    NonFinite(ParamId),
    /// A parameter violates its [`ParamSpace`] bounds.
    OutOfBounds {
        /// The offending parameter.
        id: ParamId,
        /// Its proposed value.
        value: f64,
        /// The sane lower bound.
        min: f64,
        /// The sane upper bound.
        max: f64,
    },
    /// `K_min > K_max`: the RED/ECN marking ramp is inverted.
    InvertedEcnThresholds {
        /// Proposed K_min (KB).
        k_min: f64,
        /// Proposed K_max (KB).
        k_max: f64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RejectReason::NonFinite(id) => write!(f, "{} is not finite", id.name()),
            RejectReason::OutOfBounds {
                id,
                value,
                min,
                max,
            } => write!(f, "{} = {value} outside [{min}, {max}]", id.name()),
            RejectReason::InvertedEcnThresholds { k_min, k_max } => {
                write!(f, "inverted ECN thresholds: K_min {k_min} > K_max {k_max}")
            }
        }
    }
}

/// Validate a candidate against the sane bounds: every parameter finite
/// and inside its [`ParamSpace`] interval, ECN ramp not inverted.
pub fn validate(p: &DcqcnParams, space: &ParamSpace) -> Result<(), RejectReason> {
    for s in space.iter() {
        let v = p.get(s.id);
        if !v.is_finite() {
            return Err(RejectReason::NonFinite(s.id));
        }
        if v < s.min || v > s.max {
            return Err(RejectReason::OutOfBounds {
                id: s.id,
                value: v,
                min: s.min,
                max: s.max,
            });
        }
    }
    if p.k_min > p.k_max {
        return Err(RejectReason::InvertedEcnThresholds {
            k_min: p.k_min,
            k_max: p.k_max,
        });
    }
    Ok(())
}

/// Guardrail tuning knobs.
#[derive(Debug, Clone)]
pub struct GuardrailConfig {
    /// Sane bounds candidates are validated against.
    pub space: ParamSpace,
    /// Monitor intervals a dispatched candidate is watched before being
    /// committed as the new last-known-good (the detection window: a
    /// collapse inside it triggers rollback).
    pub hold_down_intervals: u32,
    /// Collapse signal: utility below this fraction of the healthy
    /// baseline.
    pub utility_collapse_frac: f64,
    /// Collapse signal: goodput below this fraction of the healthy
    /// baseline.
    pub goodput_floor_frac: f64,
    /// Collapse signal: absolute PFC pause ratio above this value.
    pub pfc_pause_spike: f64,
    /// Healthy intervals required before collapse detection arms (the
    /// baselines need warm-up).
    pub min_baseline_intervals: u32,
    /// Consecutive rollbacks that escalate to safe mode.
    pub rollbacks_to_safe_mode: u32,
    /// Initial safe-mode freeze length, in monitor intervals. Doubles on
    /// each re-entry (exponential backoff) up to `max_backoff_intervals`.
    pub safe_mode_backoff_intervals: u32,
    /// Backoff ceiling.
    pub max_backoff_intervals: u32,
    /// The fallback deployed on safe-mode entry (paper default).
    pub safe_params: DcqcnParams,
    /// Intervals a switch may stop uploading before it is aged out of
    /// the health picture.
    pub stale_after_intervals: u32,
    /// EWMA weight for the healthy-baseline trackers.
    pub baseline_ewma_alpha: f64,
    /// Fractional jitter on each safe-mode freeze length: the backoff is
    /// stretched by up to `backoff_jitter × backoff` extra intervals,
    /// drawn from the guardrail's seeded jitter stream. Desynchronises
    /// safe-mode exits across controllers sharing a fault. `0.0`
    /// (default) draws nothing and keeps the freeze lengths exact.
    pub backoff_jitter: f64,
}

impl Default for GuardrailConfig {
    fn default() -> Self {
        Self {
            space: ParamSpace::standard(),
            hold_down_intervals: 8,
            utility_collapse_frac: 0.6,
            goodput_floor_frac: 0.5,
            pfc_pause_spike: 0.25,
            min_baseline_intervals: 4,
            rollbacks_to_safe_mode: 3,
            safe_mode_backoff_intervals: 16,
            max_backoff_intervals: 256,
            safe_params: DcqcnParams::nvidia_default(),
            stale_after_intervals: 16,
            baseline_ewma_alpha: 0.2,
            backoff_jitter: 0.0,
        }
    }
}

/// Result of screening one tuner action.
#[derive(Debug, Clone, PartialEq)]
pub enum ScreenOutcome {
    /// The action is safe to apply (per-switch actions may have been
    /// filtered down to the entries targeting live, in-range switches).
    Dispatch(TuningAction),
    /// The action was refused outright; nothing reaches the fabric.
    Rejected(RejectReason),
    /// The action was swallowed: tuning is frozen (safe mode), or
    /// filtering left nothing to apply.
    Suppressed,
}

/// A corrective action the guardrail asks the loop to perform after
/// observing one interval's health.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardAction {
    /// Collapse detected inside the hold-down window: restore this
    /// last-known-good setting fabric-wide.
    Rollback(DcqcnParams),
    /// Too many consecutive rollbacks: deploy the fallback and freeze
    /// tuning for `backoff_intervals`.
    EnterSafeMode {
        /// The fallback to deploy.
        params: DcqcnParams,
        /// Freeze length, in monitor intervals.
        backoff_intervals: u32,
    },
    /// The safe-mode backoff expired; tuning may resume.
    ExitSafeMode,
}

#[derive(Debug, Clone, PartialEq)]
enum GuardState {
    /// No un-committed dispatch outstanding.
    Normal,
    /// Watching a freshly dispatched candidate.
    HoldDown {
        remaining: u32,
        candidate: DcqcnParams,
    },
    /// Tuning frozen; counting down the backoff.
    SafeMode { remaining: u32 },
}

/// The guardrail state machine (see the module docs).
///
/// `Clone` so a controller can checkpoint the whole guardrail (state,
/// baselines, backoff and jitter stream included) and restore it after a
/// crash — a restored clone replays byte-identically.
#[derive(Debug, Clone)]
pub struct Guardrail {
    cfg: GuardrailConfig,
    state: GuardState,
    last_good: DcqcnParams,
    /// EWMA of utility over healthy intervals.
    baseline_utility: f64,
    /// EWMA of goodput over healthy intervals (bytes/sec).
    baseline_goodput: f64,
    healthy_intervals: u32,
    consecutive_rollbacks: u32,
    next_backoff: u32,
    interval: u64,
    /// Seeded stream behind `backoff_jitter` draws. Only consulted when
    /// the jitter fraction is non-zero, so the default configuration
    /// never advances it.
    jitter_rng: StdRng,
    /// Interval each known switch index last uploaded at.
    last_seen: HashMap<usize, u64>,
    /// Candidates refused by validation.
    pub rejects: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Safe-mode entries.
    pub safe_mode_entries: u64,
    /// Actions swallowed while frozen.
    pub suppressed: u64,
    /// Switch uploads aged out after prolonged silence.
    pub stale_aged_out: u64,
}

impl Guardrail {
    /// Build over `cfg`, with `initial` as the first last-known-good.
    pub fn new(cfg: GuardrailConfig, initial: DcqcnParams) -> Self {
        let next_backoff = cfg.safe_mode_backoff_intervals.max(1);
        Self {
            cfg,
            state: GuardState::Normal,
            last_good: initial,
            baseline_utility: 0.0,
            baseline_goodput: 0.0,
            healthy_intervals: 0,
            consecutive_rollbacks: 0,
            next_backoff,
            interval: 0,
            jitter_rng: StdRng::seed_from_u64(0),
            last_seen: HashMap::new(),
            rejects: 0,
            rollbacks: 0,
            safe_mode_entries: 0,
            suppressed: 0,
            stale_aged_out: 0,
        }
    }

    /// Reseed the backoff-jitter stream. Harnesses tie it to the run's
    /// control-plane fault seed so jittered freeze lengths replay
    /// byte-identically.
    pub fn seed_jitter(&mut self, seed: u64) {
        self.jitter_rng = StdRng::seed_from_u64(seed);
    }

    /// Whether tuning is currently frozen.
    pub fn in_safe_mode(&self) -> bool {
        matches!(self.state, GuardState::SafeMode { .. })
    }

    /// Snapshot of the guardrail's event counters, in one serializable
    /// struct (harnesses and oracles consume this instead of reaching
    /// into the individual counter fields).
    pub fn stats(&self) -> GuardrailStats {
        GuardrailStats {
            rejects: self.rejects,
            rollbacks: self.rollbacks,
            safe_mode_entries: self.safe_mode_entries,
            suppressed: self.suppressed,
            in_safe_mode: self.in_safe_mode(),
        }
    }

    /// Whether a dispatched candidate is still under watch.
    pub fn in_hold_down(&self) -> bool {
        matches!(self.state, GuardState::HoldDown { .. })
    }

    /// The snapshot a rollback would restore.
    pub fn last_known_good(&self) -> &DcqcnParams {
        &self.last_good
    }

    /// Switch indexes currently considered reporting (not aged out).
    pub fn tracked_switches(&self) -> usize {
        self.last_seen.len()
    }

    /// Screen one tuner action before it reaches the fabric.
    pub fn screen(&mut self, action: TuningAction, n_switches: usize) -> ScreenOutcome {
        if self.in_safe_mode() {
            self.suppressed += 1;
            return ScreenOutcome::Suppressed;
        }
        match action {
            TuningAction::Global(p) => match validate(&p, &self.cfg.space) {
                Ok(()) => {
                    self.state = GuardState::HoldDown {
                        remaining: self.cfg.hold_down_intervals.max(1),
                        candidate: p,
                    };
                    ScreenOutcome::Dispatch(TuningAction::Global(p))
                }
                Err(r) => {
                    self.rejects += 1;
                    ScreenOutcome::Rejected(r)
                }
            },
            TuningAction::PerSwitchEcn(updates) => {
                // A corrupt batch is untrustworthy as a whole.
                for (_, p) in &updates {
                    if let Err(r) = validate(p, &self.cfg.space) {
                        self.rejects += 1;
                        return ScreenOutcome::Rejected(r);
                    }
                }
                // Drop entries addressed at out-of-range or aged-out
                // switches (a dead switch cannot apply a threshold).
                let filtered: Vec<(usize, DcqcnParams)> = updates
                    .into_iter()
                    .filter(|(idx, _)| *idx < n_switches && self.last_seen.contains_key(idx))
                    .collect();
                if filtered.is_empty() {
                    self.suppressed += 1;
                    ScreenOutcome::Suppressed
                } else {
                    ScreenOutcome::Dispatch(TuningAction::PerSwitchEcn(filtered))
                }
            }
        }
    }

    /// Feed one interval's health signals; returns a corrective action
    /// for the loop to apply, if any. `reporting` lists the switch
    /// indexes that uploaded observations this interval.
    pub fn observe(
        &mut self,
        utility: f64,
        goodput: f64,
        pause_ratio: f64,
        reporting: &[usize],
    ) -> Option<GuardAction> {
        self.interval += 1;
        for &idx in reporting {
            self.last_seen.insert(idx, self.interval);
        }
        let horizon = self
            .interval
            .saturating_sub(self.cfg.stale_after_intervals.max(1) as u64);
        let before = self.last_seen.len();
        self.last_seen.retain(|_, &mut seen| seen > horizon);
        self.stale_aged_out += (before - self.last_seen.len()) as u64;

        let collapsed = self.is_collapse(utility, goodput, pause_ratio);
        // Baselines track healthy intervals in the Normal state only.
        // During hold-down the candidate must be judged against the
        // pre-dispatch baseline — updating it here would let a slow
        // degradation walk the floor down and evade detection — and
        // safe-mode intervals describe the fallback, not the fabric the
        // next candidate should beat.
        if !collapsed && matches!(self.state, GuardState::Normal) {
            self.update_baselines(utility, goodput);
        }

        match std::mem::replace(&mut self.state, GuardState::Normal) {
            GuardState::Normal => None,
            GuardState::SafeMode { remaining } => {
                if remaining <= 1 {
                    self.consecutive_rollbacks = 0;
                    Some(GuardAction::ExitSafeMode)
                } else {
                    self.state = GuardState::SafeMode {
                        remaining: remaining - 1,
                    };
                    None
                }
            }
            GuardState::HoldDown {
                remaining,
                candidate,
            } => {
                if collapsed {
                    self.rollbacks += 1;
                    self.consecutive_rollbacks += 1;
                    if self.consecutive_rollbacks >= self.cfg.rollbacks_to_safe_mode.max(1) {
                        Some(self.enter_safe_mode())
                    } else {
                        Some(GuardAction::Rollback(self.last_good))
                    }
                } else if remaining <= 1 {
                    // Survived the watch window: commit.
                    self.last_good = candidate;
                    self.consecutive_rollbacks = 0;
                    self.next_backoff = self.cfg.safe_mode_backoff_intervals.max(1);
                    None
                } else {
                    self.state = GuardState::HoldDown {
                        remaining: remaining - 1,
                        candidate,
                    };
                    None
                }
            }
        }
    }

    /// Deploy the fallback and freeze tuning: the common tail of the
    /// rollback-escalation path and [`Guardrail::force_safe_mode`]. The
    /// freeze length is the current backoff plus an optional jittered
    /// stretch of up to `backoff_jitter × backoff` intervals; the base
    /// backoff then doubles for the next entry. With jitter at 0 the
    /// stream is never consulted and freeze lengths are exact.
    fn enter_safe_mode(&mut self) -> GuardAction {
        let base = self.next_backoff;
        let backoff = if self.cfg.backoff_jitter > 0.0 {
            let stretch = self.cfg.backoff_jitter * base as f64;
            base.saturating_add((self.jitter_rng.gen::<f64>() * stretch) as u32)
        } else {
            base
        };
        self.next_backoff =
            (self.next_backoff.saturating_mul(2)).min(self.cfg.max_backoff_intervals.max(1));
        self.safe_mode_entries += 1;
        self.state = GuardState::SafeMode { remaining: backoff };
        // The fallback becomes the snapshot future rollbacks restore.
        self.last_good = self.cfg.safe_params;
        GuardAction::EnterSafeMode {
            params: self.cfg.safe_params,
            backoff_intervals: backoff,
        }
    }

    /// Unconditionally enter safe mode, outside the rollback-escalation
    /// path. A controller that cold-restarts without a usable snapshot
    /// calls this: it cannot vouch for whatever the tuner was doing
    /// before it died, so it deploys the fallback and freezes tuning for
    /// the current backoff (which doubles for the next entry, exactly
    /// like an escalation entry).
    pub fn force_safe_mode(&mut self) -> GuardAction {
        self.consecutive_rollbacks = 0;
        self.enter_safe_mode()
    }

    /// Whether the signals say the fabric collapsed (only meaningful
    /// once the baselines are warm).
    fn is_collapse(&self, utility: f64, goodput: f64, pause_ratio: f64) -> bool {
        if pause_ratio > self.cfg.pfc_pause_spike {
            return true;
        }
        if self.healthy_intervals < self.cfg.min_baseline_intervals {
            return false;
        }
        if utility < self.cfg.utility_collapse_frac * self.baseline_utility {
            return true;
        }
        self.baseline_goodput > 1.0 && goodput < self.cfg.goodput_floor_frac * self.baseline_goodput
    }

    fn update_baselines(&mut self, utility: f64, goodput: f64) {
        if !utility.is_finite() || !goodput.is_finite() {
            return;
        }
        let a = self.cfg.baseline_ewma_alpha.clamp(0.01, 1.0);
        if self.healthy_intervals == 0 {
            self.baseline_utility = utility;
            self.baseline_goodput = goodput;
        } else {
            self.baseline_utility = (1.0 - a) * self.baseline_utility + a * utility;
            self.baseline_goodput = (1.0 - a) * self.baseline_goodput + a * goodput;
        }
        self.healthy_intervals = self.healthy_intervals.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> Guardrail {
        Guardrail::new(GuardrailConfig::default(), DcqcnParams::nvidia_default())
    }

    /// Feed `n` healthy intervals (warm baselines).
    fn warm(g: &mut Guardrail, n: u32) {
        for _ in 0..n {
            assert_eq!(g.observe(0.8, 1e9, 0.0, &[0, 1]), None);
        }
    }

    fn bad_params() -> DcqcnParams {
        let mut p = DcqcnParams::nvidia_default();
        p.ai_rate = 1e9; // far beyond the 400 Mbps bound
        p
    }

    #[test]
    fn out_of_bounds_candidates_are_rejected() {
        let mut g = guard();
        let out = g.screen(TuningAction::Global(bad_params()), 4);
        assert!(matches!(
            out,
            ScreenOutcome::Rejected(RejectReason::OutOfBounds { .. })
        ));
        assert_eq!(g.rejects, 1);
        assert!(!g.in_hold_down(), "a rejected candidate is never watched");
    }

    #[test]
    fn non_finite_and_inverted_thresholds_are_rejected() {
        let mut g = guard();
        let mut nan = DcqcnParams::nvidia_default();
        nan.p_max = f64::NAN;
        assert!(matches!(
            g.screen(TuningAction::Global(nan), 4),
            ScreenOutcome::Rejected(RejectReason::NonFinite(ParamId::PMax))
        ));
        let mut inv = DcqcnParams::nvidia_default();
        inv.k_min = 2000.0;
        inv.k_max = 100.0;
        assert!(matches!(
            g.screen(TuningAction::Global(inv), 4),
            ScreenOutcome::Rejected(RejectReason::InvertedEcnThresholds { .. })
        ));
    }

    #[test]
    fn valid_candidate_dispatches_and_commits_after_quiet_hold_down() {
        let mut g = guard();
        warm(&mut g, 6);
        let cand = DcqcnParams::expert();
        let out = g.screen(TuningAction::Global(cand), 4);
        assert!(matches!(out, ScreenOutcome::Dispatch(_)));
        assert!(g.in_hold_down());
        // Quiet hold-down: after the window the candidate is the new
        // last-known-good.
        for _ in 0..8 {
            assert_eq!(g.observe(0.8, 1e9, 0.0, &[0]), None);
        }
        assert!(!g.in_hold_down());
        assert_eq!(g.last_known_good(), &cand);
    }

    #[test]
    fn utility_collapse_rolls_back_to_last_known_good() {
        let mut g = guard();
        warm(&mut g, 6);
        let good = *g.last_known_good();
        g.screen(TuningAction::Global(DcqcnParams::expert()), 4);
        // Utility collapses to far below 0.6 × baseline.
        let act = g.observe(0.1, 1e9, 0.0, &[0]);
        assert_eq!(act, Some(GuardAction::Rollback(good)));
        assert_eq!(g.rollbacks, 1);
        assert_eq!(
            g.last_known_good(),
            &good,
            "a collapsed candidate is never committed"
        );
    }

    #[test]
    fn pause_spike_and_goodput_floor_also_trigger_rollback() {
        let mut g = guard();
        warm(&mut g, 6);
        g.screen(TuningAction::Global(DcqcnParams::expert()), 4);
        assert!(matches!(
            g.observe(0.8, 1e9, 0.5, &[0]),
            Some(GuardAction::Rollback(_))
        ));
        g.screen(TuningAction::Global(DcqcnParams::expert()), 4);
        assert!(matches!(
            g.observe(0.8, 1e8, 0.0, &[0]), // goodput at 10% of baseline
            Some(GuardAction::Rollback(_))
        ));
    }

    #[test]
    fn consecutive_rollbacks_escalate_to_safe_mode_with_backoff() {
        let cfg = GuardrailConfig {
            rollbacks_to_safe_mode: 3,
            safe_mode_backoff_intervals: 4,
            max_backoff_intervals: 8,
            ..GuardrailConfig::default()
        };
        let mut g = Guardrail::new(cfg.clone(), DcqcnParams::nvidia_default());
        warm(&mut g, 6);
        for i in 0..2 {
            g.screen(TuningAction::Global(DcqcnParams::expert()), 4);
            assert!(
                matches!(
                    g.observe(0.05, 1e9, 0.0, &[0]),
                    Some(GuardAction::Rollback(_))
                ),
                "rollback {i}"
            );
        }
        g.screen(TuningAction::Global(DcqcnParams::expert()), 4);
        let act = g.observe(0.05, 1e9, 0.0, &[0]);
        assert_eq!(
            act,
            Some(GuardAction::EnterSafeMode {
                params: cfg.safe_params,
                backoff_intervals: 4,
            })
        );
        assert!(g.in_safe_mode());
        // Frozen: every action is suppressed.
        assert_eq!(
            g.screen(TuningAction::Global(DcqcnParams::expert()), 4),
            ScreenOutcome::Suppressed
        );
        // Backoff counts down through healthy intervals, then exits.
        for _ in 0..3 {
            assert_eq!(g.observe(0.8, 1e9, 0.0, &[0]), None);
            assert!(g.in_safe_mode());
        }
        assert_eq!(
            g.observe(0.8, 1e9, 0.0, &[0]),
            Some(GuardAction::ExitSafeMode)
        );
        assert!(!g.in_safe_mode());
        // Re-entry doubles the backoff (up to the ceiling).
        warm(&mut g, 4);
        for _ in 0..3 {
            g.screen(TuningAction::Global(DcqcnParams::expert()), 4);
            g.observe(0.05, 1e9, 0.0, &[0]);
        }
        assert!(g.in_safe_mode());
        assert_eq!(g.safe_mode_entries, 2);
        let mut exits = 0;
        for _ in 0..8 {
            if g.observe(0.8, 1e9, 0.0, &[0]) == Some(GuardAction::ExitSafeMode) {
                exits += 1;
                break;
            }
        }
        assert_eq!(exits, 1, "second freeze lasts 8 intervals (doubled)");
    }

    #[test]
    fn forced_safe_mode_deploys_fallback_and_doubles_backoff() {
        let cfg = GuardrailConfig {
            safe_mode_backoff_intervals: 4,
            max_backoff_intervals: 8,
            ..GuardrailConfig::default()
        };
        let mut g = Guardrail::new(cfg.clone(), DcqcnParams::nvidia_default());
        let act = g.force_safe_mode();
        assert_eq!(
            act,
            GuardAction::EnterSafeMode {
                params: cfg.safe_params,
                backoff_intervals: 4,
            }
        );
        assert!(g.in_safe_mode());
        assert_eq!(g.safe_mode_entries, 1);
        assert_eq!(g.last_known_good(), &cfg.safe_params);
        // Backoff counts down, exits, and the next forced entry doubles.
        for _ in 0..3 {
            assert_eq!(g.observe(0.8, 1e9, 0.0, &[0]), None);
        }
        assert_eq!(
            g.observe(0.8, 1e9, 0.0, &[0]),
            Some(GuardAction::ExitSafeMode)
        );
        let act = g.force_safe_mode();
        assert_eq!(
            act,
            GuardAction::EnterSafeMode {
                params: cfg.safe_params,
                backoff_intervals: 8,
            }
        );
    }

    #[test]
    fn backoff_jitter_stretches_the_freeze_deterministically() {
        let cfg = GuardrailConfig {
            safe_mode_backoff_intervals: 8,
            backoff_jitter: 0.5,
            ..GuardrailConfig::default()
        };
        let freeze = |seed: u64| {
            let mut g = Guardrail::new(cfg.clone(), DcqcnParams::nvidia_default());
            g.seed_jitter(seed);
            match g.force_safe_mode() {
                GuardAction::EnterSafeMode {
                    backoff_intervals, ..
                } => backoff_intervals,
                other => panic!("expected safe-mode entry, got {other:?}"),
            }
        };
        // Same seed → same stretch, and the stretch stays in
        // [base, base + jitter × base].
        assert_eq!(freeze(7), freeze(7));
        for s in 0..16 {
            let b = freeze(s);
            assert!((8..=12).contains(&b), "jittered backoff {b} out of range");
        }
        // The stream really is consulted: some seed stretches.
        assert!((0..16).any(|s| freeze(s) > 8));
    }

    #[test]
    fn committed_candidate_resets_the_rollback_streak() {
        let mut g = guard();
        warm(&mut g, 6);
        g.screen(TuningAction::Global(DcqcnParams::expert()), 4);
        g.observe(0.05, 1e9, 0.0, &[0]); // rollback #1
        g.screen(TuningAction::Global(DcqcnParams::expert()), 4);
        g.observe(0.05, 1e9, 0.0, &[0]); // rollback #2
                                         // A candidate that survives its full hold-down clears the streak.
        g.screen(TuningAction::Global(DcqcnParams::expert()), 4);
        for _ in 0..8 {
            assert_eq!(g.observe(0.8, 1e9, 0.0, &[0]), None);
        }
        g.screen(TuningAction::Global(DcqcnParams::expert()), 4);
        let act = g.observe(0.05, 1e9, 0.0, &[0]);
        assert!(
            matches!(act, Some(GuardAction::Rollback(_))),
            "streak was reset: this is rollback #1 again, not safe mode"
        );
        assert!(!g.in_safe_mode());
    }

    #[test]
    fn silent_switches_age_out_of_the_health_picture() {
        let cfg = GuardrailConfig {
            stale_after_intervals: 3,
            ..GuardrailConfig::default()
        };
        let mut g = Guardrail::new(cfg, DcqcnParams::nvidia_default());
        g.observe(0.8, 1e9, 0.0, &[0, 1, 2]);
        assert_eq!(g.tracked_switches(), 3);
        // Switch 2 stops uploading.
        for _ in 0..3 {
            g.observe(0.8, 1e9, 0.0, &[0, 1]);
        }
        assert_eq!(g.tracked_switches(), 2);
        assert_eq!(g.stale_aged_out, 1);
        // Per-switch actions addressed at the dead switch are filtered.
        let out = g.screen(
            TuningAction::PerSwitchEcn(vec![
                (0, DcqcnParams::nvidia_default()),
                (2, DcqcnParams::nvidia_default()),
            ]),
            4,
        );
        match out {
            ScreenOutcome::Dispatch(TuningAction::PerSwitchEcn(v)) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].0, 0);
            }
            other => panic!("expected filtered dispatch, got {other:?}"),
        }
        // Nothing live left: suppressed.
        let out = g.screen(
            TuningAction::PerSwitchEcn(vec![(2, DcqcnParams::nvidia_default())]),
            4,
        );
        assert_eq!(out, ScreenOutcome::Suppressed);
    }
}
