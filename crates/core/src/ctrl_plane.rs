//! Control-plane survival machinery: the message types that ride the
//! impaired [`CtrlChannel`] lanes, the fabric-side endpoint that applies
//! parameter dispatches idempotently and monotonically, and the
//! controller-side epoch/ACK/retry state machine.
//!
//! The closed loop's monitor→tuner→dispatch round trip normally assumes
//! a perfect control network: every FSD upload arrives, every dispatch
//! applies, and the controller process never dies. A production fabric
//! offers none of that. When [`crate::ClosedLoop`] is armed with a
//! [`CtrlPlaneConfig`], both directions of the control traffic are
//! routed through seeded lossy channels and survive their impairments:
//!
//! * **Uploads** ([`UpMsg::Fsd`]) are sequence-numbered per monitoring
//!   point; the controller folds whatever arrives into a
//!   [`StalenessMerger`], which rejects stale duplicates and
//!   down-weights aging points instead of stalling on loss.
//! * **Dispatches** ([`DownMsg::Dispatch`]) carry a monotonically
//!   increasing epoch. The fabric applies an epoch at most once and
//!   never moves backwards, so duplicated or reordered dispatches are
//!   harmless, and always ACKs its current epoch. The controller keeps
//!   one in-flight dispatch and re-sends it on ACK timeout with
//!   exponential backoff and seeded jitter.
//! * **Crashes** are handled by [`crate::ClosedLoop`] itself (it owns
//!   the tuner and guardrail state being checkpointed); the
//!   [`CtrlSnapshot`] here covers the controller half of the protocol
//!   state so a restore resumes mid-conversation.
//!
//! With a clean channel (no impairments scheduled) the armed loop is
//! byte-identical to the direct loop: messages deliver with zero delay
//! in send order, the merger reproduces the central merge bit-for-bit,
//! and no retry or jitter randomness is ever drawn.

use paraleon_monitor::{FsdUpload, StalenessMerger, DEFAULT_STALE_AFTER_INTERVALS};
use paraleon_netsim::fasthash::mix64;
use paraleon_netsim::{CtrlChannel, CtrlChannelStats};
use paraleon_tuner::TuningAction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for the hardened control plane.
#[derive(Debug, Clone)]
pub struct CtrlPlaneConfig {
    /// Intervals the controller waits for an ACK before re-sending the
    /// in-flight dispatch (also the initial backoff).
    pub retry_timeout_intervals: u64,
    /// Backoff ceiling for dispatch re-sends, in intervals.
    pub retry_backoff_max_intervals: u64,
    /// Fractional jitter on each retry backoff: up to `jitter × backoff`
    /// extra intervals, drawn from the plane's seeded stream. `0` draws
    /// nothing.
    pub retry_jitter: f64,
    /// Controller checkpoint cadence, in intervals. A warm restart
    /// resumes from the latest checkpoint; everything since is lost.
    pub snapshot_every_intervals: u64,
    /// Staleness horizon handed to the upload [`StalenessMerger`].
    pub stale_after_intervals: u64,
    /// Strawman mode: no epoch discipline at the fabric (every delivered
    /// dispatch applies, in delivery order) and no ACK/retry at the
    /// controller. Exists so experiments can show the failure the
    /// hardened protocol prevents.
    pub naive: bool,
}

impl Default for CtrlPlaneConfig {
    fn default() -> Self {
        Self {
            retry_timeout_intervals: 4,
            retry_backoff_max_intervals: 64,
            retry_jitter: 0.25,
            snapshot_every_intervals: 16,
            stale_after_intervals: DEFAULT_STALE_AFTER_INTERVALS,
            naive: false,
        }
    }
}

/// Controller → fabric traffic.
#[derive(Debug, Clone, PartialEq)]
pub enum DownMsg {
    /// Apply `action` if `epoch` is newer than anything applied so far.
    Dispatch {
        /// The dispatch's position in the controller's total order.
        epoch: u64,
        /// The parameter change itself.
        action: TuningAction,
    },
}

/// Fabric → controller traffic.
#[derive(Debug, Clone, PartialEq)]
pub enum UpMsg {
    /// One monitoring point's sequence-numbered FSD upload.
    Fsd(FsdUpload),
    /// Dispatch acknowledgment: the fabric's current epoch *after*
    /// processing a dispatch (echoed even when the dispatch was ignored
    /// as stale, which is how the controller learns it is behind).
    Ack {
        /// The fabric's applied epoch.
        epoch: u64,
    },
}

/// The fabric-side protocol endpoint: epoch bookkeeping for the
/// switches/RNICs as a group. The actual parameter application goes
/// through the simulator; this type only decides *whether* a delivered
/// dispatch should apply.
#[derive(Debug, Clone)]
pub struct FabricEnd {
    epoch: u64,
    naive: bool,
}

impl FabricEnd {
    fn new(naive: bool) -> Self {
        Self { epoch: 0, naive }
    }

    /// The highest epoch applied so far (0 before any dispatch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Process one delivered dispatch. Returns the action to apply (if
    /// the epoch is fresh) and the epoch to ACK with. In naive mode
    /// every delivered dispatch applies, in delivery order — which is
    /// exactly what makes reordering and duplication dangerous.
    pub fn on_dispatch(&mut self, msg: DownMsg) -> (Option<TuningAction>, u64) {
        let DownMsg::Dispatch { epoch, action } = msg;
        if self.naive || epoch > self.epoch {
            self.epoch = epoch;
            (Some(action), self.epoch)
        } else {
            (None, self.epoch)
        }
    }
}

/// The one in-flight (un-ACKed) dispatch.
#[derive(Debug, Clone, PartialEq)]
struct Pending {
    epoch: u64,
    action: TuningAction,
    /// Interval index at which the next re-send fires.
    next_retry_at: u64,
    /// Current backoff (doubles per re-send, capped).
    backoff: u64,
    retries: u32,
}

/// Controller-half protocol state captured in a checkpoint: the upload
/// merger, the epoch counter and the in-flight dispatch. Channels, the
/// fabric end and the jitter stream are *not* part of it — they model
/// the network and the devices, which do not die with the controller.
#[derive(Debug, Clone)]
pub struct CtrlSnapshot {
    merger: StalenessMerger,
    next_epoch: u64,
    pending: Option<Pending>,
}

/// Aggregate counters a harness reads after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CtrlPlaneStats {
    /// Up-lane channel counters (uploads + ACKs).
    pub up: CtrlChannelStats,
    /// Down-lane channel counters (dispatches).
    pub down: CtrlChannelStats,
    /// Stale uploads the merger rejected.
    pub stale_rejected: u64,
    /// Dispatch re-sends (timeout or epoch-behind).
    pub retries: u64,
    /// Controller crashes survived.
    pub crashes: u64,
    /// Post-restore re-assertions of the believed parameters.
    pub resyncs: u64,
}

/// The full control plane between one controller and one fabric: both
/// impaired channel lanes, the fabric endpoint, the upload merger and
/// the dispatch retry machine.
pub struct CtrlPlane {
    /// Configuration (public so harnesses can read the cadences back).
    pub cfg: CtrlPlaneConfig,
    /// Fabric → controller lane.
    pub up: CtrlChannel<UpMsg>,
    /// Controller → fabric lane.
    pub down: CtrlChannel<DownMsg>,
    /// Fabric-side epoch bookkeeping.
    pub fabric: FabricEnd,
    /// Staleness-weighted upload aggregation (controller side).
    pub merger: StalenessMerger,
    /// Retry-jitter stream (distinct lane of the run seed).
    rng: StdRng,
    next_epoch: u64,
    pending: Option<Pending>,
    /// Dispatch re-sends performed.
    pub retries: u64,
    /// Controller crashes survived.
    pub crashes: u64,
    /// Post-restore re-assertions of believed parameters.
    pub resyncs: u64,
    /// Control-channel bytes from re-sends and resyncs, beyond what the
    /// loop's regular per-interval dispatch accounting already covers.
    /// The loop drains this into the transfer ledger every interval.
    pub extra_dispatch_bytes: u64,
}

/// Wire size of one dispatch payload.
fn wire_bytes(action: &TuningAction) -> u64 {
    match action {
        TuningAction::Global(p) => p.wire_size_bytes() as u64,
        TuningAction::PerSwitchEcn(v) => v.iter().map(|(_, p)| p.wire_size_bytes() as u64).sum(),
    }
}

impl CtrlPlane {
    /// Build over `seed` (the run seed; each internal RNG consumer gets
    /// its own `mix64`-derived lane so the streams are independent).
    pub fn new(cfg: CtrlPlaneConfig, seed: u64) -> Self {
        let merger = StalenessMerger::new(cfg.stale_after_intervals);
        Self {
            up: CtrlChannel::new(mix64(seed ^ 0x5550)),
            down: CtrlChannel::new(mix64(seed ^ 0xD030)),
            fabric: FabricEnd::new(cfg.naive),
            merger,
            rng: StdRng::seed_from_u64(mix64(seed ^ 0x1e77)),
            next_epoch: 1,
            pending: None,
            retries: 0,
            crashes: 0,
            resyncs: 0,
            extra_dispatch_bytes: 0,
            cfg,
        }
    }

    /// The epoch the next dispatch will carry.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Whether a dispatch is awaiting its ACK.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// One combined counter snapshot.
    pub fn stats(&self) -> CtrlPlaneStats {
        CtrlPlaneStats {
            up: self.up.stats,
            down: self.down.stats,
            stale_rejected: self.merger.rejected,
            retries: self.retries,
            crashes: self.crashes,
            resyncs: self.resyncs,
        }
    }

    /// Send `action` at a fresh epoch (superseding any in-flight
    /// dispatch: the fabric's monotonicity makes the older one
    /// harmless). Returns the epoch used.
    pub fn send_dispatch(&mut self, now: u64, action: TuningAction) -> u64 {
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        self.down.send(
            now,
            DownMsg::Dispatch {
                epoch,
                action: action.clone(),
            },
        );
        self.pending = (!self.cfg.naive).then(|| Pending {
            epoch,
            action,
            next_retry_at: now + self.cfg.retry_timeout_intervals.max(1),
            backoff: self.cfg.retry_timeout_intervals.max(1),
            retries: 0,
        });
        epoch
    }

    /// Process one delivered ACK. Completes the in-flight dispatch when
    /// the fabric caught up to it; when the fabric reports a *newer*
    /// epoch (ours was ignored as stale — only possible after a restore
    /// rewound the epoch counter), the believed action is re-sent above
    /// the fabric's epoch. Returns the re-send epoch when that happens.
    pub fn on_ack(&mut self, now: u64, acked: u64) -> Option<u64> {
        if acked >= self.next_epoch {
            // The fabric is ahead of everything we think we sent: a
            // restore rewound us. Catch the counter up first.
            self.next_epoch = acked + 1;
        }
        if self.cfg.naive {
            return None;
        }
        let p = self.pending.as_ref()?;
        if acked == p.epoch {
            self.pending = None;
            None
        } else if acked > p.epoch {
            // Our in-flight epoch lost the race against a pre-crash
            // dispatch the fabric already applied. Re-assert the
            // believed action above the fabric's epoch.
            let action = p.action.clone();
            self.retries += 1;
            self.extra_dispatch_bytes += wire_bytes(&action);
            Some(self.send_dispatch(now, action))
        } else {
            // Stale ACK from an older dispatch or a duplicate: the
            // in-flight one is still outstanding.
            None
        }
    }

    /// Re-send the in-flight dispatch when its ACK timed out. Called
    /// once per interval; returns the re-sent epoch if a retry fired.
    /// Each re-send doubles the backoff (capped) and stretches it by a
    /// seeded jitter draw — the draw only happens on an actual re-send,
    /// so a healthy channel never consumes the stream.
    pub fn check_retry(&mut self, now: u64) -> Option<u64> {
        let p = self.pending.as_mut()?;
        if now < p.next_retry_at {
            return None;
        }
        self.down.send(
            now,
            DownMsg::Dispatch {
                epoch: p.epoch,
                action: p.action.clone(),
            },
        );
        p.retries += 1;
        self.retries += 1;
        self.extra_dispatch_bytes += wire_bytes(&p.action);
        p.backoff = (p.backoff.saturating_mul(2)).min(self.cfg.retry_backoff_max_intervals.max(1));
        let jitter = if self.cfg.retry_jitter > 0.0 {
            (self.rng.gen::<f64>() * self.cfg.retry_jitter * p.backoff as f64) as u64
        } else {
            0
        };
        p.next_retry_at = now + p.backoff + jitter;
        Some(p.epoch)
    }

    /// Checkpoint the controller half of the protocol state.
    pub fn snapshot(&self) -> CtrlSnapshot {
        CtrlSnapshot {
            merger: self.merger.clone(),
            next_epoch: self.next_epoch,
            pending: self.pending.clone(),
        }
    }

    /// Restore the controller half from a checkpoint. Crash semantics
    /// live in the caller ([`crate::ClosedLoop`] clears the up lane —
    /// messages addressed to a dead process are gone — and re-asserts
    /// the believed parameters).
    pub fn restore(&mut self, snap: &CtrlSnapshot) {
        self.merger = snap.merger.clone();
        self.next_epoch = snap.next_epoch;
        self.pending = snap.pending.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraleon_dcqcn::DcqcnParams;

    fn global(ai: f64) -> TuningAction {
        let mut p = DcqcnParams::nvidia_default();
        p.ai_rate = ai;
        TuningAction::Global(p)
    }

    #[test]
    fn fabric_applies_epochs_at_most_once_and_never_backwards() {
        let mut f = FabricEnd::new(false);
        let (a, ack) = f.on_dispatch(DownMsg::Dispatch {
            epoch: 2,
            action: global(1.0),
        });
        assert!(a.is_some());
        assert_eq!(ack, 2);
        // Duplicate: ignored, same ACK.
        let (a, ack) = f.on_dispatch(DownMsg::Dispatch {
            epoch: 2,
            action: global(1.0),
        });
        assert!(a.is_none());
        assert_eq!(ack, 2);
        // Reordered older epoch: ignored.
        let (a, ack) = f.on_dispatch(DownMsg::Dispatch {
            epoch: 1,
            action: global(9.0),
        });
        assert!(a.is_none());
        assert_eq!(ack, 2);
        // Newer epoch: applies.
        let (a, ack) = f.on_dispatch(DownMsg::Dispatch {
            epoch: 3,
            action: global(2.0),
        });
        assert_eq!(a, Some(global(2.0)));
        assert_eq!(ack, 3);
    }

    #[test]
    fn naive_fabric_applies_everything_in_delivery_order() {
        let mut f = FabricEnd::new(true);
        let (a, _) = f.on_dispatch(DownMsg::Dispatch {
            epoch: 2,
            action: global(1.0),
        });
        assert!(a.is_some());
        // The reordered older dispatch overwrites the newer one.
        let (a, _) = f.on_dispatch(DownMsg::Dispatch {
            epoch: 1,
            action: global(9.0),
        });
        assert_eq!(a, Some(global(9.0)));
    }

    #[test]
    fn ack_completes_the_pending_dispatch() {
        let mut cp = CtrlPlane::new(CtrlPlaneConfig::default(), 1);
        let e = cp.send_dispatch(0, global(1.0));
        assert!(cp.has_pending());
        assert_eq!(cp.on_ack(1, e), None);
        assert!(!cp.has_pending());
    }

    #[test]
    fn timeout_resends_with_doubling_backoff() {
        let cfg = CtrlPlaneConfig {
            retry_timeout_intervals: 2,
            retry_backoff_max_intervals: 8,
            retry_jitter: 0.0,
            ..CtrlPlaneConfig::default()
        };
        let mut cp = CtrlPlane::new(cfg, 1);
        let e = cp.send_dispatch(0, global(1.0));
        assert_eq!(cp.check_retry(1), None, "inside the timeout");
        assert_eq!(cp.check_retry(2), Some(e));
        // Backoff doubled to 4: next retry at 6.
        assert_eq!(cp.check_retry(5), None);
        assert_eq!(cp.check_retry(6), Some(e));
        // Doubled again to 8 (the cap): next at 14, and it stays 8.
        assert_eq!(cp.check_retry(14), Some(e));
        assert_eq!(cp.retries, 3);
        // A late ACK still completes it.
        assert_eq!(cp.on_ack(15, e), None);
        assert!(!cp.has_pending());
    }

    #[test]
    fn retry_jitter_is_deterministic_per_seed() {
        let fire_times = |seed: u64| {
            let cfg = CtrlPlaneConfig {
                retry_timeout_intervals: 2,
                retry_backoff_max_intervals: 64,
                retry_jitter: 0.5,
                ..CtrlPlaneConfig::default()
            };
            let mut cp = CtrlPlane::new(cfg, seed);
            cp.send_dispatch(0, global(1.0));
            let mut fired = Vec::new();
            for now in 0..200u64 {
                if cp.check_retry(now).is_some() {
                    fired.push(now);
                }
            }
            fired
        };
        assert_eq!(fire_times(7), fire_times(7));
        assert!(fire_times(7).len() >= 3);
    }

    #[test]
    fn epoch_behind_ack_triggers_a_resend_above_the_fabric() {
        let mut cp = CtrlPlane::new(CtrlPlaneConfig::default(), 1);
        let e = cp.send_dispatch(0, global(1.0));
        // The fabric ACKs a *newer* epoch (it applied a pre-crash
        // dispatch this restored controller never saw).
        let resent = cp.on_ack(1, e + 5);
        assert_eq!(resent, Some(e + 6), "re-sent above the fabric's epoch");
        assert!(cp.has_pending());
        assert_eq!(cp.next_epoch(), e + 7);
    }

    #[test]
    fn snapshot_restore_round_trips_the_controller_half() {
        let mut cp = CtrlPlane::new(CtrlPlaneConfig::default(), 1);
        cp.send_dispatch(0, global(1.0));
        let snap = cp.snapshot();
        // Drift past the checkpoint, then restore.
        cp.on_ack(1, 1);
        cp.send_dispatch(2, global(2.0));
        cp.restore(&snap);
        assert_eq!(cp.next_epoch(), 2);
        assert!(cp.has_pending());
    }
}
