//! Workload drivers: feed workload-crate generators into a closed loop.
//!
//! The generators in `paraleon-workloads` are pure; these helpers supply
//! the glue (flow admission, completion feedback for synchronized
//! collectives) that the examples and the experiment harness share.

use paraleon_netsim::{FlowId, FlowRecord};
use paraleon_workloads::{AllToAll, Collective, FlowRequest, Progress};

use crate::closed_loop::ClosedLoop;
use crate::Nanos;

/// Admit a pre-generated (sorted-by-start) flow schedule and run the loop
/// until `until`. Returns the number of flows admitted.
///
/// Flows are admitted lazily just before their start times so the
/// simulator's event queue stays proportional to in-flight work.
pub fn run_schedule(cl: &mut ClosedLoop, flows: &[FlowRequest], until: Nanos) -> usize {
    let mut admitted = 0;
    let mut idx = 0;
    while cl.sim.now() < until {
        let horizon = cl.sim.now() + 2 * interval_of(cl);
        while idx < flows.len() && flows[idx].start <= horizon {
            let f = flows[idx];
            if f.start >= cl.sim.now() {
                cl.sim.add_flow(f.src, f.dst, f.bytes, f.start);
                admitted += 1;
            }
            idx += 1;
        }
        cl.step();
    }
    admitted
}

/// Admit one wave of collective flows at the loop's current time with
/// stable per-pair QP identity: the monitor sees one long-lived QP per
/// (src, dst), as NCCL reuses QPs across rounds and waves.
fn admit_wave(
    cl: &mut ClosedLoop,
    flows: &[FlowRequest],
    flow_ids: &mut std::collections::HashSet<FlowId>,
) {
    for f in flows {
        let qp = qp_id(f.src, f.dst);
        let id = cl
            .sim
            .add_flow_on_qp(f.src, f.dst, f.bytes, cl.sim.now(), qp);
        flow_ids.insert(id);
    }
}

/// Run any synchronized [`Collective`] (alltoall, ring/tree allreduce,
/// pipeline bursts) inside the loop until `until` or until the
/// configured number of rounds completes. Returns the flow records of
/// all completed flows belonging to the collective.
///
/// Barrier semantics: completions are observed at the loop's control
/// interval (λ_MI), so wave releases and round starts quantize to
/// interval boundaries. The quantization is identical under every
/// tuning scheme and engine, so collective round times stay directly
/// comparable — and serial/parallel byte-identity is preserved because
/// admission depends only on the completion-record stream, which the
/// conservative engine reproduces exactly.
pub fn run_collective(
    cl: &mut ClosedLoop,
    coll: &mut dyn Collective,
    start: Nanos,
    until: Nanos,
) -> Vec<FlowRecord> {
    let mut records = Vec::new();
    let mut next_round: Option<Nanos> = Some(start.max(cl.sim.now()));
    let mut seen_completions = cl.completions.len();
    let mut flow_ids = std::collections::HashSet::new();
    while cl.sim.now() < until && !coll.finished() {
        if let Some(t) = next_round {
            if cl.sim.now() >= t {
                let flows = coll
                    .start_round(cl.sim.now())
                    .expect("driver starts rounds only when the collective is idle");
                admit_wave(cl, &flows, &mut flow_ids);
                next_round = None;
            }
        }
        cl.step();
        // Feed completions back into the round state machine.
        let new = cl.completions[seen_completions..].to_vec();
        seen_completions = cl.completions.len();
        for r in new {
            if flow_ids.remove(&r.flow) {
                records.push(r);
                let progress = coll
                    .on_flow_done(r.finish)
                    .expect("driver only feeds completions it admitted");
                match progress {
                    Progress::Pending => {}
                    Progress::NextWave(flows) => admit_wave(cl, &flows, &mut flow_ids),
                    Progress::RoundDone { next_round: nr } => {
                        if let Some(t) = nr {
                            next_round = Some(t);
                        }
                    }
                }
            }
        }
    }
    records
}

/// Run an ON-OFF alltoall collective inside the loop until `until` (or
/// until the configured number of rounds completes). Returns the flow
/// records of all completed flows belonging to the collective. Thin
/// wrapper over [`run_collective`].
pub fn run_alltoall(
    cl: &mut ClosedLoop,
    a2a: &mut AllToAll,
    start: Nanos,
    until: Nanos,
) -> Vec<FlowRecord> {
    run_collective(cl, a2a, start, until)
}

/// Stable QP identity for a (src, dst) pair (collectives reuse QPs).
pub fn qp_id(src: usize, dst: usize) -> u64 {
    0x5150_0000_0000_0000 | ((src as u64) << 24) | dst as u64
}

fn interval_of(cl: &ClosedLoop) -> Nanos {
    // The loop advances exactly one λ_MI per step; infer it from history
    // or fall back to 1 ms before the first step.
    match cl.cell.history.len() {
        0 => 1_000_000,
        1 => cl.cell.history[0].t,
        n => cl.cell.history[n - 1].t - cl.cell.history[n - 2].t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::SchemeKind;
    use paraleon_netsim::{Topology, MILLI};
    use paraleon_workloads::AllToAllConfig;

    fn topo() -> Topology {
        Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000)
    }

    #[test]
    fn schedule_driver_admits_and_completes() {
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Expert)
            .build();
        let flows: Vec<FlowRequest> = (0..20)
            .map(|i| FlowRequest {
                src: i % 8,
                dst: (i + 1) % 8,
                bytes: 50_000,
                start: i as Nanos * 100_000,
            })
            .collect();
        let n = run_schedule(&mut cl, &flows, 20 * MILLI);
        assert_eq!(n, 20);
        assert_eq!(cl.completions.len(), 20);
    }

    #[test]
    fn collective_driver_runs_ring_allreduce_end_to_end() {
        use paraleon_workloads::{Collective, RingAllreduce, RingConfig};
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Expert)
            .build();
        let mut ring = RingAllreduce::new(RingConfig {
            workers: (0..4).collect(),
            message_bytes: 400_000,
            off_time: MILLI,
            rounds: Some(2),
        });
        let records = run_collective(&mut cl, &mut ring, 0, 500 * MILLI);
        assert!(ring.finished(), "2 rounds should finish well within 500 ms");
        // 2 rounds × 2(n−1)=6 waves × n=4 chunk flows.
        assert_eq!(records.len(), 2 * 6 * 4);
        assert_eq!(ring.round_durations().len(), 2);
        assert!(ring.algbw_bytes_per_sec(0).unwrap() > 0.0);
    }

    #[test]
    fn collective_driver_is_byte_identical_serial_vs_parallel() {
        use paraleon_netsim::ThreeTierSpec;
        use paraleon_workloads::{TreeAllreduce, TreeConfig};
        // A three-tier fabric exercises the Spine tier in both engines.
        let spec = ThreeTierSpec {
            n_pod: 2,
            tors_per_pod: 2,
            hosts_per_tor: 2,
            aggs_per_pod: 2,
            spines_per_agg: 1,
            host_gbps: 100.0,
            agg_gbps: 100.0,
            spine_gbps: 100.0,
            delay_ns: 1_000,
        };
        let run = |threads: usize| {
            let mut cl = ClosedLoop::builder(spec.build())
                .scheme(SchemeKind::Paraleon)
                .parallel(threads)
                .build();
            let mut tree = TreeAllreduce::new(TreeConfig {
                workers: (0..8).collect(),
                message_bytes: 300_000,
                off_time: MILLI,
                rounds: Some(2),
            });
            let recs = run_collective(&mut cl, &mut tree, 0, 500 * MILLI);
            assert!(tree.finished());
            (recs, cl.cell.history.clone())
        };
        let (serial, hist1) = run(1);
        let (par, hist2) = run(4);
        assert_eq!(serial, par, "flow records must be byte-identical");
        assert_eq!(hist1.len(), hist2.len());
    }

    #[test]
    fn alltoall_driver_runs_rounds_with_off_gaps() {
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Expert)
            .build();
        let mut a2a = AllToAll::new(AllToAllConfig {
            workers: (0..4).collect(),
            message_bytes: 200_000,
            off_time: 2 * MILLI,
            rounds: Some(3),
        });
        let records = run_alltoall(&mut cl, &mut a2a, 0, 500 * MILLI);
        assert!(a2a.finished(), "3 rounds should finish well within 500 ms");
        assert_eq!(records.len(), 3 * 4 * 3);
        assert_eq!(a2a.round_durations.len(), 3);
        // OFF gaps: round k+1 starts ≥ 2 ms after round k ends.
        // (Verified indirectly: total duration exceeds 2 OFF periods.)
        let last_finish = records.iter().map(|r| r.finish).max().unwrap();
        assert!(last_finish >= 2 * 2 * MILLI);
    }
}
