//! The closed tuning loop: simulator ⇄ monitor ⇄ tuner, one monitor
//! interval at a time.
//!
//! [`ClosedLoop::step`] performs exactly what Figure 2 describes for one
//! λ_MI: run the fabric, read the switch/RNIC agents' uploads, update the
//! network-wide FSD and the KL trigger, evaluate the utility function,
//! hand everything to the tuning scheme, dispatch whatever it returns,
//! and account the control-channel traffic (Table IV).

use std::time::{Duration, Instant};

use paraleon_dcqcn::DcqcnParams;
use paraleon_monitor::{ChangeDetector, FsdMonitor, MetricSample, TransferLedger, UtilityWeights};
use paraleon_netsim::{FlowRecord, SimConfig, Simulator, Topology, MILLI};
use paraleon_sketch::{FlowType, Fsd, SlidingWindowClassifier, WindowConfig};
use paraleon_telemetry as tel;
use paraleon_tuner::{Observation, SwitchLocalObs, TuningAction, TuningFeedback, TuningScheme};

use crate::guardrail::{GuardAction, Guardrail, GuardrailConfig, ScreenOutcome};
use crate::schemes::{MonitorKind, SchemeKind};
use crate::Nanos;

/// Loop-level configuration.
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Monitor interval λ_MI (paper NS3 default: 1 ms).
    pub lambda_mi: Nanos,
    /// Utility weights (paper NS3 default: 0.2 / 0.5 / 0.3).
    pub weights: UtilityWeights,
    /// KL trigger threshold θ (paper default: 0.01).
    pub theta: f64,
    /// Force a tuning trigger on the first interval (used by the
    /// monitoring-comparison experiments so every variant tunes even if
    /// its FSD scheme cannot detect change).
    pub force_tuning: bool,
    /// The change detector compares FSDs aggregated over this many
    /// monitor intervals (the paper checks the KL trigger at sub-second
    /// cadence, coarser than λ_MI; window-averaging also keeps per-
    /// interval sampling noise from re-triggering tuning forever).
    pub trigger_window: u32,
}

impl Default for LoopConfig {
    fn default() -> Self {
        Self {
            lambda_mi: MILLI,
            weights: UtilityWeights::paper_default(),
            theta: 0.01,
            force_tuning: false,
            trigger_window: 8,
        }
    }
}

/// What the controller logged for one monitor interval — the time series
/// behind Figures 8, 9, 12 and 14.
#[derive(Debug, Clone)]
pub struct IntervalRecord {
    /// Interval end time (ns).
    pub t: Nanos,
    /// Delivered goodput, bytes/sec.
    pub goodput: f64,
    /// Mean RTT, ns (0 if no samples).
    pub avg_rtt_ns: f64,
    /// Utility function value.
    pub utility: f64,
    /// O_TP term.
    pub o_tp: f64,
    /// O_RTT term.
    pub o_rtt: f64,
    /// O_PFC term.
    pub o_pfc: f64,
    /// Dominant flow type this interval.
    pub dominant: FlowType,
    /// Its proportion µ.
    pub mu: f64,
    /// Whether the KL trigger fired.
    pub triggered: bool,
    /// Whether the tuner dispatched new parameters.
    pub dispatched: bool,
    /// Whether the guardrail refused the tuner's candidate this interval.
    pub rejected: bool,
    /// Whether the guardrail rolled the fabric back to the last-known-
    /// good setting this interval.
    pub rolled_back: bool,
    /// Whether the loop is in safe mode (tuning frozen) this interval.
    pub safe_mode: bool,
    /// CNPs this interval.
    pub cnps: u64,
    /// PFC pause frames this interval.
    pub pfc_events: u64,
    /// FSD accuracy (similarity to the ground-truth distribution); only
    /// present when the simulator tracks ground truth.
    pub fsd_accuracy: Option<f64>,
}

impl IntervalRecord {
    /// The interval's PFC pause fraction. `o_pfc` is defined as
    /// `1 − pause fraction` (see `MetricSample`), so this inverts it —
    /// the pause-storm detectors consume the fraction directly.
    pub fn pause_ratio(&self) -> f64 {
        1.0 - self.o_pfc
    }
}

/// The full PARALEON closed loop over one simulated fabric.
pub struct ClosedLoop {
    /// The fabric. Exposed so harnesses can inject flows between steps.
    pub sim: Simulator,
    monitor: Box<dyn FsdMonitor>,
    detector: ChangeDetector,
    scheme: Box<dyn TuningScheme>,
    /// Deployment guardrail, when armed (see [`crate::guardrail`]).
    guard: Option<Guardrail>,
    cfg: LoopConfig,
    /// Control-channel byte accounting (Table IV).
    pub ledger: TransferLedger,
    /// Per-interval time series.
    pub history: Vec<IntervalRecord>,
    /// All flow completions observed so far.
    pub completions: Vec<FlowRecord>,
    /// Last globally dispatched parameter setting.
    pub last_params: DcqcnParams,
    /// Network-wide FSD estimate from the last interval.
    pub last_fsd: Fsd,
    /// Wall-clock spent in monitoring code (Table IV CPU accounting).
    pub monitor_cpu: Duration,
    /// Wall-clock spent in tuning code.
    pub tuner_cpu: Duration,
    first_interval: bool,
    prev_uploaded: u64,
    /// FSD aggregated over the current trigger window.
    window_fsd: Fsd,
    /// Intervals accumulated into `window_fsd`.
    window_count: u32,
    /// Ground-truth classifier (same ternary semantics, exact inputs);
    /// present when `SimConfig::track_ground_truth` is set.
    truth: Option<SlidingWindowClassifier>,
}

impl ClosedLoop {
    /// Start building a loop over `topo`.
    pub fn builder(topo: Topology) -> ClosedLoopBuilder {
        ClosedLoopBuilder::new(topo)
    }

    /// The scheme's display name.
    pub fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }

    /// The monitor's display name.
    pub fn monitor_name(&self) -> &'static str {
        self.monitor.name()
    }

    /// The guardrail, when armed.
    pub fn guard(&self) -> Option<&Guardrail> {
        self.guard.as_ref()
    }

    /// Run the fabric for one monitor interval and execute one
    /// monitor-tune-dispatch round. Returns the interval's record.
    pub fn step(&mut self) -> &IntervalRecord {
        let target = self.sim.now() + self.cfg.lambda_mi;
        self.sim.run_until(target);
        let metrics = self.sim.collect_interval();
        // Audit: every monitor upload must cover exactly one λ_MI and end
        // on a λ_MI boundary (all sim advancement goes through `step`).
        paraleon_audit::check(
            metrics.end == metrics.start + self.cfg.lambda_mi
                && self.cfg.lambda_mi > 0
                && metrics.end.is_multiple_of(self.cfg.lambda_mi),
            || paraleon_audit::AuditViolation::MiBoundary {
                start: metrics.start,
                end: metrics.end,
                lambda_mi: self.cfg.lambda_mi,
            },
        );
        self.completions.extend(self.sim.take_completions());
        // Stamp the registry clock so everything recorded during this
        // round (trigger/SA events, series points) carries the interval
        // end time.
        tel::set_time(metrics.end);
        tel::count(tel::Ctr::Intervals);

        // --- Monitoring half (switch CP agents + controller merge). ---
        let t0 = Instant::now();
        let fsd = self
            .monitor
            .on_interval(&metrics.tor_sketches, metrics.end)
            .unwrap_or_else(Fsd::empty);
        // Trigger check at window granularity over the aggregated FSD.
        self.window_fsd.merge(&fsd);
        self.window_count += 1;
        let mut triggered = false;
        if self.window_count >= self.cfg.trigger_window.max(1) {
            let window = std::mem::take(&mut self.window_fsd);
            self.window_count = 0;
            if !window.is_empty() {
                triggered = self.detector.observe(&window);
            }
        }
        if self.first_interval && self.cfg.force_tuning {
            triggered = true;
        }
        self.first_interval = false;
        let (dominant, mu) = fsd.dominant();
        // FSD accuracy vs. the exact ground truth (Figures 10-11).
        let fsd_accuracy = self.truth.as_mut().map(|t| {
            t.end_interval(metrics.truth_flow_bytes.iter().copied());
            let truth_fsd = t.local_fsd();
            if truth_fsd.is_empty() && fsd.is_empty() {
                1.0
            } else {
                fsd.similarity(&truth_fsd)
            }
        });
        self.monitor_cpu += t0.elapsed();

        // --- Utility function. ---
        let sample = MetricSample::new(
            metrics.avg_uplink_utilization,
            metrics.avg_normalized_rtt,
            1.0 - metrics.pfc_pause_ratio,
        );
        let utility = sample.utility(&self.cfg.weights);
        // Audit: with weights summing to 1 and terms in [0, 1], Eq. (1)
        // is a convex combination and must stay in [0, 1] itself.
        paraleon_audit::check(
            utility.is_finite() && (0.0..=1.0).contains(&utility),
            || paraleon_audit::AuditViolation::UtilityTermBounds {
                term: "U",
                value: utility,
            },
        );

        // --- Telemetry: the per-interval series behind Figures 8/9/12/14
        // (entity 0 = fabric-wide, switch series keyed by switch index).
        tel::gauge_set(tel::Gauge::LastUtility, utility);
        tel::gauge_set(tel::Gauge::Mu, mu);
        tel::gauge_set(tel::Gauge::ActiveFlows, self.sim.active_flows() as f64);
        tel::series("goodput_bytes_per_sec", 0, metrics.goodput_bytes_per_sec());
        tel::series("avg_rtt_ns", 0, metrics.avg_rtt_ns);
        tel::series("utility", 0, utility);
        tel::series("o_tp", 0, sample.o_tp);
        tel::series("o_rtt", 0, sample.o_rtt);
        tel::series("o_pfc", 0, sample.o_pfc);
        tel::series("mu", 0, mu);
        tel::series(
            "mu_mice",
            0,
            match dominant {
                FlowType::Mice => mu,
                _ => 1.0 - mu,
            },
        );
        tel::series("triggered", 0, if triggered { 1.0 } else { 0.0 });
        tel::series("cnps", 0, metrics.cnps as f64);
        tel::series("pfc_events", 0, metrics.pfc_events as f64);
        if let Some(acc) = fsd_accuracy {
            tel::series("fsd_accuracy", 0, acc);
        }
        // Under fault injection unreachable switches are absent from
        // `switch_obs`, so series are keyed by the stable switch index,
        // not the position in the vector.
        let n_hosts = self.sim.topology().n_hosts();
        for s in &metrics.switch_obs {
            let idx = (s.node - n_hosts) as u32;
            tel::series("switch_tx_utilization", idx, s.tx_utilization);
            tel::series("switch_marking_rate", idx, s.marking_rate);
            tel::series("switch_queue_frac", idx, s.queue_frac);
        }

        // --- Guardrail: judge the previous dispatch on this interval's
        // health before the tuner gets to emit a new candidate.
        let reporting: Vec<usize> = metrics
            .switch_obs
            .iter()
            .map(|s| s.node - n_hosts)
            .collect();
        let mut rejected = false;
        let mut rolled_back = false;
        let mut guard_dispatch_bytes = 0u64;
        // When the guard corrects the fabric this interval, the scheme is
        // not consulted: a fresh candidate would overwrite the correction
        // at the same instant.
        let mut guard_acted = false;
        if let Some(guard) = self.guard.as_mut() {
            match guard.observe(
                utility,
                metrics.goodput_bytes_per_sec(),
                metrics.pfc_pause_ratio,
                &reporting,
            ) {
                Some(GuardAction::Rollback(p)) => {
                    tel::event(tel::Event::GuardrailRollback);
                    self.sim.set_dcqcn_params(&p);
                    guard_dispatch_bytes += p.wire_size_bytes() as u64;
                    self.last_params = p;
                    self.scheme
                        .on_feedback(&TuningFeedback::RolledBack { restored: p });
                    rolled_back = true;
                    guard_acted = true;
                }
                Some(GuardAction::EnterSafeMode {
                    params,
                    backoff_intervals,
                }) => {
                    tel::event(tel::Event::SafeModeEnter { backoff_intervals });
                    self.sim.set_dcqcn_params(&params);
                    guard_dispatch_bytes += params.wire_size_bytes() as u64;
                    self.last_params = params;
                    self.scheme
                        .on_feedback(&TuningFeedback::Frozen { fallback: params });
                    guard_acted = true;
                }
                Some(GuardAction::ExitSafeMode) => {
                    tel::event(tel::Event::SafeModeExit);
                    self.scheme.on_feedback(&TuningFeedback::Unfrozen);
                }
                None => {}
            }
        }
        let safe_mode = self.guard.as_ref().is_some_and(Guardrail::in_safe_mode);
        tel::series("safe_mode", 0, if safe_mode { 1.0 } else { 0.0 });

        // --- Tuning half. ---
        let obs = Observation {
            now: metrics.end,
            utility,
            sample,
            dominant,
            mu,
            tuning_triggered: triggered,
            switch_obs: metrics
                .switch_obs
                .iter()
                .map(|s| SwitchLocalObs {
                    switch_index: s.node - n_hosts,
                    tx_utilization: s.tx_utilization,
                    marking_rate: s.marking_rate,
                    queue_frac: s.queue_frac,
                })
                .collect(),
        };
        let action = if guard_acted {
            None
        } else {
            let t1 = Instant::now();
            let action = self.scheme.on_interval(&obs);
            self.tuner_cpu += t1.elapsed();
            action
        };

        // --- Screen, dispatch + control-channel accounting. ---
        let action = match (action, self.guard.as_mut()) {
            (Some(a), Some(guard)) => match guard.screen(a, self.sim.n_switches()) {
                ScreenOutcome::Dispatch(a) => Some(a),
                ScreenOutcome::Rejected(reason) => {
                    tel::event(tel::Event::GuardrailReject);
                    tel::series("guardrail_reject", 0, 1.0);
                    let _ = reason; // carried in telemetry counters
                    self.scheme.on_feedback(&TuningFeedback::Rejected {
                        deployed: self.last_params,
                    });
                    rejected = true;
                    None
                }
                ScreenOutcome::Suppressed => None,
            },
            (a, _) => a,
        };
        let dispatched = action.is_some() || rolled_back || guard_acted;
        let dispatch_bytes = action
            .as_ref()
            .map(|a| self.scheme.dispatch_bytes(a))
            .unwrap_or(0)
            + guard_dispatch_bytes;
        if let Some(action) = action {
            self.apply(action);
        }
        let rnic_upload =
            self.sim.topology().n_hosts() as u64 * MetricSample::wire_size_bytes() as u64;
        let switch_metric_upload =
            self.sim.n_switches() as u64 * MetricSample::wire_size_bytes() as u64;
        let uploaded_total = self.monitor.uploaded_bytes();
        let fsd_upload = uploaded_total - self.prev_uploaded;
        self.prev_uploaded = uploaded_total;
        self.ledger.record_interval(
            fsd_upload + switch_metric_upload,
            rnic_upload,
            dispatch_bytes,
        );

        self.last_fsd = fsd;
        self.history.push(IntervalRecord {
            t: metrics.end,
            goodput: metrics.goodput_bytes_per_sec(),
            avg_rtt_ns: metrics.avg_rtt_ns,
            utility,
            o_tp: sample.o_tp,
            o_rtt: sample.o_rtt,
            o_pfc: sample.o_pfc,
            dominant,
            mu,
            triggered,
            dispatched,
            rejected,
            rolled_back,
            safe_mode,
            cnps: metrics.cnps,
            pfc_events: metrics.pfc_events,
            fsd_accuracy,
        });
        self.history.last().expect("just pushed")
    }

    fn apply(&mut self, action: TuningAction) {
        match action {
            TuningAction::Global(p) => {
                tel::event(tel::Event::Dispatch {
                    scope: tel::DispatchScope::Global,
                });
                self.sim.set_dcqcn_params(&p);
                self.last_params = p;
            }
            TuningAction::PerSwitchEcn(updates) => {
                tel::event(tel::Event::Dispatch {
                    scope: tel::DispatchScope::PerSwitch,
                });
                for (idx, p) in updates {
                    // `set_switch_ecn` bounds-checks; an out-of-range
                    // index simply does not reach any switch.
                    let _ = self.sim.set_switch_ecn(idx, &p);
                }
            }
        }
    }

    /// Step until the simulator clock reaches `t`.
    pub fn run_until(&mut self, t: Nanos) {
        while self.sim.now() < t {
            self.step();
        }
    }

    /// Step until all admitted flows complete (plus one final interval),
    /// or until `deadline`. Returns true if everything finished.
    pub fn run_to_completion(&mut self, deadline: Nanos) -> bool {
        while self.sim.now() < deadline {
            self.step();
            if self.sim.active_flows() == 0 {
                return true;
            }
        }
        self.sim.active_flows() == 0
    }

    /// Raw access to the last interval metrics' equivalents via history.
    pub fn last_record(&self) -> Option<&IntervalRecord> {
        self.history.last()
    }
}

/// Builder for [`ClosedLoop`].
pub struct ClosedLoopBuilder {
    topo: Topology,
    sim_cfg: SimConfig,
    loop_cfg: LoopConfig,
    scheme: SchemeKind,
    custom_scheme: Option<Box<dyn TuningScheme>>,
    monitor: MonitorKind,
    guardrail: Option<GuardrailConfig>,
    seed: u64,
}

impl ClosedLoopBuilder {
    /// Defaults: PARALEON scheme + PARALEON monitor, paper settings.
    pub fn new(topo: Topology) -> Self {
        Self {
            topo,
            sim_cfg: SimConfig::default(),
            loop_cfg: LoopConfig::default(),
            scheme: SchemeKind::Paraleon,
            custom_scheme: None,
            monitor: MonitorKind::Paraleon,
            guardrail: None,
            seed: 1,
        }
    }

    /// Select the tuning scheme.
    pub fn scheme(mut self, s: SchemeKind) -> Self {
        self.scheme = s;
        self
    }

    /// Drive the loop with an arbitrary [`TuningScheme`] instance
    /// (harness hooks, e.g. the fault-experiment's rogue tuner). The
    /// simulator still boots with the [`SchemeKind`]'s initial
    /// parameters.
    pub fn scheme_boxed(mut self, s: Box<dyn TuningScheme>) -> Self {
        self.custom_scheme = Some(s);
        self
    }

    /// Select the monitoring scheme.
    pub fn monitor(mut self, m: MonitorKind) -> Self {
        self.monitor = m;
        self
    }

    /// Override the simulator configuration (scheme/monitor adjustments
    /// are applied on top at build time).
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim_cfg = cfg;
        self
    }

    /// Override the loop configuration.
    pub fn loop_config(mut self, cfg: LoopConfig) -> Self {
        self.loop_cfg = cfg;
        self
    }

    /// Arm the deployment guardrail (validation, rollback, safe mode).
    pub fn guardrail(mut self, cfg: GuardrailConfig) -> Self {
        self.guardrail = Some(cfg);
        self
    }

    /// Set the run seed (simulator + tuner randomness).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the loop.
    pub fn build(self) -> ClosedLoop {
        let mut sim_cfg = self.sim_cfg;
        sim_cfg.seed = self.seed;
        self.scheme.apply_sim_config(&mut sim_cfg);
        sim_cfg.tos_dedup = self.monitor.wants_tos_dedup();
        let initial = sim_cfg.dcqcn;
        let truth = sim_cfg
            .track_ground_truth
            .then(|| SlidingWindowClassifier::new(WindowConfig::default()));
        let sim = Simulator::new(self.topo, sim_cfg);
        ClosedLoop {
            sim,
            monitor: self.monitor.build(),
            detector: ChangeDetector::new(self.loop_cfg.theta),
            scheme: self
                .custom_scheme
                .unwrap_or_else(|| self.scheme.build_tuner(self.seed)),
            guard: self.guardrail.map(|cfg| Guardrail::new(cfg, initial)),
            cfg: self.loop_cfg,
            ledger: TransferLedger::new(),
            history: Vec::new(),
            completions: Vec::new(),
            last_params: initial,
            last_fsd: Fsd::empty(),
            monitor_cpu: Duration::ZERO,
            tuner_cpu: Duration::ZERO,
            first_interval: true,
            prev_uploaded: 0,
            window_fsd: Fsd::empty(),
            window_count: 0,
            truth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraleon_netsim::MILLI;

    fn topo() -> Topology {
        Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000)
    }

    #[test]
    fn steps_advance_one_interval_each() {
        let mut cl = ClosedLoop::builder(topo()).build();
        cl.step();
        assert_eq!(cl.sim.now(), MILLI);
        cl.step();
        assert_eq!(cl.sim.now(), 2 * MILLI);
        assert_eq!(cl.history.len(), 2);
    }

    #[test]
    fn completions_are_gathered() {
        let mut cl = ClosedLoop::builder(topo()).build();
        cl.sim.add_flow(0, 5, 500_000, 0);
        assert!(cl.run_to_completion(100 * MILLI));
        assert_eq!(cl.completions.len(), 1);
    }

    #[test]
    fn default_scheme_dispatches_once_then_idles() {
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Default)
            .build();
        cl.step();
        assert!(cl.history[0].dispatched);
        cl.step();
        assert!(!cl.history[1].dispatched);
    }

    #[test]
    fn paraleon_tunes_when_traffic_shifts() {
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Paraleon)
            .build();
        // Elephant phase.
        for i in 0..8usize {
            cl.sim.add_flow(i % 4, 4 + i % 4, 8_000_000, cl.sim.now());
            cl.step();
        }
        // Mice influx.
        for _ in 0..4 {
            let now = cl.sim.now();
            for k in 0..60usize {
                cl.sim
                    .add_flow(k % 8, (k + 3) % 8, 4_000, now + k as u64 * 1_000);
            }
            cl.step();
        }
        for _ in 0..4 {
            cl.step();
        }
        let any_trigger = cl.history.iter().any(|r| r.triggered);
        let any_dispatch = cl.history.iter().any(|r| r.dispatched);
        assert!(any_trigger, "mice influx must fire the KL trigger");
        assert!(any_dispatch, "a trigger must start SA dispatches");
    }

    #[test]
    fn force_tuning_starts_sa_without_a_trigger() {
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Paraleon)
            .monitor(MonitorKind::NoFsd)
            .loop_config(LoopConfig {
                force_tuning: true,
                ..LoopConfig::default()
            })
            .build();
        cl.sim.add_flow(0, 5, 4_000_000, 0);
        cl.step();
        assert!(cl.history[0].triggered);
        assert!(cl.history[0].dispatched);
    }

    #[test]
    fn ledger_accumulates_every_interval() {
        let mut cl = ClosedLoop::builder(topo()).build();
        cl.sim.add_flow(0, 5, 2_000_000, 0);
        for _ in 0..5 {
            cl.step();
        }
        assert_eq!(cl.ledger.intervals, 5);
        assert!(cl.ledger.rnic_to_controller > 0);
        assert!(cl.ledger.switch_to_controller > 0);
    }

    /// Drive one elephant-heavy interval.
    fn elephant_interval(cl: &mut ClosedLoop, i: usize) {
        cl.sim.add_flow(i % 4, 4 + i % 4, 8_000_000, cl.sim.now());
        cl.step();
    }

    /// Drive one mice-heavy interval.
    fn mice_interval(cl: &mut ClosedLoop) {
        let now = cl.sim.now();
        for k in 0..60usize {
            cl.sim
                .add_flow(k % 8, (k + 3) % 8, 4_000, now + k as u64 * 1_000);
        }
        cl.step();
    }

    #[test]
    fn kl_trigger_fires_on_a_real_shift_only_at_window_boundaries() {
        let window = 4u32;
        let mut cl = ClosedLoop::builder(topo())
            .loop_config(LoopConfig {
                trigger_window: window,
                ..LoopConfig::default()
            })
            .build();
        // Two full elephant windows establish the baseline FSD, then a
        // sustained mice influx shifts it.
        for i in 0..8usize {
            elephant_interval(&mut cl, i);
        }
        for _ in 0..8 {
            mice_interval(&mut cl);
        }
        assert!(
            cl.history.iter().any(|r| r.triggered),
            "elephant→mice shift must fire the KL trigger"
        );
        // The detector only compares window-aggregated FSDs, so a trigger
        // can only ever land on a window-boundary interval.
        for (i, r) in cl.history.iter().enumerate() {
            if r.triggered {
                assert_eq!(
                    (i + 1) % window as usize,
                    0,
                    "trigger at interval {i} is inside a window"
                );
            }
        }
    }

    #[test]
    fn kl_trigger_ignores_noise_under_a_stable_workload() {
        // The same elephant pattern every interval: per-interval sampling
        // noise must not re-fire the trigger once the baseline window is
        // established.
        let mut cl = ClosedLoop::builder(topo())
            .loop_config(LoopConfig {
                trigger_window: 4,
                ..LoopConfig::default()
            })
            .build();
        for i in 0..24usize {
            elephant_interval(&mut cl, i);
        }
        assert!(
            cl.history.iter().all(|r| !r.triggered),
            "stable traffic re-fired the KL trigger"
        );
    }

    #[test]
    fn acc_only_touches_switch_ecn() {
        let mut cl = ClosedLoop::builder(topo()).scheme(SchemeKind::Acc).build();
        cl.sim.add_flow(0, 5, 4_000_000, 0);
        for _ in 0..10 {
            cl.step();
        }
        // RNIC-side parameters in the sim config stayed at default.
        assert_eq!(
            cl.sim.dcqcn_params().ai_rate,
            DcqcnParams::nvidia_default().ai_rate
        );
    }
}
