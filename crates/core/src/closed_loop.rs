//! The closed tuning loop: simulator ⇄ monitor ⇄ tuner, one monitor
//! interval at a time.
//!
//! [`ClosedLoop::step`] performs exactly what Figure 2 describes for one
//! λ_MI: run the fabric, read the switch/RNIC agents' uploads, update the
//! network-wide FSD and the KL trigger, evaluate the utility function,
//! hand everything to the tuning scheme, dispatch whatever it returns,
//! and account the control-channel traffic (Table IV).
//!
//! The controller half lives in [`TunerCell`]; `ClosedLoop` is the
//! 1-tenant special case pairing one cell with one [`Engine`]. The
//! fleet service (`paraleon-fleet`) runs many cells against many
//! engines under one scheduler.

use paraleon_netsim::{Engine, FaultPlan, FlowRecord, SimConfig, SimError, Topology};
use paraleon_sketch::{SlidingWindowClassifier, WindowConfig};
use paraleon_tuner::TuningScheme;

use crate::ctrl_plane::{CtrlPlane, CtrlPlaneConfig};
use crate::guardrail::{Guardrail, GuardrailConfig};
use crate::schemes::{MonitorKind, SchemeKind};
pub use crate::tuner_cell::{CellSnapshot, IntervalRecord, LoopConfig, TunerCell};
use crate::Nanos;

/// The full PARALEON closed loop over one simulated fabric.
pub struct ClosedLoop {
    /// The fabric. Exposed so harnesses can inject flows between steps.
    /// Serial by default; [`ClosedLoopBuilder::parallel`] swaps in the
    /// conservative parallel engine (byte-identical results).
    pub sim: Engine,
    /// The controller: monitor merge, KL trigger, tuning scheme,
    /// guardrail, dispatch protocol, history and ledger.
    pub cell: TunerCell,
    /// All flow completions observed so far.
    pub completions: Vec<FlowRecord>,
}

impl ClosedLoop {
    /// Start building a loop over `topo`.
    pub fn builder(topo: Topology) -> ClosedLoopBuilder {
        ClosedLoopBuilder::new(topo)
    }

    /// The scheme's display name.
    pub fn scheme_name(&self) -> &'static str {
        self.cell.scheme_name()
    }

    /// The monitor's display name.
    pub fn monitor_name(&self) -> &'static str {
        self.cell.monitor_name()
    }

    /// The guardrail, when armed.
    pub fn guard(&self) -> Option<&Guardrail> {
        self.cell.guard()
    }

    /// The hardened control plane, when armed.
    pub fn ctrl(&self) -> Option<&CtrlPlane> {
        self.cell.ctrl()
    }

    /// Route all control traffic through the hardened, impairable
    /// control plane. With no impairments scheduled the armed loop is
    /// byte-identical to the direct loop, so arming is always safe; it
    /// is required before control-plane fault events can do anything.
    /// No-op if already armed. The checkpoint taken here is the
    /// cold-restart target, so arm before stepping.
    pub fn arm_ctrl(&mut self, cfg: CtrlPlaneConfig) {
        self.cell.arm_ctrl(cfg);
    }

    /// Install a fault plan: data-plane events go to the simulator,
    /// control-plane events are consumed by the controller cell at their
    /// scheduled times (the simulator ignores them). A plan containing
    /// control-plane events arms the hardened control plane with
    /// default knobs if it is not armed yet.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        self.cell.install_ctrl_events(plan);
        self.sim.install_fault_plan(plan)
    }

    /// Whether the fabric's applied global parameters differ from what
    /// the controller believes it deployed — the end-state a hardened
    /// control plane must drive back to `false` after any fault.
    pub fn ctrl_diverged(&self) -> bool {
        self.cell.ctrl_diverged(&self.sim)
    }

    /// Run the fabric for one monitor interval and execute one
    /// monitor-tune-dispatch round. Returns the interval's record.
    pub fn step(&mut self) -> &IntervalRecord {
        // Control-channel time is the interval index: coarse enough for
        // the protocol, exact enough for determinism.
        let interval_idx = self.cell.interval_index();
        // Dispatches due now apply before the fabric advances — for a
        // clean channel this is indistinguishable from the direct
        // loop's immediate apply at the end of the previous interval.
        self.cell
            .deliver_due_dispatches(&mut self.sim, interval_idx);
        let target = self.sim.now() + self.cell.cfg.lambda_mi;
        self.sim.run_until(target);
        let metrics = self.sim.collect_interval();
        self.completions.extend(self.sim.take_completions());
        self.cell.process_interval(&mut self.sim, &metrics)
    }

    /// Step until the simulator clock reaches `t`.
    pub fn run_until(&mut self, t: Nanos) {
        while self.sim.now() < t {
            self.step();
        }
    }

    /// Step until all admitted flows complete (plus one final interval),
    /// or until `deadline`. Returns true if everything finished.
    pub fn run_to_completion(&mut self, deadline: Nanos) -> bool {
        while self.sim.now() < deadline {
            self.step();
            if self.sim.active_flows() == 0 {
                return true;
            }
        }
        self.sim.active_flows() == 0
    }

    /// Raw access to the last interval metrics' equivalents via history.
    pub fn last_record(&self) -> Option<&IntervalRecord> {
        self.cell.history.last()
    }

    /// Step until the control plane quiesces — the previous interval
    /// dispatched nothing, no dispatch awaits its ACK, and nothing is in
    /// flight on either lane — or `max_extra` intervals pass. Returns
    /// whether quiescence was reached. Divergence is only meaningful at
    /// quiescence: mid-conversation the fabric legitimately trails the
    /// controller's belief by one in-flight dispatch.
    ///
    /// Forced tuning ([`LoopConfig::force_tuning`]) is suspended while
    /// settling: it would dispatch on every extra step, making the quiet
    /// state unreachable by construction — and settling is precisely the
    /// act of letting the conversation drain.
    pub fn ctrl_settle(&mut self, max_extra: u64) -> bool {
        let forced = std::mem::replace(&mut self.cell.cfg.force_tuning, false);
        let mut settled = false;
        for _ in 0..max_extra {
            if self.cell.ctrl_quiet() && !self.cell.history.last().is_some_and(|r| r.dispatched) {
                settled = true;
                break;
            }
            self.step();
        }
        self.cell.cfg.force_tuning = forced;
        settled
    }
}

/// Builder for [`ClosedLoop`].
pub struct ClosedLoopBuilder {
    topo: Topology,
    sim_cfg: SimConfig,
    loop_cfg: LoopConfig,
    scheme: SchemeKind,
    custom_scheme: Option<Box<dyn TuningScheme>>,
    monitor: MonitorKind,
    guardrail: Option<GuardrailConfig>,
    ctrl: Option<CtrlPlaneConfig>,
    seed: u64,
    parallel: usize,
}

impl ClosedLoopBuilder {
    /// Defaults: PARALEON scheme + PARALEON monitor, paper settings.
    pub fn new(topo: Topology) -> Self {
        Self {
            topo,
            sim_cfg: SimConfig::default(),
            loop_cfg: LoopConfig::default(),
            scheme: SchemeKind::Paraleon,
            custom_scheme: None,
            monitor: MonitorKind::Paraleon,
            guardrail: None,
            ctrl: None,
            seed: 1,
            parallel: 1,
        }
    }

    /// Run the fabric on `threads` sharded event cores (the conservative
    /// parallel engine). `<= 1` keeps the default serial engine. Results
    /// are byte-identical either way; the thread count only changes
    /// wall-clock time.
    pub fn parallel(mut self, threads: usize) -> Self {
        self.parallel = threads;
        self
    }

    /// Select the tuning scheme.
    pub fn scheme(mut self, s: SchemeKind) -> Self {
        self.scheme = s;
        self
    }

    /// Drive the loop with an arbitrary [`TuningScheme`] instance
    /// (harness hooks, e.g. the fault-experiment's rogue tuner). The
    /// simulator still boots with the [`SchemeKind`]'s initial
    /// parameters.
    pub fn scheme_boxed(mut self, s: Box<dyn TuningScheme>) -> Self {
        self.custom_scheme = Some(s);
        self
    }

    /// Select the monitoring scheme.
    pub fn monitor(mut self, m: MonitorKind) -> Self {
        self.monitor = m;
        self
    }

    /// Override the simulator configuration (scheme/monitor adjustments
    /// are applied on top at build time).
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim_cfg = cfg;
        self
    }

    /// Override the loop configuration.
    pub fn loop_config(mut self, cfg: LoopConfig) -> Self {
        self.loop_cfg = cfg;
        self
    }

    /// Arm the deployment guardrail (validation, rollback, safe mode).
    pub fn guardrail(mut self, cfg: GuardrailConfig) -> Self {
        self.guardrail = Some(cfg);
        self
    }

    /// Arm the hardened control plane (see [`ClosedLoop::arm_ctrl`]).
    pub fn ctrl_plane(mut self, cfg: CtrlPlaneConfig) -> Self {
        self.ctrl = Some(cfg);
        self
    }

    /// Set the run seed (simulator + tuner randomness).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the loop.
    pub fn build(self) -> ClosedLoop {
        let mut sim_cfg = self.sim_cfg;
        sim_cfg.seed = self.seed;
        self.scheme.apply_sim_config(&mut sim_cfg);
        sim_cfg.tos_dedup = self.monitor.wants_tos_dedup();
        let initial = sim_cfg.dcqcn;
        let truth = sim_cfg
            .track_ground_truth
            .then(|| SlidingWindowClassifier::new(WindowConfig::default()));
        let sim = Engine::new(self.topo, sim_cfg, self.parallel);
        let scheme = self
            .custom_scheme
            .unwrap_or_else(|| self.scheme.build_tuner(self.seed));
        let guard = self.guardrail.map(|cfg| Guardrail::new(cfg, initial));
        let mut cell = TunerCell::new(
            self.monitor.build(),
            scheme,
            guard,
            self.loop_cfg,
            initial,
            truth,
            self.seed,
        );
        if let Some(cfg) = self.ctrl {
            cell.arm_ctrl(cfg);
        }
        ClosedLoop {
            sim,
            cell,
            completions: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraleon_dcqcn::DcqcnParams;
    use paraleon_netsim::MILLI;

    fn topo() -> Topology {
        Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000)
    }

    #[test]
    fn steps_advance_one_interval_each() {
        let mut cl = ClosedLoop::builder(topo()).build();
        cl.step();
        assert_eq!(cl.sim.now(), MILLI);
        cl.step();
        assert_eq!(cl.sim.now(), 2 * MILLI);
        assert_eq!(cl.cell.history.len(), 2);
    }

    #[test]
    fn completions_are_gathered() {
        let mut cl = ClosedLoop::builder(topo()).build();
        cl.sim.add_flow(0, 5, 500_000, 0);
        assert!(cl.run_to_completion(100 * MILLI));
        assert_eq!(cl.completions.len(), 1);
    }

    #[test]
    fn default_scheme_dispatches_once_then_idles() {
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Default)
            .build();
        cl.step();
        assert!(cl.cell.history[0].dispatched);
        cl.step();
        assert!(!cl.cell.history[1].dispatched);
    }

    #[test]
    fn paraleon_tunes_when_traffic_shifts() {
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Paraleon)
            .build();
        // Elephant phase.
        for i in 0..8usize {
            cl.sim.add_flow(i % 4, 4 + i % 4, 8_000_000, cl.sim.now());
            cl.step();
        }
        // Mice influx.
        for _ in 0..4 {
            let now = cl.sim.now();
            for k in 0..60usize {
                cl.sim
                    .add_flow(k % 8, (k + 3) % 8, 4_000, now + k as u64 * 1_000);
            }
            cl.step();
        }
        for _ in 0..4 {
            cl.step();
        }
        let any_trigger = cl.cell.history.iter().any(|r| r.triggered);
        let any_dispatch = cl.cell.history.iter().any(|r| r.dispatched);
        assert!(any_trigger, "mice influx must fire the KL trigger");
        assert!(any_dispatch, "a trigger must start SA dispatches");
    }

    #[test]
    fn force_tuning_starts_sa_without_a_trigger() {
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Paraleon)
            .monitor(MonitorKind::NoFsd)
            .loop_config(LoopConfig {
                force_tuning: true,
                ..LoopConfig::default()
            })
            .build();
        cl.sim.add_flow(0, 5, 4_000_000, 0);
        cl.step();
        assert!(cl.cell.history[0].triggered);
        assert!(cl.cell.history[0].dispatched);
    }

    #[test]
    fn ledger_accumulates_every_interval() {
        let mut cl = ClosedLoop::builder(topo()).build();
        cl.sim.add_flow(0, 5, 2_000_000, 0);
        for _ in 0..5 {
            cl.step();
        }
        assert_eq!(cl.cell.ledger.intervals, 5);
        assert!(cl.cell.ledger.rnic_to_controller > 0);
        assert!(cl.cell.ledger.switch_to_controller > 0);
    }

    /// Drive one elephant-heavy interval.
    fn elephant_interval(cl: &mut ClosedLoop, i: usize) {
        cl.sim.add_flow(i % 4, 4 + i % 4, 8_000_000, cl.sim.now());
        cl.step();
    }

    /// Drive one mice-heavy interval.
    fn mice_interval(cl: &mut ClosedLoop) {
        let now = cl.sim.now();
        for k in 0..60usize {
            cl.sim
                .add_flow(k % 8, (k + 3) % 8, 4_000, now + k as u64 * 1_000);
        }
        cl.step();
    }

    #[test]
    fn kl_trigger_fires_on_a_real_shift_only_at_window_boundaries() {
        let window = 4u32;
        let mut cl = ClosedLoop::builder(topo())
            .loop_config(LoopConfig {
                trigger_window: window,
                ..LoopConfig::default()
            })
            .build();
        // Two full elephant windows establish the baseline FSD, then a
        // sustained mice influx shifts it.
        for i in 0..8usize {
            elephant_interval(&mut cl, i);
        }
        for _ in 0..8 {
            mice_interval(&mut cl);
        }
        assert!(
            cl.cell.history.iter().any(|r| r.triggered),
            "elephant→mice shift must fire the KL trigger"
        );
        // The detector only compares window-aggregated FSDs, so a trigger
        // can only ever land on a window-boundary interval.
        for (i, r) in cl.cell.history.iter().enumerate() {
            if r.triggered {
                assert_eq!(
                    (i + 1) % window as usize,
                    0,
                    "trigger at interval {i} is inside a window"
                );
            }
        }
    }

    #[test]
    fn kl_trigger_ignores_noise_under_a_stable_workload() {
        // The same elephant pattern every interval: per-interval sampling
        // noise must not re-fire the trigger once the baseline window is
        // established.
        let mut cl = ClosedLoop::builder(topo())
            .loop_config(LoopConfig {
                trigger_window: 4,
                ..LoopConfig::default()
            })
            .build();
        for i in 0..24usize {
            elephant_interval(&mut cl, i);
        }
        assert!(
            cl.cell.history.iter().all(|r| !r.triggered),
            "stable traffic re-fired the KL trigger"
        );
    }

    /// Elephant phase then mice influx: enough churn to trigger, tune
    /// and dispatch repeatedly.
    fn drive(cl: &mut ClosedLoop, intervals: usize) {
        for i in 0..intervals {
            if i < 8 {
                cl.sim.add_flow(i % 4, 4 + i % 4, 8_000_000, cl.sim.now());
            } else {
                let now = cl.sim.now();
                for k in 0..40usize {
                    cl.sim
                        .add_flow(k % 8, (k + 3) % 8, 4_000, now + k as u64 * 1_000);
                }
            }
            cl.step();
        }
    }

    #[test]
    fn clean_ctrl_plane_is_byte_identical_to_the_direct_loop() {
        let build = |armed: bool| {
            let mut b = ClosedLoop::builder(topo())
                .scheme(SchemeKind::Paraleon)
                .guardrail(GuardrailConfig::default())
                .seed(5);
            if armed {
                b = b.ctrl_plane(CtrlPlaneConfig::default());
            }
            b.build()
        };
        let mut direct = build(false);
        let mut armed = build(true);
        drive(&mut direct, 24);
        drive(&mut armed, 24);
        assert_eq!(direct.cell.history, armed.cell.history);
        assert_eq!(direct.cell.last_params, armed.cell.last_params);
        assert_eq!(direct.cell.last_fsd, armed.cell.last_fsd);
        assert_eq!(direct.cell.ledger, armed.cell.ledger);
        assert!(!armed.ctrl_diverged());
        let stats = armed.ctrl().unwrap().stats();
        assert_eq!(stats.up.lost + stats.down.lost, 0);
        assert_eq!(stats.retries, 0);
        assert!(
            direct.cell.history.iter().any(|r| r.dispatched),
            "the comparison is vacuous unless something was dispatched"
        );
    }

    #[test]
    fn lossy_dispatch_recovers_through_retry_and_converges() {
        let mut plan = FaultPlan::new(3);
        // Heavy loss + delay + duplication on both lanes, then restore.
        plan.ctrl_impair(2 * MILLI, true, true, 0.5, 3, 0.3);
        plan.ctrl_restore(30 * MILLI);
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Paraleon)
            .loop_config(LoopConfig {
                force_tuning: true,
                ..LoopConfig::default()
            })
            .seed(5)
            .ctrl_plane(CtrlPlaneConfig::default())
            .build();
        cl.install_fault_plan(&plan).unwrap();
        drive(&mut cl, 48);
        let stats = cl.ctrl().unwrap().stats();
        assert!(
            stats.up.lost + stats.down.lost > 0,
            "the impairment must actually bite"
        );
        assert!(cl.ctrl_settle(300), "loop failed to quiesce");
        assert!(!cl.ctrl_diverged(), "retries must re-converge the fabric");
    }

    #[test]
    fn naive_protocol_diverges_under_the_same_faults() {
        // Same impairment; the epoch/retry machinery is what saves the
        // hardened loop, so the strawman must end divergent for at least
        // one seed in a small pool (loss of the last dispatch, or a
        // reordered stale one, is not guaranteed at every seed).
        let diverged = (0..8u64).any(|seed| {
            // Down lane lossy for the whole run: without ACK/retry, a
            // lost or reordered-stale final dispatch is never repaired.
            let mut plan = FaultPlan::new(3);
            plan.ctrl_impair(2 * MILLI, false, true, 0.5, 3, 0.3);
            let mut cl = ClosedLoop::builder(topo())
                .scheme(SchemeKind::Paraleon)
                .loop_config(LoopConfig {
                    force_tuning: true,
                    ..LoopConfig::default()
                })
                .seed(seed)
                .ctrl_plane(CtrlPlaneConfig {
                    naive: true,
                    ..CtrlPlaneConfig::default()
                })
                .build();
            cl.install_fault_plan(&plan).unwrap();
            drive(&mut cl, 48);
            cl.ctrl_settle(300) && cl.ctrl_diverged()
        });
        assert!(
            diverged,
            "the naive protocol never diverged — gate is vacuous"
        );
    }

    #[test]
    fn warm_crash_restores_and_resyncs() {
        let mut plan = FaultPlan::new(3);
        plan.ctrl_crash(20 * MILLI, true);
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Paraleon)
            .guardrail(GuardrailConfig::default())
            .loop_config(LoopConfig {
                force_tuning: true,
                ..LoopConfig::default()
            })
            .seed(5)
            .ctrl_plane(CtrlPlaneConfig::default())
            .build();
        cl.install_fault_plan(&plan).unwrap();
        drive(&mut cl, 40);
        let stats = cl.ctrl().unwrap().stats();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.resyncs, 1);
        assert!(cl.ctrl_settle(300), "loop failed to quiesce");
        assert!(!cl.ctrl_diverged(), "resync must re-converge the fabric");
        assert!(
            !cl.guard().unwrap().in_safe_mode(),
            "a warm restart resumes; it does not fall back to safe mode"
        );
    }

    #[test]
    fn cold_crash_enters_safe_mode_and_converges_on_safe_params() {
        let mut plan = FaultPlan::new(3);
        plan.ctrl_crash(20 * MILLI, false);
        let guard_cfg = GuardrailConfig::default();
        let safe = guard_cfg.safe_params;
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Paraleon)
            .guardrail(guard_cfg)
            .loop_config(LoopConfig {
                force_tuning: true,
                ..LoopConfig::default()
            })
            .seed(5)
            .ctrl_plane(CtrlPlaneConfig::default())
            .build();
        cl.install_fault_plan(&plan).unwrap();
        drive(&mut cl, 24);
        let stats = cl.ctrl().unwrap().stats();
        assert_eq!(stats.crashes, 1);
        assert!(
            cl.guard().unwrap().in_safe_mode(),
            "a cold restart cannot vouch for the dead tuner: safe mode"
        );
        assert_eq!(cl.cell.last_params, safe);
        assert!(!cl.ctrl_diverged(), "the fabric runs the safe fallback too");
    }

    #[test]
    fn acc_only_touches_switch_ecn() {
        let mut cl = ClosedLoop::builder(topo()).scheme(SchemeKind::Acc).build();
        cl.sim.add_flow(0, 5, 4_000_000, 0);
        for _ in 0..10 {
            cl.step();
        }
        // RNIC-side parameters in the sim config stayed at default.
        assert_eq!(
            cl.sim.dcqcn_params().ai_rate,
            DcqcnParams::nvidia_default().ai_rate
        );
    }

    #[test]
    fn cell_checkpoint_restore_is_identity() {
        // Snapshot at a tick boundary, keep stepping, restore, re-step:
        // the trajectory after restore must equal the original — the
        // fleet snapshot round-trip property builds on this.
        let build = || {
            ClosedLoop::builder(topo())
                .scheme(SchemeKind::Paraleon)
                .guardrail(GuardrailConfig::default())
                .seed(7)
                .ctrl_plane(CtrlPlaneConfig::default())
                .build()
        };
        // One interval of the `drive` pattern at global index `i` (the
        // workload must not restart when driving resumes after restore).
        let drive_one = |cl: &mut ClosedLoop, i: usize| {
            if i < 8 {
                cl.sim.add_flow(i % 4, 4 + i % 4, 8_000_000, cl.sim.now());
            } else {
                let now = cl.sim.now();
                for k in 0..40usize {
                    cl.sim
                        .add_flow(k % 8, (k + 3) % 8, 4_000, now + k as u64 * 1_000);
                }
            }
            cl.step();
        };
        let mut a = build();
        let mut b = build();
        for i in 0..24 {
            drive_one(&mut a, i);
        }
        for i in 0..12 {
            drive_one(&mut b, i);
        }
        let snap = b.cell.checkpoint().expect("armed loop checkpoints");
        b.cell.restore(&snap);
        for i in 12..24 {
            drive_one(&mut b, i);
        }
        assert_eq!(a.cell.history.len(), b.cell.history.len());
        assert_eq!(a.cell.history, b.cell.history);
        assert_eq!(a.cell.last_params, b.cell.last_params);
    }
}
