//! The closed tuning loop: simulator ⇄ monitor ⇄ tuner, one monitor
//! interval at a time.
//!
//! [`ClosedLoop::step`] performs exactly what Figure 2 describes for one
//! λ_MI: run the fabric, read the switch/RNIC agents' uploads, update the
//! network-wide FSD and the KL trigger, evaluate the utility function,
//! hand everything to the tuning scheme, dispatch whatever it returns,
//! and account the control-channel traffic (Table IV).

use std::time::{Duration, Instant};

use paraleon_dcqcn::DcqcnParams;
use paraleon_monitor::{ChangeDetector, FsdMonitor, MetricSample, TransferLedger, UtilityWeights};
use paraleon_netsim::fasthash::mix64;
use paraleon_netsim::{
    CtrlImpairment, Engine, FaultEvent, FaultKind, FaultPlan, FlowRecord, SimConfig, SimError,
    Topology, MILLI,
};
use paraleon_sketch::{FlowType, Fsd, SlidingWindowClassifier, WindowConfig};
use paraleon_telemetry as tel;
use paraleon_tuner::{
    Observation, SchemeState, SwitchLocalObs, TuningAction, TuningFeedback, TuningScheme,
};

use crate::ctrl_plane::{CtrlPlane, CtrlPlaneConfig, CtrlSnapshot, UpMsg};
use crate::guardrail::{GuardAction, Guardrail, GuardrailConfig, ScreenOutcome};
use crate::schemes::{MonitorKind, SchemeKind};
use crate::Nanos;

/// Loop-level configuration.
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Monitor interval λ_MI (paper NS3 default: 1 ms).
    pub lambda_mi: Nanos,
    /// Utility weights (paper NS3 default: 0.2 / 0.5 / 0.3).
    pub weights: UtilityWeights,
    /// KL trigger threshold θ (paper default: 0.01).
    pub theta: f64,
    /// Force a tuning trigger on the first interval (used by the
    /// monitoring-comparison experiments so every variant tunes even if
    /// its FSD scheme cannot detect change).
    pub force_tuning: bool,
    /// The change detector compares FSDs aggregated over this many
    /// monitor intervals (the paper checks the KL trigger at sub-second
    /// cadence, coarser than λ_MI; window-averaging also keeps per-
    /// interval sampling noise from re-triggering tuning forever).
    pub trigger_window: u32,
}

impl Default for LoopConfig {
    fn default() -> Self {
        Self {
            lambda_mi: MILLI,
            weights: UtilityWeights::paper_default(),
            theta: 0.01,
            force_tuning: false,
            trigger_window: 8,
        }
    }
}

/// What the controller logged for one monitor interval — the time series
/// behind Figures 8, 9, 12 and 14. `PartialEq` so harnesses can assert
/// byte-equivalence between loop variants.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRecord {
    /// Interval end time (ns).
    pub t: Nanos,
    /// Delivered goodput, bytes/sec.
    pub goodput: f64,
    /// Mean RTT, ns (0 if no samples).
    pub avg_rtt_ns: f64,
    /// Utility function value.
    pub utility: f64,
    /// O_TP term.
    pub o_tp: f64,
    /// O_RTT term.
    pub o_rtt: f64,
    /// O_PFC term.
    pub o_pfc: f64,
    /// Dominant flow type this interval.
    pub dominant: FlowType,
    /// Its proportion µ.
    pub mu: f64,
    /// Whether the KL trigger fired.
    pub triggered: bool,
    /// Whether the tuner dispatched new parameters.
    pub dispatched: bool,
    /// Whether the guardrail refused the tuner's candidate this interval.
    pub rejected: bool,
    /// Whether the guardrail rolled the fabric back to the last-known-
    /// good setting this interval.
    pub rolled_back: bool,
    /// Whether the loop is in safe mode (tuning frozen) this interval.
    pub safe_mode: bool,
    /// CNPs this interval.
    pub cnps: u64,
    /// PFC pause frames this interval.
    pub pfc_events: u64,
    /// FSD accuracy (similarity to the ground-truth distribution); only
    /// present when the simulator tracks ground truth.
    pub fsd_accuracy: Option<f64>,
}

impl IntervalRecord {
    /// The interval's PFC pause fraction. `o_pfc` is defined as
    /// `1 − pause fraction` (see `MetricSample`), so this inverts it —
    /// the pause-storm detectors consume the fraction directly.
    pub fn pause_ratio(&self) -> f64 {
        1.0 - self.o_pfc
    }
}

/// The full PARALEON closed loop over one simulated fabric.
pub struct ClosedLoop {
    /// The fabric. Exposed so harnesses can inject flows between steps.
    /// Serial by default; [`ClosedLoopBuilder::parallel`] swaps in the
    /// conservative parallel engine (byte-identical results).
    pub sim: Engine,
    monitor: Box<dyn FsdMonitor>,
    detector: ChangeDetector,
    scheme: Box<dyn TuningScheme>,
    /// Deployment guardrail, when armed (see [`crate::guardrail`]).
    guard: Option<Guardrail>,
    cfg: LoopConfig,
    /// Control-channel byte accounting (Table IV).
    pub ledger: TransferLedger,
    /// Per-interval time series.
    pub history: Vec<IntervalRecord>,
    /// All flow completions observed so far.
    pub completions: Vec<FlowRecord>,
    /// Last globally dispatched parameter setting.
    pub last_params: DcqcnParams,
    /// Network-wide FSD estimate from the last interval.
    pub last_fsd: Fsd,
    /// Wall-clock spent in monitoring code (Table IV CPU accounting).
    pub monitor_cpu: Duration,
    /// Wall-clock spent in tuning code.
    pub tuner_cpu: Duration,
    first_interval: bool,
    prev_uploaded: u64,
    /// FSD aggregated over the current trigger window.
    window_fsd: Fsd,
    /// Intervals accumulated into `window_fsd`.
    window_count: u32,
    /// Ground-truth classifier (same ternary semantics, exact inputs);
    /// present when `SimConfig::track_ground_truth` is set.
    truth: Option<SlidingWindowClassifier>,
    /// Hardened control plane, when armed. `None` keeps the classic
    /// direct loop: monitor readings merged in-process, dispatches
    /// applied instantly.
    ctrl: Option<CtrlPlane>,
    /// Control-plane fault events (impairments, crashes) consumed by
    /// the loop at their scheduled times, sorted by time.
    ctrl_events: Vec<FaultEvent>,
    ctrl_event_idx: usize,
    /// Latest periodic checkpoint — the warm-restart target.
    snapshot: Option<LoopSnapshot>,
    /// Build-time checkpoint — the cold-restart target.
    initial_snapshot: Option<LoopSnapshot>,
    /// Run seed (kept so late arming can derive the ctrl RNG lanes).
    seed: u64,
    /// Channel/merger counters at the end of the previous interval, for
    /// per-interval telemetry deltas.
    prev_lost: u64,
    prev_duplicated: u64,
    prev_stale_rejected: u64,
}

/// One controller checkpoint: everything the controller process owns.
/// The simulator, the monitor's device-side classifiers and the channel
/// lanes live outside the controller and deliberately do not rewind.
struct LoopSnapshot {
    scheme: Option<SchemeState>,
    guard: Option<Guardrail>,
    detector: ChangeDetector,
    ctrl: CtrlSnapshot,
    believed: DcqcnParams,
    window_fsd: Fsd,
    window_count: u32,
    first_interval: bool,
}

impl ClosedLoop {
    /// Start building a loop over `topo`.
    pub fn builder(topo: Topology) -> ClosedLoopBuilder {
        ClosedLoopBuilder::new(topo)
    }

    /// The scheme's display name.
    pub fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }

    /// The monitor's display name.
    pub fn monitor_name(&self) -> &'static str {
        self.monitor.name()
    }

    /// The guardrail, when armed.
    pub fn guard(&self) -> Option<&Guardrail> {
        self.guard.as_ref()
    }

    /// The hardened control plane, when armed.
    pub fn ctrl(&self) -> Option<&CtrlPlane> {
        self.ctrl.as_ref()
    }

    /// Route all control traffic through the hardened, impairable
    /// control plane. With no impairments scheduled the armed loop is
    /// byte-identical to the direct loop, so arming is always safe; it
    /// is required before control-plane fault events can do anything.
    /// No-op if already armed. The checkpoint taken here is the
    /// cold-restart target, so arm before stepping.
    pub fn arm_ctrl(&mut self, cfg: CtrlPlaneConfig) {
        if self.ctrl.is_some() {
            return;
        }
        self.ctrl = Some(CtrlPlane::new(cfg, self.seed));
        // The guardrail's backoff jitter joins the run's control-plane
        // fault randomness: same seed, decorrelated lane.
        if let Some(g) = self.guard.as_mut() {
            g.seed_jitter(mix64(self.seed ^ 0x6A4D));
        }
        self.initial_snapshot = self.take_snapshot();
        self.snapshot = self.take_snapshot();
    }

    /// Install a fault plan: data-plane events go to the simulator,
    /// control-plane events are consumed by the loop itself at their
    /// scheduled times (the simulator ignores them). A plan containing
    /// control-plane events arms the hardened control plane with
    /// default knobs if it is not armed yet.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        if self.ctrl.is_none() && plan.events().iter().any(|e| e.kind.is_ctrl()) {
            self.arm_ctrl(CtrlPlaneConfig::default());
        }
        self.ctrl_events
            .extend(plan.events().iter().filter(|e| e.kind.is_ctrl()));
        self.ctrl_events.sort_by_key(|e| e.at);
        self.sim.install_fault_plan(plan)
    }

    /// Whether the fabric's applied global parameters differ from what
    /// the controller believes it deployed — the end-state a hardened
    /// control plane must drive back to `false` after any fault.
    pub fn ctrl_diverged(&self) -> bool {
        *self.sim.dcqcn_params() != self.last_params
    }

    /// Checkpoint the controller process (tuner, guardrail, detector,
    /// protocol state, believed parameters). `None` when the control
    /// plane is not armed.
    fn take_snapshot(&self) -> Option<LoopSnapshot> {
        let ctrl = self.ctrl.as_ref()?;
        Some(LoopSnapshot {
            scheme: self.scheme.snapshot_state(),
            guard: self.guard.clone(),
            detector: self.detector.clone(),
            ctrl: ctrl.snapshot(),
            believed: self.last_params,
            window_fsd: self.window_fsd.clone(),
            window_count: self.window_count,
            first_interval: self.first_interval,
        })
    }

    fn restore_from(&mut self, snap: &LoopSnapshot) {
        if let Some(state) = snap.scheme.as_ref() {
            // Downcast-clone restore. A scheme that cannot restore
            // (no snapshot support) keeps its live state.
            let _ = self.scheme.restore_state(state);
        }
        self.guard = snap.guard.clone();
        self.detector = snap.detector.clone();
        if let Some(ctrl) = self.ctrl.as_mut() {
            ctrl.restore(&snap.ctrl);
        }
        self.last_params = snap.believed;
        self.window_fsd = snap.window_fsd.clone();
        self.window_count = snap.window_count;
        self.first_interval = snap.first_interval;
        // The monitor lives on the devices, not in the controller: its
        // upload accounting never rewinds. Re-anchor the per-interval
        // delta so the next ledger record starts from the live counter.
        self.prev_uploaded = self.monitor.uploaded_bytes();
    }

    /// Deliver dispatches due at the start of interval `k` and apply
    /// them at the fabric. A clean-channel dispatch sent during interval
    /// `k−1`'s controller phase lands here, before the fabric advances —
    /// the same simulator state and telemetry timestamp the direct
    /// loop's immediate apply saw.
    fn deliver_due_dispatches(&mut self, k: u64) {
        let Some(ctrl) = self.ctrl.as_mut() else {
            return;
        };
        for msg in ctrl.down.deliver(k) {
            let (action, acked) = ctrl.fabric.on_dispatch(msg);
            ctrl.up.send(k, UpMsg::Ack { epoch: acked });
            match action {
                Some(TuningAction::Global(p)) => {
                    tel::event(tel::Event::Dispatch {
                        scope: tel::DispatchScope::Global,
                    });
                    self.sim.set_dcqcn_params(&p);
                }
                Some(TuningAction::PerSwitchEcn(updates)) => {
                    tel::event(tel::Event::Dispatch {
                        scope: tel::DispatchScope::PerSwitch,
                    });
                    for (idx, p) in updates {
                        let _ = self.sim.set_switch_ecn(idx, &p);
                    }
                }
                None => {}
            }
        }
    }

    /// Controller half of the monitoring lane: fold delivered uploads
    /// and ACKs in, emit retry events for epoch-behind re-sends, and
    /// return the staleness-weighted network-wide FSD. A clean channel
    /// delivers everything in send order with no delay, and the merger's
    /// zero-age merge is bit-identical to the direct in-process merge.
    fn ctrl_receive(&mut self, k: u64) -> Fsd {
        let ctrl = self.ctrl.as_mut().expect("ctrl_receive requires arming");
        let mut resent = Vec::new();
        for msg in ctrl.up.deliver(k) {
            match msg {
                UpMsg::Fsd(u) => {
                    ctrl.merger.ingest(u);
                }
                UpMsg::Ack { epoch } => {
                    if let Some(e) = ctrl.on_ack(k, epoch) {
                        resent.push(e);
                    }
                }
            }
        }
        let fsd = ctrl.merger.network_fsd(k);
        for epoch in resent {
            tel::event(tel::Event::CtrlRetry { epoch });
        }
        fsd
    }

    /// Consume control-plane fault events scheduled at or before `upto`.
    fn process_ctrl_events(&mut self, upto: Nanos, k: u64) {
        while self.ctrl_event_idx < self.ctrl_events.len()
            && self.ctrl_events[self.ctrl_event_idx].at <= upto
        {
            let ev = self.ctrl_events[self.ctrl_event_idx];
            self.ctrl_event_idx += 1;
            match ev.kind {
                FaultKind::CtrlImpair {
                    up,
                    down,
                    loss,
                    delay_max,
                    dup,
                } => {
                    tel::event(tel::Event::CtrlImpairSet {
                        loss,
                        delay_max: delay_max as u32,
                        dup,
                    });
                    let imp = CtrlImpairment {
                        loss,
                        delay_max,
                        dup,
                    };
                    let ctrl = self.ctrl.as_mut().expect("ctrl events require arming");
                    if up {
                        ctrl.up.set_impairment(imp);
                    }
                    if down {
                        ctrl.down.set_impairment(imp);
                    }
                }
                FaultKind::CtrlCrash { warm } => self.handle_crash(warm, k),
                _ => {}
            }
        }
    }

    /// Controller crash + restart. Warm restores the latest periodic
    /// checkpoint; cold restores the build-time checkpoint and (when a
    /// guardrail is armed) enters safe mode, since a from-scratch
    /// controller cannot vouch for the dead tuner's plans. Either way
    /// the believed parameters are re-asserted at a fresh epoch so the
    /// fabric and controller re-converge.
    fn handle_crash(&mut self, warm: bool, k: u64) {
        tel::event(tel::Event::CtrlCrash { warm });
        {
            let ctrl = self.ctrl.as_mut().expect("crash requires arming");
            ctrl.crashes += 1;
            // In-flight messages addressed to the dead process die with
            // it; dispatches already in the network keep flying.
            ctrl.up.clear_in_flight();
        }
        let slot = if warm {
            &mut self.snapshot
        } else {
            &mut self.initial_snapshot
        };
        if let Some(snap) = slot.take() {
            self.restore_from(&snap);
            let slot = if warm {
                &mut self.snapshot
            } else {
                &mut self.initial_snapshot
            };
            *slot = Some(snap);
        }
        if !warm {
            if let Some(g) = self.guard.as_mut() {
                let GuardAction::EnterSafeMode {
                    params,
                    backoff_intervals,
                } = g.force_safe_mode()
                else {
                    unreachable!("force_safe_mode always enters safe mode");
                };
                tel::event(tel::Event::SafeModeEnter { backoff_intervals });
                self.scheme
                    .on_feedback(&TuningFeedback::Frozen { fallback: params });
                self.last_params = params;
            }
        }
        let believed = self.last_params;
        let ctrl = self.ctrl.as_mut().expect("crash requires arming");
        ctrl.resyncs += 1;
        ctrl.extra_dispatch_bytes += believed.wire_size_bytes() as u64;
        let epoch = ctrl.send_dispatch(k, TuningAction::Global(believed));
        tel::event(tel::Event::CtrlResync { epoch });
    }

    /// Run the fabric for one monitor interval and execute one
    /// monitor-tune-dispatch round. Returns the interval's record.
    pub fn step(&mut self) -> &IntervalRecord {
        // Control-channel time is the interval index: coarse enough for
        // the protocol, exact enough for determinism.
        let interval_idx = self.history.len() as u64;
        // Dispatches due now apply before the fabric advances — for a
        // clean channel this is indistinguishable from the direct
        // loop's immediate apply at the end of the previous interval.
        self.deliver_due_dispatches(interval_idx);
        let target = self.sim.now() + self.cfg.lambda_mi;
        self.sim.run_until(target);
        let metrics = self.sim.collect_interval();
        // Audit: every monitor upload must cover exactly one λ_MI and end
        // on a λ_MI boundary (all sim advancement goes through `step`).
        paraleon_audit::check(
            metrics.end == metrics.start + self.cfg.lambda_mi
                && self.cfg.lambda_mi > 0
                && metrics.end.is_multiple_of(self.cfg.lambda_mi),
            || paraleon_audit::AuditViolation::MiBoundary {
                start: metrics.start,
                end: metrics.end,
                lambda_mi: self.cfg.lambda_mi,
            },
        );
        self.completions.extend(self.sim.take_completions());
        // Stamp the registry clock so everything recorded during this
        // round (trigger/SA events, series points) carries the interval
        // end time.
        tel::set_time(metrics.end);
        tel::count(tel::Ctr::Intervals);
        // Control-plane fault transitions scheduled inside this interval
        // take effect now, before this interval's uploads are sent: an
        // impairment degrades them, a crash loses what was in flight.
        if self.ctrl.is_some() {
            self.process_ctrl_events(metrics.end, interval_idx);
        }

        // --- Monitoring half (switch CP agents + controller merge). ---
        let t0 = Instant::now();
        let fsd = if self.ctrl.is_some() {
            // Device side: sequence-numbered per-point uploads onto the
            // (possibly impaired) up lane.
            let ups = self
                .monitor
                .uploads(&metrics.tor_sketches, metrics.end, interval_idx);
            if let Some(ctrl) = self.ctrl.as_mut() {
                for u in ups {
                    ctrl.up.send(interval_idx, UpMsg::Fsd(u));
                }
            }
            self.ctrl_receive(interval_idx)
        } else {
            self.monitor
                .on_interval(&metrics.tor_sketches, metrics.end)
                .unwrap_or_else(Fsd::empty)
        };
        // Trigger check at window granularity over the aggregated FSD.
        self.window_fsd.merge(&fsd);
        self.window_count += 1;
        let mut triggered = false;
        if self.window_count >= self.cfg.trigger_window.max(1) {
            let window = std::mem::take(&mut self.window_fsd);
            self.window_count = 0;
            if !window.is_empty() {
                triggered = self.detector.observe(&window);
            }
        }
        if self.first_interval && self.cfg.force_tuning {
            triggered = true;
        }
        self.first_interval = false;
        let (dominant, mu) = fsd.dominant();
        // FSD accuracy vs. the exact ground truth (Figures 10-11).
        let fsd_accuracy = self.truth.as_mut().map(|t| {
            t.end_interval(metrics.truth_flow_bytes.iter().copied());
            let truth_fsd = t.local_fsd();
            if truth_fsd.is_empty() && fsd.is_empty() {
                1.0
            } else {
                fsd.similarity(&truth_fsd)
            }
        });
        self.monitor_cpu += t0.elapsed();

        // --- Utility function. ---
        let sample = MetricSample::new(
            metrics.avg_uplink_utilization,
            metrics.avg_normalized_rtt,
            1.0 - metrics.pfc_pause_ratio,
        );
        let utility = sample.utility(&self.cfg.weights);
        // Audit: with weights summing to 1 and terms in [0, 1], Eq. (1)
        // is a convex combination and must stay in [0, 1] itself.
        paraleon_audit::check(
            utility.is_finite() && (0.0..=1.0).contains(&utility),
            || paraleon_audit::AuditViolation::UtilityTermBounds {
                term: "U",
                value: utility,
            },
        );

        // --- Telemetry: the per-interval series behind Figures 8/9/12/14
        // (entity 0 = fabric-wide, switch series keyed by switch index).
        tel::gauge_set(tel::Gauge::LastUtility, utility);
        tel::gauge_set(tel::Gauge::Mu, mu);
        tel::gauge_set(tel::Gauge::ActiveFlows, self.sim.active_flows() as f64);
        tel::series("goodput_bytes_per_sec", 0, metrics.goodput_bytes_per_sec());
        tel::series("avg_rtt_ns", 0, metrics.avg_rtt_ns);
        tel::series("utility", 0, utility);
        tel::series("o_tp", 0, sample.o_tp);
        tel::series("o_rtt", 0, sample.o_rtt);
        tel::series("o_pfc", 0, sample.o_pfc);
        tel::series("mu", 0, mu);
        tel::series(
            "mu_mice",
            0,
            match dominant {
                FlowType::Mice => mu,
                _ => 1.0 - mu,
            },
        );
        tel::series("triggered", 0, if triggered { 1.0 } else { 0.0 });
        tel::series("cnps", 0, metrics.cnps as f64);
        tel::series("pfc_events", 0, metrics.pfc_events as f64);
        if let Some(acc) = fsd_accuracy {
            tel::series("fsd_accuracy", 0, acc);
        }
        // Under fault injection unreachable switches are absent from
        // `switch_obs`, so series are keyed by the stable switch index,
        // not the position in the vector.
        let n_hosts = self.sim.topology().n_hosts();
        for s in &metrics.switch_obs {
            let idx = (s.node - n_hosts) as u32;
            tel::series("switch_tx_utilization", idx, s.tx_utilization);
            tel::series("switch_marking_rate", idx, s.marking_rate);
            tel::series("switch_queue_frac", idx, s.queue_frac);
        }

        // --- Guardrail: judge the previous dispatch on this interval's
        // health before the tuner gets to emit a new candidate.
        let reporting: Vec<usize> = metrics
            .switch_obs
            .iter()
            .map(|s| s.node - n_hosts)
            .collect();
        let mut rejected = false;
        let mut rolled_back = false;
        let mut guard_dispatch_bytes = 0u64;
        // When the guard corrects the fabric this interval, the scheme is
        // not consulted: a fresh candidate would overwrite the correction
        // at the same instant.
        let mut guard_acted = false;
        let guard_action = self.guard.as_mut().and_then(|guard| {
            guard.observe(
                utility,
                metrics.goodput_bytes_per_sec(),
                metrics.pfc_pause_ratio,
                &reporting,
            )
        });
        match guard_action {
            Some(GuardAction::Rollback(p)) => {
                tel::event(tel::Event::GuardrailRollback);
                self.push_params(interval_idx, &p);
                guard_dispatch_bytes += p.wire_size_bytes() as u64;
                self.last_params = p;
                self.scheme
                    .on_feedback(&TuningFeedback::RolledBack { restored: p });
                rolled_back = true;
                guard_acted = true;
            }
            Some(GuardAction::EnterSafeMode {
                params,
                backoff_intervals,
            }) => {
                tel::event(tel::Event::SafeModeEnter { backoff_intervals });
                self.push_params(interval_idx, &params);
                guard_dispatch_bytes += params.wire_size_bytes() as u64;
                self.last_params = params;
                self.scheme
                    .on_feedback(&TuningFeedback::Frozen { fallback: params });
                guard_acted = true;
            }
            Some(GuardAction::ExitSafeMode) => {
                tel::event(tel::Event::SafeModeExit);
                self.scheme.on_feedback(&TuningFeedback::Unfrozen);
            }
            None => {}
        }
        let safe_mode = self.guard.as_ref().is_some_and(Guardrail::in_safe_mode);
        tel::series("safe_mode", 0, if safe_mode { 1.0 } else { 0.0 });

        // --- Tuning half. ---
        let obs = Observation {
            now: metrics.end,
            utility,
            sample,
            dominant,
            mu,
            tuning_triggered: triggered,
            switch_obs: metrics
                .switch_obs
                .iter()
                .map(|s| SwitchLocalObs {
                    switch_index: s.node - n_hosts,
                    tx_utilization: s.tx_utilization,
                    marking_rate: s.marking_rate,
                    queue_frac: s.queue_frac,
                })
                .collect(),
        };
        let action = if guard_acted {
            None
        } else {
            let t1 = Instant::now();
            let action = self.scheme.on_interval(&obs);
            self.tuner_cpu += t1.elapsed();
            action
        };

        // --- Screen, dispatch + control-channel accounting. ---
        let action = match (action, self.guard.as_mut()) {
            (Some(a), Some(guard)) => match guard.screen(a, self.sim.n_switches()) {
                ScreenOutcome::Dispatch(a) => Some(a),
                ScreenOutcome::Rejected(reason) => {
                    tel::event(tel::Event::GuardrailReject);
                    tel::series("guardrail_reject", 0, 1.0);
                    let _ = reason; // carried in telemetry counters
                    self.scheme.on_feedback(&TuningFeedback::Rejected {
                        deployed: self.last_params,
                    });
                    rejected = true;
                    None
                }
                ScreenOutcome::Suppressed => None,
            },
            (a, _) => a,
        };
        let dispatched = action.is_some() || rolled_back || guard_acted;
        let dispatch_bytes = action
            .as_ref()
            .map(|a| self.scheme.dispatch_bytes(a))
            .unwrap_or(0)
            + guard_dispatch_bytes;
        if let Some(action) = action {
            self.apply(interval_idx, action);
        }
        // Re-send the in-flight dispatch when its ACK timed out, and
        // surface this interval's channel losses as counters.
        if let Some(ctrl) = self.ctrl.as_mut() {
            if let Some(epoch) = ctrl.check_retry(interval_idx) {
                tel::event(tel::Event::CtrlRetry { epoch });
            }
            let lost = ctrl.up.stats.lost + ctrl.down.stats.lost;
            let duplicated = ctrl.up.stats.duplicated + ctrl.down.stats.duplicated;
            let stale = ctrl.merger.rejected;
            tel::count_n(tel::Ctr::CtrlMsgsLost, lost - self.prev_lost);
            tel::count_n(
                tel::Ctr::CtrlMsgsDuplicated,
                duplicated - self.prev_duplicated,
            );
            tel::count_n(
                tel::Ctr::CtrlStaleRejected,
                stale - self.prev_stale_rejected,
            );
            self.prev_lost = lost;
            self.prev_duplicated = duplicated;
            self.prev_stale_rejected = stale;
        }
        let rnic_upload =
            self.sim.topology().n_hosts() as u64 * MetricSample::wire_size_bytes() as u64;
        let switch_metric_upload =
            self.sim.n_switches() as u64 * MetricSample::wire_size_bytes() as u64;
        let uploaded_total = self.monitor.uploaded_bytes();
        // Saturating: a controller restore re-anchors `prev_uploaded` to
        // the live counter, and the device-side counter never rewinds —
        // but the ledger must not be able to underflow regardless.
        let fsd_upload = uploaded_total.saturating_sub(self.prev_uploaded);
        self.prev_uploaded = uploaded_total;
        let ctrl_extra = self
            .ctrl
            .as_mut()
            .map(|c| std::mem::take(&mut c.extra_dispatch_bytes))
            .unwrap_or(0);
        self.ledger.record_interval(
            fsd_upload + switch_metric_upload,
            rnic_upload,
            dispatch_bytes + ctrl_extra,
        );

        self.last_fsd = fsd;
        self.history.push(IntervalRecord {
            t: metrics.end,
            goodput: metrics.goodput_bytes_per_sec(),
            avg_rtt_ns: metrics.avg_rtt_ns,
            utility,
            o_tp: sample.o_tp,
            o_rtt: sample.o_rtt,
            o_pfc: sample.o_pfc,
            dominant,
            mu,
            triggered,
            dispatched,
            rejected,
            rolled_back,
            safe_mode,
            cnps: metrics.cnps,
            pfc_events: metrics.pfc_events,
            fsd_accuracy,
        });
        // Periodic controller checkpoint — the warm-restart target.
        let checkpoint_due = self
            .ctrl
            .as_ref()
            .map(|c| c.cfg.snapshot_every_intervals.max(1))
            .is_some_and(|every| (interval_idx + 1).is_multiple_of(every));
        if checkpoint_due {
            self.snapshot = self.take_snapshot();
        }
        self.history.last().expect("just pushed")
    }

    /// Apply a screened tuner action: instantly in the direct loop, via
    /// an epoch-stamped dispatch in ctrl mode. Either way the believed
    /// parameters update at dispatch time — that is the controller's
    /// claim the fabric must converge to.
    fn apply(&mut self, k: u64, action: TuningAction) {
        if let Some(ctrl) = self.ctrl.as_mut() {
            if let TuningAction::Global(p) = &action {
                self.last_params = *p;
            }
            ctrl.send_dispatch(k, action);
            return;
        }
        match action {
            TuningAction::Global(p) => {
                tel::event(tel::Event::Dispatch {
                    scope: tel::DispatchScope::Global,
                });
                self.sim.set_dcqcn_params(&p);
                self.last_params = p;
            }
            TuningAction::PerSwitchEcn(updates) => {
                tel::event(tel::Event::Dispatch {
                    scope: tel::DispatchScope::PerSwitch,
                });
                for (idx, p) in updates {
                    // `set_switch_ecn` bounds-checks; an out-of-range
                    // index simply does not reach any switch.
                    let _ = self.sim.set_switch_ecn(idx, &p);
                }
            }
        }
    }

    /// Push one guardrail correction at the fabric: instantly in the
    /// direct loop, via an epoch-stamped dispatch in ctrl mode.
    fn push_params(&mut self, k: u64, p: &DcqcnParams) {
        match self.ctrl.as_mut() {
            Some(ctrl) => {
                ctrl.send_dispatch(k, TuningAction::Global(*p));
            }
            None => self.sim.set_dcqcn_params(p),
        }
    }

    /// Step until the simulator clock reaches `t`.
    pub fn run_until(&mut self, t: Nanos) {
        while self.sim.now() < t {
            self.step();
        }
    }

    /// Step until all admitted flows complete (plus one final interval),
    /// or until `deadline`. Returns true if everything finished.
    pub fn run_to_completion(&mut self, deadline: Nanos) -> bool {
        while self.sim.now() < deadline {
            self.step();
            if self.sim.active_flows() == 0 {
                return true;
            }
        }
        self.sim.active_flows() == 0
    }

    /// Raw access to the last interval metrics' equivalents via history.
    pub fn last_record(&self) -> Option<&IntervalRecord> {
        self.history.last()
    }

    /// Step until the control plane quiesces — the previous interval
    /// dispatched nothing, no dispatch awaits its ACK, and nothing is in
    /// flight on either lane — or `max_extra` intervals pass. Returns
    /// whether quiescence was reached. Divergence is only meaningful at
    /// quiescence: mid-conversation the fabric legitimately trails the
    /// controller's belief by one in-flight dispatch.
    ///
    /// Forced tuning ([`LoopConfig::force_tuning`]) is suspended while
    /// settling: it would dispatch on every extra step, making the quiet
    /// state unreachable by construction — and settling is precisely the
    /// act of letting the conversation drain.
    pub fn ctrl_settle(&mut self, max_extra: u64) -> bool {
        let forced = std::mem::replace(&mut self.cfg.force_tuning, false);
        let mut settled = false;
        for _ in 0..max_extra {
            let channel_quiet = match self.ctrl.as_ref() {
                Some(c) => !c.has_pending() && c.down.in_flight() == 0 && c.up.in_flight() == 0,
                None => true,
            };
            if channel_quiet && !self.history.last().is_some_and(|r| r.dispatched) {
                settled = true;
                break;
            }
            self.step();
        }
        self.cfg.force_tuning = forced;
        settled
    }
}

/// Builder for [`ClosedLoop`].
pub struct ClosedLoopBuilder {
    topo: Topology,
    sim_cfg: SimConfig,
    loop_cfg: LoopConfig,
    scheme: SchemeKind,
    custom_scheme: Option<Box<dyn TuningScheme>>,
    monitor: MonitorKind,
    guardrail: Option<GuardrailConfig>,
    ctrl: Option<CtrlPlaneConfig>,
    seed: u64,
    parallel: usize,
}

impl ClosedLoopBuilder {
    /// Defaults: PARALEON scheme + PARALEON monitor, paper settings.
    pub fn new(topo: Topology) -> Self {
        Self {
            topo,
            sim_cfg: SimConfig::default(),
            loop_cfg: LoopConfig::default(),
            scheme: SchemeKind::Paraleon,
            custom_scheme: None,
            monitor: MonitorKind::Paraleon,
            guardrail: None,
            ctrl: None,
            seed: 1,
            parallel: 1,
        }
    }

    /// Run the fabric on `threads` sharded event cores (the conservative
    /// parallel engine). `<= 1` keeps the default serial engine. Results
    /// are byte-identical either way; the thread count only changes
    /// wall-clock time.
    pub fn parallel(mut self, threads: usize) -> Self {
        self.parallel = threads;
        self
    }

    /// Select the tuning scheme.
    pub fn scheme(mut self, s: SchemeKind) -> Self {
        self.scheme = s;
        self
    }

    /// Drive the loop with an arbitrary [`TuningScheme`] instance
    /// (harness hooks, e.g. the fault-experiment's rogue tuner). The
    /// simulator still boots with the [`SchemeKind`]'s initial
    /// parameters.
    pub fn scheme_boxed(mut self, s: Box<dyn TuningScheme>) -> Self {
        self.custom_scheme = Some(s);
        self
    }

    /// Select the monitoring scheme.
    pub fn monitor(mut self, m: MonitorKind) -> Self {
        self.monitor = m;
        self
    }

    /// Override the simulator configuration (scheme/monitor adjustments
    /// are applied on top at build time).
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim_cfg = cfg;
        self
    }

    /// Override the loop configuration.
    pub fn loop_config(mut self, cfg: LoopConfig) -> Self {
        self.loop_cfg = cfg;
        self
    }

    /// Arm the deployment guardrail (validation, rollback, safe mode).
    pub fn guardrail(mut self, cfg: GuardrailConfig) -> Self {
        self.guardrail = Some(cfg);
        self
    }

    /// Arm the hardened control plane (see [`ClosedLoop::arm_ctrl`]).
    pub fn ctrl_plane(mut self, cfg: CtrlPlaneConfig) -> Self {
        self.ctrl = Some(cfg);
        self
    }

    /// Set the run seed (simulator + tuner randomness).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the loop.
    pub fn build(self) -> ClosedLoop {
        let mut sim_cfg = self.sim_cfg;
        sim_cfg.seed = self.seed;
        self.scheme.apply_sim_config(&mut sim_cfg);
        sim_cfg.tos_dedup = self.monitor.wants_tos_dedup();
        let initial = sim_cfg.dcqcn;
        let truth = sim_cfg
            .track_ground_truth
            .then(|| SlidingWindowClassifier::new(WindowConfig::default()));
        let sim = Engine::new(self.topo, sim_cfg, self.parallel);
        let mut cl = ClosedLoop {
            sim,
            monitor: self.monitor.build(),
            detector: ChangeDetector::new(self.loop_cfg.theta),
            scheme: self
                .custom_scheme
                .unwrap_or_else(|| self.scheme.build_tuner(self.seed)),
            guard: self.guardrail.map(|cfg| Guardrail::new(cfg, initial)),
            cfg: self.loop_cfg,
            ledger: TransferLedger::new(),
            history: Vec::new(),
            completions: Vec::new(),
            last_params: initial,
            last_fsd: Fsd::empty(),
            monitor_cpu: Duration::ZERO,
            tuner_cpu: Duration::ZERO,
            first_interval: true,
            prev_uploaded: 0,
            window_fsd: Fsd::empty(),
            window_count: 0,
            truth,
            ctrl: None,
            ctrl_events: Vec::new(),
            ctrl_event_idx: 0,
            snapshot: None,
            initial_snapshot: None,
            seed: self.seed,
            prev_lost: 0,
            prev_duplicated: 0,
            prev_stale_rejected: 0,
        };
        if let Some(cfg) = self.ctrl {
            cl.arm_ctrl(cfg);
        }
        cl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraleon_netsim::MILLI;

    fn topo() -> Topology {
        Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000)
    }

    #[test]
    fn steps_advance_one_interval_each() {
        let mut cl = ClosedLoop::builder(topo()).build();
        cl.step();
        assert_eq!(cl.sim.now(), MILLI);
        cl.step();
        assert_eq!(cl.sim.now(), 2 * MILLI);
        assert_eq!(cl.history.len(), 2);
    }

    #[test]
    fn completions_are_gathered() {
        let mut cl = ClosedLoop::builder(topo()).build();
        cl.sim.add_flow(0, 5, 500_000, 0);
        assert!(cl.run_to_completion(100 * MILLI));
        assert_eq!(cl.completions.len(), 1);
    }

    #[test]
    fn default_scheme_dispatches_once_then_idles() {
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Default)
            .build();
        cl.step();
        assert!(cl.history[0].dispatched);
        cl.step();
        assert!(!cl.history[1].dispatched);
    }

    #[test]
    fn paraleon_tunes_when_traffic_shifts() {
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Paraleon)
            .build();
        // Elephant phase.
        for i in 0..8usize {
            cl.sim.add_flow(i % 4, 4 + i % 4, 8_000_000, cl.sim.now());
            cl.step();
        }
        // Mice influx.
        for _ in 0..4 {
            let now = cl.sim.now();
            for k in 0..60usize {
                cl.sim
                    .add_flow(k % 8, (k + 3) % 8, 4_000, now + k as u64 * 1_000);
            }
            cl.step();
        }
        for _ in 0..4 {
            cl.step();
        }
        let any_trigger = cl.history.iter().any(|r| r.triggered);
        let any_dispatch = cl.history.iter().any(|r| r.dispatched);
        assert!(any_trigger, "mice influx must fire the KL trigger");
        assert!(any_dispatch, "a trigger must start SA dispatches");
    }

    #[test]
    fn force_tuning_starts_sa_without_a_trigger() {
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Paraleon)
            .monitor(MonitorKind::NoFsd)
            .loop_config(LoopConfig {
                force_tuning: true,
                ..LoopConfig::default()
            })
            .build();
        cl.sim.add_flow(0, 5, 4_000_000, 0);
        cl.step();
        assert!(cl.history[0].triggered);
        assert!(cl.history[0].dispatched);
    }

    #[test]
    fn ledger_accumulates_every_interval() {
        let mut cl = ClosedLoop::builder(topo()).build();
        cl.sim.add_flow(0, 5, 2_000_000, 0);
        for _ in 0..5 {
            cl.step();
        }
        assert_eq!(cl.ledger.intervals, 5);
        assert!(cl.ledger.rnic_to_controller > 0);
        assert!(cl.ledger.switch_to_controller > 0);
    }

    /// Drive one elephant-heavy interval.
    fn elephant_interval(cl: &mut ClosedLoop, i: usize) {
        cl.sim.add_flow(i % 4, 4 + i % 4, 8_000_000, cl.sim.now());
        cl.step();
    }

    /// Drive one mice-heavy interval.
    fn mice_interval(cl: &mut ClosedLoop) {
        let now = cl.sim.now();
        for k in 0..60usize {
            cl.sim
                .add_flow(k % 8, (k + 3) % 8, 4_000, now + k as u64 * 1_000);
        }
        cl.step();
    }

    #[test]
    fn kl_trigger_fires_on_a_real_shift_only_at_window_boundaries() {
        let window = 4u32;
        let mut cl = ClosedLoop::builder(topo())
            .loop_config(LoopConfig {
                trigger_window: window,
                ..LoopConfig::default()
            })
            .build();
        // Two full elephant windows establish the baseline FSD, then a
        // sustained mice influx shifts it.
        for i in 0..8usize {
            elephant_interval(&mut cl, i);
        }
        for _ in 0..8 {
            mice_interval(&mut cl);
        }
        assert!(
            cl.history.iter().any(|r| r.triggered),
            "elephant→mice shift must fire the KL trigger"
        );
        // The detector only compares window-aggregated FSDs, so a trigger
        // can only ever land on a window-boundary interval.
        for (i, r) in cl.history.iter().enumerate() {
            if r.triggered {
                assert_eq!(
                    (i + 1) % window as usize,
                    0,
                    "trigger at interval {i} is inside a window"
                );
            }
        }
    }

    #[test]
    fn kl_trigger_ignores_noise_under_a_stable_workload() {
        // The same elephant pattern every interval: per-interval sampling
        // noise must not re-fire the trigger once the baseline window is
        // established.
        let mut cl = ClosedLoop::builder(topo())
            .loop_config(LoopConfig {
                trigger_window: 4,
                ..LoopConfig::default()
            })
            .build();
        for i in 0..24usize {
            elephant_interval(&mut cl, i);
        }
        assert!(
            cl.history.iter().all(|r| !r.triggered),
            "stable traffic re-fired the KL trigger"
        );
    }

    /// Elephant phase then mice influx: enough churn to trigger, tune
    /// and dispatch repeatedly.
    fn drive(cl: &mut ClosedLoop, intervals: usize) {
        for i in 0..intervals {
            if i < 8 {
                cl.sim.add_flow(i % 4, 4 + i % 4, 8_000_000, cl.sim.now());
            } else {
                let now = cl.sim.now();
                for k in 0..40usize {
                    cl.sim
                        .add_flow(k % 8, (k + 3) % 8, 4_000, now + k as u64 * 1_000);
                }
            }
            cl.step();
        }
    }

    #[test]
    fn clean_ctrl_plane_is_byte_identical_to_the_direct_loop() {
        let build = |armed: bool| {
            let mut b = ClosedLoop::builder(topo())
                .scheme(SchemeKind::Paraleon)
                .guardrail(GuardrailConfig::default())
                .seed(5);
            if armed {
                b = b.ctrl_plane(CtrlPlaneConfig::default());
            }
            b.build()
        };
        let mut direct = build(false);
        let mut armed = build(true);
        drive(&mut direct, 24);
        drive(&mut armed, 24);
        assert_eq!(direct.history, armed.history);
        assert_eq!(direct.last_params, armed.last_params);
        assert_eq!(direct.last_fsd, armed.last_fsd);
        assert_eq!(direct.ledger, armed.ledger);
        assert!(!armed.ctrl_diverged());
        let stats = armed.ctrl().unwrap().stats();
        assert_eq!(stats.up.lost + stats.down.lost, 0);
        assert_eq!(stats.retries, 0);
        assert!(
            direct.history.iter().any(|r| r.dispatched),
            "the comparison is vacuous unless something was dispatched"
        );
    }

    #[test]
    fn lossy_dispatch_recovers_through_retry_and_converges() {
        let mut plan = FaultPlan::new(3);
        // Heavy loss + delay + duplication on both lanes, then restore.
        plan.ctrl_impair(2 * MILLI, true, true, 0.5, 3, 0.3);
        plan.ctrl_restore(30 * MILLI);
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Paraleon)
            .loop_config(LoopConfig {
                force_tuning: true,
                ..LoopConfig::default()
            })
            .seed(5)
            .ctrl_plane(CtrlPlaneConfig::default())
            .build();
        cl.install_fault_plan(&plan).unwrap();
        drive(&mut cl, 48);
        let stats = cl.ctrl().unwrap().stats();
        assert!(
            stats.up.lost + stats.down.lost > 0,
            "the impairment must actually bite"
        );
        assert!(cl.ctrl_settle(300), "loop failed to quiesce");
        assert!(!cl.ctrl_diverged(), "retries must re-converge the fabric");
    }

    #[test]
    fn naive_protocol_diverges_under_the_same_faults() {
        // Same impairment; the epoch/retry machinery is what saves the
        // hardened loop, so the strawman must end divergent for at least
        // one seed in a small pool (loss of the last dispatch, or a
        // reordered stale one, is not guaranteed at every seed).
        let diverged = (0..8u64).any(|seed| {
            // Down lane lossy for the whole run: without ACK/retry, a
            // lost or reordered-stale final dispatch is never repaired.
            let mut plan = FaultPlan::new(3);
            plan.ctrl_impair(2 * MILLI, false, true, 0.5, 3, 0.3);
            let mut cl = ClosedLoop::builder(topo())
                .scheme(SchemeKind::Paraleon)
                .loop_config(LoopConfig {
                    force_tuning: true,
                    ..LoopConfig::default()
                })
                .seed(seed)
                .ctrl_plane(CtrlPlaneConfig {
                    naive: true,
                    ..CtrlPlaneConfig::default()
                })
                .build();
            cl.install_fault_plan(&plan).unwrap();
            drive(&mut cl, 48);
            cl.ctrl_settle(300) && cl.ctrl_diverged()
        });
        assert!(
            diverged,
            "the naive protocol never diverged — gate is vacuous"
        );
    }

    #[test]
    fn warm_crash_restores_and_resyncs() {
        let mut plan = FaultPlan::new(3);
        plan.ctrl_crash(20 * MILLI, true);
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Paraleon)
            .guardrail(GuardrailConfig::default())
            .loop_config(LoopConfig {
                force_tuning: true,
                ..LoopConfig::default()
            })
            .seed(5)
            .ctrl_plane(CtrlPlaneConfig::default())
            .build();
        cl.install_fault_plan(&plan).unwrap();
        drive(&mut cl, 40);
        let stats = cl.ctrl().unwrap().stats();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.resyncs, 1);
        assert!(cl.ctrl_settle(300), "loop failed to quiesce");
        assert!(!cl.ctrl_diverged(), "resync must re-converge the fabric");
        assert!(
            !cl.guard().unwrap().in_safe_mode(),
            "a warm restart resumes; it does not fall back to safe mode"
        );
    }

    #[test]
    fn cold_crash_enters_safe_mode_and_converges_on_safe_params() {
        let mut plan = FaultPlan::new(3);
        plan.ctrl_crash(20 * MILLI, false);
        let guard_cfg = GuardrailConfig::default();
        let safe = guard_cfg.safe_params;
        let mut cl = ClosedLoop::builder(topo())
            .scheme(SchemeKind::Paraleon)
            .guardrail(guard_cfg)
            .loop_config(LoopConfig {
                force_tuning: true,
                ..LoopConfig::default()
            })
            .seed(5)
            .ctrl_plane(CtrlPlaneConfig::default())
            .build();
        cl.install_fault_plan(&plan).unwrap();
        drive(&mut cl, 24);
        let stats = cl.ctrl().unwrap().stats();
        assert_eq!(stats.crashes, 1);
        assert!(
            cl.guard().unwrap().in_safe_mode(),
            "a cold restart cannot vouch for the dead tuner: safe mode"
        );
        assert_eq!(cl.last_params, safe);
        assert!(!cl.ctrl_diverged(), "the fabric runs the safe fallback too");
    }

    #[test]
    fn acc_only_touches_switch_ecn() {
        let mut cl = ClosedLoop::builder(topo()).scheme(SchemeKind::Acc).build();
        cl.sim.add_flow(0, 5, 4_000_000, 0);
        for _ in 0..10 {
            cl.step();
        }
        // RNIC-side parameters in the sim config stayed at default.
        assert_eq!(
            cl.sim.dcqcn_params().ai_rate,
            DcqcnParams::nvidia_default().ai_rate
        );
    }
}
