//! Statistics helpers for regenerating the paper's tables and figures:
//! percentiles, FCT slowdowns binned by flow size, and CDFs.

use paraleon_netsim::FlowRecord;

/// Percentile (0..=100) of a sample set by linear interpolation.
/// Returns 0.0 for an empty slice.
pub fn percentile(values: &mut [f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let rank = (p / 100.0) * (values.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        values[lo]
    } else {
        let frac = rank - lo as f64;
        values[lo] * (1.0 - frac) + values[hi] * frac
    }
}

/// Arithmetic mean (0.0 for empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// One row of a Figure-7-style FCT-slowdown-vs-flow-size table.
#[derive(Debug, Clone)]
pub struct SlowdownBin {
    /// Inclusive lower bound of the size bin, bytes.
    pub lo: u64,
    /// Exclusive upper bound, bytes.
    pub hi: u64,
    /// Flows in the bin.
    pub count: usize,
    /// Mean slowdown.
    pub avg: f64,
    /// 99.9th-percentile slowdown.
    pub p999: f64,
}

/// The flow-size bin edges used for Figure 7(a,b) (bytes).
pub const FIG7_BINS: [u64; 6] = [
    0,
    120_000,  // "< 120 KB": the paper's mice bucket
    1 << 20,  // < 1 MB
    4 << 20,  // < 4 MB
    16 << 20, // < 16 MB
    u64::MAX,
];

/// Bin completed flows by size and compute mean / p99.9 FCT slowdown.
/// `ref_bw` is the ideal transfer bandwidth (bytes/sec) and `base_rtt`
/// the unloaded RTT used in the ideal-FCT denominator.
pub fn slowdown_bins(
    records: &[FlowRecord],
    ref_bw: f64,
    base_rtt: u64,
    edges: &[u64],
) -> Vec<SlowdownBin> {
    let mut out = Vec::new();
    for w in edges.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let mut s: Vec<f64> = records
            .iter()
            .filter(|r| r.bytes >= lo && r.bytes < hi)
            .map(|r| r.slowdown(ref_bw, base_rtt))
            .collect();
        let avg = mean(&s);
        let p999 = percentile(&mut s, 99.9);
        out.push(SlowdownBin {
            lo,
            hi,
            count: s.len(),
            avg,
            p999,
        });
    }
    out
}

/// Empirical CDF points `(value, fraction ≤ value)` of a sample set
/// (sorted, deduplicated at `points` resolution). Used for Figure 7(c,d).
pub fn cdf(values: &[f64], points: usize) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = v.len();
    let step = (n.max(points) / points.max(1)).max(1);
    let mut out = Vec::new();
    let mut i = step - 1;
    while i < n {
        out.push((v[i], (i + 1) as f64 / n as f64));
        i += step;
    }
    if out.last().map(|&(x, _)| x) != Some(v[n - 1]) {
        out.push((v[n - 1], 1.0));
    }
    out
}

/// Format a byte-size bin edge for human-readable tables.
pub fn fmt_size(b: u64) -> String {
    if b == u64::MAX {
        "inf".into()
    } else if b >= 1 << 20 {
        format!("{}MB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KB", b >> 10)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bytes: u64, fct_ns: u64) -> FlowRecord {
        FlowRecord {
            flow: 0,
            src: 0,
            dst: 1,
            bytes,
            start: 0,
            finish: fct_ns,
        }
    }

    #[test]
    fn percentile_basics() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 50.0), 3.0);
        assert_eq!(percentile(&mut v, 100.0), 5.0);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let mut v = vec![0.0, 10.0];
        assert_eq!(percentile(&mut v, 25.0), 2.5);
    }

    #[test]
    fn slowdown_bins_partition_flows() {
        let records = vec![
            rec(50_000, 1_000_000),
            rec(500_000, 2_000_000),
            rec(8 << 20, 50_000_000),
        ];
        let bins = slowdown_bins(&records, 12.5e9, 10_000, &FIG7_BINS);
        assert_eq!(bins.len(), 5);
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 3);
        assert_eq!(bins[0].count, 1); // 50 KB
        assert_eq!(bins[1].count, 1); // 500 KB
        assert_eq!(bins[3].count, 1); // 8 MB
        for b in &bins {
            if b.count > 0 {
                assert!(b.avg >= 1.0);
                assert!(b.p999 >= b.avg * 0.99);
            }
        }
    }

    #[test]
    fn cdf_is_monotonic_and_ends_at_one() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let c = cdf(&values, 10);
        assert!(!c.is_empty());
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(c.last().unwrap().1, 1.0);
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(500), "500B");
        assert_eq!(fmt_size(120_000), "117KB");
        assert_eq!(fmt_size(12 << 20), "12MB");
        assert_eq!(fmt_size(u64::MAX), "inf");
    }
}
