//! One tenant's controller state, decoupled from the fabric it tunes.
//!
//! [`TunerCell`] owns everything the *controller process* holds for one
//! fabric: the monitoring scheme, the KL change detector, the tuning
//! scheme, the deployment guardrail, the control-plane protocol state
//! (epochs, retry machine, upload merger), the per-interval history and
//! the control-channel byte ledger. It deliberately does **not** own
//! the simulated fabric: every method that needs the fabric takes the
//! [`Engine`] as a parameter.
//!
//! [`crate::ClosedLoop`] is the 1-tenant special case — one `Engine`
//! plus one `TunerCell`, stepped in lockstep. The fleet service
//! (`paraleon-fleet`) holds N cells against N engines and interleaves
//! them under a cooperative scheduler; because all controller state
//! lives here and all randomness is seeded per cell, a cell's interval
//! trajectory is bit-identical whether it runs standalone or as one
//! tenant among many.

use std::time::{Duration, Instant};

use paraleon_dcqcn::DcqcnParams;
use paraleon_monitor::{ChangeDetector, FsdMonitor, MetricSample, TransferLedger, UtilityWeights};
use paraleon_netsim::fasthash::mix64;
use paraleon_netsim::{
    CtrlImpairment, Engine, FaultEvent, FaultKind, FaultPlan, IntervalMetrics, MILLI,
};
use paraleon_sketch::{FlowType, Fsd, SlidingWindowClassifier};
use paraleon_telemetry as tel;
use paraleon_tuner::{
    Observation, SchemeState, SwitchLocalObs, TuningAction, TuningFeedback, TuningScheme,
};

use crate::ctrl_plane::{CtrlPlane, CtrlPlaneConfig, CtrlSnapshot, UpMsg};
use crate::guardrail::{GuardAction, Guardrail, ScreenOutcome};
use crate::Nanos;

/// Loop-level configuration.
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Monitor interval λ_MI (paper NS3 default: 1 ms).
    pub lambda_mi: Nanos,
    /// Utility weights (paper NS3 default: 0.2 / 0.5 / 0.3).
    pub weights: UtilityWeights,
    /// KL trigger threshold θ (paper default: 0.01).
    pub theta: f64,
    /// Force a tuning trigger on the first interval (used by the
    /// monitoring-comparison experiments so every variant tunes even if
    /// its FSD scheme cannot detect change).
    pub force_tuning: bool,
    /// The change detector compares FSDs aggregated over this many
    /// monitor intervals (the paper checks the KL trigger at sub-second
    /// cadence, coarser than λ_MI; window-averaging also keeps per-
    /// interval sampling noise from re-triggering tuning forever).
    pub trigger_window: u32,
}

impl Default for LoopConfig {
    fn default() -> Self {
        Self {
            lambda_mi: MILLI,
            weights: UtilityWeights::paper_default(),
            theta: 0.01,
            force_tuning: false,
            trigger_window: 8,
        }
    }
}

/// What the controller logged for one monitor interval — the time series
/// behind Figures 8, 9, 12 and 14. `PartialEq` so harnesses can assert
/// byte-equivalence between loop variants.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRecord {
    /// Interval end time (ns).
    pub t: Nanos,
    /// Delivered goodput, bytes/sec.
    pub goodput: f64,
    /// Mean RTT, ns (0 if no samples).
    pub avg_rtt_ns: f64,
    /// Utility function value.
    pub utility: f64,
    /// O_TP term.
    pub o_tp: f64,
    /// O_RTT term.
    pub o_rtt: f64,
    /// O_PFC term.
    pub o_pfc: f64,
    /// Dominant flow type this interval.
    pub dominant: FlowType,
    /// Its proportion µ.
    pub mu: f64,
    /// Whether the KL trigger fired.
    pub triggered: bool,
    /// Whether the tuner dispatched new parameters.
    pub dispatched: bool,
    /// Whether the guardrail refused the tuner's candidate this interval.
    pub rejected: bool,
    /// Whether the guardrail rolled the fabric back to the last-known-
    /// good setting this interval.
    pub rolled_back: bool,
    /// Whether the loop is in safe mode (tuning frozen) this interval.
    pub safe_mode: bool,
    /// CNPs this interval.
    pub cnps: u64,
    /// PFC pause frames this interval.
    pub pfc_events: u64,
    /// FSD accuracy (similarity to the ground-truth distribution); only
    /// present when the simulator tracks ground truth.
    pub fsd_accuracy: Option<f64>,
}

impl IntervalRecord {
    /// The interval's PFC pause fraction. `o_pfc` is defined as
    /// `1 − pause fraction` (see `MetricSample`), so this inverts it —
    /// the pause-storm detectors consume the fraction directly.
    pub fn pause_ratio(&self) -> f64 {
        1.0 - self.o_pfc
    }
}

/// One controller checkpoint: everything the controller process owns.
/// The simulator, the monitor's device-side classifiers and the channel
/// lanes live outside the controller and deliberately do not rewind.
pub struct CellSnapshot {
    scheme: Option<SchemeState>,
    guard: Option<Guardrail>,
    detector: ChangeDetector,
    ctrl: CtrlSnapshot,
    believed: DcqcnParams,
    window_fsd: Fsd,
    window_count: u32,
    first_interval: bool,
}

/// The controller half of one tuned fabric: monitor merge, trigger,
/// tuning scheme, guardrail, dispatch protocol, history and ledger.
pub struct TunerCell {
    monitor: Box<dyn FsdMonitor>,
    detector: ChangeDetector,
    scheme: Box<dyn TuningScheme>,
    /// Deployment guardrail, when armed (see [`crate::guardrail`]).
    guard: Option<Guardrail>,
    /// Loop-level configuration (public so harnesses can toggle
    /// `force_tuning` while settling).
    pub cfg: LoopConfig,
    /// Control-channel byte accounting (Table IV).
    pub ledger: TransferLedger,
    /// Per-interval time series.
    pub history: Vec<IntervalRecord>,
    /// Last globally dispatched parameter setting.
    pub last_params: DcqcnParams,
    /// Network-wide FSD estimate from the last interval.
    pub last_fsd: Fsd,
    /// Wall-clock spent in monitoring code (Table IV CPU accounting).
    pub monitor_cpu: Duration,
    /// Wall-clock spent in tuning code.
    pub tuner_cpu: Duration,
    first_interval: bool,
    prev_uploaded: u64,
    /// FSD aggregated over the current trigger window.
    window_fsd: Fsd,
    /// Intervals accumulated into `window_fsd`.
    window_count: u32,
    /// Ground-truth classifier (same ternary semantics, exact inputs);
    /// present when `SimConfig::track_ground_truth` is set.
    truth: Option<SlidingWindowClassifier>,
    /// Hardened control plane, when armed. `None` keeps the classic
    /// direct loop: monitor readings merged in-process, dispatches
    /// applied instantly.
    ctrl: Option<CtrlPlane>,
    /// Control-plane fault events (impairments, crashes) consumed by
    /// the cell at their scheduled times, sorted by time.
    ctrl_events: Vec<FaultEvent>,
    ctrl_event_idx: usize,
    /// Latest periodic checkpoint — the warm-restart target.
    snapshot: Option<CellSnapshot>,
    /// Build-time checkpoint — the cold-restart target.
    initial_snapshot: Option<CellSnapshot>,
    /// Run seed (kept so late arming can derive the ctrl RNG lanes).
    seed: u64,
    /// Channel/merger counters at the end of the previous interval, for
    /// per-interval telemetry deltas.
    prev_lost: u64,
    prev_duplicated: u64,
    prev_stale_rejected: u64,
}

impl TunerCell {
    /// Build a cell. `initial` is the parameter set the fabric boots
    /// with (the cell's initial believed parameters); `truth` carries
    /// the ground-truth classifier when the simulator tracks it.
    pub fn new(
        monitor: Box<dyn FsdMonitor>,
        scheme: Box<dyn TuningScheme>,
        guard: Option<Guardrail>,
        cfg: LoopConfig,
        initial: DcqcnParams,
        truth: Option<SlidingWindowClassifier>,
        seed: u64,
    ) -> Self {
        TunerCell {
            monitor,
            detector: ChangeDetector::new(cfg.theta),
            scheme,
            guard,
            cfg,
            ledger: TransferLedger::new(),
            history: Vec::new(),
            last_params: initial,
            last_fsd: Fsd::empty(),
            monitor_cpu: Duration::ZERO,
            tuner_cpu: Duration::ZERO,
            first_interval: true,
            prev_uploaded: 0,
            window_fsd: Fsd::empty(),
            window_count: 0,
            truth,
            ctrl: None,
            ctrl_events: Vec::new(),
            ctrl_event_idx: 0,
            snapshot: None,
            initial_snapshot: None,
            seed,
            prev_lost: 0,
            prev_duplicated: 0,
            prev_stale_rejected: 0,
        }
    }

    /// Index of the next interval to process (= intervals processed so
    /// far). Control-channel time is this index: coarse enough for the
    /// protocol, exact enough for determinism.
    pub fn interval_index(&self) -> u64 {
        self.history.len() as u64
    }

    /// The scheme's display name.
    pub fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }

    /// The monitor's display name.
    pub fn monitor_name(&self) -> &'static str {
        self.monitor.name()
    }

    /// The guardrail, when armed.
    pub fn guard(&self) -> Option<&Guardrail> {
        self.guard.as_ref()
    }

    /// The hardened control plane, when armed.
    pub fn ctrl(&self) -> Option<&CtrlPlane> {
        self.ctrl.as_ref()
    }

    /// Route all control traffic through the hardened, impairable
    /// control plane. With no impairments scheduled the armed cell is
    /// byte-identical to the direct cell, so arming is always safe; it
    /// is required before control-plane fault events can do anything.
    /// No-op if already armed. The checkpoint taken here is the
    /// cold-restart target, so arm before stepping.
    pub fn arm_ctrl(&mut self, cfg: CtrlPlaneConfig) {
        if self.ctrl.is_some() {
            return;
        }
        self.ctrl = Some(CtrlPlane::new(cfg, self.seed));
        // The guardrail's backoff jitter joins the run's control-plane
        // fault randomness: same seed, decorrelated lane.
        if let Some(g) = self.guard.as_mut() {
            g.seed_jitter(mix64(self.seed ^ 0x6A4D));
        }
        self.initial_snapshot = self.checkpoint();
        self.snapshot = self.checkpoint();
    }

    /// Queue the control-plane half of a fault plan (impairments and
    /// crashes), arming the hardened control plane with default knobs
    /// if needed. Data-plane events go to the simulator separately.
    pub fn install_ctrl_events(&mut self, plan: &FaultPlan) {
        if self.ctrl.is_none() && plan.events().iter().any(|e| e.kind.is_ctrl()) {
            self.arm_ctrl(CtrlPlaneConfig::default());
        }
        self.ctrl_events
            .extend(plan.events().iter().filter(|e| e.kind.is_ctrl()));
        self.ctrl_events.sort_by_key(|e| e.at);
    }

    /// Whether the fabric's applied global parameters differ from what
    /// the controller believes it deployed — the end-state a hardened
    /// control plane must drive back to `false` after any fault.
    pub fn ctrl_diverged(&self, sim: &Engine) -> bool {
        *sim.dcqcn_params() != self.last_params
    }

    /// Whether the control-plane conversation is quiet: no dispatch
    /// awaits its ACK and nothing is in flight on either lane. Always
    /// true for an unarmed cell.
    pub fn ctrl_quiet(&self) -> bool {
        match self.ctrl.as_ref() {
            Some(c) => !c.has_pending() && c.down.in_flight() == 0 && c.up.in_flight() == 0,
            None => true,
        }
    }

    /// Checkpoint the controller process (tuner, guardrail, detector,
    /// protocol state, believed parameters). `None` when the control
    /// plane is not armed.
    pub fn checkpoint(&self) -> Option<CellSnapshot> {
        let ctrl = self.ctrl.as_ref()?;
        Some(CellSnapshot {
            scheme: self.scheme.snapshot_state(),
            guard: self.guard.clone(),
            detector: self.detector.clone(),
            ctrl: ctrl.snapshot(),
            believed: self.last_params,
            window_fsd: self.window_fsd.clone(),
            window_count: self.window_count,
            first_interval: self.first_interval,
        })
    }

    /// Restore the controller state from a checkpoint, with no crash
    /// side effects: channels, history and ledger are untouched.
    /// Restoring a checkpoint taken at the same instant is a no-op —
    /// the fleet snapshot round-trip property builds on this.
    pub fn restore(&mut self, snap: &CellSnapshot) {
        if let Some(state) = snap.scheme.as_ref() {
            // Downcast-clone restore. A scheme that cannot restore
            // (no snapshot support) keeps its live state.
            let _ = self.scheme.restore_state(state);
        }
        self.guard = snap.guard.clone();
        self.detector = snap.detector.clone();
        if let Some(ctrl) = self.ctrl.as_mut() {
            ctrl.restore(&snap.ctrl);
        }
        self.last_params = snap.believed;
        self.window_fsd = snap.window_fsd.clone();
        self.window_count = snap.window_count;
        self.first_interval = snap.first_interval;
        // The monitor lives on the devices, not in the controller: its
        // upload accounting never rewinds. Re-anchor the per-interval
        // delta so the next ledger record starts from the live counter.
        self.prev_uploaded = self.monitor.uploaded_bytes();
    }

    /// Warm-restore from an external checkpoint with crash semantics:
    /// in-flight messages addressed to the controller die, the state
    /// rewinds to `snap`, and the believed parameters are re-asserted
    /// at a fresh epoch so fabric and controller re-converge. The fleet
    /// service uses this to restore a whole fleet mid-run.
    pub fn crash_restore(&mut self, snap: &CellSnapshot, k: u64) {
        tel::event(tel::Event::CtrlCrash { warm: true });
        {
            let ctrl = self
                .ctrl
                .as_mut()
                .expect("crash_restore requires an armed control plane");
            ctrl.crashes += 1;
            ctrl.up.clear_in_flight();
        }
        self.restore(snap);
        self.resync(k);
    }

    /// Re-assert the believed parameters toward the fabric at a fresh
    /// epoch (the post-restore convergence step).
    fn resync(&mut self, k: u64) {
        let believed = self.last_params;
        let ctrl = self.ctrl.as_mut().expect("resync requires arming");
        ctrl.resyncs += 1;
        ctrl.extra_dispatch_bytes += believed.wire_size_bytes() as u64;
        let epoch = ctrl.send_dispatch(k, TuningAction::Global(believed));
        tel::event(tel::Event::CtrlResync { epoch });
    }

    /// Deliver dispatches due at the start of interval `k` and apply
    /// them at the fabric. A clean-channel dispatch sent during interval
    /// `k−1`'s controller phase lands here, before the fabric advances —
    /// the same simulator state and telemetry timestamp the direct
    /// loop's immediate apply saw.
    pub fn deliver_due_dispatches(&mut self, sim: &mut Engine, k: u64) {
        let Some(ctrl) = self.ctrl.as_mut() else {
            return;
        };
        for msg in ctrl.down.deliver(k) {
            let (action, acked) = ctrl.fabric.on_dispatch(msg);
            ctrl.up.send(k, UpMsg::Ack { epoch: acked });
            match action {
                Some(TuningAction::Global(p)) => {
                    tel::event(tel::Event::Dispatch {
                        scope: tel::DispatchScope::Global,
                    });
                    sim.set_dcqcn_params(&p);
                }
                Some(TuningAction::PerSwitchEcn(updates)) => {
                    tel::event(tel::Event::Dispatch {
                        scope: tel::DispatchScope::PerSwitch,
                    });
                    for (idx, p) in updates {
                        let _ = sim.set_switch_ecn(idx, &p);
                    }
                }
                None => {}
            }
        }
    }

    /// Controller half of the monitoring lane: fold delivered uploads
    /// and ACKs in, emit retry events for epoch-behind re-sends, and
    /// return the staleness-weighted network-wide FSD. A clean channel
    /// delivers everything in send order with no delay, and the merger's
    /// zero-age merge is bit-identical to the direct in-process merge.
    fn ctrl_receive(&mut self, k: u64) -> Fsd {
        let ctrl = self.ctrl.as_mut().expect("ctrl_receive requires arming");
        let mut resent = Vec::new();
        for msg in ctrl.up.deliver(k) {
            match msg {
                UpMsg::Fsd(u) => {
                    ctrl.merger.ingest(u);
                }
                UpMsg::Ack { epoch } => {
                    if let Some(e) = ctrl.on_ack(k, epoch) {
                        resent.push(e);
                    }
                }
            }
        }
        let fsd = ctrl.merger.network_fsd(k);
        for epoch in resent {
            tel::event(tel::Event::CtrlRetry { epoch });
        }
        fsd
    }

    /// Consume control-plane fault events scheduled at or before `upto`.
    fn process_ctrl_events(&mut self, upto: Nanos, k: u64) {
        while self.ctrl_event_idx < self.ctrl_events.len()
            && self.ctrl_events[self.ctrl_event_idx].at <= upto
        {
            let ev = self.ctrl_events[self.ctrl_event_idx];
            self.ctrl_event_idx += 1;
            match ev.kind {
                FaultKind::CtrlImpair {
                    up,
                    down,
                    loss,
                    delay_max,
                    dup,
                } => {
                    tel::event(tel::Event::CtrlImpairSet {
                        loss,
                        delay_max: delay_max as u32,
                        dup,
                    });
                    let imp = CtrlImpairment {
                        loss,
                        delay_max,
                        dup,
                    };
                    let ctrl = self.ctrl.as_mut().expect("ctrl events require arming");
                    if up {
                        ctrl.up.set_impairment(imp);
                    }
                    if down {
                        ctrl.down.set_impairment(imp);
                    }
                }
                FaultKind::CtrlCrash { warm } => self.handle_crash(warm, k),
                _ => {}
            }
        }
    }

    /// Controller crash + restart. Warm restores the latest periodic
    /// checkpoint; cold restores the build-time checkpoint and (when a
    /// guardrail is armed) enters safe mode, since a from-scratch
    /// controller cannot vouch for the dead tuner's plans. Either way
    /// the believed parameters are re-asserted at a fresh epoch so the
    /// fabric and controller re-converge.
    fn handle_crash(&mut self, warm: bool, k: u64) {
        tel::event(tel::Event::CtrlCrash { warm });
        {
            let ctrl = self.ctrl.as_mut().expect("crash requires arming");
            ctrl.crashes += 1;
            // In-flight messages addressed to the dead process die with
            // it; dispatches already in the network keep flying.
            ctrl.up.clear_in_flight();
        }
        let slot = if warm {
            &mut self.snapshot
        } else {
            &mut self.initial_snapshot
        };
        if let Some(snap) = slot.take() {
            self.restore(&snap);
            let slot = if warm {
                &mut self.snapshot
            } else {
                &mut self.initial_snapshot
            };
            *slot = Some(snap);
        }
        if !warm {
            if let Some(g) = self.guard.as_mut() {
                let GuardAction::EnterSafeMode {
                    params,
                    backoff_intervals,
                } = g.force_safe_mode()
                else {
                    unreachable!("force_safe_mode always enters safe mode");
                };
                tel::event(tel::Event::SafeModeEnter { backoff_intervals });
                self.scheme
                    .on_feedback(&TuningFeedback::Frozen { fallback: params });
                self.last_params = params;
            }
        }
        self.resync(k);
    }

    /// Execute one monitor-tune-dispatch round over the metrics the
    /// fabric produced for one λ_MI. This is the controller's half of
    /// [`crate::ClosedLoop::step`]; the caller has already advanced the
    /// fabric and harvested completions. Returns the interval's record.
    pub fn process_interval(
        &mut self,
        sim: &mut Engine,
        metrics: &IntervalMetrics,
    ) -> &IntervalRecord {
        let interval_idx = self.interval_index();
        // Audit: every monitor upload must cover exactly one λ_MI and end
        // on a λ_MI boundary (all sim advancement goes through the loop).
        paraleon_audit::check(
            metrics.end == metrics.start + self.cfg.lambda_mi
                && self.cfg.lambda_mi > 0
                && metrics.end.is_multiple_of(self.cfg.lambda_mi),
            || paraleon_audit::AuditViolation::MiBoundary {
                start: metrics.start,
                end: metrics.end,
                lambda_mi: self.cfg.lambda_mi,
            },
        );
        // Stamp the registry clock so everything recorded during this
        // round (trigger/SA events, series points) carries the interval
        // end time.
        tel::set_time(metrics.end);
        tel::count(tel::Ctr::Intervals);
        // Control-plane fault transitions scheduled inside this interval
        // take effect now, before this interval's uploads are sent: an
        // impairment degrades them, a crash loses what was in flight.
        if self.ctrl.is_some() {
            self.process_ctrl_events(metrics.end, interval_idx);
        }

        // --- Monitoring half (switch CP agents + controller merge). ---
        let t0 = Instant::now();
        let fsd = if self.ctrl.is_some() {
            // Device side: sequence-numbered per-point uploads onto the
            // (possibly impaired) up lane.
            let ups = self
                .monitor
                .uploads(&metrics.tor_sketches, metrics.end, interval_idx);
            if let Some(ctrl) = self.ctrl.as_mut() {
                for u in ups {
                    ctrl.up.send(interval_idx, UpMsg::Fsd(u));
                }
            }
            self.ctrl_receive(interval_idx)
        } else {
            self.monitor
                .on_interval(&metrics.tor_sketches, metrics.end)
                .unwrap_or_else(Fsd::empty)
        };
        // Trigger check at window granularity over the aggregated FSD.
        self.window_fsd.merge(&fsd);
        self.window_count += 1;
        let mut triggered = false;
        if self.window_count >= self.cfg.trigger_window.max(1) {
            let window = std::mem::take(&mut self.window_fsd);
            self.window_count = 0;
            if !window.is_empty() {
                triggered = self.detector.observe(&window);
            }
        }
        if self.first_interval && self.cfg.force_tuning {
            triggered = true;
        }
        self.first_interval = false;
        let (dominant, mu) = fsd.dominant();
        // FSD accuracy vs. the exact ground truth (Figures 10-11).
        let fsd_accuracy = self.truth.as_mut().map(|t| {
            t.end_interval(metrics.truth_flow_bytes.iter().copied());
            let truth_fsd = t.local_fsd();
            if truth_fsd.is_empty() && fsd.is_empty() {
                1.0
            } else {
                fsd.similarity(&truth_fsd)
            }
        });
        self.monitor_cpu += t0.elapsed();

        // --- Utility function. ---
        let sample = MetricSample::new(
            metrics.avg_uplink_utilization,
            metrics.avg_normalized_rtt,
            1.0 - metrics.pfc_pause_ratio,
        );
        let utility = sample.utility(&self.cfg.weights);
        // Audit: with weights summing to 1 and terms in [0, 1], Eq. (1)
        // is a convex combination and must stay in [0, 1] itself.
        paraleon_audit::check(
            utility.is_finite() && (0.0..=1.0).contains(&utility),
            || paraleon_audit::AuditViolation::UtilityTermBounds {
                term: "U",
                value: utility,
            },
        );

        // --- Telemetry: the per-interval series behind Figures 8/9/12/14
        // (entity 0 = fabric-wide, switch series keyed by switch index).
        tel::gauge_set(tel::Gauge::LastUtility, utility);
        tel::gauge_set(tel::Gauge::Mu, mu);
        tel::gauge_set(tel::Gauge::ActiveFlows, sim.active_flows() as f64);
        tel::series("goodput_bytes_per_sec", 0, metrics.goodput_bytes_per_sec());
        tel::series("avg_rtt_ns", 0, metrics.avg_rtt_ns);
        tel::series("utility", 0, utility);
        tel::series("o_tp", 0, sample.o_tp);
        tel::series("o_rtt", 0, sample.o_rtt);
        tel::series("o_pfc", 0, sample.o_pfc);
        tel::series("mu", 0, mu);
        tel::series(
            "mu_mice",
            0,
            match dominant {
                FlowType::Mice => mu,
                _ => 1.0 - mu,
            },
        );
        tel::series("triggered", 0, if triggered { 1.0 } else { 0.0 });
        tel::series("cnps", 0, metrics.cnps as f64);
        tel::series("pfc_events", 0, metrics.pfc_events as f64);
        if let Some(acc) = fsd_accuracy {
            tel::series("fsd_accuracy", 0, acc);
        }
        // Under fault injection unreachable switches are absent from
        // `switch_obs`, so series are keyed by the stable switch index,
        // not the position in the vector.
        let n_hosts = sim.topology().n_hosts();
        for s in &metrics.switch_obs {
            let idx = (s.node - n_hosts) as u32;
            tel::series("switch_tx_utilization", idx, s.tx_utilization);
            tel::series("switch_marking_rate", idx, s.marking_rate);
            tel::series("switch_queue_frac", idx, s.queue_frac);
        }

        // --- Guardrail: judge the previous dispatch on this interval's
        // health before the tuner gets to emit a new candidate.
        let reporting: Vec<usize> = metrics
            .switch_obs
            .iter()
            .map(|s| s.node - n_hosts)
            .collect();
        let mut rejected = false;
        let mut rolled_back = false;
        let mut guard_dispatch_bytes = 0u64;
        // When the guard corrects the fabric this interval, the scheme is
        // not consulted: a fresh candidate would overwrite the correction
        // at the same instant.
        let mut guard_acted = false;
        let guard_action = self.guard.as_mut().and_then(|guard| {
            guard.observe(
                utility,
                metrics.goodput_bytes_per_sec(),
                metrics.pfc_pause_ratio,
                &reporting,
            )
        });
        match guard_action {
            Some(GuardAction::Rollback(p)) => {
                tel::event(tel::Event::GuardrailRollback);
                self.push_params(sim, interval_idx, &p);
                guard_dispatch_bytes += p.wire_size_bytes() as u64;
                self.last_params = p;
                self.scheme
                    .on_feedback(&TuningFeedback::RolledBack { restored: p });
                rolled_back = true;
                guard_acted = true;
            }
            Some(GuardAction::EnterSafeMode {
                params,
                backoff_intervals,
            }) => {
                tel::event(tel::Event::SafeModeEnter { backoff_intervals });
                self.push_params(sim, interval_idx, &params);
                guard_dispatch_bytes += params.wire_size_bytes() as u64;
                self.last_params = params;
                self.scheme
                    .on_feedback(&TuningFeedback::Frozen { fallback: params });
                guard_acted = true;
            }
            Some(GuardAction::ExitSafeMode) => {
                tel::event(tel::Event::SafeModeExit);
                self.scheme.on_feedback(&TuningFeedback::Unfrozen);
            }
            None => {}
        }
        let safe_mode = self.guard.as_ref().is_some_and(Guardrail::in_safe_mode);
        tel::series("safe_mode", 0, if safe_mode { 1.0 } else { 0.0 });

        // --- Tuning half. ---
        let obs = Observation {
            now: metrics.end,
            utility,
            sample,
            dominant,
            mu,
            tuning_triggered: triggered,
            switch_obs: metrics
                .switch_obs
                .iter()
                .map(|s| SwitchLocalObs {
                    switch_index: s.node - n_hosts,
                    tx_utilization: s.tx_utilization,
                    marking_rate: s.marking_rate,
                    queue_frac: s.queue_frac,
                })
                .collect(),
        };
        let action = if guard_acted {
            None
        } else {
            let t1 = Instant::now();
            let action = self.scheme.on_interval(&obs);
            self.tuner_cpu += t1.elapsed();
            action
        };

        // --- Screen, dispatch + control-channel accounting. ---
        let action = match (action, self.guard.as_mut()) {
            (Some(a), Some(guard)) => match guard.screen(a, sim.n_switches()) {
                ScreenOutcome::Dispatch(a) => Some(a),
                ScreenOutcome::Rejected(reason) => {
                    tel::event(tel::Event::GuardrailReject);
                    tel::series("guardrail_reject", 0, 1.0);
                    let _ = reason; // carried in telemetry counters
                    self.scheme.on_feedback(&TuningFeedback::Rejected {
                        deployed: self.last_params,
                    });
                    rejected = true;
                    None
                }
                ScreenOutcome::Suppressed => None,
            },
            (a, _) => a,
        };
        let dispatched = action.is_some() || rolled_back || guard_acted;
        let dispatch_bytes = action
            .as_ref()
            .map(|a| self.scheme.dispatch_bytes(a))
            .unwrap_or(0)
            + guard_dispatch_bytes;
        if let Some(action) = action {
            self.apply(sim, interval_idx, action);
        }
        // Re-send the in-flight dispatch when its ACK timed out, and
        // surface this interval's channel losses as counters.
        if let Some(ctrl) = self.ctrl.as_mut() {
            if let Some(epoch) = ctrl.check_retry(interval_idx) {
                tel::event(tel::Event::CtrlRetry { epoch });
            }
            let lost = ctrl.up.stats.lost + ctrl.down.stats.lost;
            let duplicated = ctrl.up.stats.duplicated + ctrl.down.stats.duplicated;
            let stale = ctrl.merger.rejected;
            tel::count_n(tel::Ctr::CtrlMsgsLost, lost - self.prev_lost);
            tel::count_n(
                tel::Ctr::CtrlMsgsDuplicated,
                duplicated - self.prev_duplicated,
            );
            tel::count_n(
                tel::Ctr::CtrlStaleRejected,
                stale - self.prev_stale_rejected,
            );
            self.prev_lost = lost;
            self.prev_duplicated = duplicated;
            self.prev_stale_rejected = stale;
        }
        let rnic_upload = sim.topology().n_hosts() as u64 * MetricSample::wire_size_bytes() as u64;
        let switch_metric_upload = sim.n_switches() as u64 * MetricSample::wire_size_bytes() as u64;
        let uploaded_total = self.monitor.uploaded_bytes();
        // Saturating: a controller restore re-anchors `prev_uploaded` to
        // the live counter, and the device-side counter never rewinds —
        // but the ledger must not be able to underflow regardless.
        let fsd_upload = uploaded_total.saturating_sub(self.prev_uploaded);
        self.prev_uploaded = uploaded_total;
        let ctrl_extra = self
            .ctrl
            .as_mut()
            .map(|c| std::mem::take(&mut c.extra_dispatch_bytes))
            .unwrap_or(0);
        self.ledger.record_interval(
            fsd_upload + switch_metric_upload,
            rnic_upload,
            dispatch_bytes + ctrl_extra,
        );

        self.last_fsd = fsd;
        self.history.push(IntervalRecord {
            t: metrics.end,
            goodput: metrics.goodput_bytes_per_sec(),
            avg_rtt_ns: metrics.avg_rtt_ns,
            utility,
            o_tp: sample.o_tp,
            o_rtt: sample.o_rtt,
            o_pfc: sample.o_pfc,
            dominant,
            mu,
            triggered,
            dispatched,
            rejected,
            rolled_back,
            safe_mode,
            cnps: metrics.cnps,
            pfc_events: metrics.pfc_events,
            fsd_accuracy,
        });
        // Periodic controller checkpoint — the warm-restart target.
        let checkpoint_due = self
            .ctrl
            .as_ref()
            .map(|c| c.cfg.snapshot_every_intervals.max(1))
            .is_some_and(|every| (interval_idx + 1).is_multiple_of(every));
        if checkpoint_due {
            self.snapshot = self.checkpoint();
        }
        self.history.last().expect("just pushed")
    }

    /// Apply a screened tuner action: instantly in the direct loop, via
    /// an epoch-stamped dispatch in ctrl mode. Either way the believed
    /// parameters update at dispatch time — that is the controller's
    /// claim the fabric must converge to.
    fn apply(&mut self, sim: &mut Engine, k: u64, action: TuningAction) {
        if let Some(ctrl) = self.ctrl.as_mut() {
            if let TuningAction::Global(p) = &action {
                self.last_params = *p;
            }
            ctrl.send_dispatch(k, action);
            return;
        }
        match action {
            TuningAction::Global(p) => {
                tel::event(tel::Event::Dispatch {
                    scope: tel::DispatchScope::Global,
                });
                sim.set_dcqcn_params(&p);
                self.last_params = p;
            }
            TuningAction::PerSwitchEcn(updates) => {
                tel::event(tel::Event::Dispatch {
                    scope: tel::DispatchScope::PerSwitch,
                });
                for (idx, p) in updates {
                    // `set_switch_ecn` bounds-checks; an out-of-range
                    // index simply does not reach any switch.
                    let _ = sim.set_switch_ecn(idx, &p);
                }
            }
        }
    }

    /// Push one guardrail correction at the fabric: instantly in the
    /// direct loop, via an epoch-stamped dispatch in ctrl mode.
    fn push_params(&mut self, sim: &mut Engine, k: u64, p: &DcqcnParams) {
        match self.ctrl.as_mut() {
            Some(ctrl) => {
                ctrl.send_dispatch(k, TuningAction::Global(*p));
            }
            None => sim.set_dcqcn_params(p),
        }
    }

    /// Estimated controller-resident bytes for this cell: the struct
    /// itself, the interval history, and the upload merger's retained
    /// per-point FSDs. A capacity-based estimate for footprint tables
    /// (Table IV-style), not an allocator measurement.
    pub fn memory_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        total += self.history.capacity() * std::mem::size_of::<IntervalRecord>();
        total += self.ctrl_events.capacity() * std::mem::size_of::<FaultEvent>();
        if let Some(c) = self.ctrl.as_ref() {
            // Each retained merger point holds one FSD (3 f64 bins +
            // bookkeeping) plus the BTreeMap node.
            total += c.merger.n_points() * (std::mem::size_of::<Fsd>() + 64);
        }
        total
    }
}
