//! Factories for every tuning scheme and monitoring scheme in the
//! paper's evaluation, so harness code can sweep them uniformly.

use paraleon_dcqcn::DcqcnParams;
use paraleon_monitor::{
    FsdMonitor, NaiveSketchMonitor, Nanos as MonNanos, NetFlowConfig, NetFlowMonitor,
    ParaleonMonitor, SketchReadings,
};
use paraleon_netsim::SimConfig;
use paraleon_sketch::{Fsd, WindowConfig};
use paraleon_tuner::{
    AccConfig, AccScheme, DcqcnPlusScheme, ParaleonScheme, ParaleonSchemeConfig, SaConfig,
    StaticScheme, TuningScheme,
};

/// The tuning schemes compared throughout §IV.
#[derive(Debug, Clone)]
pub enum SchemeKind {
    /// Static NVIDIA default parameters.
    Default,
    /// Static expert parameters (Table I).
    Expert,
    /// Any fixed setting with a label (e.g. the Figure 9 pretrained
    /// snapshots).
    Static(DcqcnParams, &'static str),
    /// The DCQCN+ in-network baseline (enables `SimConfig::dcqcn_plus`).
    DcqcnPlus,
    /// The ACC per-switch ECN baseline.
    Acc,
    /// PARALEON with the paper's improved SA (Table III schedule).
    Paraleon,
    /// PARALEON with a custom SA schedule and per-candidate evaluation
    /// length (e.g. a shortened episode for reduced-scale experiment
    /// runs).
    ParaleonSa(SaConfig, u32),
    /// PARALEON driving *naive* SA (Figure 12 ablation).
    ParaleonNaiveSa,
}

impl SchemeKind {
    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::Default => "Default",
            SchemeKind::Expert => "Expert",
            SchemeKind::Static(_, label) => label,
            SchemeKind::DcqcnPlus => "DCQCN+",
            SchemeKind::Acc => "ACC",
            SchemeKind::Paraleon | SchemeKind::ParaleonSa(..) => "PARALEON",
            SchemeKind::ParaleonNaiveSa => "naive_SA",
        }
    }

    /// The initial parameter setting the fabric boots with.
    pub fn initial_params(&self) -> DcqcnParams {
        match self {
            SchemeKind::Expert => DcqcnParams::expert(),
            SchemeKind::Static(p, _) => *p,
            _ => DcqcnParams::nvidia_default(),
        }
    }

    /// Adjust the simulator configuration (DCQCN+ flips its protocol
    /// flag; everyone gets their initial parameters installed).
    pub fn apply_sim_config(&self, cfg: &mut SimConfig) {
        cfg.dcqcn = self.initial_params();
        cfg.dcqcn_plus = matches!(self, SchemeKind::DcqcnPlus);
    }

    /// Build the controller-side tuner.
    pub fn build_tuner(&self, seed: u64) -> Box<dyn TuningScheme> {
        match self {
            SchemeKind::Default => Box::new(StaticScheme::nvidia_default()),
            SchemeKind::Expert => Box::new(StaticScheme::expert()),
            SchemeKind::Static(p, label) => Box::new(StaticScheme::new(*p, label)),
            SchemeKind::DcqcnPlus => Box::new(DcqcnPlusScheme::new()),
            SchemeKind::Acc => Box::new(AccScheme::new(
                AccConfig {
                    seed,
                    ..AccConfig::default()
                },
                DcqcnParams::nvidia_default(),
            )),
            SchemeKind::Paraleon => Box::new(ParaleonScheme::new(ParaleonSchemeConfig {
                sa: SaConfig::paper_default(),
                initial: DcqcnParams::nvidia_default(),
                seed,
                eval_intervals: 1,
            })),
            SchemeKind::ParaleonSa(sa, eval_intervals) => {
                Box::new(ParaleonScheme::new(ParaleonSchemeConfig {
                    sa: sa.clone(),
                    initial: DcqcnParams::nvidia_default(),
                    seed,
                    eval_intervals: *eval_intervals,
                }))
            }
            SchemeKind::ParaleonNaiveSa => Box::new(ParaleonScheme::new(ParaleonSchemeConfig {
                sa: SaConfig::naive(),
                initial: DcqcnParams::nvidia_default(),
                seed,
                eval_intervals: 1,
            })),
        }
    }

    /// Whether this scheme adapts at runtime (for harness reporting).
    pub fn is_adaptive(&self) -> bool {
        matches!(
            self,
            SchemeKind::Acc
                | SchemeKind::Paraleon
                | SchemeKind::ParaleonSa(..)
                | SchemeKind::ParaleonNaiveSa
        )
    }
}

/// The monitoring schemes compared in Figures 10–11.
#[derive(Debug, Clone)]
pub enum MonitorKind {
    /// PARALEON: sliding-window ternary states over deduped sketches.
    Paraleon,
    /// PARALEON with a custom window configuration (τ, δ).
    ParaleonWith(WindowConfig),
    /// Naive Elastic Sketch: single-interval binary classification.
    NaiveSketch,
    /// NetFlow: 1:100 packet sampling, 1 s export.
    NetFlow,
    /// No FSD available at all (SA runs unguided).
    NoFsd,
}

impl MonitorKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MonitorKind::Paraleon | MonitorKind::ParaleonWith(_) => "PARALEON",
            MonitorKind::NaiveSketch => "ElasticSketch",
            MonitorKind::NetFlow => "NetFlow",
            MonitorKind::NoFsd => "No FSD",
        }
    }

    /// Build the controller-side FSD monitor.
    pub fn build(&self) -> Box<dyn FsdMonitor> {
        match self {
            MonitorKind::Paraleon => Box::new(ParaleonMonitor::new(WindowConfig::default())),
            MonitorKind::ParaleonWith(cfg) => Box::new(ParaleonMonitor::new(*cfg)),
            MonitorKind::NaiveSketch => Box::new(NaiveSketchMonitor::new(1 << 20)),
            MonitorKind::NetFlow => Box::new(NetFlowMonitor::new(NetFlowConfig::default())),
            MonitorKind::NoFsd => Box::new(NoFsdMonitor),
        }
    }

    /// Whether the sim should disable TOS dedup (the naive Elastic Sketch
    /// baseline measures with overlapping sketches, Keypoint 1 off).
    pub fn wants_tos_dedup(&self) -> bool {
        !matches!(self, MonitorKind::NaiveSketch)
    }
}

/// The "No FSD" monitoring baseline: reports nothing, uploads nothing.
#[derive(Debug, Default)]
pub struct NoFsdMonitor;

impl FsdMonitor for NoFsdMonitor {
    fn on_interval(&mut self, _readings: &SketchReadings, _now: MonNanos) -> Option<Fsd> {
        None
    }

    fn uploaded_bytes(&self) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "No FSD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_are_distinct() {
        let kinds = [
            SchemeKind::Default,
            SchemeKind::Expert,
            SchemeKind::DcqcnPlus,
            SchemeKind::Acc,
            SchemeKind::Paraleon,
            SchemeKind::ParaleonNaiveSa,
        ];
        let mut names: Vec<_> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn dcqcn_plus_flips_the_protocol_flag() {
        let mut cfg = SimConfig::default();
        SchemeKind::DcqcnPlus.apply_sim_config(&mut cfg);
        assert!(cfg.dcqcn_plus);
        SchemeKind::Paraleon.apply_sim_config(&mut cfg);
        assert!(!cfg.dcqcn_plus);
    }

    #[test]
    fn expert_scheme_boots_with_expert_params() {
        let mut cfg = SimConfig::default();
        SchemeKind::Expert.apply_sim_config(&mut cfg);
        assert_eq!(cfg.dcqcn, DcqcnParams::expert());
    }

    #[test]
    fn naive_sketch_monitor_disables_dedup() {
        assert!(!MonitorKind::NaiveSketch.wants_tos_dedup());
        assert!(MonitorKind::Paraleon.wants_tos_dedup());
        assert!(MonitorKind::NetFlow.wants_tos_dedup());
    }

    #[test]
    fn no_fsd_monitor_reports_nothing() {
        let mut m = NoFsdMonitor;
        assert!(m.on_interval(&[], 0).is_none());
        assert_eq!(m.uploaded_bytes(), 0);
    }

    #[test]
    fn adaptive_classification() {
        assert!(SchemeKind::Paraleon.is_adaptive());
        assert!(SchemeKind::Acc.is_adaptive());
        assert!(!SchemeKind::Expert.is_adaptive());
        assert!(!SchemeKind::DcqcnPlus.is_adaptive());
    }
}
