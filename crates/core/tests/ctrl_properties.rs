//! Property tests over the control-plane survival protocol: dispatch
//! ordering and the crash-restore checkpoint.
//!
//! Two families, matching the two guarantees the hardened loop makes:
//!
//! * **Epoch monotonicity** — for *any* delivery order of a set of
//!   epoch-stamped dispatches, with arbitrary duplication, the fabric
//!   ends on the highest-epoch parameters, never applies an epoch out
//!   of order, and treats replays as no-ops. The naive fabric under the
//!   same delivery ends wherever the channel happened to put it — the
//!   contrast the `exp_ctrl_faults` gate measures end to end.
//! * **Checkpoint fidelity** — `snapshot()` → `restore()` round-trips
//!   controller state byte-identically from an arbitrary mid-run point:
//!   the protocol state (merger, epoch counter, in-flight dispatch) via
//!   `CtrlPlane`, and the tuner/guardrail halves behaviorally (a
//!   restored replica emits exactly the actions the original would).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use paraleon::guardrail::{Guardrail, GuardrailConfig};
use paraleon::{CtrlPlane, CtrlPlaneConfig, DownMsg};
use paraleon_dcqcn::DcqcnParams;
use paraleon_monitor::{FsdUpload, MetricSample, StalenessMerger};
use paraleon_sketch::{FlowType, FsdBuilder};
use paraleon_tuner::{
    Observation, ParaleonScheme, ParaleonSchemeConfig, TuningAction, TuningScheme,
};

/// A recognizably distinct parameter set per epoch (the fabric does not
/// validate, so any payload works; distinct `ai_rate`s make the final
/// applied setting identify the epoch that produced it).
fn params_for_epoch(epoch: u64) -> DcqcnParams {
    let mut p = DcqcnParams::nvidia_default();
    p.ai_rate = 1.0 + epoch as f64;
    p
}

fn dispatch(epoch: u64) -> DownMsg {
    DownMsg::Dispatch {
        epoch,
        action: TuningAction::Global(params_for_epoch(epoch)),
    }
}

/// A delivery schedule over epochs `1..=n`: every epoch at least once,
/// plus arbitrary duplicates, in an arbitrary (seeded-shuffle) order.
fn delivery_orders() -> impl Strategy<Value = (u64, Vec<u64>)> {
    (
        2u64..8,
        prop::collection::vec(0u64..100, 0..12),
        any::<u64>(),
    )
        .prop_map(|(n, extras, shuffle_seed)| {
            let mut epochs: Vec<u64> = (1..=n).collect();
            epochs.extend(extras.into_iter().map(|e| 1 + e % n));
            let mut rng = StdRng::seed_from_u64(shuffle_seed);
            for i in (1..epochs.len()).rev() {
                let j = rng.gen_range(0..=i);
                epochs.swap(i, j);
            }
            (n, epochs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any permutation-with-duplicates of epoch-stamped dispatches
    /// converges the hardened fabric to the highest-epoch params, and
    /// the applied sequence is strictly epoch-increasing (a reordered or
    /// duplicated dispatch can never roll the fabric back).
    #[test]
    fn any_delivery_order_converges_to_the_highest_epoch((n, order) in delivery_orders()) {
        let mut fabric = CtrlPlane::new(CtrlPlaneConfig::default(), 0).fabric;
        let mut applied = Vec::new();
        for &epoch in &order {
            let before = fabric.epoch();
            let (action, acked) = fabric.on_dispatch(dispatch(epoch));
            prop_assert!(acked >= before, "ACKed epoch went backwards");
            if let Some(a) = action {
                prop_assert!(
                    epoch > before,
                    "applied epoch {epoch} over fabric epoch {before}"
                );
                applied.push((epoch, a));
            }
        }
        prop_assert_eq!(fabric.epoch(), n, "fabric must end on the max epoch");
        let epochs: Vec<u64> = applied.iter().map(|(e, _)| *e).collect();
        prop_assert!(
            epochs.windows(2).all(|w| w[0] < w[1]),
            "applied epochs not strictly increasing: {:?}",
            epochs
        );
        let (last_epoch, last_action) = applied.last().expect("epoch 1..=n always applies once");
        prop_assert_eq!(*last_epoch, n);
        prop_assert_eq!(
            last_action,
            &TuningAction::Global(params_for_epoch(n)),
            "final applied params must be the highest epoch's"
        );
        // Replaying the entire delivery is a no-op: every epoch is now
        // stale, so nothing further applies.
        for &epoch in &order {
            let (action, acked) = fabric.on_dispatch(dispatch(epoch));
            prop_assert!(action.is_none(), "replayed dispatch re-applied");
            prop_assert_eq!(acked, n);
        }
    }

    /// The naive fabric under the same schedule ends on whatever the
    /// channel delivered last — order-dependent state, which is exactly
    /// the divergence the epoch protocol exists to rule out.
    #[test]
    fn naive_fabric_ends_wherever_delivery_put_it((_n, order) in delivery_orders()) {
        let naive_cfg = CtrlPlaneConfig { naive: true, ..CtrlPlaneConfig::default() };
        let mut fabric = CtrlPlane::new(naive_cfg, 0).fabric;
        let mut last = None;
        for &epoch in &order {
            let (action, _) = fabric.on_dispatch(dispatch(epoch));
            prop_assert!(action.is_some(), "naive fabric must apply every delivery");
            last = action;
        }
        let tail = *order.last().expect("non-empty schedule");
        prop_assert_eq!(last, Some(TuningAction::Global(params_for_epoch(tail))));
    }
}

/// One controller-side protocol operation for the round-trip driver.
#[derive(Debug, Clone)]
enum CtrlOp {
    /// `send_dispatch` of a fresh epoch.
    Send,
    /// Deliver an ACK for `pending epoch − lag` (lag 0 completes it).
    Ack { lag: u64 },
    /// `check_retry` after letting `skip` intervals elapse.
    Retry { skip: u64 },
    /// Ingest one upload into the merger.
    Ingest { point: u8, seq: u64, age: u64 },
    /// Compute the network FSD (mutates staleness bookkeeping).
    Merge,
}

fn ctrl_ops() -> impl Strategy<Value = Vec<CtrlOp>> {
    let op = prop_oneof![
        Just(CtrlOp::Send),
        (0u64..3).prop_map(|lag| CtrlOp::Ack { lag }),
        (0u64..10).prop_map(|skip| CtrlOp::Retry { skip }),
        (0u8..4, 0u64..16, 0u64..6).prop_map(|(point, seq, age)| CtrlOp::Ingest {
            point,
            seq,
            age
        }),
        Just(CtrlOp::Merge),
    ];
    prop::collection::vec(op, 0..24)
}

fn upload(point: u8, seq: u64, interval: u64) -> FsdUpload {
    let mut b = FsdBuilder::new();
    b.add_flow(1_000 + 1_000 * seq, 1.0);
    FsdUpload {
        point: point as usize,
        seq,
        interval,
        fsd: b.build(),
    }
}

/// Drive `plane` through `ops`, advancing a deterministic clock.
fn drive_ctrl(plane: &mut CtrlPlane, ops: &[CtrlOp], mut now: u64) -> u64 {
    for op in ops {
        now += 1;
        match op {
            CtrlOp::Send => {
                plane.send_dispatch(
                    now,
                    TuningAction::Global(params_for_epoch(plane.next_epoch())),
                );
            }
            CtrlOp::Ack { lag } => {
                let acked = plane.next_epoch().saturating_sub(1 + lag);
                plane.on_ack(now, acked);
            }
            CtrlOp::Retry { skip } => {
                now += skip;
                plane.check_retry(now);
            }
            CtrlOp::Ingest { point, seq, age } => {
                plane
                    .merger
                    .ingest(upload(*point, *seq, now.saturating_sub(*age)));
            }
            CtrlOp::Merge => {
                plane.merger.network_fsd(now);
            }
        }
    }
    now
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `snapshot()` at an arbitrary mid-run point, then `restore()` —
    /// into the same plane after further divergence, and into a fresh
    /// plane built from a different seed — reproduces the checkpoint
    /// byte-identically (the snapshot fully determines the restored
    /// controller state; nothing leaks in from the live plane).
    #[test]
    fn ctrl_snapshot_restore_round_trips_mid_run(
        prefix in ctrl_ops(),
        suffix in ctrl_ops(),
        seed in 0u64..1 << 32,
    ) {
        let cfg = CtrlPlaneConfig::default();
        let mut plane = CtrlPlane::new(cfg.clone(), seed);
        let now = drive_ctrl(&mut plane, &prefix, 0);
        let snap = plane.snapshot();
        let want = format!("{snap:?}");

        // Diverge, then restore: the checkpoint must win completely.
        drive_ctrl(&mut plane, &suffix, now);
        plane.restore(&snap);
        prop_assert_eq!(&format!("{:?}", plane.snapshot()), &want);

        // A cold replica with a different RNG lane restores to the same
        // bytes: the snapshot is self-contained.
        let mut replica = CtrlPlane::new(cfg, seed ^ 0xDEAD_BEEF);
        drive_ctrl(&mut replica, &suffix, 0);
        replica.restore(&snap);
        prop_assert_eq!(&format!("{:?}", replica.snapshot()), &want);
    }

    /// The merger half on its own: its serialized form survives a JSON
    /// text round-trip byte-identically for any reachable state, so a
    /// checkpoint written through it can be read back without drift.
    #[test]
    fn merger_state_survives_serialization(ops in ctrl_ops()) {
        let mut m = StalenessMerger::new(8);
        let mut now = 0u64;
        for op in &ops {
            now += 1;
            match op {
                CtrlOp::Ingest { point, seq, age } => {
                    m.ingest(upload(*point, *seq, now.saturating_sub(*age)));
                }
                CtrlOp::Merge => {
                    m.network_fsd(now);
                }
                _ => {}
            }
        }
        let text = serde_json::to_string(&m).expect("merger serializes");
        let parsed = serde_json::from_str_value(&text).expect("merger text parses");
        let text2 = serde_json::to_string(&parsed).expect("re-serializes");
        prop_assert_eq!(text2, text, "round-trip must be byte-identical");
    }
}

/// Observation with the given utility (mirrors the tuner's test rig).
fn obs(now: u64, utility: f64, triggered: bool) -> Observation {
    Observation {
        now,
        utility,
        sample: MetricSample::new(utility, utility, 1.0),
        dominant: FlowType::Elephant,
        mu: 0.8,
        tuning_triggered: triggered,
        switch_obs: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tuner checkpoint fidelity: restore a *fresh* scheme (different
    /// seed, different live state) from a mid-episode snapshot, then
    /// feed both the same observation stream — every subsequent action
    /// must be identical. This is the warm-restart guarantee: a crashed
    /// controller resumes its SA episode exactly where the checkpoint
    /// left it.
    #[test]
    fn tuner_snapshot_restore_resumes_the_episode_exactly(
        seed in 0u64..1 << 32,
        warmup in prop::collection::vec(0.0f64..1.0, 1..12),
        replay in prop::collection::vec(0.0f64..1.0, 1..12),
    ) {
        let mut original = ParaleonScheme::new(ParaleonSchemeConfig {
            seed,
            ..ParaleonSchemeConfig::default()
        });
        // Trigger an episode, then run a random stretch of it.
        original.on_interval(&obs(0, 0.4, true));
        for (i, &u) in warmup.iter().enumerate() {
            original.on_interval(&obs(1 + i as u64, u, false));
        }
        let snap = original.snapshot_state().expect("scheme snapshots");

        let mut restored = ParaleonScheme::new(ParaleonSchemeConfig {
            seed: seed ^ 0x5EED,
            ..ParaleonSchemeConfig::default()
        });
        // Pollute the replica's live state before restoring over it.
        restored.on_interval(&obs(0, 0.9, true));
        prop_assert!(restored.restore_state(&snap), "restore must accept the snapshot");

        let t0 = 1 + warmup.len() as u64;
        for (i, &u) in replay.iter().enumerate() {
            let o = obs(t0 + i as u64, u, false);
            prop_assert_eq!(
                original.on_interval(&o),
                restored.on_interval(&o),
                "restored tuner diverged at replay step {}",
                i
            );
        }
    }

    /// Guardrail checkpoint fidelity: the loop snapshot carries the
    /// guardrail by clone, so a restored guardrail must mirror the
    /// original's verdicts over any shared observation stream.
    #[test]
    fn guardrail_snapshot_restore_mirrors_verdicts(
        warmup in prop::collection::vec((0.0f64..1.0, 0.0f64..0.6), 0..16),
        replay in prop::collection::vec((0.0f64..1.0, 0.0f64..0.6), 1..16),
    ) {
        let reporting = [0usize, 1];
        let mut original = Guardrail::new(GuardrailConfig::default(), DcqcnParams::nvidia_default());
        for &(u, pause) in &warmup {
            original.observe(u, 1e9 * u, pause, &reporting);
        }
        // The loop checkpoint snapshots the guardrail as a deep copy.
        let mut restored = original.clone();
        for (i, &(u, pause)) in replay.iter().enumerate() {
            prop_assert_eq!(
                original.observe(u, 1e9 * u, pause, &reporting),
                restored.observe(u, 1e9 * u, pause, &reporting),
                "restored guardrail diverged at replay step {}",
                i
            );
        }
    }
}
