//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a schedule of [`FaultEvent`]s — link failures and
//! recoveries (including flapping), link rate degradation, per-link
//! random packet corruption, and misbehaving-host PFC storms — that the
//! simulator executes through its ordinary event engine. The plan
//! carries its own RNG seed so corruption draws come from a dedicated
//! stream: installing a plan never perturbs the simulator's ECN/marking
//! randomness, and two runs with identical seeds and identical plans
//! replay identically (packet for packet, telemetry event for telemetry
//! event).
//!
//! Faults address a *link* by `(node, port)`; down/degrade/loss apply to
//! both directions of the cable, as a physical fault would. PFC storms
//! address a *host*: the storm models that host emitting sustained XOFF,
//! which freezes its ToR down-port and lets congestion spread upstream
//! through the shared buffer — exactly the deployment hazard the
//! guardrail in `paraleon-core` exists to survive.

use crate::{Nanos, NodeId};
use serde::{Serialize, Value};

/// What a single scheduled fault does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Take the link out of service: packets serialized onto it are
    /// lost, and ECMP steers new traffic around it where an alternate
    /// path exists.
    LinkDown,
    /// Return the link to service at full rate.
    LinkUp,
    /// Degrade the link to `factor` × its nominal rate (0 < factor ≤ 1).
    Degrade {
        /// Fraction of nominal bandwidth that survives.
        factor: f64,
    },
    /// Corrupt packets on the link: each serialized packet is dropped
    /// with probability `drop_prob` (drawn from the plan's own RNG
    /// stream). A probability of 0 restores clean transmission.
    PktLoss {
        /// Per-packet drop probability in `[0, 1]`.
        drop_prob: f64,
    },
    /// A misbehaving host begins a sustained-XOFF PFC storm: its ToR
    /// down-port freezes until [`FaultKind::PfcStormEnd`].
    PfcStormStart,
    /// The misbehaving host stops asserting XOFF.
    PfcStormEnd,
    /// Impair the control-plane channel between the fabric and the
    /// controller from this instant on: per-message loss probability,
    /// bounded extra delay (in monitor intervals, drawn uniformly per
    /// message — which is what reorders an in-order stream), and
    /// duplication probability. `up`/`down` select the telemetry-upload
    /// and parameter-dispatch directions; all-zero rates restore a clean
    /// channel. The simulator's data plane ignores this event — it is
    /// consumed by the closed loop's [`CtrlChannel`](crate::ctrl).
    CtrlImpair {
        /// Apply to the fabric → controller (upload) direction.
        up: bool,
        /// Apply to the controller → fabric (dispatch) direction.
        down: bool,
        /// Per-message loss probability in `[0, 1]`.
        loss: f64,
        /// Maximum extra delivery delay, in monitor intervals.
        delay_max: u64,
        /// Per-message duplication probability in `[0, 1]`.
        dup: f64,
    },
    /// The controller process dies at this instant. `warm` restarts
    /// resume from the last periodic state snapshot; cold restarts come
    /// back with initial state and re-enter safe mode through the
    /// guardrail's backoff path. Ignored by the data plane.
    CtrlCrash {
        /// Whether a snapshot survives the crash.
        warm: bool,
    },
}

// The vendored derive handles unit-only enums; `Degrade`/`PktLoss`
// carry data, so the enum serializes by hand as an internally tagged
// object with a stable field order (`kind` first).
impl Serialize for FaultKind {
    fn serialize_value(&self) -> Value {
        let tag = |name: &str| (String::from("kind"), Value::String(name.into()));
        match self {
            FaultKind::LinkDown => Value::Object(vec![tag("LinkDown")]),
            FaultKind::LinkUp => Value::Object(vec![tag("LinkUp")]),
            FaultKind::Degrade { factor } => Value::Object(vec![
                tag("Degrade"),
                (String::from("factor"), Value::Float(*factor)),
            ]),
            FaultKind::PktLoss { drop_prob } => Value::Object(vec![
                tag("PktLoss"),
                (String::from("drop_prob"), Value::Float(*drop_prob)),
            ]),
            FaultKind::PfcStormStart => Value::Object(vec![tag("PfcStormStart")]),
            FaultKind::PfcStormEnd => Value::Object(vec![tag("PfcStormEnd")]),
            FaultKind::CtrlImpair {
                up,
                down,
                loss,
                delay_max,
                dup,
            } => Value::Object(vec![
                tag("CtrlImpair"),
                (String::from("up"), Value::Bool(*up)),
                (String::from("down"), Value::Bool(*down)),
                (String::from("loss"), Value::Float(*loss)),
                (String::from("delay_max"), Value::UInt(*delay_max)),
                (String::from("dup"), Value::Float(*dup)),
            ]),
            FaultKind::CtrlCrash { warm } => Value::Object(vec![
                tag("CtrlCrash"),
                (String::from("warm"), Value::Bool(*warm)),
            ]),
        }
    }
}

impl FaultKind {
    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let tag = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("FaultKind: missing `kind` tag")?;
        let field = |name: &str| {
            v.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("FaultKind::{tag}: missing `{name}`"))
        };
        match tag {
            "LinkDown" => Ok(FaultKind::LinkDown),
            "LinkUp" => Ok(FaultKind::LinkUp),
            "Degrade" => Ok(FaultKind::Degrade {
                factor: field("factor")?,
            }),
            "PktLoss" => Ok(FaultKind::PktLoss {
                drop_prob: field("drop_prob")?,
            }),
            "PfcStormStart" => Ok(FaultKind::PfcStormStart),
            "PfcStormEnd" => Ok(FaultKind::PfcStormEnd),
            "CtrlImpair" => {
                let flag = |name: &str| {
                    v.get(name)
                        .and_then(Value::as_bool)
                        .ok_or_else(|| format!("FaultKind::CtrlImpair: missing `{name}`"))
                };
                Ok(FaultKind::CtrlImpair {
                    up: flag("up")?,
                    down: flag("down")?,
                    loss: field("loss")?,
                    delay_max: v
                        .get("delay_max")
                        .and_then(Value::as_u64)
                        .ok_or("FaultKind::CtrlImpair: missing `delay_max`")?,
                    dup: field("dup")?,
                })
            }
            "CtrlCrash" => Ok(FaultKind::CtrlCrash {
                warm: v
                    .get("warm")
                    .and_then(Value::as_bool)
                    .ok_or("FaultKind::CtrlCrash: missing `warm`")?,
            }),
            other => Err(format!("FaultKind: unknown tag `{other}`")),
        }
    }

    /// Whether this transition targets the control plane rather than a
    /// data-plane link or host. Control-plane events are ignored by the
    /// simulator proper and consumed by the closed loop.
    pub fn is_ctrl(&self) -> bool {
        matches!(
            self,
            FaultKind::CtrlImpair { .. } | FaultKind::CtrlCrash { .. }
        )
    }
}

/// One scheduled fault transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultEvent {
    /// Absolute simulation time at which the transition applies.
    pub at: Nanos,
    /// Node owning the faulted link (for storms: the misbehaving host).
    pub node: NodeId,
    /// Port index on `node` (ignored for storms; hosts have port 0).
    pub port: usize,
    /// The transition.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let num = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("FaultEvent: missing `{name}`"))
        };
        Ok(FaultEvent {
            at: num("at")?,
            node: num("node")? as NodeId,
            port: num("port")? as usize,
            kind: FaultKind::from_value(v.get("kind").ok_or("FaultEvent: missing `kind`")?)?,
        })
    }
}

/// A seeded, ordered schedule of fault transitions.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Seed for the plan's dedicated RNG (corruption draws).
    pub seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Empty plan drawing corruption randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// The scheduled transitions in insertion order (the simulator's
    /// event queue orders them by time with deterministic tie-breaks).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled transitions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Schedule a raw transition.
    pub fn push(&mut self, ev: FaultEvent) -> &mut Self {
        self.events.push(ev);
        self
    }

    /// Take `(node, port)` down at `at`.
    pub fn link_down(&mut self, at: Nanos, node: NodeId, port: usize) -> &mut Self {
        self.push(FaultEvent {
            at,
            node,
            port,
            kind: FaultKind::LinkDown,
        })
    }

    /// Bring `(node, port)` back up at `at`.
    pub fn link_up(&mut self, at: Nanos, node: NodeId, port: usize) -> &mut Self {
        self.push(FaultEvent {
            at,
            node,
            port,
            kind: FaultKind::LinkUp,
        })
    }

    /// Flap `(node, port)`: `count` down/up cycles starting at `first`,
    /// each outage lasting `down_for`, one cycle every `period`.
    pub fn link_flap(
        &mut self,
        node: NodeId,
        port: usize,
        first: Nanos,
        down_for: Nanos,
        period: Nanos,
        count: u32,
    ) -> &mut Self {
        assert!(down_for < period, "outage must be shorter than the cycle");
        for i in 0..count as u64 {
            let t = first + i * period;
            self.link_down(t, node, port);
            self.link_up(t + down_for, node, port);
        }
        self
    }

    /// Degrade `(node, port)` to `factor` × nominal rate at `at`.
    pub fn degrade(&mut self, at: Nanos, node: NodeId, port: usize, factor: f64) -> &mut Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degrade factor must be in (0, 1]"
        );
        self.push(FaultEvent {
            at,
            node,
            port,
            kind: FaultKind::Degrade { factor },
        })
    }

    /// Restore `(node, port)` to nominal rate at `at`.
    pub fn restore_rate(&mut self, at: Nanos, node: NodeId, port: usize) -> &mut Self {
        self.degrade(at, node, port, 1.0)
    }

    /// Inject per-packet corruption with probability `drop_prob` on
    /// `(node, port)` from `at` until `until` (when it is cleared).
    pub fn pkt_loss(
        &mut self,
        at: Nanos,
        until: Nanos,
        node: NodeId,
        port: usize,
        drop_prob: f64,
    ) -> &mut Self {
        assert!((0.0..=1.0).contains(&drop_prob), "drop_prob out of range");
        assert!(until > at, "corruption window must be non-empty");
        self.push(FaultEvent {
            at,
            node,
            port,
            kind: FaultKind::PktLoss { drop_prob },
        });
        self.push(FaultEvent {
            at: until,
            node,
            port,
            kind: FaultKind::PktLoss { drop_prob: 0.0 },
        })
    }

    /// A misbehaving `host` asserts sustained XOFF from `start` to `end`.
    pub fn pfc_storm(&mut self, host: NodeId, start: Nanos, end: Nanos) -> &mut Self {
        assert!(end > start, "storm must be non-empty");
        self.push(FaultEvent {
            at: start,
            node: host,
            port: 0,
            kind: FaultKind::PfcStormStart,
        });
        self.push(FaultEvent {
            at: end,
            node: host,
            port: 0,
            kind: FaultKind::PfcStormEnd,
        })
    }

    /// Impair the control-plane channel from `at`: each message on a
    /// selected direction is lost with probability `loss`, delayed by up
    /// to `delay_max` extra monitor intervals, and duplicated with
    /// probability `dup`. Control-plane events carry no link address;
    /// `node`/`port` are zero.
    pub fn ctrl_impair(
        &mut self,
        at: Nanos,
        up: bool,
        down: bool,
        loss: f64,
        delay_max: u64,
        dup: f64,
    ) -> &mut Self {
        assert!((0.0..=1.0).contains(&loss), "ctrl loss out of range");
        assert!((0.0..=1.0).contains(&dup), "ctrl dup out of range");
        self.push(FaultEvent {
            at,
            node: 0,
            port: 0,
            kind: FaultKind::CtrlImpair {
                up,
                down,
                loss,
                delay_max,
                dup,
            },
        })
    }

    /// Restore a clean control-plane channel in both directions at `at`.
    pub fn ctrl_restore(&mut self, at: Nanos) -> &mut Self {
        self.ctrl_impair(at, true, true, 0.0, 0, 0.0)
    }

    /// Kill the controller at `at` (`warm`: a snapshot survives).
    pub fn ctrl_crash(&mut self, at: Nanos, warm: bool) -> &mut Self {
        self.push(FaultEvent {
            at,
            node: 0,
            port: 0,
            kind: FaultKind::CtrlCrash { warm },
        })
    }

    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let seed = v
            .get("seed")
            .and_then(Value::as_u64)
            .ok_or("FaultPlan: missing `seed`")?;
        let events = v
            .get("events")
            .and_then(Value::as_array)
            .ok_or("FaultPlan: missing `events`")?
            .iter()
            .map(FaultEvent::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { seed, events })
    }
}

/// Runtime state of one directed link, mutated by fault transitions.
#[derive(Debug, Clone, Copy)]
pub struct LinkState {
    /// Whether the link carries packets at all.
    pub up: bool,
    /// Fraction of nominal bandwidth currently available.
    pub rate_factor: f64,
    /// Per-packet corruption drop probability.
    pub drop_prob: f64,
}

impl Default for LinkState {
    fn default() -> Self {
        Self {
            up: true,
            rate_factor: 1.0,
            drop_prob: 0.0,
        }
    }
}

impl LinkState {
    /// Whether the link needs no per-packet fault processing.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.up && self.rate_factor >= 1.0 && self.drop_prob <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flap_builder_alternates_down_up() {
        let mut plan = FaultPlan::new(7);
        plan.link_flap(10, 3, 1_000, 200, 500, 3);
        let evs = plan.events();
        assert_eq!(evs.len(), 6);
        assert_eq!(evs[0].at, 1_000);
        assert_eq!(evs[0].kind, FaultKind::LinkDown);
        assert_eq!(evs[1].at, 1_200);
        assert_eq!(evs[1].kind, FaultKind::LinkUp);
        assert_eq!(evs[4].at, 2_000);
        assert!(evs.iter().all(|e| e.node == 10 && e.port == 3));
    }

    #[test]
    fn pkt_loss_builder_clears_itself() {
        let mut plan = FaultPlan::new(0);
        plan.pkt_loss(100, 900, 5, 0, 0.25);
        let evs = plan.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, FaultKind::PktLoss { drop_prob: 0.25 });
        assert_eq!(evs[1].at, 900);
        assert_eq!(evs[1].kind, FaultKind::PktLoss { drop_prob: 0.0 });
    }

    #[test]
    fn storm_builder_brackets_the_window() {
        let mut plan = FaultPlan::new(0);
        plan.pfc_storm(2, 50, 150);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].kind, FaultKind::PfcStormStart);
        assert_eq!(plan.events()[1].kind, FaultKind::PfcStormEnd);
    }

    #[test]
    fn plan_round_trips_through_value() {
        let mut plan = FaultPlan::new(9);
        plan.link_flap(10, 3, 1_000, 200, 500, 2);
        plan.degrade(50, 4, 1, 0.25);
        plan.pkt_loss(100, 900, 5, 0, 0.125);
        plan.pfc_storm(2, 50, 150);
        plan.ctrl_impair(1_000, true, false, 0.25, 3, 0.125);
        plan.ctrl_crash(2_000, true);
        plan.ctrl_restore(3_000);
        let back = FaultPlan::from_value(&plan.serialize_value()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn ctrl_events_are_flagged_and_data_events_are_not() {
        let mut plan = FaultPlan::new(0);
        plan.link_down(10, 1, 0);
        plan.ctrl_impair(20, true, true, 0.5, 2, 0.0);
        plan.ctrl_crash(30, false);
        let ctrl: Vec<bool> = plan.events().iter().map(|e| e.kind.is_ctrl()).collect();
        assert_eq!(ctrl, vec![false, true, true]);
    }

    #[test]
    fn default_link_state_is_clean() {
        let ls = LinkState::default();
        assert!(ls.is_clean());
        let degraded = LinkState {
            rate_factor: 0.5,
            ..ls
        };
        assert!(!degraded.is_clean());
    }
}
