//! The discrete-event core: a deterministic time-ordered queue.
//!
//! Ties are broken by an explicit *causal key* supplied by the caller, so
//! two runs with the same seed replay identically — a property every
//! experiment in the harness relies on (paper-figure regeneration must be
//! reproducible). The key is assigned by the simulator from the causal
//! source of the event (`(source-node namespace << 40) | per-source
//! counter`), not from global push order: that makes the tie-break a pure
//! function of the event's provenance, which is what lets the sharded
//! parallel engine reproduce the serial order exactly — a shard cannot
//! observe global push order, but it *can* observe its own nodes'
//! counters.
//!
//! Two implementations share one total order on `(time, key)`:
//!
//! * [`EventQueue`] — the production scheduler, a **calendar queue**
//!   (hierarchical bucket wheel + overflow heap). Pushes into the wheel
//!   are an amortized-O(1) `Vec::push`; only the handful of events that
//!   land in the already-active bucket, or beyond the wheel horizon, pay
//!   a heap operation. This is the same trick ns-3 / HPCC-style
//!   simulators use to keep the future-event list off the profile.
//! * [`BinaryHeapQueue`] — the straightforward binary heap the simulator
//!   originally shipped with. Kept as the *reference implementation*:
//!   the differential property test replays random workloads through
//!   both and asserts identical `(time, event)` pop sequences, and the
//!   micro-benchmarks race them against each other.
//!
//! Determinism argument: the simulator guarantees every pending event
//! carries a unique key (per-source counters never repeat), so
//! `(at, key)` is a *strict* total order — no two events compare equal.
//! Any correct priority structure over a strict total order pops the same
//! sequence; the calendar queue merely partitions events by time bucket
//! (a partition respecting the order's first component) and delegates
//! intra-bucket ordering to a sort keyed by the full `(at, key)` pair.
//! Same-timestamp bursts therefore pop in key order on both
//! implementations, bit-identically — and identically whether the events
//! were enqueued by one serial engine or routed through parallel-shard
//! mailboxes in any interleaving.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::packet::PacketId;
use crate::{FlowId, Nanos};

/// Everything that can happen in the simulator.
///
/// The enum is deliberately *slim* (16 bytes): packets travel through the
/// scheduler as [`PacketId`] handles into the simulator's packet arena,
/// and node/port addresses are narrowed to `u32`/`u16` (a fabric with
/// more than 4 G nodes or 64 K ports per switch is out of scope). Before
/// this, `Arrive` carried a ~100-byte `Packet` by value and every heap
/// sift moved it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A flow becomes active at its source host.
    FlowStart(FlowId),
    /// A QP pacing tick: the flow's sender may emit its next segment.
    QpSend(FlowId),
    /// A packet finishes arriving at `node` through `in_port`.
    Arrive {
        /// Receiving node.
        node: u32,
        /// Ingress port index on `node`.
        in_port: u16,
        /// Handle of the packet in the simulator's arena.
        pkt: PacketId,
    },
    /// `node`'s egress `port` finished serializing; it may send again.
    PortFree {
        /// Transmitting node.
        node: u32,
        /// Port index.
        port: u16,
    },
    /// A PFC pause/resume frame takes effect at `node`'s egress `port`
    /// for the lossless class.
    PfcSet {
        /// Node whose egress is paused/resumed.
        node: u32,
        /// Port index on `node`.
        port: u16,
        /// true = XOFF, false = XON.
        paused: bool,
    },
    /// Periodic retransmission check for a flow (loss recovery).
    RetxCheck(FlowId),
    /// A scheduled fault transition from the installed
    /// [`crate::fault::FaultPlan`] (index into the plan).
    Fault(u32),
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    at: Nanos,
    key: u64,
    ev: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.key).cmp(&(self.at, self.key))
    }
}

/// Bucket width as a power of two: 256 ns. Wide enough that pushes
/// concentrate on a few dozen hot wheel slots (serialization of one MTU
/// at 100 G is ~84 ns, propagation delays are 1–5 µs — about 20 buckets
/// out), which keeps the wheel's working set cache-resident. Narrower
/// buckets were measured slower: they scatter pushes over hundreds of
/// cold slots. The intra-bucket cost is absorbed by the sort-once
/// consume-by-cursor active set, not a heap, so wide buckets stay cheap.
const BUCKET_SHIFT: u32 = 8;
/// Number of wheel buckets (power of two). Horizon = 8192 × 256 ns ≈
/// 2.1 ms, which covers pacing rechecks (≤ 50 µs) and the retransmission
/// timer (~1 ms); only rare far-future events (lazily admitted flow
/// starts) spill into the overflow heap.
const N_BUCKETS: usize = 8192;

/// Deterministic future-event list: calendar-queue implementation.
///
/// Invariants (with `b(e) = e.at >> BUCKET_SHIFT` the absolute bucket of
/// an event):
///
/// * the *active set* — `sorted[head..]` plus `late` — holds every
///   pending event with `b(e) <= active`; `sorted[head..]` is ascending
///   under `(at, key)`;
/// * `wheel[b & (N_BUCKETS-1)]` holds events with
///   `active < b <= active + N_BUCKETS` (distinct buckets never alias a
///   slot because the range spans exactly `N_BUCKETS` buckets);
/// * `overflow` holds events with `b > active + N_BUCKETS`, and its
///   minimum is always beyond `active`.
///
/// All wheel/overflow events are in strictly later buckets than
/// everything in the active set, so the smaller of `sorted[head]` and
/// `late`'s head is the global minimum under `(at, key)`.
///
/// Why sort-and-scan instead of a heap for the active bucket: a busy
/// fabric puts hundreds of events in one 256 ns bucket, and a binary
/// heap pays an O(log n) pointer-chasing sift per pop. Sorting the
/// drained bucket once (contiguous, branch-predictable) and consuming it
/// with a cursor makes the common pop a bounds check and an index
/// increment. Only events scheduled *into the already-active bucket*
/// (same-instant follow-ups, sub-256 ns serialization gaps) take the
/// `late` heap, which stays small.
#[derive(Debug)]
pub struct EventQueue {
    /// The drained active bucket, ascending by `(at, key)`; consumed from
    /// `head`.
    sorted: Vec<Scheduled>,
    /// Cursor into `sorted`.
    head: usize,
    /// Events pushed at/behind the active bucket after it was drained,
    /// earliest-first.
    late: BinaryHeap<Scheduled>,
    /// The bucket wheel; slot vectors keep their capacity across reuse.
    wheel: Vec<Vec<Scheduled>>,
    /// Events beyond the wheel horizon.
    overflow: BinaryHeap<Scheduled>,
    /// Absolute index of the bucket currently drained into the active set.
    active: u64,
    /// Total events resident in `wheel`.
    wheel_len: usize,
    /// Total pending events.
    len: usize,
    /// Pop-order invariant monitor (ZST unless the `audit` feature is on).
    order: paraleon_audit::OrderAudit,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self {
            sorted: Vec::new(),
            head: 0,
            late: BinaryHeap::new(),
            wheel: (0..N_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            active: 0,
            wheel_len: 0,
            len: 0,
            order: paraleon_audit::OrderAudit::default(),
        }
    }
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `ev` at absolute time `at` with tie-break `key`.
    ///
    /// The caller owns key assignment and must guarantee uniqueness among
    /// pending events at the same instant; the simulator derives keys
    /// from `(source-node namespace, per-source counter)`.
    #[inline]
    pub fn push(&mut self, at: Nanos, key: u64, ev: Event) {
        self.len += 1;
        let s = Scheduled { at, key, ev };
        let bucket = at >> BUCKET_SHIFT;
        if bucket > self.active {
            if bucket - self.active <= N_BUCKETS as u64 {
                self.wheel[(bucket as usize) & (N_BUCKETS - 1)].push(s);
                self.wheel_len += 1;
            } else {
                self.overflow.push(s);
            }
        } else {
            self.late.push(s);
        }
    }

    /// Advance `active` until the active set holds the global minimum
    /// (no-op when it already does). Empty stretches are skipped by
    /// jumping straight to the earliest populated bucket when the wheel
    /// is empty.
    fn prime(&mut self) {
        while self.head == self.sorted.len() && self.late.is_empty() {
            self.sorted.clear();
            self.head = 0;
            if self.wheel_len == 0 {
                // Whole wheel empty: jump to the earliest overflow bucket
                // (or give up — the queue is empty).
                let Some(min) = self.overflow.peek() else {
                    return;
                };
                self.active = self.active.max(min.at >> BUCKET_SHIFT);
            } else {
                self.active += 1;
                let slot = (self.active as usize) & (N_BUCKETS - 1);
                // Swap, don't copy: the slot's buffer becomes the active
                // buffer and the old (cleared) active buffer parks in the
                // slot, so both keep their capacity across reuse.
                std::mem::swap(&mut self.sorted, &mut self.wheel[slot]);
                self.wheel_len -= self.sorted.len();
            }
            // Overflow events whose bucket the cursor has reached become
            // part of the active set.
            while let Some(min) = self.overflow.peek() {
                if min.at >> BUCKET_SHIFT > self.active {
                    break;
                }
                let s = self.overflow.pop().expect("peeked");
                self.sorted.push(s);
            }
            self.sorted.sort_unstable_by_key(|s| (s.at, s.key));
        }
    }

    /// The earliest event of the primed active set, without removing it.
    #[inline]
    fn head_min(&self) -> Option<&Scheduled> {
        match (self.sorted.get(self.head), self.late.peek()) {
            (Some(a), Some(b)) => {
                if (a.at, a.key) <= (b.at, b.key) {
                    Some(a)
                } else {
                    Some(b)
                }
            }
            (a @ Some(_), None) => a,
            (None, b) => b,
        }
    }

    /// Remove the earliest event of the primed, non-empty active set.
    #[inline]
    fn take_min(&mut self) -> Scheduled {
        self.len -= 1;
        let s = match (self.sorted.get(self.head), self.late.peek()) {
            (Some(a), Some(b)) if (b.at, b.key) < (a.at, a.key) => {
                let _ = b;
                self.late.pop().expect("peeked")
            }
            (Some(a), _) => {
                let s = *a;
                self.head += 1;
                s
            }
            (None, _) => self.late.pop().expect("primed non-empty"),
        };
        self.order.observe(s.at, s.key);
        s
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        self.prime();
        self.head_min().map(|s| s.at)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, u64, Event)> {
        self.prime();
        self.head_min()?;
        let s = self.take_min();
        Some((s.at, s.key, s.ev))
    }

    /// Pop the earliest event only if it is scheduled at or before `t` —
    /// the single-lookup form of `peek_time` + `pop` the simulator's hot
    /// loop uses.
    pub fn pop_before(&mut self, t: Nanos) -> Option<(Nanos, u64, Event)> {
        self.prime();
        if self.head_min()?.at > t {
            return None;
        }
        let s = self.take_min();
        Some((s.at, s.key, s.ev))
    }

    /// Pop the earliest event only if it is scheduled *strictly* before
    /// `t`. The parallel engine's epoch windows are half-open
    /// `[start, end)` intervals — events at exactly the barrier time must
    /// wait for the cross-shard mailbox exchange before they run.
    pub fn pop_strictly_before(&mut self, t: Nanos) -> Option<(Nanos, u64, Event)> {
        self.prime();
        if self.head_min()?.at >= t {
            return None;
        }
        let s = self.take_min();
        Some((s.at, s.key, s.ev))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The original binary-heap future-event list, kept as the reference
/// implementation for differential tests and micro-benchmarks.
#[derive(Debug, Default)]
pub struct BinaryHeapQueue {
    heap: BinaryHeap<Scheduled>,
}

impl BinaryHeapQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `ev` at absolute time `at` with tie-break `key`.
    pub fn push(&mut self, at: Nanos, key: u64, ev: Event) {
        self.heap.push(Scheduled { at, key, ev });
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, u64, Event)> {
        self.heap.pop().map(|s| (s.at, s.key, s.ev))
    }

    /// Pop the earliest event only if it is scheduled at or before `t`.
    pub fn pop_before(&mut self, t: Nanos) -> Option<(Nanos, u64, Event)> {
        if self.heap.peek().map(|s| s.at)? > t {
            return None;
        }
        self.pop()
    }

    /// Pop the earliest event only if it is scheduled strictly before `t`.
    pub fn pop_strictly_before(&mut self, t: Nanos) -> Option<(Nanos, u64, Event)> {
        if self.heap.peek().map(|s| s.at)? >= t {
            return None;
        }
        self.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 0, Event::FlowStart(3));
        q.push(10, 1, Event::FlowStart(1));
        q.push(20, 2, Event::FlowStart(2));
        let order: Vec<Nanos> = std::iter::from_fn(|| q.pop().map(|(t, _, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_key_not_push_order() {
        let mut q = EventQueue::new();
        q.push(5, 2, Event::FlowStart(2));
        q.push(5, 0, Event::FlowStart(0));
        q.push(5, 1, Event::FlowStart(1));
        let flows: Vec<FlowId> = std::iter::from_fn(|| {
            q.pop().map(|(_, _, e)| match e {
                Event::FlowStart(f) => f,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(flows, vec![0, 1, 2]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(42, 0, Event::QpSend(0));
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pop_before_respects_the_bound() {
        let mut q = EventQueue::new();
        q.push(100, 0, Event::FlowStart(1));
        q.push(300, 1, Event::FlowStart(2));
        assert_eq!(q.pop_before(50), None);
        assert_eq!(q.pop_before(100).map(|(t, _, _)| t), Some(100));
        assert_eq!(q.pop_before(200), None);
        assert_eq!(q.pop_before(u64::MAX).map(|(t, _, _)| t), Some(300));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_strictly_before_excludes_the_bound() {
        let mut q = EventQueue::new();
        q.push(100, 0, Event::FlowStart(1));
        q.push(200, 1, Event::FlowStart(2));
        assert_eq!(q.pop_strictly_before(100), None);
        assert_eq!(q.pop_strictly_before(101).map(|(t, _, _)| t), Some(100));
        assert_eq!(q.pop_strictly_before(200), None);
        assert_eq!(q.pop_before(200).map(|(t, _, _)| t), Some(200));
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut q = EventQueue::new();
        let horizon = (N_BUCKETS as u64 + 10) << BUCKET_SHIFT;
        q.push(3 * horizon, 0, Event::FlowStart(3));
        q.push(7, 1, Event::FlowStart(0));
        q.push(horizon, 2, Event::FlowStart(1));
        q.push(2 * horizon, 3, Event::FlowStart(2));
        let flows: Vec<FlowId> = std::iter::from_fn(|| {
            q.pop().map(|(_, _, e)| match e {
                Event::FlowStart(f) => f,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(flows, vec![0, 1, 2, 3]);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        // Mimic the simulator: pop an event, then schedule new work at
        // and slightly after the popped time.
        let mut q = EventQueue::new();
        let mut key = 0u64;
        let mut next_key = || {
            key += 1;
            key
        };
        q.push(0, next_key(), Event::FlowStart(0));
        let mut last = 0;
        let mut popped = 0u64;
        while let Some((t, _, _)) = q.pop() {
            assert!(t >= last, "time ran backward: {t} < {last}");
            last = t;
            popped += 1;
            if popped < 1000 {
                q.push(t, next_key(), Event::QpSend(popped)); // same instant
                q.push(t + 84, next_key(), Event::PortFree { node: 0, port: 0 });
                q.push(t + 5_000, next_key(), Event::QpSend(popped));
                if popped.is_multiple_of(100) {
                    q.push(t + 1_000_000, next_key(), Event::RetxCheck(popped)); // in wheel
                    q.push(t + 3_000_000, next_key(), Event::RetxCheck(popped));
                    // beyond horizon
                }
            }
        }
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn len_tracks_all_tiers() {
        let mut q = EventQueue::new();
        q.push(1, 0, Event::FlowStart(0)); // cur
        q.push(100_000, 1, Event::FlowStart(1)); // wheel
        q.push(u64::MAX / 2, 2, Event::FlowStart(2)); // overflow
        assert_eq!(q.len(), 3);
        q.pop();
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn reference_queue_agrees_on_a_smoke_workload() {
        let mut a = EventQueue::new();
        let mut b = BinaryHeapQueue::new();
        let times = [5u64, 5, 9, 3, 70_000, 3, 5, 1 << 40, 12, 70_000];
        for (i, &t) in times.iter().enumerate() {
            a.push(t, i as u64, Event::FlowStart(i as u64));
            b.push(t, i as u64, Event::FlowStart(i as u64));
        }
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }
}
