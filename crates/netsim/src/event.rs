//! The discrete-event core: a deterministic time-ordered queue.
//!
//! Ties are broken by insertion sequence number, so two runs with the same
//! seed replay identically — a property every experiment in the harness
//! relies on (paper-figure regeneration must be reproducible).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::packet::Packet;
use crate::{FlowId, Nanos, NodeId};

/// Everything that can happen in the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A flow becomes active at its source host.
    FlowStart(FlowId),
    /// A QP pacing tick: the flow's sender may emit its next segment.
    QpSend(FlowId),
    /// A packet finishes arriving at `node` through `in_port`.
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// Ingress port index on `node`.
        in_port: usize,
        /// The packet.
        pkt: Packet,
    },
    /// `node`'s egress `port` finished serializing; it may send again.
    PortFree {
        /// Transmitting node.
        node: NodeId,
        /// Port index.
        port: usize,
    },
    /// A PFC pause/resume frame takes effect at `node`'s egress `port`
    /// for the lossless class.
    PfcSet {
        /// Node whose egress is paused/resumed.
        node: NodeId,
        /// Port index on `node`.
        port: usize,
        /// true = XOFF, false = XON.
        paused: bool,
    },
    /// Periodic retransmission check for a flow (loss recovery).
    RetxCheck(FlowId),
    /// A scheduled fault transition from the installed
    /// [`crate::fault::FaultPlan`] (index into the plan).
    Fault(u32),
}

#[derive(Debug)]
struct Scheduled {
    at: Nanos,
    seq: u64,
    ev: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `ev` at absolute time `at`.
    pub fn push(&mut self, at: Nanos, ev: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, ev });
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, Event)> {
        self.heap.pop().map(|s| (s.at, s.ev))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::FlowStart(3));
        q.push(10, Event::FlowStart(1));
        q.push(20, Event::FlowStart(2));
        let order: Vec<Nanos> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, Event::FlowStart(1));
        q.push(5, Event::FlowStart(2));
        q.push(5, Event::FlowStart(3));
        let flows: Vec<FlowId> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::FlowStart(f) => f,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(flows, vec![1, 2, 3]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(42, Event::QpSend(0));
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
