//! Per-node mutable state: host RNICs and switches.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;

use paraleon_dcqcn::{DcqcnParams, EcnMarker, IncastScaler, NpState, RpState};
use paraleon_sketch::ElasticSketch;

use crate::fasthash::FastMap;
use crate::packet::{PacketId, N_CLASSES};
use crate::{FlowId, Nanos, NodeId};

/// An egress-queue entry: the packet's arena handle plus the two header
/// fields the egress path needs, cached inline so dequeueing and
/// serialization never have to chase the (usually cache-cold) arena slot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueuedPkt {
    /// Arena handle.
    pub id: PacketId,
    /// Wire bytes (byte accounting + serialization time).
    pub wire: u32,
    /// Ingress port the packet entered through (switch PFC accounting;
    /// 0 in host egress queues, which have no ingress side).
    pub in_port: u16,
}

/// Sender-side per-flow (per-QP) state on a host.
#[derive(Debug)]
pub(crate) struct SenderFlow {
    /// Destination host.
    pub dst: NodeId,
    /// Total flow bytes.
    pub bytes: u64,
    /// Bytes handed to the NIC so far (rewound on retransmission).
    pub sent: u64,
    /// Cumulatively acknowledged bytes.
    pub acked: u64,
    /// DCQCN reaction point for this QP.
    pub rp: RpState,
    /// Whether a QpSend event is already scheduled.
    pub send_scheduled: bool,
    /// When the previous segment was handed to the NIC (pacing base).
    pub last_send: Option<Nanos>,
    /// Whether the flow is blocked on NIC queue space.
    pub blocked: bool,
    /// Last time `acked` advanced (loss-recovery timer base).
    pub last_progress: Nanos,
    /// Whether a RetxCheck timer is live.
    pub retx_armed: bool,
    /// Completed flag (all bytes acknowledged).
    pub done: bool,
}

/// Receiver-side per-flow state on a host.
#[derive(Debug)]
pub(crate) struct RecvFlow {
    /// Payload bytes received.
    pub received: u64,
    /// DCQCN notification point for this QP.
    pub np: NpState,
    /// Data packets since the last ACK (for coalescing).
    pub pkts_since_ack: u32,
}

/// A host with one RNIC port.
#[derive(Debug)]
pub(crate) struct HostState {
    /// Per-class egress queues (data, control); packets stay in the
    /// simulator's arena, queues move slim handle entries.
    pub tx_queues: [VecDeque<QueuedPkt>; N_CLASSES],
    /// Whether the port is mid-serialization.
    pub tx_busy: bool,
    /// PFC: lossless-class egress paused by the ToR.
    pub data_paused: bool,
    /// When the current pause began (for pause-duration accounting).
    pub pause_started: Option<Nanos>,
    /// Active sender QPs (hot per-packet lookups: deterministic fast map).
    pub senders: FastMap<FlowId, SenderFlow>,
    /// Active receiver QPs.
    pub receivers: FastMap<FlowId, RecvFlow>,
    /// DCQCN+ incast scaler (receiver side, shared across QPs).
    pub incast: IncastScaler,
    /// Flows waiting for NIC queue space.
    pub blocked: Vec<FlowId>,
}

impl HostState {
    pub(crate) fn new(base_cnp_interval_us: f64, incast_window: Nanos) -> Self {
        Self {
            tx_queues: Default::default(),
            tx_busy: false,
            data_paused: false,
            pause_started: None,
            senders: FastMap::default(),
            receivers: FastMap::default(),
            incast: IncastScaler::new(base_cnp_interval_us, incast_window),
            blocked: Vec::new(),
        }
    }

    /// Pick the next packet to serialize: control strictly first, data
    /// only when not paused. Returns the entry and its class.
    pub(crate) fn dequeue(&mut self) -> Option<(QueuedPkt, usize)> {
        if let Some(p) = self.tx_queues[1].pop_front() {
            return Some((p, 1));
        }
        if !self.data_paused {
            return self.tx_queues[0].pop_front().map(|p| (p, 0));
        }
        None
    }

    /// Apply a new parameter setting to every live QP.
    pub(crate) fn set_params(&mut self, params: &DcqcnParams) {
        for s in self.senders.values_mut() {
            s.rp.set_params(*params);
        }
        for r in self.receivers.values_mut() {
            r.np.set_params(*params);
        }
    }
}

/// One egress port of a switch.
#[derive(Debug)]
pub(crate) struct SwPort {
    /// Per-class FIFO queues (slim handle entries, not packets).
    pub queues: [VecDeque<QueuedPkt>; N_CLASSES],
    /// Queued bytes per class (wire bytes).
    pub qbytes: [u64; N_CLASSES],
    /// Whether the port is mid-serialization.
    pub busy: bool,
    /// PFC: lossless-class egress paused by the downstream device.
    pub data_paused: bool,
    /// When the current pause began.
    pub pause_started: Option<Nanos>,
}

impl SwPort {
    fn new() -> Self {
        Self {
            queues: Default::default(),
            qbytes: [0; N_CLASSES],
            busy: false,
            data_paused: false,
            pause_started: None,
        }
    }
}

/// A switch: shared-buffer output-queued, with PFC and ECN, and (on ToRs)
/// an Elastic Sketch measurement point.
#[derive(Debug)]
pub(crate) struct SwitchState {
    /// Egress ports (parallel to the topology's port list).
    pub ports: Vec<SwPort>,
    /// Total data bytes resident in the shared buffer.
    pub buffer_used: u64,
    /// Data bytes resident per ingress port (PFC accounting).
    pub ingress_bytes: Vec<u64>,
    /// Whether we have an outstanding XOFF toward each ingress port's
    /// upstream device.
    pub sent_xoff: Vec<bool>,
    /// ECN marker (shared thresholds across ports, like homogeneous
    /// switch configs in the paper).
    pub marker: EcnMarker,
    /// The switch's own RED coin-flip stream, seeded from
    /// `mix64(cfg.seed ^ node)`. Per-switch (not one simulator-wide RNG)
    /// so a switch's draw sequence depends only on the packets *it*
    /// examined — the property that lets the sharded parallel engine
    /// reproduce serial marking decisions exactly.
    pub ecn_rng: StdRng,
    /// ToR-only measurement sketch.
    pub sketch: Option<ElasticSketch>,
    /// Packets dropped at a full buffer (lifetime).
    pub drops: u64,
    /// Marker counter snapshots at the last interval collection (for
    /// per-interval marking-rate computation).
    pub prev_seen: u64,
    /// See [`SwitchState::prev_seen`].
    pub prev_marked: u64,
}

impl SwitchState {
    pub(crate) fn new(
        n_ports: usize,
        marker: EcnMarker,
        ecn_seed: u64,
        sketch: Option<ElasticSketch>,
    ) -> Self {
        Self {
            ports: (0..n_ports).map(|_| SwPort::new()).collect(),
            buffer_used: 0,
            ingress_bytes: vec![0; n_ports],
            sent_xoff: vec![false; n_ports],
            marker,
            ecn_rng: StdRng::seed_from_u64(ecn_seed),
            sketch,
            drops: 0,
            prev_seen: 0,
            prev_marked: 0,
        }
    }

    /// Dynamic PFC pause threshold for one ingress queue:
    /// α × (remaining shared buffer).
    pub(crate) fn pause_threshold(&self, alpha: f64, buffer_total: u64) -> f64 {
        alpha * (buffer_total.saturating_sub(self.buffer_used)) as f64
    }

    /// Pick the next packet on `port`: control strictly first. Byte
    /// accounting uses the wire size cached in the queue entry — the
    /// packet arena is never touched on the egress path.
    pub(crate) fn dequeue(&mut self, port: usize) -> Option<(QueuedPkt, usize)> {
        let p = &mut self.ports[port];
        if let Some(q) = p.queues[1].pop_front() {
            p.qbytes[1] -= q.wire as u64;
            return Some((q, 1));
        }
        if !p.data_paused {
            if let Some(q) = p.queues[0].pop_front() {
                p.qbytes[0] -= q.wire as u64;
                return Some((q, 0));
            }
        }
        None
    }
}
