//! Conservative parallel execution of a single simulation.
//!
//! [`ParallelSim`] partitions the topology into shards — each a ToR
//! subtree slice plus its share of the leaf tier, from
//! [`Topology::partition`] — and runs one full
//! [`Simulator`] per shard, restricted by an ownership mask to the
//! events targeting its own nodes. Shards advance in *barrier epochs* of
//! the cut lookahead Δ (the minimum propagation delay across links whose
//! endpoints live on different shards): any event generated in epoch
//! `[cur, cur + Δ)` for a foreign node carries a timestamp `≥ cur + Δ`,
//! so exchanging the per-(src, dst)-shard mailboxes at each barrier
//! delivers every cross-cut event strictly before the window that could
//! run it. No shard ever sees an event out of `(time, key)` order.
//!
//! # Why the result is byte-identical to the serial engine
//!
//! Determinism does not come from the schedule — it comes from the
//! simulator core ([`crate::sim`]) being written so that *nothing
//! observable depends on global event interleaving*:
//!
//! * ties at one timestamp break on **causal keys** assigned from
//!   per-source-node counters, which advance identically in both
//!   engines;
//! * every random draw comes from a **per-entity stream** (per-switch
//!   ECN RNG, per-node corruption RNG) driven only by that entity's own
//!   event sequence;
//! * interval metrics accumulate **per entity** and are folded in global
//!   node order by `Simulator::finalize_interval`, shared verbatim with
//!   the serial engine — f64 merging is selection, never reassociation;
//! * telemetry is **captured** on worker threads tagged `(at, key)` and
//!   replayed on the coordinator in that order — the exact serial
//!   emission order.
//!
//! The differential proptest in `crates/hunt/tests/parallel_differential.rs`
//! enforces byte-identity (metrics, flight-recorder tail, audit state)
//! against the serial engine over search-reachable configurations.

use std::sync::{Arc, Barrier, Mutex};

use paraleon_telemetry as tel;

use crate::config::SimConfig;
use crate::fault::FaultPlan;
use crate::metrics::{FlowRecord, IntervalMetrics};
use crate::sim::{RemoteMsg, SimError, Simulator};
use crate::topology::Topology;
use crate::{FlowId, Nanos, NodeId};

use paraleon_dcqcn::DcqcnParams;

/// Per-(source, destination) shard mailboxes for one barrier exchange.
type Mailboxes = Vec<Vec<Mutex<Vec<RemoteMsg>>>>;

/// The conservative parallel engine: one event core per shard, barrier
/// epochs of the cut lookahead, byte-identical to [`Simulator`].
pub struct ParallelSim {
    /// One full-topology simulator per shard, ownership-masked.
    shards: Vec<Simulator>,
    /// Owner shard of every node (empty when running single-sharded).
    shard_of: Arc<Vec<u16>>,
    /// Epoch length: minimum propagation delay across cut links. Zero
    /// when single-sharded (no cut).
    lookahead: Nanos,
    now: Nanos,
}

impl ParallelSim {
    /// Build a parallel engine over `topo` with `n_shards` event cores.
    ///
    /// `n_shards` is clamped to the topology's ToR count; one shard (or
    /// a degenerate zero lookahead) degrades gracefully to the serial
    /// engine run in-place.
    pub fn new(topo: Topology, cfg: SimConfig, n_shards: usize) -> Self {
        let specs = topo.partition(n_shards);
        let n = specs.len();
        if n > 1 {
            let shard_of = Arc::new(topo.shard_map(&specs));
            if let Some(la) = topo.lookahead(&shard_of) {
                if la > 0 {
                    let shards = (0..n)
                        .map(|me| {
                            let mut s = Simulator::new_shard(
                                topo.clone(),
                                cfg.clone(),
                                Arc::clone(&shard_of),
                                me as u16,
                                n,
                            );
                            // Workers run on threads whose telemetry
                            // registries are dead: capture for replay.
                            s.set_tel_capture(true);
                            s
                        })
                        .collect();
                    return Self {
                        shards,
                        shard_of,
                        lookahead: la,
                        now: 0,
                    };
                }
            }
        }
        Self {
            shards: vec![Simulator::new(topo, cfg)],
            shard_of: Arc::new(Vec::new()),
            lookahead: 0,
            now: 0,
        }
    }

    /// Number of event cores actually running (after clamping).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The engine's epoch length (0 when running single-sharded).
    pub fn lookahead(&self) -> Nanos {
        self.lookahead
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        self.shards[0].topology()
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        self.shards[0].config()
    }

    /// Number of switches (ToRs + leaves).
    pub fn n_switches(&self) -> usize {
        self.shards[0].n_switches()
    }

    /// Number of admitted flows not yet completed.
    pub fn active_flows(&self) -> usize {
        self.shards.iter().map(Simulator::active_flows).sum()
    }

    /// Total events processed across shards (fault replicas un-count
    /// themselves, so this matches the serial engine's figure).
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// Total data packets dropped over the whole run.
    pub fn total_drops(&self) -> u64 {
        self.shards.iter().map(|s| s.total_drops).sum()
    }

    /// Total packets lost to injected faults over the whole run.
    pub fn total_fault_drops(&self) -> u64 {
        self.shards.iter().map(|s| s.total_fault_drops).sum()
    }

    /// Total PFC pause frames over the whole run.
    pub fn total_pfc_events(&self) -> u64 {
        self.shards.iter().map(|s| s.total_pfc_events).sum()
    }

    /// Whether any events remain scheduled on any shard.
    pub fn has_pending_events(&self) -> bool {
        self.shards
            .iter()
            .any(|s| s.has_pending_events() || s.outboxes_pending() > 0)
    }

    /// Base RTT between two hosts.
    pub fn base_rtt(&mut self, a: NodeId, b: NodeId) -> Nanos {
        self.shards[0].base_rtt(a, b)
    }

    /// Whether `node` still has at least one live link, judged by the
    /// shard that owns it (foreign link rows are never faulted).
    pub fn node_reachable(&self, node: NodeId) -> bool {
        let owner = self
            .shard_of
            .get(node)
            .map_or(0, |&s| s as usize)
            .min(self.shards.len() - 1);
        self.shards[owner].node_reachable(node)
    }

    /// Admit a flow; see [`Simulator::add_flow`].
    pub fn add_flow(&mut self, src: NodeId, dst: NodeId, bytes: u64, start: Nanos) -> FlowId {
        let qp = self.shards[0].flow_count();
        self.add_flow_on_qp(src, dst, bytes, start, qp)
    }

    /// Admit a flow on an explicit QP; see [`Simulator::add_flow_on_qp`].
    pub fn add_flow_on_qp(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        start: Nanos,
        qp: FlowId,
    ) -> FlowId {
        match self.try_add_flow_on_qp(src, dst, bytes, start, qp) {
            Ok(id) => id,
            Err(e) => panic!("add_flow_on_qp: {e}"),
        }
    }

    /// Bounds-checked [`ParallelSim::add_flow`].
    pub fn try_add_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        start: Nanos,
    ) -> Result<FlowId, SimError> {
        let qp = self.shards[0].flow_count();
        self.try_add_flow_on_qp(src, dst, bytes, start, qp)
    }

    /// Bounds-checked [`ParallelSim::add_flow_on_qp`]. Every shard
    /// registers the flow (flow ids are global table indices); only the
    /// source owner schedules it.
    pub fn try_add_flow_on_qp(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        start: Nanos,
        qp: FlowId,
    ) -> Result<FlowId, SimError> {
        let mut id = 0;
        for s in &mut self.shards {
            // Validation is deterministic in (topology, clock), which
            // all shards share — one failing means all would.
            id = s.try_add_flow_on_qp(src, dst, bytes, start, qp)?;
        }
        Ok(id)
    }

    /// Install a fault plan on every shard; each schedules only the
    /// transitions touching links it owns an end of.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        for s in &mut self.shards {
            s.install_fault_plan(plan)?;
        }
        Ok(())
    }

    /// Dispatch a parameter setting to every RNIC and switch.
    pub fn set_dcqcn_params(&mut self, params: &DcqcnParams) {
        for s in &mut self.shards {
            s.set_dcqcn_params(params);
        }
    }

    /// The active parameter setting.
    pub fn dcqcn_params(&self) -> &DcqcnParams {
        self.shards[0].dcqcn_params()
    }

    /// Override one switch's ECN thresholds; see
    /// [`Simulator::set_switch_ecn`].
    pub fn set_switch_ecn(
        &mut self,
        switch_index: usize,
        params: &DcqcnParams,
    ) -> Result<(), SimError> {
        for s in &mut self.shards {
            s.set_switch_ecn(switch_index, params)?;
        }
        Ok(())
    }

    /// Drain completed flows, in the canonical `(finish, flow)` order.
    pub fn take_completions(&mut self) -> Vec<FlowRecord> {
        let mut v: Vec<FlowRecord> = self
            .shards
            .iter_mut()
            .flat_map(Simulator::take_completions)
            .collect();
        v.sort_unstable_by_key(|r| (r.finish, r.flow));
        v
    }

    /// Process all events up to and including `t` on every shard, then
    /// set the clock to `t`.
    ///
    /// Epoch protocol (every worker computes the identical schedule, so
    /// no coordinator runs inside the thread scope):
    ///
    /// 1. while `cur < t`: run the half-open window `[cur, e)` with
    ///    `e = min(t, cur + Δ)`, post outboxes, barrier, drain inboxes
    ///    in source-shard order, barrier;
    /// 2. run the inclusive window at `t` (events at exactly `t` run
    ///    only after the last exchange, preserving key order for
    ///    same-instant cross-shard arrivals);
    /// 3. one final exchange parks events generated at `t` (timestamps
    ///    `≥ t + Δ`) in their destination queues.
    pub fn run_until(&mut self, t: Nanos) {
        assert!(t >= self.now, "time cannot run backward");
        let n = self.shards.len();
        if n == 1 {
            self.shards[0].run_until(t);
            self.now = t;
            return;
        }
        let lookahead = self.lookahead;
        let barrier = Barrier::new(n);
        let mailboxes: Mailboxes = (0..n)
            .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        // Worker threads have fresh thread-local audit registries:
        // propagate the coordinator's configuration out, drain tallies
        // back through each shard's carry slot.
        let audit_on = paraleon_audit::enabled();
        let audit_panic = paraleon_audit::panic_on_violation();
        std::thread::scope(|scope| {
            for (me, shard) in self.shards.iter_mut().enumerate() {
                let barrier = &barrier;
                let mailboxes = &mailboxes;
                scope.spawn(move || {
                    paraleon_audit::set_enabled(audit_on);
                    paraleon_audit::set_panic_on_violation(audit_panic);
                    // Divert every telemetry emission on this thread —
                    // from any crate, not just the simulator — into the
                    // capture buffer; the shard stamps each event's
                    // (time, key) so the coordinator can replay in
                    // serial order.
                    tel::capture_begin();
                    let mut cur = shard.now();
                    while cur < t {
                        let e = t.min(cur + lookahead);
                        shard.run_window(e, false);
                        cur = e;
                        exchange(shard, me, mailboxes, barrier);
                    }
                    shard.run_window(t, true);
                    exchange(shard, me, mailboxes, barrier);
                    let (count, reports) = paraleon_audit::drain();
                    shard.audit_carry.0 += count;
                    shard.audit_carry.1.extend(reports);
                    shard.tel_carry = tel::capture_take();
                });
            }
        });
        // Absorb worker audit tallies in shard order (deterministic).
        for shard in &mut self.shards {
            let (count, reports) = std::mem::take(&mut shard.audit_carry);
            paraleon_audit::absorb(count, reports);
        }
        // Replay captured telemetry in global (at, key) order — the
        // serial emission order. Each shard's buffer is already sorted
        // (events are handled in that order), so this is a k-way merge;
        // a stable sort over the concatenation keeps it simple.
        let mut captured: Vec<tel::Captured> = self
            .shards
            .iter_mut()
            .flat_map(|s| std::mem::take(&mut s.tel_carry))
            .collect();
        captured.sort_by_key(|c| (c.at, c.key));
        tel::capture_replay(&captured);
        self.now = t;
    }

    /// Convenience: run for `dt` more nanoseconds.
    pub fn run_for(&mut self, dt: Nanos) {
        self.run_until(self.now + dt);
    }

    /// Snapshot and reset the per-interval metrics; see
    /// [`Simulator::collect_interval`]. Runs the per-shard audit sweeps
    /// on the coordinator thread and checks cross-shard conservation
    /// (no handoff may be parked in an outbox at a collection barrier).
    pub fn collect_interval(&mut self) -> IntervalMetrics {
        if self.shards.len() == 1 {
            return self.shards[0].collect_interval();
        }
        for (i, s) in self.shards.iter().enumerate() {
            let pending = s.outboxes_pending();
            paraleon_audit::check(pending == 0, || {
                paraleon_audit::AuditViolation::CrossShardResidue {
                    shard: i as u32,
                    pending: pending as u64,
                }
            });
        }
        let raws = self
            .shards
            .iter_mut()
            .map(Simulator::interval_raw)
            .collect();
        Simulator::finalize_interval(self.shards[0].topology(), self.shards[0].config(), raws)
    }
}

/// One barrier exchange: post this shard's outboxes into the shared
/// mailbox matrix, wait for everyone, then drain the column addressed to
/// this shard in source-shard order (deterministic arena re-insertion
/// order), and wait again so nobody posts the next epoch into a slot
/// still being drained.
fn exchange(shard: &mut Simulator, me: usize, mailboxes: &Mailboxes, barrier: &Barrier) {
    for (dst, slot) in mailboxes[me].iter().enumerate() {
        if dst != me {
            *slot.lock().unwrap() = shard.take_outbox(dst);
        }
    }
    barrier.wait();
    for (src, row) in mailboxes.iter().enumerate() {
        if src != me {
            for msg in row[me].lock().unwrap().drain(..) {
                shard.inject_remote(msg);
            }
        }
    }
    barrier.wait();
}

/// The execution engine behind a closed loop: the serial [`Simulator`]
/// (the default) or the conservative parallel [`ParallelSim`] (opt-in).
/// Byte-identical results either way; every method delegates.
pub enum Engine {
    /// The serial event core.
    Serial(Box<Simulator>),
    /// Sharded event cores with link-delay lookahead.
    Parallel(ParallelSim),
}

impl Engine {
    /// Build the engine named by `threads`: `<= 1` serial, otherwise
    /// parallel with `threads` shards (clamped to the ToR count).
    pub fn new(topo: Topology, cfg: SimConfig, threads: usize) -> Self {
        if threads <= 1 {
            Engine::Serial(Box::new(Simulator::new(topo, cfg)))
        } else {
            Engine::Parallel(ParallelSim::new(topo, cfg, threads))
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        match self {
            Engine::Serial(s) => s.now(),
            Engine::Parallel(p) => p.now(),
        }
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        match self {
            Engine::Serial(s) => s.topology(),
            Engine::Parallel(p) => p.topology(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        match self {
            Engine::Serial(s) => s.config(),
            Engine::Parallel(p) => p.config(),
        }
    }

    /// Number of switches (ToRs + leaves).
    pub fn n_switches(&self) -> usize {
        match self {
            Engine::Serial(s) => s.n_switches(),
            Engine::Parallel(p) => p.n_switches(),
        }
    }

    /// Number of admitted flows not yet completed.
    pub fn active_flows(&self) -> usize {
        match self {
            Engine::Serial(s) => s.active_flows(),
            Engine::Parallel(p) => p.active_flows(),
        }
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        match self {
            Engine::Serial(s) => s.events_processed,
            Engine::Parallel(p) => p.events_processed(),
        }
    }

    /// Total data packets dropped over the whole run.
    pub fn total_drops(&self) -> u64 {
        match self {
            Engine::Serial(s) => s.total_drops,
            Engine::Parallel(p) => p.total_drops(),
        }
    }

    /// Total packets lost to injected faults over the whole run.
    pub fn total_fault_drops(&self) -> u64 {
        match self {
            Engine::Serial(s) => s.total_fault_drops,
            Engine::Parallel(p) => p.total_fault_drops(),
        }
    }

    /// Total PFC pause frames over the whole run.
    pub fn total_pfc_events(&self) -> u64 {
        match self {
            Engine::Serial(s) => s.total_pfc_events,
            Engine::Parallel(p) => p.total_pfc_events(),
        }
    }

    /// Whether any events remain scheduled.
    pub fn has_pending_events(&self) -> bool {
        match self {
            Engine::Serial(s) => s.has_pending_events(),
            Engine::Parallel(p) => p.has_pending_events(),
        }
    }

    /// Base RTT between two hosts.
    pub fn base_rtt(&mut self, a: NodeId, b: NodeId) -> Nanos {
        match self {
            Engine::Serial(s) => s.base_rtt(a, b),
            Engine::Parallel(p) => p.base_rtt(a, b),
        }
    }

    /// Whether `node` still has at least one live link.
    pub fn node_reachable(&self, node: NodeId) -> bool {
        match self {
            Engine::Serial(s) => s.node_reachable(node),
            Engine::Parallel(p) => p.node_reachable(node),
        }
    }

    /// Admit a flow; see [`Simulator::add_flow`].
    pub fn add_flow(&mut self, src: NodeId, dst: NodeId, bytes: u64, start: Nanos) -> FlowId {
        match self {
            Engine::Serial(s) => s.add_flow(src, dst, bytes, start),
            Engine::Parallel(p) => p.add_flow(src, dst, bytes, start),
        }
    }

    /// Admit a flow on an explicit QP; see [`Simulator::add_flow_on_qp`].
    pub fn add_flow_on_qp(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        start: Nanos,
        qp: FlowId,
    ) -> FlowId {
        match self {
            Engine::Serial(s) => s.add_flow_on_qp(src, dst, bytes, start, qp),
            Engine::Parallel(p) => p.add_flow_on_qp(src, dst, bytes, start, qp),
        }
    }

    /// Bounds-checked [`Engine::add_flow`].
    pub fn try_add_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        start: Nanos,
    ) -> Result<FlowId, SimError> {
        match self {
            Engine::Serial(s) => s.try_add_flow(src, dst, bytes, start),
            Engine::Parallel(p) => p.try_add_flow(src, dst, bytes, start),
        }
    }

    /// Bounds-checked [`Engine::add_flow_on_qp`].
    pub fn try_add_flow_on_qp(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        start: Nanos,
        qp: FlowId,
    ) -> Result<FlowId, SimError> {
        match self {
            Engine::Serial(s) => s.try_add_flow_on_qp(src, dst, bytes, start, qp),
            Engine::Parallel(p) => p.try_add_flow_on_qp(src, dst, bytes, start, qp),
        }
    }

    /// Install a fault plan; see [`Simulator::install_fault_plan`].
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        match self {
            Engine::Serial(s) => s.install_fault_plan(plan),
            Engine::Parallel(p) => p.install_fault_plan(plan),
        }
    }

    /// Dispatch a parameter setting to every RNIC and switch.
    pub fn set_dcqcn_params(&mut self, params: &DcqcnParams) {
        match self {
            Engine::Serial(s) => s.set_dcqcn_params(params),
            Engine::Parallel(p) => p.set_dcqcn_params(params),
        }
    }

    /// The active parameter setting.
    pub fn dcqcn_params(&self) -> &DcqcnParams {
        match self {
            Engine::Serial(s) => s.dcqcn_params(),
            Engine::Parallel(p) => p.dcqcn_params(),
        }
    }

    /// Override one switch's ECN thresholds.
    pub fn set_switch_ecn(
        &mut self,
        switch_index: usize,
        params: &DcqcnParams,
    ) -> Result<(), SimError> {
        match self {
            Engine::Serial(s) => s.set_switch_ecn(switch_index, params),
            Engine::Parallel(p) => p.set_switch_ecn(switch_index, params),
        }
    }

    /// Drain completed flows in `(finish, flow)` order.
    pub fn take_completions(&mut self) -> Vec<FlowRecord> {
        match self {
            Engine::Serial(s) => s.take_completions(),
            Engine::Parallel(p) => p.take_completions(),
        }
    }

    /// Process all events up to and including `t`.
    pub fn run_until(&mut self, t: Nanos) {
        match self {
            Engine::Serial(s) => s.run_until(t),
            Engine::Parallel(p) => p.run_until(t),
        }
    }

    /// Convenience: run for `dt` more nanoseconds.
    pub fn run_for(&mut self, dt: Nanos) {
        match self {
            Engine::Serial(s) => s.run_for(dt),
            Engine::Parallel(p) => p.run_for(dt),
        }
    }

    /// Snapshot and reset the per-interval metrics.
    pub fn collect_interval(&mut self) -> IntervalMetrics {
        match self {
            Engine::Serial(s) => s.collect_interval(),
            Engine::Parallel(p) => p.collect_interval(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEvent, FaultKind};
    use crate::{MICRO, MILLI};

    fn clos() -> Topology {
        Topology::two_tier_clos(4, 4, 2, 100.0, 100.0, 1_000)
    }

    fn cfg() -> SimConfig {
        SimConfig {
            seed: 7,
            ..SimConfig::default()
        }
    }

    /// Run the reference workload on an engine; returns per-interval
    /// metrics, completions, and the events-processed total.
    fn reference_run(mut eng: Engine) -> (Vec<IntervalMetrics>, Vec<FlowRecord>, u64) {
        // Cross-rack incast into host 0 plus background pairs, staggered.
        for src in 4..12 {
            eng.add_flow(src, 0, 300_000, (src as u64) * 2 * MICRO);
        }
        eng.add_flow(1, 13, 500_000, 0);
        eng.add_flow(15, 2, 400_000, 5 * MICRO);
        let mut metrics = Vec::new();
        let mut completions = Vec::new();
        for _ in 0..5 {
            eng.run_for(200 * MICRO);
            metrics.push(eng.collect_interval());
            completions.extend(eng.take_completions());
        }
        // Late flows after a collection boundary.
        eng.add_flow(3, 8, 200_000, eng.now() + MICRO);
        eng.run_for(MILLI);
        metrics.push(eng.collect_interval());
        completions.extend(eng.take_completions());
        (metrics, completions, eng.events_processed())
    }

    fn fault_plan() -> FaultPlan {
        // Kill one ToR uplink mid-run (a cross-cut link under 2+ shards),
        // degrade another, corrupt a host link, then restore.
        let tor0 = 16usize; // 16 hosts, ToRs at 16..20 in the 4x4x2 clos
        let mut plan = FaultPlan::new(99);
        plan.link_down(150 * MICRO, tor0, 4) // first uplink after 4 down-ports
            .push(FaultEvent {
                at: 300 * MICRO,
                node: 17,
                port: 5,
                kind: FaultKind::Degrade { factor: 0.5 },
            })
            .push(FaultEvent {
                at: 350 * MICRO,
                node: 1,
                port: 0,
                kind: FaultKind::PktLoss { drop_prob: 0.05 },
            })
            .push(FaultEvent {
                at: 600 * MICRO,
                node: tor0,
                port: 4,
                kind: FaultKind::LinkUp,
            });
        plan
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let serial = reference_run(Engine::new(clos(), cfg(), 1));
        for threads in [2, 4] {
            let par = reference_run(Engine::new(clos(), cfg(), threads));
            assert_eq!(serial.0, par.0, "{threads} threads: interval metrics");
            assert_eq!(serial.1, par.1, "{threads} threads: completions");
            assert_eq!(serial.2, par.2, "{threads} threads: events processed");
        }
    }

    #[test]
    fn parallel_matches_serial_under_faults() {
        let run = |mut eng: Engine| {
            eng.install_fault_plan(&fault_plan()).expect("plan");
            reference_run(eng)
        };
        let serial = run(Engine::new(clos(), cfg(), 1));
        for threads in [2, 4] {
            let par = run(Engine::new(clos(), cfg(), threads));
            assert_eq!(serial.0, par.0, "{threads} threads: interval metrics");
            assert_eq!(serial.1, par.1, "{threads} threads: completions");
            assert_eq!(serial.2, par.2, "{threads} threads: events processed");
        }
    }

    #[test]
    fn engine_clamps_to_topology() {
        // A dumbbell has one ToR: any thread count degrades to 1 shard.
        let eng = Engine::new(Topology::dumbbell(100.0, 1_000), cfg(), 8);
        match eng {
            Engine::Parallel(p) => {
                assert_eq!(p.n_shards(), 1);
                assert_eq!(p.lookahead(), 0);
            }
            Engine::Serial(_) => unreachable!("threads > 1 builds ParallelSim"),
        }
    }
}
