//! A deterministic packet-level simulator of a lossless RoCEv2 datacenter
//! fabric — the substrate the PARALEON reproduction runs on (standing in
//! for the paper's ns-3 setup and hardware testbed).
//!
//! What is modelled, at packet granularity:
//!
//! * **Topology** — two-tier CLOS (hosts / ToR / leaf) with per-link
//!   bandwidth and propagation delay, deterministic per-flow ECMP
//!   (see [`topology`]).
//! * **RNICs** — per-QP DCQCN reaction points pacing data segments, NIC
//!   port serialization, cumulative ACKs, CNP generation at notification
//!   points, PFC reaction, go-back-N loss recovery ([`sim`]).
//! * **Switches** — output-queued shared-buffer forwarding, RED/ECN
//!   marking between `K_min`/`K_max`, priority separation of control
//!   traffic, 802.1Qbb PFC with dynamic-threshold XOFF/XON, and Elastic
//!   Sketch measurement points on ToRs with TOS-bit single-insertion
//!   (Keypoint 1).
//! * **Metrics** — per-monitor-interval uplink utilization, normalized
//!   RTT, PFC pause ratios and drained sketch readings ([`metrics`]),
//!   exactly the feed PARALEON's Runtime Metric Monitor consumes.
//!
//! Everything is synchronous and seeded: same inputs, same packet trace.

pub mod config;
pub mod ctrl;
pub mod event;
pub mod fasthash;
pub mod fault;
pub mod metrics;
pub(crate) mod node;
pub mod packet;
pub mod par;
pub mod sim;
pub mod topology;

pub use config::SimConfig;
pub use ctrl::{CtrlChannel, CtrlChannelStats, CtrlImpairment};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use metrics::{FlowRecord, IntervalMetrics, SwitchObs};
pub use packet::{Packet, PacketId, PacketKind, PacketPool};
pub use par::{Engine, ParallelSim};
pub use sim::{SimError, Simulator};
pub use topology::{
    gbps, ClosSpec, MixedRateSpec, NodeKind, Port, RailSpec, ShardSpec, ThreeTierSpec, TopoSpec,
    Topology,
};

/// Node identifier (index into the topology).
pub type NodeId = usize;

/// Flow identifier.
pub type FlowId = u64;

/// Nanoseconds since simulation start.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICRO: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLI: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SEC: Nanos = 1_000_000_000;
