//! Network topologies: node/port graph, link capacities and static ECMP
//! routing.
//!
//! The paper's simulations use a two-tier CLOS: hosts attach to ToR
//! switches, ToRs attach to leaf (spine) switches, with configurable
//! oversubscription (4:1 in the NS3 evaluation, 1:1 on the testbed).
//! [`Topology::two_tier_clos`] builds exactly that; a dumbbell helper
//! supports unit tests.
//!
//! Routing is deterministic ECMP: the upward leaf choice at a ToR is a
//! hash of the flow id, so one flow always follows one path (no
//! reordering), matching RoCEv2 deployments.

use crate::{Nanos, NodeId};
use serde::{Serialize, Value};

/// Serializable recipe for [`Topology::two_tier_clos`]: the topology as
/// *configuration* rather than as a built graph, so harnesses (the
/// anomaly hunter's genome, replayable corpus cases) can round-trip it
/// through JSON and rebuild an identical topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClosSpec {
    /// Number of ToR switches.
    pub n_tor: usize,
    /// Hosts attached to each ToR.
    pub hosts_per_tor: usize,
    /// Number of leaf (spine) switches.
    pub n_leaf: usize,
    /// Host link rate in Gbps.
    pub host_gbps: f64,
    /// ToR↔leaf link rate in Gbps.
    pub uplink_gbps: f64,
    /// Per-link propagation delay in nanoseconds.
    pub delay_ns: Nanos,
}

impl ClosSpec {
    /// Total host count.
    pub fn n_hosts(&self) -> usize {
        self.n_tor * self.hosts_per_tor
    }

    /// Total node count (hosts + ToRs + leaves).
    pub fn n_nodes(&self) -> usize {
        self.n_hosts() + self.n_tor + self.n_leaf
    }

    /// Materialize the spec into a routed [`Topology`].
    pub fn build(&self) -> Topology {
        Topology::two_tier_clos(
            self.n_tor,
            self.hosts_per_tor,
            self.n_leaf,
            self.host_gbps,
            self.uplink_gbps,
            self.delay_ns,
        )
    }

    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let uint = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("ClosSpec: missing `{name}`"))
        };
        let float = |name: &str| {
            v.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("ClosSpec: missing `{name}`"))
        };
        let spec = Self {
            n_tor: uint("n_tor")? as usize,
            hosts_per_tor: uint("hosts_per_tor")? as usize,
            n_leaf: uint("n_leaf")? as usize,
            host_gbps: float("host_gbps")?,
            uplink_gbps: float("uplink_gbps")?,
            delay_ns: uint("delay_ns")?,
        };
        if spec.n_tor == 0 || spec.hosts_per_tor == 0 || spec.n_leaf == 0 {
            return Err("ClosSpec: dimensions must be >= 1".into());
        }
        for rate in [spec.host_gbps, spec.uplink_gbps] {
            if !rate.is_finite() || rate <= 0.0 {
                return Err("ClosSpec: link rates must be positive".into());
            }
        }
        Ok(spec)
    }
}

/// One shard of a conservative-parallel partition: the node ids one
/// event core owns. Produced by [`Topology::partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Owned node ids: this shard's hosts, then their ToRs, then its
    /// slice of the leaf tier.
    pub nodes: Vec<NodeId>,
    /// How many of `nodes` are hosts.
    pub n_hosts: usize,
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A server with one RNIC port.
    Host,
    /// A top-of-rack switch (runs the measurement sketch).
    Tor,
    /// A leaf/spine switch (no sketch; Keypoint 1 makes ToR-only
    /// sketching sufficient since every path crosses a ToR first).
    Leaf,
}

/// One directed attachment point of a node.
#[derive(Debug, Clone, Copy)]
pub struct Port {
    /// The node on the other end of the link.
    pub peer: NodeId,
    /// The index of the corresponding port on `peer` (needed to address
    /// PFC pause frames at the correct upstream egress queue).
    pub peer_port: usize,
    /// Link bandwidth in bytes per nanosecond (100 Gbps = 12.5 B/ns).
    pub bw: f64,
    /// Propagation delay in nanoseconds.
    pub delay: Nanos,
}

/// An immutable node/port graph plus routing state.
#[derive(Debug, Clone)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    ports: Vec<Vec<Port>>,
    /// For each host, its ToR node id.
    host_tor: Vec<NodeId>,
    n_hosts: usize,
    hosts_per_tor: usize,
    n_tor: usize,
    n_leaf: usize,
}

/// Convert Gbps to the internal bytes-per-nanosecond unit.
pub fn gbps(v: f64) -> f64 {
    v * 1e9 / 8.0 / 1e9
}

impl Topology {
    /// Build a two-tier CLOS.
    ///
    /// * `n_tor` ToR switches with `hosts_per_tor` hosts each;
    /// * `n_leaf` leaf switches, each connected to every ToR;
    /// * host links at `host_gbps`, ToR↔leaf links at `uplink_gbps`;
    /// * every link has propagation `delay` (paper: 5 µs NS3 / 1 µs LAN).
    ///
    /// Node ids: hosts `0..H`, ToRs `H..H+n_tor`, leaves after that.
    pub fn two_tier_clos(
        n_tor: usize,
        hosts_per_tor: usize,
        n_leaf: usize,
        host_gbps: f64,
        uplink_gbps: f64,
        delay: Nanos,
    ) -> Self {
        assert!(n_tor >= 1 && hosts_per_tor >= 1 && n_leaf >= 1);
        let n_hosts = n_tor * hosts_per_tor;
        let n_nodes = n_hosts + n_tor + n_leaf;
        let mut kinds = Vec::with_capacity(n_nodes);
        kinds.extend(std::iter::repeat_n(NodeKind::Host, n_hosts));
        kinds.extend(std::iter::repeat_n(NodeKind::Tor, n_tor));
        kinds.extend(std::iter::repeat_n(NodeKind::Leaf, n_leaf));
        let mut ports: Vec<Vec<Port>> = vec![Vec::new(); n_nodes];
        let mut host_tor = vec![0usize; n_hosts];

        let tor_id = |t: usize| n_hosts + t;
        let leaf_id = |l: usize| n_hosts + n_tor + l;
        let host_bw = gbps(host_gbps);
        let up_bw = gbps(uplink_gbps);

        // Host <-> ToR links. ToR port t*hosts_per_tor-relative index h is
        // the down-port toward its h-th host; host port 0 is its uplink.
        for t in 0..n_tor {
            for h in 0..hosts_per_tor {
                let host = t * hosts_per_tor + h;
                host_tor[host] = tor_id(t);
                let tor_port = h; // down ports come first on a ToR
                ports[host].push(Port {
                    peer: tor_id(t),
                    peer_port: tor_port,
                    bw: host_bw,
                    delay,
                });
                ports[tor_id(t)].push(Port {
                    peer: host,
                    peer_port: 0,
                    bw: host_bw,
                    delay,
                });
            }
        }
        // ToR <-> leaf links. ToR up-port for leaf l is hosts_per_tor + l;
        // leaf port for ToR t is t.
        for t in 0..n_tor {
            for l in 0..n_leaf {
                ports[tor_id(t)].push(Port {
                    peer: leaf_id(l),
                    peer_port: t,
                    bw: up_bw,
                    delay,
                });
            }
        }
        for l in 0..n_leaf {
            for t in 0..n_tor {
                ports[leaf_id(l)].push(Port {
                    peer: tor_id(t),
                    peer_port: hosts_per_tor + l,
                    bw: up_bw,
                    delay,
                });
            }
        }

        Self {
            kinds,
            ports,
            host_tor,
            n_hosts,
            hosts_per_tor,
            n_tor,
            n_leaf,
        }
    }

    /// Two hosts, one switch ("ToR"), for unit tests: host0 -- sw -- host1.
    pub fn dumbbell(host_gbps: f64, delay: Nanos) -> Self {
        Self::two_tier_clos(1, 2, 1, host_gbps, host_gbps, delay)
    }

    /// Number of nodes of all kinds.
    pub fn n_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.n_hosts
    }

    /// Number of ToR switches.
    pub fn n_tor(&self) -> usize {
        self.n_tor
    }

    /// Number of leaf switches.
    pub fn n_leaf(&self) -> usize {
        self.n_leaf
    }

    /// Kind of `node`.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node]
    }

    /// Ports of `node`.
    pub fn ports(&self, node: NodeId) -> &[Port] {
        &self.ports[node]
    }

    /// The ToR a host hangs off.
    pub fn tor_of(&self, host: NodeId) -> NodeId {
        self.host_tor[host]
    }

    /// Egress port on `node` toward destination host `dst`, using
    /// `flow_hash` to pick among ECMP uplinks. Panics if `node` is `dst`.
    pub fn next_port(&self, node: NodeId, dst: NodeId, flow_hash: u64) -> usize {
        self.next_port_masked(node, dst, flow_hash, |_, _| true)
            .expect("all links up")
    }

    /// Liveness-aware routing: like [`Topology::next_port`] but only
    /// considers ports for which `link_up(node, port)` holds. A ToR with
    /// a dead uplink rehashes its ECMP choice over the surviving
    /// uplinks, steering flows around the failure; returns `None` when
    /// no live port reaches `dst` (single-path segments — host uplinks,
    /// ToR down-ports, leaf down-ports — cannot be routed around).
    pub fn next_port_masked(
        &self,
        node: NodeId,
        dst: NodeId,
        flow_hash: u64,
        mut link_up: impl FnMut(NodeId, usize) -> bool,
    ) -> Option<usize> {
        assert!(dst < self.n_hosts, "destination must be a host");
        let only_if_up = |port: usize, link_up: &mut dyn FnMut(NodeId, usize) -> bool| {
            if link_up(node, port) {
                Some(port)
            } else {
                None
            }
        };
        match self.kinds[node] {
            NodeKind::Host => only_if_up(0, &mut link_up),
            NodeKind::Tor => {
                let tor_index = node - self.n_hosts;
                let first_host = tor_index * self.hosts_per_tor;
                if dst >= first_host && dst < first_host + self.hosts_per_tor {
                    // Down-port to the local host: single path.
                    only_if_up(dst - first_host, &mut link_up)
                } else {
                    // ECMP over live uplinks only. Two passes (count, then
                    // select the k-th live port) keep this allocation-free:
                    // it runs once per packet per switch hop, so a heap
                    // allocation here dominates the routing cost. May query
                    // `link_up` twice per port.
                    let uplinks = self.hosts_per_tor..self.hosts_per_tor + self.n_leaf;
                    let n_alive = uplinks.clone().filter(|&p| link_up(node, p)).count();
                    if n_alive == 0 {
                        None
                    } else {
                        let k = flow_hash as usize % n_alive;
                        uplinks.filter(|&p| link_up(node, p)).nth(k)
                    }
                }
            }
            NodeKind::Leaf => {
                let dst_tor = self.host_tor[dst];
                only_if_up(dst_tor - self.n_hosts, &mut link_up)
            }
        }
    }

    /// Partition the topology into `n_shards` event cores for the
    /// conservative parallel engine.
    ///
    /// The unit of placement is a ToR subtree — a ToR plus every host
    /// under it — so host↔ToR links are never cut (they are the
    /// shortest-delay, highest-rate links and carry PFC at nanosecond
    /// timescales). ToR subtrees are split contiguously and balanced to
    /// within one ToR; the leaf tier is split the same way, which
    /// maximizes co-sharded ToR↔leaf pairs under the balance constraint
    /// (both splits give their "extra" unit to the lowest shard ids, so
    /// large groups pair with large groups). Only ToR↔leaf links cross
    /// shards; their propagation delay is the engine's lookahead.
    ///
    /// `n_shards` is clamped to `[1, n_tor]` — a shard with no subtree
    /// would own no traffic sources and only add barrier latency.
    pub fn partition(&self, n_shards: usize) -> Vec<ShardSpec> {
        let n = n_shards.clamp(1, self.n_tor);
        let split = |total: usize, s: usize| {
            let base = total / n;
            let extra = total % n;
            let lo = s * base + s.min(extra);
            lo..lo + base + usize::from(s < extra)
        };
        (0..n)
            .map(|s| {
                let mut nodes = Vec::new();
                for t in split(self.n_tor, s) {
                    for h in 0..self.hosts_per_tor {
                        nodes.push(t * self.hosts_per_tor + h);
                    }
                }
                let n_hosts = nodes.len();
                for t in split(self.n_tor, s) {
                    nodes.push(self.n_hosts + t);
                }
                for l in split(self.n_leaf, s) {
                    nodes.push(self.n_hosts + self.n_tor + l);
                }
                ShardSpec { nodes, n_hosts }
            })
            .collect()
    }

    /// Node → shard index for a partition from [`Topology::partition`].
    pub fn shard_map(&self, shards: &[ShardSpec]) -> Vec<u16> {
        let mut map = vec![u16::MAX; self.n_nodes()];
        for (s, spec) in shards.iter().enumerate() {
            for &nd in &spec.nodes {
                debug_assert_eq!(map[nd], u16::MAX, "node {nd} owned twice");
                map[nd] = s as u16;
            }
        }
        assert!(
            map.iter().all(|&m| m != u16::MAX),
            "partition must cover every node"
        );
        map
    }

    /// Conservative lookahead for a sharded run: the minimum propagation
    /// delay across links whose endpoints live in different shards.
    /// `None` when nothing is cut (single shard) — the engine then runs
    /// serially.
    pub fn lookahead(&self, shard_of: &[u16]) -> Option<Nanos> {
        let mut min: Option<Nanos> = None;
        for node in 0..self.n_nodes() {
            for p in &self.ports[node] {
                if shard_of[node] != shard_of[p.peer] {
                    min = Some(min.map_or(p.delay, |m| m.min(p.delay)));
                }
            }
        }
        min
    }

    /// Whether two hosts share a ToR.
    pub fn same_tor(&self, a: NodeId, b: NodeId) -> bool {
        self.host_tor[a] == self.host_tor[b]
    }

    /// Hop count (number of links) of the data path between two hosts.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        if src == dst {
            0
        } else if self.same_tor(src, dst) {
            2
        } else {
            4
        }
    }

    /// Base round-trip delay between two hosts: propagation plus one MTU
    /// serialization per hop on the data path, plus propagation plus one
    /// control-frame serialization per hop for the returning ACK. This is
    /// the Swift-style `Base path delay` (`n_{i,j} · d_{i,j}` refined with
    /// serialization) that normalizes runtime RTT in the utility function.
    pub fn base_rtt(&self, src: NodeId, dst: NodeId, mtu_wire: u32, ctrl_wire: u32) -> Nanos {
        let mut total = 0f64;
        let mut node = src;
        // Forward data path.
        while node != dst {
            let p = self.next_port(node, dst, 0);
            let port = self.ports[node][p];
            total += port.delay as f64 + mtu_wire as f64 / port.bw;
            node = port.peer;
        }
        // Reverse control path (ACK).
        let mut back = dst;
        while back != src {
            let p = self.next_port(back, src, 0);
            let port = self.ports[back][p];
            total += port.delay as f64 + ctrl_wire as f64 / port.bw;
            back = port.peer;
        }
        total.ceil() as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clos() -> Topology {
        // 8 ToR × 16 hosts, 4 leaves: the paper's 128-server topology.
        Topology::two_tier_clos(8, 16, 4, 100.0, 100.0, 5_000)
    }

    #[test]
    fn clos_dimensions() {
        let t = clos();
        assert_eq!(t.n_hosts(), 128);
        assert_eq!(t.n_nodes(), 128 + 8 + 4);
        assert_eq!(t.kind(0), NodeKind::Host);
        assert_eq!(t.kind(128), NodeKind::Tor);
        assert_eq!(t.kind(136), NodeKind::Leaf);
    }

    #[test]
    fn port_counts_match_radix() {
        let t = clos();
        assert_eq!(t.ports(0).len(), 1); // host: one uplink
        assert_eq!(t.ports(128).len(), 16 + 4); // ToR: 16 down + 4 up
        assert_eq!(t.ports(136).len(), 8); // leaf: one port per ToR
    }

    #[test]
    fn peer_port_back_references_are_consistent() {
        let t = clos();
        for node in 0..t.n_nodes() {
            for (i, p) in t.ports(node).iter().enumerate() {
                let back = t.ports(p.peer)[p.peer_port];
                assert_eq!(back.peer, node, "node {node} port {i}");
                assert_eq!(back.peer_port, i);
            }
        }
    }

    #[test]
    fn routes_reach_destination() {
        let t = clos();
        for (src, dst) in [(0usize, 1usize), (0, 17), (5, 127), (120, 3)] {
            let mut node = src;
            let mut hops = 0;
            while node != dst {
                let port = t.next_port(node, dst, 0xDEAD_BEEF);
                node = t.ports(node)[port].peer;
                hops += 1;
                assert!(hops <= 4, "path too long {src}->{dst}");
            }
            assert_eq!(hops, t.hops(src, dst));
        }
    }

    #[test]
    fn intra_tor_is_two_hops_inter_tor_four() {
        let t = clos();
        assert_eq!(t.hops(0, 1), 2); // same ToR
        assert_eq!(t.hops(0, 16), 4); // different ToR
        assert_eq!(t.hops(7, 7), 0);
    }

    #[test]
    fn ecmp_spreads_flows_over_leaves() {
        let t = clos();
        let mut used = std::collections::HashSet::new();
        for h in 0..64u64 {
            used.insert(t.next_port(128, 127, h));
        }
        assert_eq!(used.len(), 4, "all four uplinks should be used");
        // And one hash is always the same path (no reordering).
        assert_eq!(t.next_port(128, 127, 42), t.next_port(128, 127, 42));
    }

    #[test]
    fn masked_ecmp_steers_around_dead_uplinks() {
        let t = clos(); // ToR 128 has down-ports 0..16, uplinks 16..20
        let dead = 17usize;
        let mut used = std::collections::HashSet::new();
        for h in 0..64u64 {
            let p = t
                .next_port_masked(128, 127, h, |_, port| port != dead)
                .unwrap();
            assert_ne!(p, dead, "dead uplink must never be chosen");
            assert!((16..20).contains(&p));
            used.insert(p);
        }
        assert_eq!(used.len(), 3, "flows rehash over the survivors");
        // No live uplink at all: unroutable.
        assert_eq!(t.next_port_masked(128, 127, 0, |_, port| port < 16), None);
        // Single-path segments cannot be routed around.
        assert_eq!(t.next_port_masked(0, 5, 0, |_, _| false), None);
        // With everything up, the mask is a no-op.
        assert_eq!(
            t.next_port_masked(136, 3, 9, |_, _| true),
            Some(t.next_port(136, 3, 9))
        );
    }

    #[test]
    fn base_rtt_scales_with_hops() {
        let t = clos();
        let near = t.base_rtt(0, 1, 1048, 64);
        let far = t.base_rtt(0, 127, 1048, 64);
        assert!(far > near);
        // 4 propagation each way for inter-ToR: at least 8 × 5 µs.
        assert!(far >= 40_000);
        // Symmetric for symmetric topologies.
        assert_eq!(far, t.base_rtt(127, 0, 1048, 64));
    }

    #[test]
    fn gbps_conversion() {
        assert!((gbps(100.0) - 12.5).abs() < 1e-12);
    }

    /// Count links whose endpoints land in different shards.
    fn cut_edges(t: &Topology, map: &[u16]) -> usize {
        let mut cut = 0;
        for node in 0..t.n_nodes() {
            for p in t.ports(node) {
                if map[node] != map[p.peer] {
                    cut += 1;
                }
            }
        }
        cut / 2 // each link seen from both ends
    }

    #[test]
    fn partition_covers_balances_and_keeps_subtrees() {
        // The committed topologies: paper clos, hunt tiny clos, dumbbell.
        let topos = [
            Topology::two_tier_clos(8, 16, 4, 100.0, 100.0, 5_000),
            Topology::two_tier_clos(2, 2, 1, 100.0, 100.0, 1_000),
            Topology::dumbbell(100.0, 1_000),
        ];
        for t in &topos {
            for n in 1..=6 {
                let shards = t.partition(n);
                assert_eq!(shards.len(), n.min(t.n_tor()));
                let map = t.shard_map(&shards); // asserts full coverage
                                                // Host spread across shards ≤ one ToR's worth.
                let hosts: Vec<usize> = shards.iter().map(|s| s.n_hosts).collect();
                let (min_h, max_h) = (hosts.iter().min().unwrap(), hosts.iter().max().unwrap());
                assert!(
                    max_h - min_h <= t.hosts_per_tor,
                    "host imbalance {min_h}..{max_h} on {n} shards"
                );
                // A host always shares its shard with its ToR: host↔ToR
                // links (and so PFC toward hosts) are never cut.
                for h in 0..t.n_hosts() {
                    assert_eq!(map[h], map[t.tor_of(h)], "host {h} split from its ToR");
                }
                // Every cut edge is ToR↔leaf.
                for node in 0..t.n_nodes() {
                    for p in t.ports(node) {
                        if map[node] != map[p.peer] {
                            assert!(
                                t.kind(node) != NodeKind::Host && t.kind(p.peer) != NodeKind::Host
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn partition_cut_is_minimal_for_balanced_leaf_assignments() {
        // Fixing the ToR split, the only freedom is where the leaves go.
        // Brute-force every balanced leaf assignment and check ours cuts
        // no more ToR↔leaf links than the best of them.
        let t = Topology::two_tier_clos(8, 16, 4, 100.0, 100.0, 5_000);
        for n in 2..=4usize {
            let shards = t.partition(n);
            let map = t.shard_map(&shards);
            let ours = cut_edges(&t, &map);
            let tors_of = |s: usize| {
                shards[s]
                    .nodes
                    .iter()
                    .filter(|&&nd| t.kind(nd) == NodeKind::Tor)
                    .count()
            };
            let n_leaf = t.n_leaf();
            let mut best = usize::MAX;
            // Enumerate all n^n_leaf leaf→shard maps, keep balanced ones.
            for code in 0..n.pow(n_leaf as u32) {
                let mut c = code;
                let mut leaves = vec![0usize; n];
                for _ in 0..n_leaf {
                    leaves[c % n] += 1;
                    c /= n;
                }
                if leaves.iter().max().unwrap() - leaves.iter().min().unwrap() > 1 {
                    continue;
                }
                // Cut ToR↔leaf links = total − co-sharded pairs.
                let co: usize = (0..n).map(|s| tors_of(s) * leaves[s]).sum();
                best = best.min(t.n_tor() * n_leaf - co);
            }
            assert_eq!(ours, best, "{n} shards: cut {ours}, best balanced {best}");
        }
    }

    #[test]
    fn partition_clamps_and_looks_ahead() {
        let t = Topology::two_tier_clos(2, 2, 1, 100.0, 100.0, 1_000);
        // More shards than ToRs clamps to n_tor.
        assert_eq!(t.partition(16).len(), 2);
        let map = t.shard_map(&t.partition(2));
        // All links share one delay, so the lookahead is exactly it.
        assert_eq!(t.lookahead(&map), Some(1_000));
        // Single shard: nothing is cut.
        let one = t.shard_map(&t.partition(1));
        assert_eq!(t.lookahead(&one), None);
    }

    #[test]
    fn dumbbell_is_minimal() {
        let t = Topology::dumbbell(100.0, 1_000);
        assert_eq!(t.n_hosts(), 2);
        assert!(t.same_tor(0, 1));
        assert_eq!(t.hops(0, 1), 2);
    }
}
