//! Network topologies: node/port graph, link capacities and static ECMP
//! routing.
//!
//! The paper's simulations use a two-tier CLOS: hosts attach to ToR
//! switches, ToRs attach to leaf (spine) switches, with configurable
//! oversubscription (4:1 in the NS3 evaluation, 1:1 on the testbed).
//! [`Topology::two_tier_clos`] builds exactly that; a dumbbell helper
//! supports unit tests. Beyond the paper, [`TopoSpec`] opens the
//! scenario space to the fabric families the Chameleon artifact sweeps:
//! an oversubscribed three-tier Clos ([`Topology::three_tier_clos`]),
//! a rail-optimized plane (GPU `g` of every server on rail switch `g`),
//! and a mixed-link-speed plane (alternating fast/slow leaf uplinks).
//!
//! Routing is deterministic ECMP: the upward choice at a switch is a
//! hash of the flow id, so one flow always follows one path (no
//! reordering), matching RoCEv2 deployments.

use crate::{Nanos, NodeId};
use serde::{Serialize, Value};

/// Serializable recipe for [`Topology::two_tier_clos`]: the topology as
/// *configuration* rather than as a built graph, so harnesses (the
/// anomaly hunter's genome, replayable corpus cases) can round-trip it
/// through JSON and rebuild an identical topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClosSpec {
    /// Number of ToR switches.
    pub n_tor: usize,
    /// Hosts attached to each ToR.
    pub hosts_per_tor: usize,
    /// Number of leaf (spine) switches.
    pub n_leaf: usize,
    /// Host link rate in Gbps.
    pub host_gbps: f64,
    /// ToR↔leaf link rate in Gbps.
    pub uplink_gbps: f64,
    /// Per-link propagation delay in nanoseconds.
    pub delay_ns: Nanos,
}

/// Validate the fields shared by every spec family. `delay_ns == 0` is
/// rejected because a zero-delay link zeroes [`Topology::lookahead`],
/// which degenerates the conservative parallel engine to lockstep —
/// the same floor `remap_point` clamps to in the hunt minimizer.
fn validate_common(
    what: &str,
    dims: &[(&str, usize)],
    rates: &[f64],
    delay_ns: Nanos,
) -> Result<(), String> {
    for &(name, v) in dims {
        if v == 0 {
            return Err(format!("{what}: `{name}` must be >= 1"));
        }
    }
    for &rate in rates {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(format!("{what}: link rates must be positive"));
        }
    }
    if delay_ns == 0 {
        return Err(format!(
            "{what}: delay_ns must be >= 1 (zero delay gives the parallel engine no lookahead)"
        ));
    }
    Ok(())
}

impl ClosSpec {
    /// Total host count.
    pub fn n_hosts(&self) -> usize {
        self.n_tor * self.hosts_per_tor
    }

    /// Total node count (hosts + ToRs + leaves).
    pub fn n_nodes(&self) -> usize {
        self.n_hosts() + self.n_tor + self.n_leaf
    }

    /// Materialize the spec into a routed [`Topology`].
    pub fn build(&self) -> Topology {
        Topology::two_tier_clos(
            self.n_tor,
            self.hosts_per_tor,
            self.n_leaf,
            self.host_gbps,
            self.uplink_gbps,
            self.delay_ns,
        )
    }

    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let uint = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("ClosSpec: missing `{name}`"))
        };
        let float = |name: &str| {
            v.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("ClosSpec: missing `{name}`"))
        };
        let spec = Self {
            n_tor: uint("n_tor")? as usize,
            hosts_per_tor: uint("hosts_per_tor")? as usize,
            n_leaf: uint("n_leaf")? as usize,
            host_gbps: float("host_gbps")?,
            uplink_gbps: float("uplink_gbps")?,
            delay_ns: uint("delay_ns")?,
        };
        validate_common(
            "ClosSpec",
            &[
                ("n_tor", spec.n_tor),
                ("hosts_per_tor", spec.hosts_per_tor),
                ("n_leaf", spec.n_leaf),
            ],
            &[spec.host_gbps, spec.uplink_gbps],
            spec.delay_ns,
        )?;
        Ok(spec)
    }
}

/// Recipe for [`Topology::three_tier_clos`]: pods of ToRs under
/// aggregation switches, aggregation planes joined by spines. The
/// canonical way to express oversubscription at two levels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ThreeTierSpec {
    /// Number of pods.
    pub n_pod: usize,
    /// ToR switches per pod.
    pub tors_per_pod: usize,
    /// Hosts attached to each ToR.
    pub hosts_per_tor: usize,
    /// Aggregation switches per pod.
    pub aggs_per_pod: usize,
    /// Spines attached to each aggregation plane (total spines =
    /// `aggs_per_pod · spines_per_agg`).
    pub spines_per_agg: usize,
    /// Host link rate in Gbps.
    pub host_gbps: f64,
    /// ToR↔aggregation link rate in Gbps.
    pub agg_gbps: f64,
    /// Aggregation↔spine link rate in Gbps.
    pub spine_gbps: f64,
    /// Per-link propagation delay in nanoseconds.
    pub delay_ns: Nanos,
}

impl ThreeTierSpec {
    /// Total host count.
    pub fn n_hosts(&self) -> usize {
        self.n_pod * self.tors_per_pod * self.hosts_per_tor
    }

    /// Total node count (hosts + ToRs + aggs + spines).
    pub fn n_nodes(&self) -> usize {
        self.n_hosts()
            + self.n_pod * self.tors_per_pod
            + self.n_pod * self.aggs_per_pod
            + self.aggs_per_pod * self.spines_per_agg
    }

    /// Materialize the spec into a routed [`Topology`].
    pub fn build(&self) -> Topology {
        Topology::three_tier_clos(
            self.n_pod,
            self.tors_per_pod,
            self.hosts_per_tor,
            self.aggs_per_pod,
            self.spines_per_agg,
            self.host_gbps,
            self.agg_gbps,
            self.spine_gbps,
            self.delay_ns,
        )
    }

    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let uint = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("ThreeTierSpec: missing `{name}`"))
        };
        let float = |name: &str| {
            v.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("ThreeTierSpec: missing `{name}`"))
        };
        let spec = Self {
            n_pod: uint("n_pod")? as usize,
            tors_per_pod: uint("tors_per_pod")? as usize,
            hosts_per_tor: uint("hosts_per_tor")? as usize,
            aggs_per_pod: uint("aggs_per_pod")? as usize,
            spines_per_agg: uint("spines_per_agg")? as usize,
            host_gbps: float("host_gbps")?,
            agg_gbps: float("agg_gbps")?,
            spine_gbps: float("spine_gbps")?,
            delay_ns: uint("delay_ns")?,
        };
        validate_common(
            "ThreeTierSpec",
            &[
                ("n_pod", spec.n_pod),
                ("tors_per_pod", spec.tors_per_pod),
                ("hosts_per_tor", spec.hosts_per_tor),
                ("aggs_per_pod", spec.aggs_per_pod),
                ("spines_per_agg", spec.spines_per_agg),
            ],
            &[spec.host_gbps, spec.agg_gbps, spec.spine_gbps],
            spec.delay_ns,
        )?;
        Ok(spec)
    }
}

/// Recipe for a rail-optimized plane: GPU `g` of every server attaches
/// to rail switch `g`, so host ids stripe across the "ToR" tier instead
/// of blocking under it. Same two-tier graph shape as [`ClosSpec`],
/// different host↔switch incidence — which is exactly what changes the
/// contention pattern of collectives over consecutive ranks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RailSpec {
    /// Number of rail switches (GPUs per server).
    pub n_rail: usize,
    /// Servers — each contributes one host (GPU) per rail.
    pub n_server: usize,
    /// Spine switches joining the rails.
    pub n_spine: usize,
    /// Host link rate in Gbps.
    pub host_gbps: f64,
    /// Rail↔spine link rate in Gbps.
    pub uplink_gbps: f64,
    /// Per-link propagation delay in nanoseconds.
    pub delay_ns: Nanos,
}

impl RailSpec {
    /// Total host count (`n_server · n_rail` GPUs).
    pub fn n_hosts(&self) -> usize {
        self.n_rail * self.n_server
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.n_hosts() + self.n_rail + self.n_spine
    }

    /// Materialize the spec into a routed [`Topology`].
    pub fn build(&self) -> Topology {
        Topology::rail_optimized(
            self.n_rail,
            self.n_server,
            self.n_spine,
            self.host_gbps,
            self.uplink_gbps,
            self.delay_ns,
        )
    }

    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let uint = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("RailSpec: missing `{name}`"))
        };
        let float = |name: &str| {
            v.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("RailSpec: missing `{name}`"))
        };
        let spec = Self {
            n_rail: uint("n_rail")? as usize,
            n_server: uint("n_server")? as usize,
            n_spine: uint("n_spine")? as usize,
            host_gbps: float("host_gbps")?,
            uplink_gbps: float("uplink_gbps")?,
            delay_ns: uint("delay_ns")?,
        };
        validate_common(
            "RailSpec",
            &[
                ("n_rail", spec.n_rail),
                ("n_server", spec.n_server),
                ("n_spine", spec.n_spine),
            ],
            &[spec.host_gbps, spec.uplink_gbps],
            spec.delay_ns,
        )?;
        Ok(spec)
    }
}

/// Recipe for a mixed-link-speed two-tier Clos: even-indexed leaves get
/// `fast_gbps` uplinks, odd-indexed leaves `slow_gbps`. ECMP still
/// spreads flows over all leaves, so a hash-unlucky flow rides the slow
/// plane — the heterogeneity DCQCN parameter tuning must tolerate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MixedRateSpec {
    /// Number of ToR switches.
    pub n_tor: usize,
    /// Hosts attached to each ToR.
    pub hosts_per_tor: usize,
    /// Number of leaf switches (fast/slow alternating).
    pub n_leaf: usize,
    /// Host link rate in Gbps.
    pub host_gbps: f64,
    /// Uplink rate of even-indexed leaves, Gbps.
    pub fast_gbps: f64,
    /// Uplink rate of odd-indexed leaves, Gbps.
    pub slow_gbps: f64,
    /// Per-link propagation delay in nanoseconds.
    pub delay_ns: Nanos,
}

impl MixedRateSpec {
    /// Total host count.
    pub fn n_hosts(&self) -> usize {
        self.n_tor * self.hosts_per_tor
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.n_hosts() + self.n_tor + self.n_leaf
    }

    /// Materialize the spec into a routed [`Topology`].
    pub fn build(&self) -> Topology {
        let fast = self.fast_gbps;
        let slow = self.slow_gbps;
        Topology::build_two_tier(
            self.n_tor,
            self.hosts_per_tor,
            self.n_leaf,
            self.host_gbps,
            &|l| if l % 2 == 0 { fast } else { slow },
            self.delay_ns,
            false,
        )
    }

    /// Reconstruct from the [`Serialize`] representation.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let uint = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("MixedRateSpec: missing `{name}`"))
        };
        let float = |name: &str| {
            v.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("MixedRateSpec: missing `{name}`"))
        };
        let spec = Self {
            n_tor: uint("n_tor")? as usize,
            hosts_per_tor: uint("hosts_per_tor")? as usize,
            n_leaf: uint("n_leaf")? as usize,
            host_gbps: float("host_gbps")?,
            fast_gbps: float("fast_gbps")?,
            slow_gbps: float("slow_gbps")?,
            delay_ns: uint("delay_ns")?,
        };
        validate_common(
            "MixedRateSpec",
            &[
                ("n_tor", spec.n_tor),
                ("hosts_per_tor", spec.hosts_per_tor),
                ("n_leaf", spec.n_leaf),
            ],
            &[spec.host_gbps, spec.fast_gbps, spec.slow_gbps],
            spec.delay_ns,
        )?;
        Ok(spec)
    }
}

/// A topology *family* plus its dimensions: everything needed to build,
/// route and partition a fabric, round-trippable through JSON like
/// [`ClosSpec`] (which it embeds as its first family).
///
/// Serialized form is the family spec's fields plus a `"family"` tag;
/// an object *without* a tag parses as a legacy untagged [`ClosSpec`],
/// so corpus files written before families existed keep loading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopoSpec {
    /// The paper's two-tier Clos ([`ClosSpec`]).
    TwoTier(ClosSpec),
    /// Oversubscribed three-tier Clos ([`ThreeTierSpec`]).
    ThreeTier(ThreeTierSpec),
    /// Rail-optimized GPU plane ([`RailSpec`]).
    Rail(RailSpec),
    /// Two-tier Clos with alternating fast/slow leaf planes
    /// ([`MixedRateSpec`]).
    MixedRate(MixedRateSpec),
}

impl Serialize for TopoSpec {
    fn serialize_value(&self) -> Value {
        let tagged = |family: &str, v: Value| {
            let mut entries = vec![("family".to_string(), Value::String(family.to_string()))];
            if let Value::Object(fields) = v {
                entries.extend(fields);
            }
            Value::Object(entries)
        };
        match self {
            Self::TwoTier(s) => tagged("two_tier", s.serialize_value()),
            Self::ThreeTier(s) => tagged("three_tier", s.serialize_value()),
            Self::Rail(s) => tagged("rail", s.serialize_value()),
            Self::MixedRate(s) => tagged("mixed_rate", s.serialize_value()),
        }
    }
}

impl TopoSpec {
    /// Total host count.
    pub fn n_hosts(&self) -> usize {
        match self {
            Self::TwoTier(s) => s.n_hosts(),
            Self::ThreeTier(s) => s.n_hosts(),
            Self::Rail(s) => s.n_hosts(),
            Self::MixedRate(s) => s.n_hosts(),
        }
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        match self {
            Self::TwoTier(s) => s.n_nodes(),
            Self::ThreeTier(s) => s.n_nodes(),
            Self::Rail(s) => s.n_nodes(),
            Self::MixedRate(s) => s.n_nodes(),
        }
    }

    /// The family tag used in the serialized form.
    pub fn family(&self) -> &'static str {
        match self {
            Self::TwoTier(_) => "two_tier",
            Self::ThreeTier(_) => "three_tier",
            Self::Rail(_) => "rail",
            Self::MixedRate(_) => "mixed_rate",
        }
    }

    /// Per-link propagation delay (uniform within every family).
    pub fn delay_ns(&self) -> Nanos {
        match self {
            Self::TwoTier(s) => s.delay_ns,
            Self::ThreeTier(s) => s.delay_ns,
            Self::Rail(s) => s.delay_ns,
            Self::MixedRate(s) => s.delay_ns,
        }
    }

    /// The embedded [`ClosSpec`], when this is the two-tier family.
    pub fn as_two_tier(&self) -> Option<&ClosSpec> {
        match self {
            Self::TwoTier(s) => Some(s),
            _ => None,
        }
    }

    /// Collapse to a host-count-preserving two-tier Clos: the
    /// minimizer's family shrink (a counterexample that survives on
    /// the plain family is strictly simpler to reason about).
    pub fn to_two_tier(&self) -> ClosSpec {
        match *self {
            Self::TwoTier(s) => s,
            Self::ThreeTier(s) => ClosSpec {
                n_tor: s.n_pod * s.tors_per_pod,
                hosts_per_tor: s.hosts_per_tor,
                n_leaf: s.aggs_per_pod,
                host_gbps: s.host_gbps,
                uplink_gbps: s.agg_gbps,
                delay_ns: s.delay_ns,
            },
            Self::Rail(s) => ClosSpec {
                n_tor: s.n_rail,
                hosts_per_tor: s.n_server,
                n_leaf: s.n_spine,
                host_gbps: s.host_gbps,
                uplink_gbps: s.uplink_gbps,
                delay_ns: s.delay_ns,
            },
            Self::MixedRate(s) => ClosSpec {
                n_tor: s.n_tor,
                hosts_per_tor: s.hosts_per_tor,
                n_leaf: s.n_leaf,
                host_gbps: s.host_gbps,
                uplink_gbps: s.fast_gbps,
                delay_ns: s.delay_ns,
            },
        }
    }

    /// Materialize into a routed [`Topology`].
    pub fn build(&self) -> Topology {
        match self {
            Self::TwoTier(s) => s.build(),
            Self::ThreeTier(s) => s.build(),
            Self::Rail(s) => s.build(),
            Self::MixedRate(s) => s.build(),
        }
    }

    /// Reconstruct from the [`Serialize`] representation. Objects with
    /// no `"family"` tag parse as legacy untagged [`ClosSpec`]s.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        match v.get("family").and_then(Value::as_str) {
            None | Some("two_tier") => ClosSpec::from_value(v).map(Self::TwoTier),
            Some("three_tier") => ThreeTierSpec::from_value(v).map(Self::ThreeTier),
            Some("rail") => RailSpec::from_value(v).map(Self::Rail),
            Some("mixed_rate") => MixedRateSpec::from_value(v).map(Self::MixedRate),
            Some(other) => Err(format!("TopoSpec: unknown family `{other}`")),
        }
    }
}

/// One shard of a conservative-parallel partition: the node ids one
/// event core owns. Produced by [`Topology::partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Owned node ids: this shard's hosts, then their ToRs, then its
    /// slice of the upper tiers.
    pub nodes: Vec<NodeId>,
    /// How many of `nodes` are hosts.
    pub n_hosts: usize,
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A server with one RNIC port.
    Host,
    /// A top-of-rack switch (runs the measurement sketch).
    Tor,
    /// A leaf/aggregation switch (no sketch; Keypoint 1 makes ToR-only
    /// sketching sufficient since every path crosses a ToR first).
    Leaf,
    /// A three-tier core switch above the aggregation tier (no sketch,
    /// like [`NodeKind::Leaf`]).
    Spine,
}

/// One directed attachment point of a node.
#[derive(Debug, Clone, Copy)]
pub struct Port {
    /// The node on the other end of the link.
    pub peer: NodeId,
    /// The index of the corresponding port on `peer` (needed to address
    /// PFC pause frames at the correct upstream egress queue).
    pub peer_port: usize,
    /// Link bandwidth in bytes per nanosecond (100 Gbps = 12.5 B/ns).
    pub bw: f64,
    /// Propagation delay in nanoseconds.
    pub delay: Nanos,
}

/// Tier structure of a built topology, driving the per-kind routing
/// decisions in [`Topology::next_port_masked`].
#[derive(Debug, Clone, Copy)]
enum Tiers {
    /// Hosts → ToRs → leaves.
    Two,
    /// Hosts → ToRs → pod aggregation → spines.
    Three {
        tors_per_pod: usize,
        aggs_per_pod: usize,
        spines_per_agg: usize,
    },
}

/// An immutable node/port graph plus routing state.
#[derive(Debug, Clone)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    ports: Vec<Vec<Port>>,
    /// For each host, its ToR node id.
    host_tor: Vec<NodeId>,
    n_hosts: usize,
    hosts_per_tor: usize,
    n_tor: usize,
    n_leaf: usize,
    n_spine: usize,
    tiers: Tiers,
}

/// Convert Gbps to the internal bytes-per-nanosecond unit.
pub fn gbps(v: f64) -> f64 {
    v * 1e9 / 8.0 / 1e9
}

impl Topology {
    /// Build a two-tier CLOS.
    ///
    /// * `n_tor` ToR switches with `hosts_per_tor` hosts each;
    /// * `n_leaf` leaf switches, each connected to every ToR;
    /// * host links at `host_gbps`, ToR↔leaf links at `uplink_gbps`;
    /// * every link has propagation `delay` (paper: 5 µs NS3 / 1 µs LAN).
    ///
    /// Node ids: hosts `0..H`, ToRs `H..H+n_tor`, leaves after that.
    pub fn two_tier_clos(
        n_tor: usize,
        hosts_per_tor: usize,
        n_leaf: usize,
        host_gbps: f64,
        uplink_gbps: f64,
        delay: Nanos,
    ) -> Self {
        Self::build_two_tier(
            n_tor,
            hosts_per_tor,
            n_leaf,
            host_gbps,
            &|_| uplink_gbps,
            delay,
            false,
        )
    }

    /// Build a rail-optimized plane: `n_rail` rail switches, `n_server`
    /// servers, host `h` (GPU `h mod n_rail` of server `h / n_rail`)
    /// attaches to rail switch `h mod n_rail`. Graph shape matches the
    /// two-tier Clos (rails play the ToR role, `n_spine` spines the
    /// leaf role); only the host↔switch incidence differs.
    pub fn rail_optimized(
        n_rail: usize,
        n_server: usize,
        n_spine: usize,
        host_gbps: f64,
        uplink_gbps: f64,
        delay: Nanos,
    ) -> Self {
        Self::build_two_tier(
            n_rail,
            n_server,
            n_spine,
            host_gbps,
            &|_| uplink_gbps,
            delay,
            true,
        )
    }

    /// Shared two-tier builder: `uplink_gbps_of(l)` sets the rate of
    /// leaf `l`'s plane (mixed-speed fabrics), `striped` switches the
    /// host↔ToR incidence from blocked (`t·hosts_per_tor + h`) to
    /// rail-striped (`h·n_tor + t`).
    pub(crate) fn build_two_tier(
        n_tor: usize,
        hosts_per_tor: usize,
        n_leaf: usize,
        host_gbps: f64,
        uplink_gbps_of: &dyn Fn(usize) -> f64,
        delay: Nanos,
        striped: bool,
    ) -> Self {
        assert!(n_tor >= 1 && hosts_per_tor >= 1 && n_leaf >= 1);
        let n_hosts = n_tor * hosts_per_tor;
        let n_nodes = n_hosts + n_tor + n_leaf;
        let mut kinds = Vec::with_capacity(n_nodes);
        kinds.extend(std::iter::repeat_n(NodeKind::Host, n_hosts));
        kinds.extend(std::iter::repeat_n(NodeKind::Tor, n_tor));
        kinds.extend(std::iter::repeat_n(NodeKind::Leaf, n_leaf));
        let mut ports: Vec<Vec<Port>> = vec![Vec::new(); n_nodes];
        let mut host_tor = vec![0usize; n_hosts];

        let tor_id = |t: usize| n_hosts + t;
        let leaf_id = |l: usize| n_hosts + n_tor + l;
        let host_bw = gbps(host_gbps);

        // Host <-> ToR links. ToR-relative index h is the down-port
        // toward its h-th host; host port 0 is its uplink.
        for t in 0..n_tor {
            for h in 0..hosts_per_tor {
                let host = if striped {
                    h * n_tor + t
                } else {
                    t * hosts_per_tor + h
                };
                host_tor[host] = tor_id(t);
                let tor_port = h; // down ports come first on a ToR
                ports[host].push(Port {
                    peer: tor_id(t),
                    peer_port: tor_port,
                    bw: host_bw,
                    delay,
                });
                ports[tor_id(t)].push(Port {
                    peer: host,
                    peer_port: 0,
                    bw: host_bw,
                    delay,
                });
            }
        }
        // ToR <-> leaf links. ToR up-port for leaf l is hosts_per_tor + l;
        // leaf port for ToR t is t.
        for t in 0..n_tor {
            for l in 0..n_leaf {
                ports[tor_id(t)].push(Port {
                    peer: leaf_id(l),
                    peer_port: t,
                    bw: gbps(uplink_gbps_of(l)),
                    delay,
                });
            }
        }
        for l in 0..n_leaf {
            for t in 0..n_tor {
                ports[leaf_id(l)].push(Port {
                    peer: tor_id(t),
                    peer_port: hosts_per_tor + l,
                    bw: gbps(uplink_gbps_of(l)),
                    delay,
                });
            }
        }

        Self {
            kinds,
            ports,
            host_tor,
            n_hosts,
            hosts_per_tor,
            n_tor,
            n_leaf,
            n_spine: 0,
            tiers: Tiers::Two,
        }
    }

    /// Build a three-tier CLOS of `n_pod` pods.
    ///
    /// Each pod has `tors_per_pod` ToRs (with `hosts_per_tor` hosts
    /// each) fully meshed to `aggs_per_pod` aggregation switches; each
    /// aggregation plane `a` connects to its own `spines_per_agg`
    /// spines, and every spine reaches one aggregation switch per pod
    /// (fat-tree plane structure). Oversubscription falls out of the
    /// rate ratios: `hosts_per_tor·host_gbps : aggs_per_pod·agg_gbps`
    /// at the ToR and `tors_per_pod·agg_gbps : spines_per_agg·
    /// spine_gbps` at the aggregation tier.
    ///
    /// Node ids: hosts (pod-major), ToRs (pod-major), aggregation
    /// switches (pod-major, kind [`NodeKind::Leaf`]), spines
    /// (plane-major, kind [`NodeKind::Spine`]).
    #[allow(clippy::too_many_arguments)]
    pub fn three_tier_clos(
        n_pod: usize,
        tors_per_pod: usize,
        hosts_per_tor: usize,
        aggs_per_pod: usize,
        spines_per_agg: usize,
        host_gbps: f64,
        agg_gbps: f64,
        spine_gbps: f64,
        delay: Nanos,
    ) -> Self {
        assert!(
            n_pod >= 1
                && tors_per_pod >= 1
                && hosts_per_tor >= 1
                && aggs_per_pod >= 1
                && spines_per_agg >= 1
        );
        let n_tor = n_pod * tors_per_pod;
        let n_leaf = n_pod * aggs_per_pod;
        let n_spine = aggs_per_pod * spines_per_agg;
        let n_hosts = n_tor * hosts_per_tor;
        let n_nodes = n_hosts + n_tor + n_leaf + n_spine;
        let mut kinds = Vec::with_capacity(n_nodes);
        kinds.extend(std::iter::repeat_n(NodeKind::Host, n_hosts));
        kinds.extend(std::iter::repeat_n(NodeKind::Tor, n_tor));
        kinds.extend(std::iter::repeat_n(NodeKind::Leaf, n_leaf));
        kinds.extend(std::iter::repeat_n(NodeKind::Spine, n_spine));
        let mut ports: Vec<Vec<Port>> = vec![Vec::new(); n_nodes];
        let mut host_tor = vec![0usize; n_hosts];

        let tor_id = |t: usize| n_hosts + t;
        let agg_id = |p: usize, a: usize| n_hosts + n_tor + p * aggs_per_pod + a;
        let spine_id = |a: usize, j: usize| n_hosts + n_tor + n_leaf + a * spines_per_agg + j;
        let host_bw = gbps(host_gbps);
        let agg_bw = gbps(agg_gbps);
        let spine_bw = gbps(spine_gbps);

        // Host <-> ToR: identical layout to the two-tier builder.
        for t in 0..n_tor {
            for h in 0..hosts_per_tor {
                let host = t * hosts_per_tor + h;
                host_tor[host] = tor_id(t);
                ports[host].push(Port {
                    peer: tor_id(t),
                    peer_port: h,
                    bw: host_bw,
                    delay,
                });
                ports[tor_id(t)].push(Port {
                    peer: host,
                    peer_port: 0,
                    bw: host_bw,
                    delay,
                });
            }
        }
        // ToR <-> pod aggregation. ToR up-port for agg a is
        // hosts_per_tor + a; agg down-port for its pod's ToR tt is tt.
        for p in 0..n_pod {
            for tt in 0..tors_per_pod {
                let t = p * tors_per_pod + tt;
                for a in 0..aggs_per_pod {
                    ports[tor_id(t)].push(Port {
                        peer: agg_id(p, a),
                        peer_port: tt,
                        bw: agg_bw,
                        delay,
                    });
                }
            }
            for a in 0..aggs_per_pod {
                for tt in 0..tors_per_pod {
                    let t = p * tors_per_pod + tt;
                    ports[agg_id(p, a)].push(Port {
                        peer: tor_id(t),
                        peer_port: hosts_per_tor + a,
                        bw: agg_bw,
                        delay,
                    });
                }
            }
        }
        // Aggregation <-> spine planes. Agg (p, a) up-port for its j-th
        // spine is tors_per_pod + j; spine (a, j)'s port for pod p is p.
        for p in 0..n_pod {
            for a in 0..aggs_per_pod {
                for j in 0..spines_per_agg {
                    ports[agg_id(p, a)].push(Port {
                        peer: spine_id(a, j),
                        peer_port: p,
                        bw: spine_bw,
                        delay,
                    });
                }
            }
        }
        for a in 0..aggs_per_pod {
            for j in 0..spines_per_agg {
                for p in 0..n_pod {
                    ports[spine_id(a, j)].push(Port {
                        peer: agg_id(p, a),
                        peer_port: tors_per_pod + j,
                        bw: spine_bw,
                        delay,
                    });
                }
            }
        }

        Self {
            kinds,
            ports,
            host_tor,
            n_hosts,
            hosts_per_tor,
            n_tor,
            n_leaf,
            n_spine,
            tiers: Tiers::Three {
                tors_per_pod,
                aggs_per_pod,
                spines_per_agg,
            },
        }
    }

    /// Two hosts, one switch ("ToR"), for unit tests: host0 -- sw -- host1.
    pub fn dumbbell(host_gbps: f64, delay: Nanos) -> Self {
        Self::two_tier_clos(1, 2, 1, host_gbps, host_gbps, delay)
    }

    /// Number of nodes of all kinds.
    pub fn n_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.n_hosts
    }

    /// Number of ToR switches.
    pub fn n_tor(&self) -> usize {
        self.n_tor
    }

    /// Number of leaf (or aggregation) switches.
    pub fn n_leaf(&self) -> usize {
        self.n_leaf
    }

    /// Number of spine switches (three-tier fabrics only; 0 otherwise).
    pub fn n_spine(&self) -> usize {
        self.n_spine
    }

    /// Kind of `node`.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node]
    }

    /// Ports of `node`.
    pub fn ports(&self, node: NodeId) -> &[Port] {
        &self.ports[node]
    }

    /// The ToR a host hangs off.
    pub fn tor_of(&self, host: NodeId) -> NodeId {
        self.host_tor[host]
    }

    /// Egress port on `node` toward destination host `dst`, using
    /// `flow_hash` to pick among ECMP uplinks. Panics if `node` is `dst`.
    pub fn next_port(&self, node: NodeId, dst: NodeId, flow_hash: u64) -> usize {
        self.next_port_masked(node, dst, flow_hash, |_, _| true)
            .expect("all links up")
    }

    /// ECMP choice over `range` of `node`'s ports, restricted to live
    /// links. Two passes (count, then select the k-th live port) keep
    /// this allocation-free: it runs once per packet per switch hop, so
    /// a heap allocation here dominates the routing cost. May query
    /// `link_up` twice per port.
    fn ecmp(
        &self,
        node: NodeId,
        range: std::ops::Range<usize>,
        flow_hash: u64,
        link_up: &mut dyn FnMut(NodeId, usize) -> bool,
    ) -> Option<usize> {
        let n_alive = range.clone().filter(|&p| link_up(node, p)).count();
        if n_alive == 0 {
            None
        } else {
            let k = flow_hash as usize % n_alive;
            range.filter(|&p| link_up(node, p)).nth(k)
        }
    }

    /// Liveness-aware routing: like [`Topology::next_port`] but only
    /// considers ports for which `link_up(node, port)` holds. A switch
    /// with a dead uplink rehashes its ECMP choice over the surviving
    /// uplinks, steering flows around the failure; returns `None` when
    /// no live port reaches `dst` (single-path segments — host uplinks,
    /// down-ports on any tier — cannot be routed around).
    pub fn next_port_masked(
        &self,
        node: NodeId,
        dst: NodeId,
        flow_hash: u64,
        mut link_up: impl FnMut(NodeId, usize) -> bool,
    ) -> Option<usize> {
        assert!(dst < self.n_hosts, "destination must be a host");
        let only_if_up = |port: usize, link_up: &mut dyn FnMut(NodeId, usize) -> bool| {
            if link_up(node, port) {
                Some(port)
            } else {
                None
            }
        };
        match self.kinds[node] {
            NodeKind::Host => only_if_up(0, &mut link_up),
            NodeKind::Tor => {
                if self.host_tor[dst] == node {
                    // Down-port to the local host: single path. The
                    // host's uplink records which of our down-ports it
                    // hangs off, for any host↔ToR incidence.
                    only_if_up(self.ports[dst][0].peer_port, &mut link_up)
                } else {
                    // ECMP over live uplinks (everything after the
                    // down-ports, whatever the upper tier is).
                    let uplinks = self.hosts_per_tor..self.ports[node].len();
                    self.ecmp(node, uplinks, flow_hash, &mut link_up)
                }
            }
            NodeKind::Leaf => {
                let dst_tor = self.host_tor[dst] - self.n_hosts;
                match self.tiers {
                    // Two-tier leaf: one down-port per ToR, in ToR order.
                    Tiers::Two => only_if_up(dst_tor, &mut link_up),
                    Tiers::Three {
                        tors_per_pod,
                        aggs_per_pod,
                        spines_per_agg,
                    } => {
                        let agg_index = node - self.n_hosts - self.n_tor;
                        if dst_tor / tors_per_pod == agg_index / aggs_per_pod {
                            // Same pod: down to the ToR's local index.
                            only_if_up(dst_tor % tors_per_pod, &mut link_up)
                        } else {
                            // Cross-pod: ECMP up to this plane's spines.
                            let up = tors_per_pod..tors_per_pod + spines_per_agg;
                            self.ecmp(node, up, flow_hash, &mut link_up)
                        }
                    }
                }
            }
            NodeKind::Spine => {
                // One down-port per pod, in pod order.
                let dst_tor = self.host_tor[dst] - self.n_hosts;
                let tors_per_pod = match self.tiers {
                    Tiers::Three { tors_per_pod, .. } => tors_per_pod,
                    Tiers::Two => unreachable!("two-tier fabrics have no spines"),
                };
                only_if_up(dst_tor / tors_per_pod, &mut link_up)
            }
        }
    }

    /// Partition the topology into `n_shards` event cores for the
    /// conservative parallel engine.
    ///
    /// The unit of placement is a ToR subtree — a ToR plus every host
    /// under it — so host↔ToR links are never cut (they are the
    /// shortest-delay, highest-rate links and carry PFC at nanosecond
    /// timescales). ToR subtrees are split contiguously and balanced to
    /// within one ToR; each upper tier (leaves/aggs, then spines) is
    /// split the same way, which maximizes co-sharded ToR↔leaf pairs
    /// under the balance constraint (both splits give their "extra"
    /// unit to the lowest shard ids, so large groups pair with large
    /// groups). Only switch↔switch links cross shards; their
    /// propagation delay is the engine's lookahead.
    ///
    /// `n_shards` is clamped to `[1, n_tor]` — a shard with no subtree
    /// would own no traffic sources and only add barrier latency.
    pub fn partition(&self, n_shards: usize) -> Vec<ShardSpec> {
        let n = n_shards.clamp(1, self.n_tor);
        let split = |total: usize, s: usize| {
            let base = total / n;
            let extra = total % n;
            let lo = s * base + s.min(extra);
            lo..lo + base + usize::from(s < extra)
        };
        // Hosts grouped under their ToR, ascending host id within each
        // group (identical to the old arithmetic for blocked layouts,
        // and correct for rail-striped ones).
        let mut tor_hosts: Vec<Vec<NodeId>> = vec![Vec::new(); self.n_tor];
        for h in 0..self.n_hosts {
            tor_hosts[self.host_tor[h] - self.n_hosts].push(h);
        }
        (0..n)
            .map(|s| {
                let mut nodes = Vec::new();
                for t in split(self.n_tor, s) {
                    nodes.extend_from_slice(&tor_hosts[t]);
                }
                let n_hosts = nodes.len();
                for t in split(self.n_tor, s) {
                    nodes.push(self.n_hosts + t);
                }
                for l in split(self.n_leaf, s) {
                    nodes.push(self.n_hosts + self.n_tor + l);
                }
                for sp in split(self.n_spine, s) {
                    nodes.push(self.n_hosts + self.n_tor + self.n_leaf + sp);
                }
                ShardSpec { nodes, n_hosts }
            })
            .collect()
    }

    /// Node → shard index for a partition from [`Topology::partition`].
    pub fn shard_map(&self, shards: &[ShardSpec]) -> Vec<u16> {
        let mut map = vec![u16::MAX; self.n_nodes()];
        for (s, spec) in shards.iter().enumerate() {
            for &nd in &spec.nodes {
                debug_assert_eq!(map[nd], u16::MAX, "node {nd} owned twice");
                map[nd] = s as u16;
            }
        }
        assert!(
            map.iter().all(|&m| m != u16::MAX),
            "partition must cover every node"
        );
        map
    }

    /// Conservative lookahead for a sharded run: the minimum propagation
    /// delay across links whose endpoints live in different shards.
    /// `None` when nothing is cut (single shard) — the engine then runs
    /// serially.
    pub fn lookahead(&self, shard_of: &[u16]) -> Option<Nanos> {
        let mut min: Option<Nanos> = None;
        for node in 0..self.n_nodes() {
            for p in &self.ports[node] {
                if shard_of[node] != shard_of[p.peer] {
                    min = Some(min.map_or(p.delay, |m| m.min(p.delay)));
                }
            }
        }
        min
    }

    /// Whether two hosts share a ToR.
    pub fn same_tor(&self, a: NodeId, b: NodeId) -> bool {
        self.host_tor[a] == self.host_tor[b]
    }

    /// Hop count (number of links) of the data path between two hosts,
    /// by walking the route (2 intra-ToR, 4 across a two-tier fabric or
    /// within a pod, 6 across pods).
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        if src == dst {
            return 0;
        }
        let mut node = src;
        let mut hops = 0;
        while node != dst {
            let p = self.next_port(node, dst, 0);
            node = self.ports[node][p].peer;
            hops += 1;
            assert!(hops <= 8, "routing loop {src}->{dst}");
        }
        hops
    }

    /// Base round-trip delay between two hosts: propagation plus one MTU
    /// serialization per hop on the data path, plus propagation plus one
    /// control-frame serialization per hop for the returning ACK. This is
    /// the Swift-style `Base path delay` (`n_{i,j} · d_{i,j}` refined with
    /// serialization) that normalizes runtime RTT in the utility function.
    pub fn base_rtt(&self, src: NodeId, dst: NodeId, mtu_wire: u32, ctrl_wire: u32) -> Nanos {
        let mut total = 0f64;
        let mut node = src;
        // Forward data path.
        while node != dst {
            let p = self.next_port(node, dst, 0);
            let port = self.ports[node][p];
            total += port.delay as f64 + mtu_wire as f64 / port.bw;
            node = port.peer;
        }
        // Reverse control path (ACK).
        let mut back = dst;
        while back != src {
            let p = self.next_port(back, src, 0);
            let port = self.ports[back][p];
            total += port.delay as f64 + ctrl_wire as f64 / port.bw;
            back = port.peer;
        }
        total.ceil() as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clos() -> Topology {
        // 8 ToR × 16 hosts, 4 leaves: the paper's 128-server topology.
        Topology::two_tier_clos(8, 16, 4, 100.0, 100.0, 5_000)
    }

    #[test]
    fn clos_dimensions() {
        let t = clos();
        assert_eq!(t.n_hosts(), 128);
        assert_eq!(t.n_nodes(), 128 + 8 + 4);
        assert_eq!(t.kind(0), NodeKind::Host);
        assert_eq!(t.kind(128), NodeKind::Tor);
        assert_eq!(t.kind(136), NodeKind::Leaf);
        assert_eq!(t.n_spine(), 0);
    }

    #[test]
    fn port_counts_match_radix() {
        let t = clos();
        assert_eq!(t.ports(0).len(), 1); // host: one uplink
        assert_eq!(t.ports(128).len(), 16 + 4); // ToR: 16 down + 4 up
        assert_eq!(t.ports(136).len(), 8); // leaf: one port per ToR
    }

    #[test]
    fn peer_port_back_references_are_consistent() {
        let t = clos();
        for node in 0..t.n_nodes() {
            for (i, p) in t.ports(node).iter().enumerate() {
                let back = t.ports(p.peer)[p.peer_port];
                assert_eq!(back.peer, node, "node {node} port {i}");
                assert_eq!(back.peer_port, i);
            }
        }
    }

    #[test]
    fn routes_reach_destination() {
        let t = clos();
        for (src, dst) in [(0usize, 1usize), (0, 17), (5, 127), (120, 3)] {
            let mut node = src;
            let mut hops = 0;
            while node != dst {
                let port = t.next_port(node, dst, 0xDEAD_BEEF);
                node = t.ports(node)[port].peer;
                hops += 1;
                assert!(hops <= 4, "path too long {src}->{dst}");
            }
            assert_eq!(hops, t.hops(src, dst));
        }
    }

    #[test]
    fn intra_tor_is_two_hops_inter_tor_four() {
        let t = clos();
        assert_eq!(t.hops(0, 1), 2); // same ToR
        assert_eq!(t.hops(0, 16), 4); // different ToR
        assert_eq!(t.hops(7, 7), 0);
    }

    #[test]
    fn ecmp_spreads_flows_over_leaves() {
        let t = clos();
        let mut used = std::collections::HashSet::new();
        for h in 0..64u64 {
            used.insert(t.next_port(128, 127, h));
        }
        assert_eq!(used.len(), 4, "all four uplinks should be used");
        // And one hash is always the same path (no reordering).
        assert_eq!(t.next_port(128, 127, 42), t.next_port(128, 127, 42));
    }

    #[test]
    fn masked_ecmp_steers_around_dead_uplinks() {
        let t = clos(); // ToR 128 has down-ports 0..16, uplinks 16..20
        let dead = 17usize;
        let mut used = std::collections::HashSet::new();
        for h in 0..64u64 {
            let p = t
                .next_port_masked(128, 127, h, |_, port| port != dead)
                .unwrap();
            assert_ne!(p, dead, "dead uplink must never be chosen");
            assert!((16..20).contains(&p));
            used.insert(p);
        }
        assert_eq!(used.len(), 3, "flows rehash over the survivors");
        // No live uplink at all: unroutable.
        assert_eq!(t.next_port_masked(128, 127, 0, |_, port| port < 16), None);
        // Single-path segments cannot be routed around.
        assert_eq!(t.next_port_masked(0, 5, 0, |_, _| false), None);
        // With everything up, the mask is a no-op.
        assert_eq!(
            t.next_port_masked(136, 3, 9, |_, _| true),
            Some(t.next_port(136, 3, 9))
        );
    }

    #[test]
    fn base_rtt_scales_with_hops() {
        let t = clos();
        let near = t.base_rtt(0, 1, 1048, 64);
        let far = t.base_rtt(0, 127, 1048, 64);
        assert!(far > near);
        // 4 propagation each way for inter-ToR: at least 8 × 5 µs.
        assert!(far >= 40_000);
        // Symmetric for symmetric topologies.
        assert_eq!(far, t.base_rtt(127, 0, 1048, 64));
    }

    #[test]
    fn gbps_conversion() {
        assert!((gbps(100.0) - 12.5).abs() < 1e-12);
    }

    /// Count links whose endpoints land in different shards.
    fn cut_edges(t: &Topology, map: &[u16]) -> usize {
        let mut cut = 0;
        for node in 0..t.n_nodes() {
            for p in t.ports(node) {
                if map[node] != map[p.peer] {
                    cut += 1;
                }
            }
        }
        cut / 2 // each link seen from both ends
    }

    #[test]
    fn partition_covers_balances_and_keeps_subtrees() {
        // The committed topologies: paper clos, hunt tiny clos, dumbbell,
        // plus one of each new family.
        let topos = [
            Topology::two_tier_clos(8, 16, 4, 100.0, 100.0, 5_000),
            Topology::two_tier_clos(2, 2, 1, 100.0, 100.0, 1_000),
            Topology::dumbbell(100.0, 1_000),
            Topology::three_tier_clos(2, 2, 4, 2, 2, 100.0, 100.0, 400.0, 5_000),
            Topology::rail_optimized(4, 4, 2, 100.0, 200.0, 1_000),
            MixedRateSpec {
                n_tor: 4,
                hosts_per_tor: 4,
                n_leaf: 2,
                host_gbps: 100.0,
                fast_gbps: 100.0,
                slow_gbps: 25.0,
                delay_ns: 1_000,
            }
            .build(),
        ];
        for t in &topos {
            for n in 1..=6 {
                let shards = t.partition(n);
                assert_eq!(shards.len(), n.min(t.n_tor()));
                let map = t.shard_map(&shards); // asserts full coverage
                                                // Host spread across shards ≤ one ToR's worth.
                let hosts: Vec<usize> = shards.iter().map(|s| s.n_hosts).collect();
                let (min_h, max_h) = (hosts.iter().min().unwrap(), hosts.iter().max().unwrap());
                assert!(
                    max_h - min_h <= t.hosts_per_tor,
                    "host imbalance {min_h}..{max_h} on {n} shards"
                );
                // A host always shares its shard with its ToR: host↔ToR
                // links (and so PFC toward hosts) are never cut.
                for h in 0..t.n_hosts() {
                    assert_eq!(map[h], map[t.tor_of(h)], "host {h} split from its ToR");
                }
                // Every cut edge is switch↔switch.
                for node in 0..t.n_nodes() {
                    for p in t.ports(node) {
                        if map[node] != map[p.peer] {
                            assert!(
                                t.kind(node) != NodeKind::Host && t.kind(p.peer) != NodeKind::Host
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn partition_cut_is_minimal_for_balanced_leaf_assignments() {
        // Fixing the ToR split, the only freedom is where the leaves go.
        // Brute-force every balanced leaf assignment and check ours cuts
        // no more ToR↔leaf links than the best of them.
        let t = Topology::two_tier_clos(8, 16, 4, 100.0, 100.0, 5_000);
        for n in 2..=4usize {
            let shards = t.partition(n);
            let map = t.shard_map(&shards);
            let ours = cut_edges(&t, &map);
            let tors_of = |s: usize| {
                shards[s]
                    .nodes
                    .iter()
                    .filter(|&&nd| t.kind(nd) == NodeKind::Tor)
                    .count()
            };
            let n_leaf = t.n_leaf();
            let mut best = usize::MAX;
            // Enumerate all n^n_leaf leaf→shard maps, keep balanced ones.
            for code in 0..n.pow(n_leaf as u32) {
                let mut c = code;
                let mut leaves = vec![0usize; n];
                for _ in 0..n_leaf {
                    leaves[c % n] += 1;
                    c /= n;
                }
                if leaves.iter().max().unwrap() - leaves.iter().min().unwrap() > 1 {
                    continue;
                }
                // Cut ToR↔leaf links = total − co-sharded pairs.
                let co: usize = (0..n).map(|s| tors_of(s) * leaves[s]).sum();
                best = best.min(t.n_tor() * n_leaf - co);
            }
            assert_eq!(ours, best, "{n} shards: cut {ours}, best balanced {best}");
        }
    }

    #[test]
    fn partition_clamps_and_looks_ahead() {
        let t = Topology::two_tier_clos(2, 2, 1, 100.0, 100.0, 1_000);
        // More shards than ToRs clamps to n_tor.
        assert_eq!(t.partition(16).len(), 2);
        let map = t.shard_map(&t.partition(2));
        // All links share one delay, so the lookahead is exactly it.
        assert_eq!(t.lookahead(&map), Some(1_000));
        // Single shard: nothing is cut.
        let one = t.shard_map(&t.partition(1));
        assert_eq!(t.lookahead(&one), None);
    }

    #[test]
    fn dumbbell_is_minimal() {
        let t = Topology::dumbbell(100.0, 1_000);
        assert_eq!(t.n_hosts(), 2);
        assert!(t.same_tor(0, 1));
        assert_eq!(t.hops(0, 1), 2);
    }

    // ------------------------------------------------------------------
    // Topology families
    // ------------------------------------------------------------------

    fn three_tier() -> Topology {
        // 2 pods × 2 ToRs × 4 hosts, 2 aggs/pod, 2 spines/agg,
        // oversubscribed 2:1 at the aggregation tier.
        Topology::three_tier_clos(2, 2, 4, 2, 2, 100.0, 100.0, 100.0, 5_000)
    }

    #[test]
    fn three_tier_dimensions_and_kinds() {
        let t = three_tier();
        assert_eq!(t.n_hosts(), 16);
        assert_eq!(t.n_tor(), 4);
        assert_eq!(t.n_leaf(), 4); // aggregation switches
        assert_eq!(t.n_spine(), 4);
        assert_eq!(t.n_nodes(), 16 + 4 + 4 + 4);
        assert_eq!(t.kind(15), NodeKind::Host);
        assert_eq!(t.kind(16), NodeKind::Tor);
        assert_eq!(t.kind(20), NodeKind::Leaf);
        assert_eq!(t.kind(24), NodeKind::Spine);
        // Radix: ToR = 4 down + 2 up; agg = 2 down + 2 up; spine = 1/pod.
        assert_eq!(t.ports(16).len(), 6);
        assert_eq!(t.ports(20).len(), 4);
        assert_eq!(t.ports(24).len(), 2);
    }

    #[test]
    fn three_tier_back_references_are_consistent() {
        let t = three_tier();
        for node in 0..t.n_nodes() {
            for (i, p) in t.ports(node).iter().enumerate() {
                let back = t.ports(p.peer)[p.peer_port];
                assert_eq!(back.peer, node, "node {node} port {i}");
                assert_eq!(back.peer_port, i);
            }
        }
    }

    #[test]
    fn three_tier_routes_reach_every_pair() {
        let t = three_tier();
        for src in 0..t.n_hosts() {
            for dst in 0..t.n_hosts() {
                if src == dst {
                    continue;
                }
                for hash in [0u64, 7, 0xDEAD_BEEF] {
                    let mut node = src;
                    let mut hops = 0;
                    while node != dst {
                        let p = t.next_port(node, dst, hash);
                        node = t.ports(node)[p].peer;
                        hops += 1;
                        assert!(hops <= 6, "path too long {src}->{dst}");
                    }
                }
            }
        }
        // Same ToR: 2 hops; same pod: 4; cross-pod: 6.
        assert_eq!(t.hops(0, 1), 2);
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.hops(0, 8), 6);
    }

    #[test]
    fn three_tier_ecmp_uses_all_planes_and_spines() {
        let t = three_tier();
        // ToR 16 (pod 0) to a cross-pod host spreads over both aggs.
        let mut agg_ports = std::collections::HashSet::new();
        for h in 0..32u64 {
            agg_ports.insert(t.next_port(16, 8, h));
        }
        assert_eq!(agg_ports.len(), 2);
        // Agg 20 (pod 0, plane 0) cross-pod spreads over its 2 spines.
        let mut spine_ports = std::collections::HashSet::new();
        for h in 0..32u64 {
            spine_ports.insert(t.next_port(20, 8, h));
        }
        assert_eq!(spine_ports.len(), 2);
        // Masked routing steers around a dead spine uplink.
        let dead = *spine_ports.iter().next().unwrap();
        for h in 0..16u64 {
            let p = t
                .next_port_masked(20, 8, h, |_, port| port != dead)
                .unwrap();
            assert_ne!(p, dead);
        }
    }

    #[test]
    fn rail_optimized_stripes_hosts_across_rails() {
        let t = Topology::rail_optimized(4, 4, 2, 100.0, 200.0, 1_000);
        assert_eq!(t.n_hosts(), 16);
        assert_eq!(t.n_tor(), 4);
        // GPU g of server s is host s·4+g and lives on rail g.
        for h in 0..16 {
            assert_eq!(t.tor_of(h), 16 + h % 4, "host {h}");
        }
        // Same rail ⇔ same GPU index: 2 hops; otherwise via a spine.
        assert!(t.same_tor(0, 4));
        assert!(!t.same_tor(0, 1));
        assert_eq!(t.hops(0, 4), 2);
        assert_eq!(t.hops(0, 1), 4);
        // Graph is still a consistent two-tier Clos.
        for node in 0..t.n_nodes() {
            for (i, p) in t.ports(node).iter().enumerate() {
                let back = t.ports(p.peer)[p.peer_port];
                assert_eq!(back.peer, node, "node {node} port {i}");
                assert_eq!(back.peer_port, i);
            }
        }
        for src in 0..t.n_hosts() {
            for dst in 0..t.n_hosts() {
                if src != dst {
                    t.hops(src, dst); // asserts internally on loops
                }
            }
        }
    }

    #[test]
    fn mixed_rate_alternates_leaf_plane_speeds() {
        let spec = MixedRateSpec {
            n_tor: 2,
            hosts_per_tor: 2,
            n_leaf: 2,
            host_gbps: 100.0,
            fast_gbps: 100.0,
            slow_gbps: 25.0,
            delay_ns: 1_000,
        };
        let t = spec.build();
        // ToR 4's uplinks: port 2 → leaf 0 (fast), port 3 → leaf 1 (slow).
        assert!((t.ports(4)[2].bw - gbps(100.0)).abs() < 1e-12);
        assert!((t.ports(4)[3].bw - gbps(25.0)).abs() < 1e-12);
        // Leaf-side ports match their plane's speed.
        assert!((t.ports(6)[0].bw - gbps(100.0)).abs() < 1e-12);
        assert!((t.ports(7)[0].bw - gbps(25.0)).abs() < 1e-12);
    }

    #[test]
    fn three_tier_partition_lookahead_and_invariants() {
        let t = three_tier();
        for n in [2usize, 3, 4] {
            let shards = t.partition(n);
            let map = t.shard_map(&shards);
            assert_eq!(t.lookahead(&map), Some(5_000));
            for h in 0..t.n_hosts() {
                assert_eq!(map[h], map[t.tor_of(h)]);
            }
        }
    }

    // ------------------------------------------------------------------
    // Specs: validation and serde round-trips
    // ------------------------------------------------------------------

    fn specs() -> [TopoSpec; 4] {
        [
            TopoSpec::TwoTier(ClosSpec {
                n_tor: 2,
                hosts_per_tor: 4,
                n_leaf: 2,
                host_gbps: 100.0,
                uplink_gbps: 100.0,
                delay_ns: 4_000,
            }),
            TopoSpec::ThreeTier(ThreeTierSpec {
                n_pod: 2,
                tors_per_pod: 2,
                hosts_per_tor: 2,
                aggs_per_pod: 2,
                spines_per_agg: 1,
                host_gbps: 100.0,
                agg_gbps: 100.0,
                spine_gbps: 400.0,
                delay_ns: 4_000,
            }),
            TopoSpec::Rail(RailSpec {
                n_rail: 4,
                n_server: 2,
                n_spine: 2,
                host_gbps: 100.0,
                uplink_gbps: 200.0,
                delay_ns: 4_000,
            }),
            TopoSpec::MixedRate(MixedRateSpec {
                n_tor: 2,
                hosts_per_tor: 2,
                n_leaf: 2,
                host_gbps: 100.0,
                fast_gbps: 100.0,
                slow_gbps: 25.0,
                delay_ns: 4_000,
            }),
        ]
    }

    #[test]
    fn topo_spec_round_trips_every_family() {
        for spec in specs() {
            let v = spec.serialize_value();
            let back = TopoSpec::from_value(&v).expect(spec.family());
            assert_eq!(back, spec);
            // Spec-level counts agree with the built topology.
            let t = spec.build();
            assert_eq!(t.n_hosts(), spec.n_hosts(), "{}", spec.family());
            assert_eq!(t.n_nodes(), spec.n_nodes(), "{}", spec.family());
        }
    }

    #[test]
    fn untagged_value_parses_as_legacy_clos_spec() {
        let spec = ClosSpec {
            n_tor: 3,
            hosts_per_tor: 2,
            n_leaf: 2,
            host_gbps: 100.0,
            uplink_gbps: 100.0,
            delay_ns: 4_000,
        };
        // Pre-family corpus files serialized the bare ClosSpec.
        let v = spec.serialize_value();
        assert!(v.get("family").is_none());
        assert_eq!(TopoSpec::from_value(&v), Ok(TopoSpec::TwoTier(spec)));
    }

    #[test]
    fn unknown_family_is_rejected() {
        let mut v = specs()[0].serialize_value();
        if let Value::Object(entries) = &mut v {
            entries[0].1 = Value::String("hypercube".into());
        }
        assert!(TopoSpec::from_value(&v).unwrap_err().contains("hypercube"));
    }

    /// `delay_ns == 0` would zero the parallel engine's lookahead; every
    /// spec family rejects it (satellite regression — `ClosSpec` used to
    /// accept it).
    #[test]
    fn specs_reject_zero_delay() {
        for spec in specs() {
            let mut v = spec.serialize_value();
            if let Value::Object(entries) = &mut v {
                for (k, val) in entries.iter_mut() {
                    if k == "delay_ns" {
                        *val = Value::UInt(0);
                    }
                }
            }
            let err = TopoSpec::from_value(&v).unwrap_err();
            assert!(err.contains("delay_ns"), "{}: {err}", spec.family());
        }
        // Directly through the legacy entry point too.
        let mut v = specs()[0].serialize_value();
        if let Value::Object(entries) = &mut v {
            entries.retain(|(k, _)| k != "family");
            for (k, val) in entries.iter_mut() {
                if k == "delay_ns" {
                    *val = Value::UInt(0);
                }
            }
        }
        assert!(ClosSpec::from_value(&v).is_err());
    }

    #[test]
    fn specs_reject_zero_dimensions_and_bad_rates() {
        let base = ClosSpec {
            n_tor: 2,
            hosts_per_tor: 2,
            n_leaf: 1,
            host_gbps: 100.0,
            uplink_gbps: 100.0,
            delay_ns: 1_000,
        };
        let mut v = base.serialize_value();
        if let Value::Object(entries) = &mut v {
            for (k, val) in entries.iter_mut() {
                if k == "n_leaf" {
                    *val = Value::UInt(0);
                }
            }
        }
        assert!(ClosSpec::from_value(&v).is_err());
        let mut v = base.serialize_value();
        if let Value::Object(entries) = &mut v {
            for (k, val) in entries.iter_mut() {
                if k == "uplink_gbps" {
                    *val = Value::Float(-1.0);
                }
            }
        }
        assert!(ClosSpec::from_value(&v).is_err());
    }

    #[test]
    fn to_two_tier_preserves_host_count() {
        for spec in specs() {
            let two = spec.to_two_tier();
            assert_eq!(two.n_hosts(), spec.n_hosts(), "{}", spec.family());
        }
    }
}
