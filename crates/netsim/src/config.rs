//! Simulator configuration.

use crate::Nanos;
use paraleon_dcqcn::DcqcnParams;
use paraleon_sketch::SketchConfig;

/// All knobs of a simulation run that are not topology or workload.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Data packet payload bytes (ns-3 RDMA sims use 1000).
    pub mtu_payload: u32,
    /// Per-packet header overhead on the wire (Eth+IP+UDP+BTH ≈ 48 B).
    pub header_bytes: u32,
    /// Control frame wire size (ACK/CNP).
    pub ctrl_bytes: u32,
    /// Generate one cumulative ACK per this many data packets (the final
    /// segment is always acknowledged immediately).
    pub ack_every: u32,
    /// Shared packet buffer per switch (paper: 12 MB).
    pub switch_buffer_bytes: u64,
    /// Dynamic-threshold PFC α: a queue may hold up to α × (free buffer)
    /// before pausing its upstream (paper §V: α = 1/8 is standard).
    pub pfc_alpha: f64,
    /// Resume (XON) once ingress occupancy falls below this fraction of
    /// the pause threshold.
    pub pfc_xon_frac: f64,
    /// Retransmission timeout for loss recovery (losses only occur if PFC
    /// headroom is ever exceeded; this keeps flows live regardless).
    pub rto: Nanos,
    /// Host NIC egress queue cap in packets: QP pacing blocks when the
    /// data queue is this deep (models the RNIC's internal scheduler).
    pub nic_queue_pkts: usize,
    /// Initial DCQCN parameter setting for RNICs and switches.
    pub dcqcn: DcqcnParams,
    /// Enable the DCQCN+ baseline: NP-side incast-scaled CNP intervals and
    /// RP-side increase scaling.
    pub dcqcn_plus: bool,
    /// DCQCN+ window during which a flow counts as congested.
    pub incast_window: Nanos,
    /// Elastic Sketch sizing for ToR data planes.
    pub sketch: SketchConfig,
    /// Keypoint 1: TOS-bit dedup so each packet enters exactly one sketch.
    /// Disable to reproduce the naive-Elastic-Sketch baseline's overlap.
    pub tos_dedup: bool,
    /// Track exact per-flow bytes per interval (ground truth for the
    /// monitoring-accuracy experiments; small extra cost).
    pub track_ground_truth: bool,
    /// RNG seed (drives ECN coin flips and ECMP-independent choices).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            mtu_payload: 1000,
            header_bytes: 48,
            ctrl_bytes: 64,
            ack_every: 4,
            switch_buffer_bytes: 12 << 20,
            pfc_alpha: 1.0 / 8.0,
            pfc_xon_frac: 0.8,
            rto: 1_000_000, // 1 ms
            nic_queue_pkts: 8,
            dcqcn: DcqcnParams::nvidia_default(),
            dcqcn_plus: false,
            incast_window: 100_000, // 100 µs
            sketch: SketchConfig::default(),
            tos_dedup: true,
            track_ground_truth: false,
            seed: 1,
        }
    }
}

impl SimConfig {
    /// Wire size of a full data packet.
    pub fn mtu_wire(&self) -> u32 {
        self.mtu_payload + self.header_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_papers_setup() {
        let c = SimConfig::default();
        assert_eq!(c.switch_buffer_bytes, 12 << 20);
        assert!((c.pfc_alpha - 0.125).abs() < 1e-12);
        assert_eq!(c.mtu_wire(), 1048);
        assert!(c.tos_dedup);
        assert!(!c.dcqcn_plus);
    }
}
