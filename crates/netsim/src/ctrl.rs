//! Deterministic control-plane channel model.
//!
//! The closed loop in `paraleon-core` moves two message streams between
//! the fabric and the controller: per-interval telemetry uploads
//! (fabric → controller) and parameter dispatches (controller → fabric).
//! In the unimpaired reproduction both are in-process function calls —
//! instant, complete, in order. [`CtrlChannel`] replaces that implicit
//! perfection with an explicit, seeded queue per direction: each message
//! can be **lost** (per-message probability), **delayed** by up to a
//! bounded number of monitor intervals (drawn uniformly per message —
//! which is what reorders an otherwise in-order stream), or
//! **duplicated**. Impairment is driven by [`FaultKind::CtrlImpair`]
//! events from the run's [`FaultPlan`](crate::fault::FaultPlan), so a
//! control-plane fault scenario replays byte-identically under a fixed
//! seed.
//!
//! Time is measured in monitor intervals (λ_MI ticks), not nanoseconds:
//! the channel sits between two components that only interact at
//! interval boundaries, so sub-interval delay is unobservable. A clean
//! channel (`loss = dup = 0`, `delay_max = 0`) makes every message due
//! the instant it is sent, in insertion order — the receiver's poll
//! point in the step loop (same tick for uploads, next step's start for
//! dispatches) then reproduces the in-process call path exactly, which
//! is what the closed loop's clean-channel byte-equivalence rests on.
//!
//! The channel is generic over the payload so the upload and dispatch
//! directions can carry different message types while sharing one
//! impairment/RNG implementation.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Per-direction impairment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CtrlImpairment {
    /// Per-message loss probability in `[0, 1]`.
    pub loss: f64,
    /// Maximum extra delivery delay, in monitor intervals. A message
    /// sent at tick `t` is due at `t + U{0..=delay_max}` and delivered
    /// at the receiver's first poll at or after that tick.
    pub delay_max: u64,
    /// Per-message duplication probability in `[0, 1]`. The duplicate
    /// draws its own independent delay, so it can arrive before or
    /// after the original.
    pub dup: f64,
}

impl CtrlImpairment {
    /// Whether the direction is unimpaired (deliver next tick, in order).
    pub fn is_clean(&self) -> bool {
        self.loss <= 0.0 && self.delay_max == 0 && self.dup <= 0.0
    }
}

/// Counters for one channel direction, for telemetry and gates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CtrlChannelStats {
    /// Messages handed to [`CtrlChannel::send`].
    pub sent: u64,
    /// Messages dropped by the loss draw.
    pub lost: u64,
    /// Extra copies enqueued by the duplication draw.
    pub duplicated: u64,
    /// Messages handed back by [`CtrlChannel::deliver`] (duplicates
    /// count individually).
    pub delivered: u64,
}

#[derive(Debug, Clone)]
struct InFlight<T> {
    due: u64,
    seq: u64,
    msg: T,
}

/// One direction of the control plane: a seeded, impairable queue with
/// delivery ordered by `(due tick, send sequence)`.
///
/// Determinism: the channel owns a dedicated [`StdRng`] and draws, per
/// sent message, in a fixed order — loss, then delay (only if
/// `delay_max > 0`), then duplication (plus the duplicate's delay).
/// Messages with equal due ticks deliver in send order, so a clean
/// channel is a zero-delay FIFO and an impaired run replays exactly
/// under the same seed and send sequence.
#[derive(Debug, Clone)]
pub struct CtrlChannel<T> {
    impair: CtrlImpairment,
    rng: StdRng,
    queue: Vec<InFlight<T>>,
    next_seq: u64,
    /// Delivery counters for this direction.
    pub stats: CtrlChannelStats,
}

impl<T: Clone> CtrlChannel<T> {
    /// Clean channel drawing impairment randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            impair: CtrlImpairment::default(),
            rng: StdRng::seed_from_u64(seed),
            queue: Vec::new(),
            next_seq: 0,
            stats: CtrlChannelStats::default(),
        }
    }

    /// Replace the impairment parameters from this instant on. Messages
    /// already in flight keep their drawn delivery ticks.
    pub fn set_impairment(&mut self, impair: CtrlImpairment) {
        self.impair = impair;
    }

    /// Current impairment parameters.
    pub fn impairment(&self) -> CtrlImpairment {
        self.impair
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Send `msg` at tick `now`. Under a clean channel it is due
    /// immediately (delivered at the receiver's next poll); under
    /// impairment it may be dropped, delayed by up to `delay_max` extra
    /// ticks, or duplicated.
    pub fn send(&mut self, now: u64, msg: T) {
        self.stats.sent += 1;
        if self.impair.loss > 0.0 && self.rng.gen_bool(self.impair.loss) {
            self.stats.lost += 1;
            return;
        }
        let mut delay = 0u64;
        if self.impair.delay_max > 0 {
            delay = self.rng.gen_range(0..=self.impair.delay_max);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(InFlight {
            due: now + delay,
            seq,
            msg: msg.clone(),
        });
        if self.impair.dup > 0.0 && self.rng.gen_bool(self.impair.dup) {
            self.stats.duplicated += 1;
            let mut dup_delay = 0u64;
            if self.impair.delay_max > 0 {
                dup_delay = self.rng.gen_range(0..=self.impair.delay_max);
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.queue.push(InFlight {
                due: now + dup_delay,
                seq,
                msg,
            });
        }
    }

    /// Deliver every message due at or before tick `now`, ordered by
    /// `(due, send sequence)`.
    pub fn deliver(&mut self, now: u64) -> Vec<T> {
        let mut due: Vec<InFlight<T>> = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].due <= now {
                due.push(self.queue.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|m| (m.due, m.seq));
        self.stats.delivered += due.len() as u64;
        due.into_iter().map(|m| m.msg).collect()
    }

    /// Drop everything in flight (the receiving end ceased to exist —
    /// e.g. a controller crash wipes undelivered uploads).
    pub fn clear_in_flight(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_is_a_zero_delay_fifo() {
        let mut ch: CtrlChannel<u32> = CtrlChannel::new(1);
        ch.send(1, 10);
        ch.send(1, 11);
        assert!(ch.deliver(0).is_empty(), "nothing due before send tick");
        assert_eq!(ch.deliver(1), vec![10, 11]);
        assert_eq!(ch.stats.sent, 2);
        assert_eq!(ch.stats.delivered, 2);
        assert_eq!(ch.stats.lost, 0);
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut ch: CtrlChannel<u32> = CtrlChannel::new(1);
        ch.set_impairment(CtrlImpairment {
            loss: 1.0,
            ..Default::default()
        });
        for t in 0..10 {
            ch.send(t, t as u32);
        }
        assert_eq!(ch.stats.lost, 10);
        assert!(ch.deliver(100).is_empty());
    }

    #[test]
    fn delay_reorders_but_replays_identically_under_same_seed() {
        let run = |seed: u64| {
            let mut ch: CtrlChannel<u32> = CtrlChannel::new(seed);
            ch.set_impairment(CtrlImpairment {
                delay_max: 4,
                ..Default::default()
            });
            let mut out = Vec::new();
            for t in 0..20u64 {
                ch.send(t, t as u32);
                out.extend(ch.deliver(t));
            }
            out.extend(ch.deliver(100));
            out
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20, "delay must not lose messages");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
        assert_ne!(a, sorted, "delay_max=4 over 20 sends should reorder");
    }

    #[test]
    fn duplication_enqueues_extra_copies() {
        let mut ch: CtrlChannel<u32> = CtrlChannel::new(3);
        ch.set_impairment(CtrlImpairment {
            dup: 1.0,
            ..Default::default()
        });
        ch.send(0, 42);
        assert_eq!(ch.stats.duplicated, 1);
        assert_eq!(ch.deliver(1), vec![42, 42]);
    }

    #[test]
    fn clear_in_flight_models_a_dead_receiver() {
        let mut ch: CtrlChannel<u32> = CtrlChannel::new(1);
        ch.send(0, 1);
        ch.send(0, 2);
        ch.clear_in_flight();
        assert!(ch.deliver(10).is_empty());
        assert_eq!(ch.in_flight(), 0);
    }

    #[test]
    fn restored_channel_goes_back_to_fifo() {
        let mut ch: CtrlChannel<u32> = CtrlChannel::new(5);
        ch.set_impairment(CtrlImpairment {
            loss: 0.5,
            delay_max: 3,
            dup: 0.25,
        });
        for t in 0..8u64 {
            ch.send(t, t as u32);
        }
        ch.set_impairment(CtrlImpairment::default());
        assert!(ch.impairment().is_clean());
        ch.send(50, 99);
        let late: Vec<u32> = ch.deliver(50);
        assert_eq!(late.last(), Some(&99), "clean sends due the same tick");
    }
}
