//! Per-interval metric accounting: the raw feed for PARALEON's Runtime
//! Metric Monitor.
//!
//! The simulator accumulates counters between calls to
//! `Simulator::collect_interval`, which snapshots them into an
//! [`IntervalMetrics`] — the in-simulation equivalent of the switch/RNIC
//! agents uploading throughput, RTT and PFC statistics to the centralized
//! controller once per monitor interval λ_MI.

use crate::fasthash::FastMap;
use crate::{FlowId, Nanos, NodeId};

/// Raw per-interval counters kept by the simulator (reset every collect).
#[derive(Debug, Default)]
pub(crate) struct IntervalAccum {
    /// Bytes sent upward on each host's uplink (host → ToR).
    pub host_up_bytes: Vec<u64>,
    /// Bytes received by each host (ToR → host direction).
    pub host_down_bytes: Vec<u64>,
    /// Per-sender-host sum of normalized RTT samples (base_rtt / sample).
    /// Kept per host (not as one running scalar) so the fold order of the
    /// floating-point sums is fixed by host id — the parallel engine then
    /// reproduces the serial totals bit-exactly regardless of which shard
    /// observed which ACK first.
    pub gamma_sum: Vec<f64>,
    /// Per-sender-host sum of raw RTT samples, ns.
    pub rtt_sum: Vec<f64>,
    /// Per-sender-host number of RTT samples.
    pub rtt_count: Vec<u64>,
    /// Per-device accumulated PFC pause duration this interval, ns
    /// (indexed by node id; for multi-port devices the worst port counts).
    pub pause_ns: Vec<Nanos>,
    /// CNPs delivered to senders.
    pub cnps: u64,
    /// ECN marks applied by switches.
    pub ecn_marks: u64,
    /// Data packets dropped at full buffers.
    pub drops: u64,
    /// Packets lost to injected faults (dead links, corruption).
    pub fault_drops: u64,
    /// Payload bytes delivered to receivers.
    pub bytes_delivered: u64,
    /// PFC pause frames emitted.
    pub pfc_events: u64,
    /// Data bytes transmitted by each switch this interval (indexed by
    /// switch order).
    pub switch_tx_bytes: Vec<u64>,
    /// Ground-truth bytes injected per flow this interval (optional).
    pub truth_flow_bytes: FastMap<FlowId, u64>,
}

impl IntervalAccum {
    pub(crate) fn new(n_nodes: usize, n_hosts: usize) -> Self {
        Self {
            host_up_bytes: vec![0; n_hosts],
            host_down_bytes: vec![0; n_hosts],
            gamma_sum: vec![0.0; n_hosts],
            rtt_sum: vec![0.0; n_hosts],
            rtt_count: vec![0; n_hosts],
            pause_ns: vec![0; n_nodes],
            switch_tx_bytes: vec![0; n_nodes - n_hosts],
            ..Default::default()
        }
    }
}

/// One monitor interval's network-wide metrics, as the controller sees
/// them (the inputs to Equation (1)'s utility terms).
///
/// `PartialEq` is exact (bitwise on the `f64` fields): the parallel
/// engine's differential tests assert byte-identity against the serial
/// engine, not approximate agreement.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalMetrics {
    /// Interval start time.
    pub start: Nanos,
    /// Interval end time (collection instant).
    pub end: Nanos,
    /// O_TP: mean utilization of active host↔ToR uplinks, `[0, 1]`.
    pub avg_uplink_utilization: f64,
    /// O_RTT: mean of `base_path_delay / runtime_RTT` over samples,
    /// `(0, 1]`; 1.0 when no sample was taken (an idle network).
    pub avg_normalized_rtt: f64,
    /// Mean raw RTT over the interval, ns (0 when no samples).
    pub avg_rtt_ns: f64,
    /// `λ̄_xoff / λ_MI`: mean per-device PFC pause fraction, `[0, 1]`.
    pub pfc_pause_ratio: f64,
    /// CNPs delivered to senders this interval.
    pub cnps: u64,
    /// ECN marks applied this interval.
    pub ecn_marks: u64,
    /// Packets dropped (should stay 0 under functioning PFC).
    pub drops: u64,
    /// Packets lost to injected faults this interval (dead links and
    /// random corruption; 0 unless a fault plan is active).
    pub fault_drops: u64,
    /// PFC pause frames emitted this interval.
    pub pfc_events: u64,
    /// Payload bytes delivered to receivers this interval.
    pub bytes_delivered: u64,
    /// Per-switch local observations (what an ACC-style per-switch agent
    /// can see): indexed by switch order (ToRs first, then leaves).
    pub switch_obs: Vec<SwitchObs>,
    /// Per-ToR drained sketch readings: `(tor_node, [(flow, bytes)])`.
    /// Feed these to the control-plane classifier.
    pub tor_sketches: Vec<(NodeId, Vec<(FlowId, u64)>)>,
    /// Exact per-flow injected bytes (present only when ground-truth
    /// tracking is enabled).
    pub truth_flow_bytes: Vec<(FlowId, u64)>,
}

impl IntervalMetrics {
    /// Interval length in nanoseconds.
    pub fn duration(&self) -> Nanos {
        self.end.saturating_sub(self.start)
    }

    /// Aggregate delivered goodput over the interval, bytes/sec.
    pub fn goodput_bytes_per_sec(&self) -> f64 {
        let d = self.duration();
        if d == 0 {
            0.0
        } else {
            self.bytes_delivered as f64 * 1e9 / d as f64
        }
    }
}

/// One switch's locally observable state for an interval — exactly the
/// inputs ACC's per-switch agents consume (port rate, ECN marking rate,
/// queue length).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchObs {
    /// The switch node id.
    pub node: NodeId,
    /// Mean egress utilization across ports this interval, `[0, 1]`.
    pub tx_utilization: f64,
    /// Fraction of examined packets that were ECN-marked this interval.
    pub marking_rate: f64,
    /// Shared-buffer occupancy at collection time as a fraction of the
    /// buffer size.
    pub queue_frac: f64,
}

/// A completed flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// Flow id.
    pub flow: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Flow size, bytes.
    pub bytes: u64,
    /// Start time (when the flow was admitted).
    pub start: Nanos,
    /// Completion time (last byte acknowledged at the sender).
    pub finish: Nanos,
}

impl FlowRecord {
    /// Flow completion time.
    pub fn fct(&self) -> Nanos {
        self.finish.saturating_sub(self.start)
    }

    /// FCT slowdown relative to an ideal transfer at `ref_bw` bytes/sec
    /// plus `base_rtt` of unloaded latency — the y-axis of Figure 7(a,b).
    pub fn slowdown(&self, ref_bw_bytes_per_sec: f64, base_rtt: Nanos) -> f64 {
        let ideal = self.bytes as f64 / ref_bw_bytes_per_sec * 1e9 + base_rtt as f64;
        (self.fct() as f64 / ideal).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fct_and_slowdown() {
        let r = FlowRecord {
            flow: 1,
            src: 0,
            dst: 1,
            bytes: 1_250_000, // takes 100 µs at 100 Gbps
            start: 1_000,
            finish: 401_000,
        };
        assert_eq!(r.fct(), 400_000);
        // Ideal = 100 µs + 10 µs base = 110 µs; slowdown ≈ 3.64.
        let s = r.slowdown(12.5e9, 10_000);
        assert!((s - 400.0 / 110.0).abs() < 1e-9);
    }

    #[test]
    fn slowdown_is_at_least_one() {
        let r = FlowRecord {
            flow: 1,
            src: 0,
            dst: 1,
            bytes: 1000,
            start: 0,
            finish: 1,
        };
        assert_eq!(r.slowdown(12.5e9, 10_000), 1.0);
    }

    #[test]
    fn goodput_computation() {
        let m = IntervalMetrics {
            start: 0,
            end: 1_000_000,
            avg_uplink_utilization: 0.5,
            avg_normalized_rtt: 0.9,
            avg_rtt_ns: 20_000.0,
            pfc_pause_ratio: 0.0,
            cnps: 0,
            ecn_marks: 0,
            drops: 0,
            fault_drops: 0,
            pfc_events: 0,
            bytes_delivered: 1_250_000,
            switch_obs: Vec::new(),
            tor_sketches: Vec::new(),
            truth_flow_bytes: Vec::new(),
        };
        assert_eq!(m.duration(), 1_000_000);
        // 1.25 MB over 1 ms = 1.25 GB/s.
        assert!((m.goodput_bytes_per_sec() - 1.25e9).abs() < 1.0);
    }
}
