//! Packets and frames carried by the simulated fabric.

use crate::{FlowId, Nanos, NodeId};

/// Traffic class indices: RoCEv2 data rides the lossless (PFC-protected)
/// class; ACKs and CNPs ride a strict-priority control class, mirroring
/// real deployments where CNPs must not be blocked by data congestion.
pub const CLASS_DATA: usize = 0;
/// Control traffic class (ACK/CNP).
pub const CLASS_CTRL: usize = 1;
/// Number of traffic classes per port.
pub const N_CLASSES: usize = 2;

/// Discriminates the payload of a [`Packet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacketKind {
    /// RDMA data segment: `seq` is the byte offset of this payload within
    /// the flow, `flow_bytes` the flow's total size (so the receiver can
    /// detect the final segment without out-of-band state).
    Data {
        /// Byte offset of this segment within the flow.
        seq: u64,
        /// Total flow size in bytes.
        flow_bytes: u64,
    },
    /// Cumulative acknowledgment from receiver to sender.
    Ack {
        /// Cumulative bytes received in order.
        acked_bytes: u64,
        /// Echo of the triggering data packet's send timestamp (RTT).
        echo: Nanos,
    },
    /// Congestion Notification Packet (NP → RP).
    Cnp {
        /// DCQCN+ only: CNP interval (µs) the NP advertises.
        advertised_interval_us: Option<f64>,
    },
}

/// A packet in flight or queued.
///
/// Kept to 72 bytes: endpoints are `u32` (fabrics beyond 4 G nodes are
/// out of scope) and per-hop scratch lives in the egress-queue entries,
/// not here. Packets are copied into the arena once at creation and out
/// once at consumption; in between everything moves 4-byte [`PacketId`]
/// handles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Payload discriminator.
    pub kind: PacketKind,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// The QP (measurement identity) this packet belongs to. Collectives
    /// reuse QPs across rounds, so sketches see one long-lived entity
    /// per (src, dst) pair — the "per-QP size statistics" of the paper.
    pub qp: FlowId,
    /// When the packet left its source NIC (RTT echo base).
    pub sent_at: Nanos,
    /// Source host.
    pub src: u32,
    /// Destination host.
    pub dst: u32,
    /// Bytes on the wire (payload + headers).
    pub wire_bytes: u32,
    /// Payload bytes (0 for control frames).
    pub payload_bytes: u32,
    /// Traffic class ([`CLASS_DATA`] or [`CLASS_CTRL`]).
    pub class: u8,
    /// ECN Congestion Experienced mark (set by switches).
    pub ecn: bool,
    /// Keypoint 1's TOS bit: set once the packet has been inserted into a
    /// measurement sketch, so no later switch double-counts it.
    pub sketched: bool,
}

impl Packet {
    /// Build a data segment.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        flow: FlowId,
        qp: FlowId,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        flow_bytes: u64,
        payload: u32,
        header: u32,
        now: Nanos,
    ) -> Self {
        Self {
            kind: PacketKind::Data { seq, flow_bytes },
            flow,
            qp,
            src: src as u32,
            dst: dst as u32,
            wire_bytes: payload + header,
            payload_bytes: payload,
            sent_at: now,
            ecn: false,
            sketched: false,
            class: CLASS_DATA as u8,
        }
    }

    /// Build a cumulative ACK (receiver → sender: src/dst are the ACK's
    /// own endpoints, i.e. swapped relative to the data flow).
    pub fn ack(
        flow: FlowId,
        from: NodeId,
        to: NodeId,
        acked_bytes: u64,
        echo: Nanos,
        ctrl_bytes: u32,
        now: Nanos,
    ) -> Self {
        Self {
            kind: PacketKind::Ack { acked_bytes, echo },
            flow,
            qp: flow,
            src: from as u32,
            dst: to as u32,
            wire_bytes: ctrl_bytes,
            payload_bytes: 0,
            sent_at: now,
            ecn: false,
            sketched: true, // control frames are never sketched
            class: CLASS_CTRL as u8,
        }
    }

    /// Build a CNP (NP → RP).
    pub fn cnp(
        flow: FlowId,
        from: NodeId,
        to: NodeId,
        advertised_interval_us: Option<f64>,
        ctrl_bytes: u32,
        now: Nanos,
    ) -> Self {
        Self {
            kind: PacketKind::Cnp {
                advertised_interval_us,
            },
            flow,
            qp: flow,
            src: from as u32,
            dst: to as u32,
            wire_bytes: ctrl_bytes,
            payload_bytes: 0,
            sent_at: now,
            ecn: false,
            sketched: true,
            class: CLASS_CTRL as u8,
        }
    }

    /// Whether this is a data segment.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data { .. })
    }
}

/// Handle of a packet parked in a [`PacketPool`] while it is "on the
/// wire" (scheduled as an `Arrive` event). Events carry this 4-byte id
/// through the scheduler instead of the 72-byte [`Packet`] itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(u32);

/// A slab arena for live packets.
///
/// A packet enters the arena once, when its source NIC builds it, and
/// leaves once, when its destination host consumes it (or a switch drops
/// it). In between, NIC queues, switch queues and `Arrive` events all
/// carry the 4-byte [`PacketId`] — enqueueing, dequeueing and hopping
/// never copy the 72-byte [`Packet`]. Freed slots are recycled LIFO, so
/// the pool's footprint is bounded by the peak number of simultaneously
/// live packets (not by the run length), and slot assignment is a pure
/// function of the insert/take sequence — replays allocate identical
/// ids, preserving determinism trivially.
#[derive(Debug, Default)]
pub struct PacketPool {
    slots: Vec<Packet>,
    free: Vec<u32>,
    /// Per-flow conservation tallies (ZST unless the `audit` feature is
    /// on): insert = injected, take = delivered, discard = dropped.
    audit: paraleon_audit::ConservationAudit,
}

impl PacketPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park `pkt` and return its handle.
    #[inline]
    pub fn insert(&mut self, pkt: Packet) -> PacketId {
        self.audit.injected(pkt.flow);
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = pkt;
                PacketId(i)
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(pkt);
                PacketId(i)
            }
        }
    }

    /// Remove and return the packet behind `id`. The handle is dead
    /// afterwards; its slot is recycled by a later `insert`.
    #[inline]
    pub fn take(&mut self, id: PacketId) -> Packet {
        debug_assert!(!self.free.contains(&id.0), "PacketId {} taken twice", id.0);
        self.audit.delivered(self.slots[id.0 as usize].flow);
        self.free.push(id.0);
        self.slots[id.0 as usize]
    }

    /// Drop the packet behind `id` (a switch drop / fault loss): frees
    /// the slot without copying the packet out.
    #[inline]
    pub fn discard(&mut self, id: PacketId) {
        debug_assert!(
            !self.free.contains(&id.0),
            "PacketId {} discarded twice",
            id.0
        );
        self.audit.dropped(self.slots[id.0 as usize].flow);
        self.free.push(id.0);
    }

    /// Number of packets currently parked.
    pub fn in_flight(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Borrow the packet behind `id`.
    #[inline]
    pub fn get(&self, id: PacketId) -> &Packet {
        &self.slots[id.0 as usize]
    }

    /// Mutably borrow the packet behind `id` (per-hop header rewrites:
    /// ECN mark, TOS sketched bit).
    #[inline]
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        &mut self.slots[id.0 as usize]
    }

    /// High-water mark of simultaneously parked packets.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Cross-check the conservation tallies against the arena's live
    /// count: Σ per-flow (injected − delivered − dropped) must equal
    /// `in_flight()`. No-op unless the `audit` feature is on.
    #[inline]
    pub fn audit_check(&self) {
        self.audit.check_pool(self.in_flight() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_shape() {
        let p = Packet::data(7, 7, 0, 1, 4096, 1 << 20, 1000, 48, 99);
        assert!(p.is_data());
        assert_eq!(p.wire_bytes, 1048);
        assert_eq!(p.payload_bytes, 1000);
        assert_eq!(p.class as usize, CLASS_DATA);
        assert!(!p.ecn && !p.sketched);
    }

    #[test]
    fn control_frames_ride_the_control_class_pre_sketched() {
        let a = Packet::ack(7, 1, 0, 123, 5, 64, 10);
        let c = Packet::cnp(7, 1, 0, Some(16.0), 64, 10);
        for p in [a, c] {
            assert_eq!(p.class as usize, CLASS_CTRL);
            assert!(p.sketched, "control frames must never enter sketches");
            assert!(!p.is_data());
            assert_eq!(p.payload_bytes, 0);
        }
    }

    #[test]
    fn pool_recycles_slots_and_tracks_in_flight() {
        let mut pool = PacketPool::new();
        let a = pool.insert(Packet::data(1, 1, 0, 1, 0, 1 << 20, 1000, 48, 0));
        let b = pool.insert(Packet::ack(2, 1, 0, 99, 5, 64, 10));
        assert_eq!(pool.in_flight(), 2);
        let pa = pool.take(a);
        assert_eq!(pa.flow, 1);
        assert_eq!(pool.in_flight(), 1);
        // Freed slot is reused (LIFO), keeping the arena compact.
        let c = pool.insert(Packet::cnp(3, 1, 0, None, 64, 20));
        assert_eq!(c, a);
        assert_eq!(pool.capacity(), 2);
        assert_eq!(pool.take(b).flow, 2);
        assert_eq!(pool.take(c).flow, 3);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn ack_carries_cumulative_bytes_and_echo() {
        let a = Packet::ack(7, 1, 0, 4096, 77, 64, 100);
        match a.kind {
            PacketKind::Ack { acked_bytes, echo } => {
                assert_eq!(acked_bytes, 4096);
                assert_eq!(echo, 77);
            }
            _ => panic!("not an ack"),
        }
    }
}
