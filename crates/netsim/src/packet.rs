//! Packets and frames carried by the simulated fabric.

use crate::{FlowId, Nanos, NodeId};

/// Traffic class indices: RoCEv2 data rides the lossless (PFC-protected)
/// class; ACKs and CNPs ride a strict-priority control class, mirroring
/// real deployments where CNPs must not be blocked by data congestion.
pub const CLASS_DATA: usize = 0;
/// Control traffic class (ACK/CNP).
pub const CLASS_CTRL: usize = 1;
/// Number of traffic classes per port.
pub const N_CLASSES: usize = 2;

/// Discriminates the payload of a [`Packet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacketKind {
    /// RDMA data segment: `seq` is the byte offset of this payload within
    /// the flow, `flow_bytes` the flow's total size (so the receiver can
    /// detect the final segment without out-of-band state).
    Data {
        /// Byte offset of this segment within the flow.
        seq: u64,
        /// Total flow size in bytes.
        flow_bytes: u64,
    },
    /// Cumulative acknowledgment from receiver to sender.
    Ack {
        /// Cumulative bytes received in order.
        acked_bytes: u64,
        /// Echo of the triggering data packet's send timestamp (RTT).
        echo: Nanos,
    },
    /// Congestion Notification Packet (NP → RP).
    Cnp {
        /// DCQCN+ only: CNP interval (µs) the NP advertises.
        advertised_interval_us: Option<f64>,
    },
}

/// A packet in flight or queued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Payload discriminator.
    pub kind: PacketKind,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// The QP (measurement identity) this packet belongs to. Collectives
    /// reuse QPs across rounds, so sketches see one long-lived entity
    /// per (src, dst) pair — the "per-QP size statistics" of the paper.
    pub qp: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Bytes on the wire (payload + headers).
    pub wire_bytes: u32,
    /// Payload bytes (0 for control frames).
    pub payload_bytes: u32,
    /// When the packet left its source NIC (RTT echo base).
    pub sent_at: Nanos,
    /// ECN Congestion Experienced mark (set by switches).
    pub ecn: bool,
    /// Keypoint 1's TOS bit: set once the packet has been inserted into a
    /// measurement sketch, so no later switch double-counts it.
    pub sketched: bool,
    /// Traffic class ([`CLASS_DATA`] or [`CLASS_CTRL`]).
    pub class: usize,
    /// Ingress port at the switch currently holding the packet (per-hop
    /// scratch used for PFC buffer accounting; rewritten at each hop).
    pub in_port: usize,
}

impl Packet {
    /// Build a data segment.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        flow: FlowId,
        qp: FlowId,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        flow_bytes: u64,
        payload: u32,
        header: u32,
        now: Nanos,
    ) -> Self {
        Self {
            kind: PacketKind::Data { seq, flow_bytes },
            flow,
            qp,
            src,
            dst,
            wire_bytes: payload + header,
            payload_bytes: payload,
            sent_at: now,
            ecn: false,
            sketched: false,
            class: CLASS_DATA,
            in_port: 0,
        }
    }

    /// Build a cumulative ACK (receiver → sender: src/dst are the ACK's
    /// own endpoints, i.e. swapped relative to the data flow).
    pub fn ack(
        flow: FlowId,
        from: NodeId,
        to: NodeId,
        acked_bytes: u64,
        echo: Nanos,
        ctrl_bytes: u32,
        now: Nanos,
    ) -> Self {
        Self {
            kind: PacketKind::Ack { acked_bytes, echo },
            flow,
            qp: flow,
            src: from,
            dst: to,
            wire_bytes: ctrl_bytes,
            payload_bytes: 0,
            sent_at: now,
            ecn: false,
            sketched: true, // control frames are never sketched
            class: CLASS_CTRL,
            in_port: 0,
        }
    }

    /// Build a CNP (NP → RP).
    pub fn cnp(
        flow: FlowId,
        from: NodeId,
        to: NodeId,
        advertised_interval_us: Option<f64>,
        ctrl_bytes: u32,
        now: Nanos,
    ) -> Self {
        Self {
            kind: PacketKind::Cnp {
                advertised_interval_us,
            },
            flow,
            qp: flow,
            src: from,
            dst: to,
            wire_bytes: ctrl_bytes,
            payload_bytes: 0,
            sent_at: now,
            ecn: false,
            sketched: true,
            class: CLASS_CTRL,
            in_port: 0,
        }
    }

    /// Whether this is a data segment.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_shape() {
        let p = Packet::data(7, 7, 0, 1, 4096, 1 << 20, 1000, 48, 99);
        assert!(p.is_data());
        assert_eq!(p.wire_bytes, 1048);
        assert_eq!(p.payload_bytes, 1000);
        assert_eq!(p.class, CLASS_DATA);
        assert!(!p.ecn && !p.sketched);
    }

    #[test]
    fn control_frames_ride_the_control_class_pre_sketched() {
        let a = Packet::ack(7, 1, 0, 123, 5, 64, 10);
        let c = Packet::cnp(7, 1, 0, Some(16.0), 64, 10);
        for p in [a, c] {
            assert_eq!(p.class, CLASS_CTRL);
            assert!(p.sketched, "control frames must never enter sketches");
            assert!(!p.is_data());
            assert_eq!(p.payload_bytes, 0);
        }
    }

    #[test]
    fn ack_carries_cumulative_bytes_and_echo() {
        let a = Packet::ack(7, 1, 0, 4096, 77, 64, 100);
        match a.kind {
            PacketKind::Ack { acked_bytes, echo } => {
                assert_eq!(acked_bytes, 4096);
                assert_eq!(echo, 77);
            }
            _ => panic!("not an ack"),
        }
    }
}
