//! A deterministic, cheap hasher for small integer keys.
//!
//! The simulator's inner loop does several `HashMap` operations per
//! packet (per-QP sender/receiver lookups, the base-RTT cache). The
//! standard library's default SipHash is both slower than the lookups it
//! guards and randomly seeded per process, which would make map iteration
//! order differ between runs. Nothing in the simulator *observes*
//! iteration order, but a fixed-seed hasher removes the possibility by
//! construction and cuts the per-lookup cost to a couple of multiplies.
//!
//! The mix is the SplitMix64 finalizer — the same family the measurement
//! sketch uses (`paraleon_sketch::hash`), which is well distributed for
//! the dense small integers we key on (flow ids, host-id pairs).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A [`Hasher`] for integer keys: state is folded with a SplitMix64-style
/// finalizer per written word. Not DoS-resistant — simulator internals
/// only hash their own trusted keys.
#[derive(Default)]
pub struct IntHasher(u64);

impl IntHasher {
    #[inline]
    fn mix(&mut self, n: u64) {
        let mut z = self.0 ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

impl Hasher for IntHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (derived Hash on structs); word-chunked.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// Full-avalanche SplitMix64 mix of one word: every input bit affects
/// every output bit, so related inputs (a base seed XOR a small node id)
/// come out pseudo-independent. This is the derivation for per-switch
/// sketch seeds — arithmetic derivations like `base + node` leave
/// structured, low-weight XOR differences between the derived seeds,
/// which downstream XOR-keyed hash families turn into identical hash
/// functions on different switches.
#[inline]
pub fn mix64(n: u64) -> u64 {
    let mut z = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A `HashMap` with the deterministic integer hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<IntHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_hash() {
        let mut a = IntHasher::default();
        let mut b = IntHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_small_keys_spread() {
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..10_000 {
            let mut h = IntHasher::default();
            h.write_u64(k);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "small dense keys must not collide");
    }

    #[test]
    fn map_behaves_like_a_map() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for k in 0..1000u64 {
            m.insert(k, k * 2);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&k), Some(&(k * 2)));
        }
        assert_eq!(m.remove(&7), Some(14));
        assert_eq!(m.len(), 999);
    }
}
