//! The discrete-event RoCEv2 fabric simulator.
//!
//! One [`Simulator`] owns a [`Topology`], the
//! per-node state (host RNICs with per-QP DCQCN reaction/notification
//! points; shared-buffer switches with RED/ECN marking, dynamic-threshold
//! PFC and ToR measurement sketches) and a deterministic event queue.
//!
//! The embedding harness drives it with:
//!
//! ```text
//! let mut sim = Simulator::new(topo, cfg);
//! sim.add_flow(src, dst, bytes, start);
//! loop {
//!     sim.run_until(next_monitor_interval_end);
//!     let metrics = sim.collect_interval();      // switch/RNIC agents upload
//!     if let Some(p) = controller(&metrics) {    // PARALEON tuning round
//!         sim.set_dcqcn_params(&p);              // dispatch to devices
//!     }
//! }
//! ```
//!
//! which mirrors the paper's closed loop: monitor λ_MI, upload, tune,
//! dispatch.
//!
//! # Sharded execution
//!
//! The same `Simulator` type doubles as one *shard* of the conservative
//! parallel engine ([`crate::par::ParallelSim`]): a shard holds the full
//! topology but *owns* only a subset of nodes (an ownership mask), runs
//! only events targeting owned nodes, and routes events aimed at foreign
//! nodes into per-destination-shard outboxes that the coordinator drains
//! at epoch barriers. Everything that makes the serial and sharded
//! executions bit-identical is centralized here:
//!
//! * event tie-breaks are *causal keys* — `(source-node namespace <<
//!   KEY_SHIFT) | per-source counter` — which a shard can reproduce
//!   without seeing global push order;
//! * every random draw comes from a per-entity stream (per-switch ECN
//!   RNG, per-node fault-corruption RNG), so draw order depends only on
//!   that entity's own event sequence;
//! * interval metrics accumulate per entity and are folded in global
//!   node order by [`Simulator::finalize_interval`], which both engines
//!   share.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use paraleon_dcqcn::{DcqcnParams, EcnMarker, NpState, RpState};
use paraleon_sketch::hash::hash64;
use paraleon_sketch::ElasticSketch;
use paraleon_telemetry as tel;

use crate::config::SimConfig;
use crate::event::{Event, EventQueue};
use crate::fault::{FaultEvent, FaultKind, FaultPlan, LinkState};
use crate::metrics::{FlowRecord, IntervalAccum, IntervalMetrics, SwitchObs};
use crate::node::{HostState, QueuedPkt, RecvFlow, SenderFlow, SwitchState};
use crate::packet::{Packet, PacketId, PacketKind, PacketPool, CLASS_CTRL, CLASS_DATA, N_CLASSES};
use crate::topology::{NodeKind, Topology};
use crate::{FlowId, Nanos, NodeId, MICRO};

/// Why the simulator refused an API call (bounds-checked alternatives to
/// the panicking entry points).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// A switch index at or beyond the number of switches.
    SwitchIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Switch count (ToRs + leaves).
        n_switches: usize,
    },
    /// A node id at or beyond the number of nodes.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Node count.
        n_nodes: usize,
    },
    /// A port index at or beyond the node's radix.
    PortOutOfRange {
        /// The node addressed.
        node: usize,
        /// The offending port index.
        port: usize,
        /// The node's radix.
        n_ports: usize,
    },
    /// Flow endpoints must be two distinct hosts.
    BadEndpoints {
        /// Requested source.
        src: usize,
        /// Requested destination.
        dst: usize,
        /// Host count.
        n_hosts: usize,
    },
    /// Zero-byte flows are not admissible.
    EmptyFlow,
    /// Something was scheduled before the current simulation time.
    TimeInPast {
        /// Requested time.
        at: Nanos,
        /// Current simulation time.
        now: Nanos,
    },
    /// A host-only fault (PFC storm) targeted a non-host node.
    NotAHost {
        /// The offending node id.
        node: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SimError::SwitchIndexOutOfRange { index, n_switches } => {
                write!(f, "switch index {index} out of range (have {n_switches})")
            }
            SimError::NodeOutOfRange { node, n_nodes } => {
                write!(f, "node {node} out of range (have {n_nodes})")
            }
            SimError::PortOutOfRange {
                node,
                port,
                n_ports,
            } => write!(
                f,
                "port {port} out of range on node {node} (radix {n_ports})"
            ),
            SimError::BadEndpoints { src, dst, n_hosts } => write!(
                f,
                "flow endpoints {src}->{dst} must be distinct hosts (< {n_hosts})"
            ),
            SimError::EmptyFlow => write!(f, "zero-byte flow"),
            SimError::TimeInPast { at, now } => {
                write!(f, "time {at} is in the past (now {now})")
            }
            SimError::NotAHost { node } => write!(f, "node {node} is not a host"),
        }
    }
}

impl std::error::Error for SimError {}

/// Static description of one admitted flow.
#[derive(Debug, Clone, Copy)]
struct FlowMeta {
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    start: Nanos,
    qp: FlowId,
    done: bool,
}

/// Bits reserved for the per-source event counter in a causal key; the
/// namespace (source node id offset by [`NODE_NS_BASE`], or one of the
/// external namespaces below it) lives above. 2^40 events per source
/// per run is far beyond any committed workload (whole runs process
/// ~10^7–10^8 events *total*).
pub(crate) const KEY_SHIFT: u32 = 40;

/// External namespace for flow-start events (counter = flow id).
const FLOW_NS: u64 = 0;
/// External namespace for fault-plan events (counter = plan index).
const FAULT_NS: u64 = 1;
/// Node `n`'s causal-key namespace is `n + NODE_NS_BASE`. The external
/// namespaces sort *below* every node namespace on purpose: an external
/// trigger (flow start, fault) pending at time `t` pops before any node
/// event at `t`, so its same-instant children — keyed by the node that
/// handles them — always carry *larger* keys than their parent, and a
/// fault at `t` applies before packets at `t` traverse the link. (The
/// popped key sequence is still not globally sorted within a timestamp:
/// mid-run API insertion at the current instant, e.g. `add_flow` at a
/// collection boundary, is legal and can follow a larger-key pop.)
const NODE_NS_BASE: u64 = 2;

/// Sharding context: which shard this simulator instance is, and who
/// owns each node. `None` (the serial engine) owns everything.
#[derive(Debug, Clone)]
pub(crate) struct ShardCtx {
    /// Owner shard of every node id.
    pub shard_of: Arc<Vec<u16>>,
    /// This shard's index.
    pub me: u16,
}

/// A cross-shard event handoff: the scheduled `(at, key, ev)` triple
/// plus, for `Arrive`, the packet itself moved out of the source shard's
/// arena (the destination shard re-inserts it into its own arena and
/// rewrites the id in the event).
#[derive(Debug)]
pub(crate) struct RemoteMsg {
    /// Absolute event time.
    pub at: Nanos,
    /// Causal key (assigned by the *sending* shard from the source
    /// node's counter — identical to the key the serial engine assigns).
    pub key: u64,
    /// The event (its `PacketId` is stale for `Arrive`; see `pkt`).
    pub ev: Event,
    /// The packet in flight across the shard cut, if any.
    pub pkt: Option<Packet>,
}

/// Per-interval raw data from one shard, merged across shards (trivially
/// for the serial engine) by [`Simulator::finalize_interval`].
#[derive(Debug)]
pub(crate) struct IntervalRaw {
    /// Interval start.
    pub start: Nanos,
    /// Interval end (collection instant).
    pub end: Nanos,
    /// The shard's accumulated counters (zero for non-owned entities).
    pub accum: IntervalAccum,
    /// Per-node reachability; meaningful only at owned nodes (non-owned
    /// entries stay `true`, so an AND-merge recovers the owner's value).
    pub reachable: Vec<bool>,
    /// Per-switch marker `seen` delta this interval (owned, else 0).
    pub sw_seen: Vec<u64>,
    /// Per-switch marker `marked` delta this interval (owned, else 0).
    pub sw_marked: Vec<u64>,
    /// Per-switch shared-buffer occupancy at collection (owned, else 0).
    pub sw_buffer: Vec<u64>,
    /// Drained ToR sketches for owned, reachable ToRs.
    pub sketches: Vec<(NodeId, Vec<(FlowId, u64)>)>,
}

/// The packet-level simulator.
pub struct Simulator {
    cfg: SimConfig,
    topo: Topology,
    hosts: Vec<HostState>,
    switches: Vec<SwitchState>,
    events: EventQueue,
    /// Arena for live packets: a packet enters at its source NIC, exits
    /// at its destination host (or on a drop); queues and `Arrive`
    /// events carry 4-byte handles in between.
    packets: PacketPool,
    /// Per-`(node, port)` serialization time of (one full MTU, one
    /// control frame) at clean link rate — the two wire sizes virtually
    /// every packet has, precomputed to keep `f64` ceil-division off the
    /// per-hop path.
    ser_cache: Vec<Vec<(Nanos, Nanos)>>,
    /// `cfg.mtu_wire()`, cached for the serialization fast path.
    mtu_wire: u32,
    now: Nanos,
    /// Per-source-node causal-key counters (tie-break assignment).
    key_seq: Vec<u64>,
    /// Sharding context; `None` = the serial engine (owns every node).
    shard: Option<ShardCtx>,
    /// Cross-shard handoff outboxes, one per destination shard (empty
    /// vec for the serial engine).
    outboxes: Vec<Vec<RemoteMsg>>,
    /// When set, [`run_window`](Self::run_window) stamps each event's
    /// `(time, key)` onto the thread's telemetry capture (see
    /// `paraleon_telemetry::capture_stamp`) so emissions diverted on
    /// worker threads can be replayed in serial order.
    tel_capture: bool,
    /// Telemetry captured on this shard's worker thread during a
    /// parallel run, parked here for the coordinator to replay.
    pub(crate) tel_carry: Vec<tel::Captured>,
    /// Audit tallies drained on the worker thread at the end of a
    /// parallel run, parked here for the coordinator to absorb.
    pub(crate) audit_carry: (u64, Vec<paraleon_audit::AuditReport>),
    flows: Vec<FlowMeta>,
    completions: Vec<FlowRecord>,
    accum: IntervalAccum,
    interval_start: Nanos,
    active_flows: usize,
    base_rtt_cache: crate::fasthash::FastMap<(NodeId, NodeId), Nanos>,
    /// Per-node, per-port runtime link state (mutated by fault events;
    /// all-clean unless a fault plan is installed).
    links: Vec<Vec<LinkState>>,
    /// Directed links currently down (recounted on LinkDown/LinkUp
    /// faults). Zero in the common fault-free case, which lets routing
    /// skip the per-port liveness mask entirely.
    links_down: u32,
    /// Installed fault transitions, addressed by `Event::Fault` index.
    fault_plan: Vec<FaultEvent>,
    /// Dedicated per-node RNGs for corruption draws, so fault injection
    /// never perturbs the switches' own random streams (ECN coin flips)
    /// — and so each node's draw sequence depends only on the packets it
    /// transmitted, which makes the draws shard-independent.
    fault_rngs: Vec<StdRng>,
    /// XOFF/XON pairing mirror (ZST unless the `audit` feature is on).
    pfc_audit: paraleon_audit::PfcPairAudit,
    /// Total data packets dropped over the whole run.
    pub total_drops: u64,
    /// Total packets lost to injected faults over the whole run.
    pub total_fault_drops: u64,
    /// Total PFC pause frames over the whole run.
    pub total_pfc_events: u64,
    /// Total events processed (performance accounting).
    pub events_processed: u64,
}

/// Per-ToR sketch seed: the configured base seed decorrelated by switch
/// id through a full-avalanche mix. The derivation must not leave
/// related switches' seeds a small XOR apart: the sketch keys its
/// count-min rows as `seed ^ (row constant)`, so a low-weight difference
/// between two switches' seeds can make a row on one switch hash every
/// flow identically to a row on another — correlated estimation errors
/// that the controller's merge (which assumes independent per-switch
/// error) cannot average away.
pub fn tor_sketch_seed(base: u64, node: usize) -> u64 {
    crate::fasthash::mix64(base ^ node as u64)
}

impl Simulator {
    /// Build a simulator over `topo` with configuration `cfg`.
    pub fn new(topo: Topology, cfg: SimConfig) -> Self {
        let n_hosts = topo.n_hosts();
        let n_nodes = topo.n_nodes();
        let hosts = (0..n_hosts)
            .map(|_| HostState::new(cfg.dcqcn.min_time_between_cnps, cfg.incast_window))
            .collect();
        let mut switches = Vec::new();
        for node in n_hosts..n_nodes {
            let n_ports = topo.ports(node).len();
            let marker = EcnMarker::from_params(&cfg.dcqcn);
            let sketch = if topo.kind(node) == NodeKind::Tor {
                let mut sk_cfg = cfg.sketch.clone();
                // Distinct hash seeds per switch, like distinct hardware.
                sk_cfg.seed = tor_sketch_seed(sk_cfg.seed, node);
                Some(ElasticSketch::new(sk_cfg))
            } else {
                None
            };
            // Distinct RED coin-flip streams per switch, same derivation
            // discipline as the sketch seeds.
            let ecn_seed = crate::fasthash::mix64(cfg.seed ^ node as u64);
            switches.push(SwitchState::new(n_ports, marker, ecn_seed, sketch));
        }
        let accum = IntervalAccum::new(n_nodes, n_hosts);
        let fault_rngs = (0..n_nodes)
            .map(|n| Self::fault_rng_for(cfg.seed ^ 0xFA11_FA11_FA11_FA11, n))
            .collect();
        let links = (0..n_nodes)
            .map(|n| vec![LinkState::default(); topo.ports(n).len()])
            .collect();
        let mtu_wire = cfg.mtu_wire();
        let ser_cache = (0..n_nodes)
            .map(|n| {
                topo.ports(n)
                    .iter()
                    .map(|p| {
                        (
                            ((mtu_wire as f64) / p.bw).ceil() as Nanos,
                            ((cfg.ctrl_bytes as f64) / p.bw).ceil() as Nanos,
                        )
                    })
                    .collect()
            })
            .collect();
        Self {
            cfg,
            topo,
            hosts,
            switches,
            events: EventQueue::new(),
            packets: PacketPool::new(),
            ser_cache,
            mtu_wire,
            now: 0,
            key_seq: vec![0; n_nodes],
            shard: None,
            outboxes: Vec::new(),
            tel_capture: false,
            tel_carry: Vec::new(),
            audit_carry: (0, Vec::new()),
            flows: Vec::new(),
            completions: Vec::new(),
            accum,
            interval_start: 0,
            active_flows: 0,
            base_rtt_cache: crate::fasthash::FastMap::default(),
            links,
            links_down: 0,
            fault_plan: Vec::new(),
            fault_rngs,
            pfc_audit: paraleon_audit::PfcPairAudit::default(),
            total_drops: 0,
            total_fault_drops: 0,
            total_pfc_events: 0,
            events_processed: 0,
        }
    }

    /// Build one shard of the parallel engine: a full-topology simulator
    /// that owns (runs events for) only the nodes `shard_of` maps to
    /// `me`, and routes events for foreign nodes into per-shard outboxes.
    pub(crate) fn new_shard(
        topo: Topology,
        cfg: SimConfig,
        shard_of: Arc<Vec<u16>>,
        me: u16,
        n_shards: usize,
    ) -> Self {
        let mut s = Self::new(topo, cfg);
        debug_assert_eq!(shard_of.len(), s.topo.n_nodes());
        s.outboxes = (0..n_shards).map(|_| Vec::new()).collect();
        s.shard = Some(ShardCtx { shard_of, me });
        s
    }

    /// Per-node fault-corruption RNG derivation (shared by the
    /// constructor and `install_fault_plan`'s reseed).
    fn fault_rng_for(base: u64, node: usize) -> StdRng {
        StdRng::seed_from_u64(crate::fasthash::mix64(base ^ node as u64))
    }

    /// Whether this engine instance runs events targeting `node`.
    #[inline]
    fn owns(&self, node: NodeId) -> bool {
        match &self.shard {
            None => true,
            Some(s) => s.shard_of[node] as usize == s.me as usize,
        }
    }

    /// Next causal key for an event generated by `src`'s handler.
    #[inline]
    fn next_key(&mut self, src: NodeId) -> u64 {
        let k = ((src as u64 + NODE_NS_BASE) << KEY_SHIFT) | self.key_seq[src];
        self.key_seq[src] += 1;
        k
    }

    /// Schedule an event whose target is the generating node itself
    /// (pacing ticks, port-free, retransmission timers): always local.
    #[inline]
    fn sched_local(&mut self, src: NodeId, at: Nanos, ev: Event) {
        let key = self.next_key(src);
        self.events.push(at, key, ev);
    }

    /// Schedule an event generated by `src` but targeting `dst` (packet
    /// arrivals, PFC pause frames): runs locally when this shard owns
    /// `dst`, otherwise crosses the cut through an outbox — carrying the
    /// packet by value for `Arrive` so each arena's conservation tallies
    /// stay self-consistent.
    fn sched_cross(
        &mut self,
        src: NodeId,
        dst: NodeId,
        at: Nanos,
        ev: Event,
        pkt: Option<PacketId>,
    ) {
        let key = self.next_key(src);
        if let Some(ctx) = &self.shard {
            let dst_shard = ctx.shard_of[dst];
            if dst_shard != ctx.me {
                let pkt = pkt.map(|id| self.packets.take(id));
                self.outboxes[dst_shard as usize].push(RemoteMsg { at, key, ev, pkt });
                return;
            }
        }
        self.events.push(at, key, ev);
    }

    /// Take the outbox bound for shard `dst` (coordinator-side drain).
    pub(crate) fn take_outbox(&mut self, dst: usize) -> Vec<RemoteMsg> {
        std::mem::take(&mut self.outboxes[dst])
    }

    /// How many cross-shard handoffs are waiting in outboxes.
    pub(crate) fn outboxes_pending(&self) -> usize {
        self.outboxes.iter().map(Vec::len).sum()
    }

    /// Number of flows ever admitted (the next flow id / default QP).
    pub(crate) fn flow_count(&self) -> FlowId {
        self.flows.len() as FlowId
    }

    /// Accept a cross-shard handoff: re-home the packet (if any) into
    /// this shard's arena and enqueue the event under its original
    /// `(at, key)` — the queue's total order does the rest.
    pub(crate) fn inject_remote(&mut self, msg: RemoteMsg) {
        let ev = match (msg.ev, msg.pkt) {
            (Event::Arrive { node, in_port, .. }, Some(p)) => {
                let pkt = self.packets.insert(p);
                Event::Arrive { node, in_port, pkt }
            }
            (ev, None) => ev,
            (ev, Some(_)) => unreachable!("packet attached to non-arrive event {ev:?}"),
        };
        self.events.push(msg.at, msg.key, ev);
    }

    /// Enable/disable per-event `(time, key)` stamping of the thread's
    /// telemetry capture (workers of a parallel run capture every
    /// emission — including those from the congestion-control crates —
    /// and the coordinator replays them in global key order).
    pub(crate) fn set_tel_capture(&mut self, on: bool) {
        self.tel_capture = on;
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Number of admitted flows not yet completed.
    pub fn active_flows(&self) -> usize {
        self.active_flows
    }

    /// Admit a flow of `bytes` from host `src` to host `dst` at `start`
    /// (must not be in the past). Returns its id. The flow's measurement
    /// identity (QP) defaults to its own id; collectives that reuse QPs
    /// across rounds should use [`Simulator::add_flow_on_qp`].
    pub fn add_flow(&mut self, src: NodeId, dst: NodeId, bytes: u64, start: Nanos) -> FlowId {
        let qp = self.flows.len() as FlowId;
        self.add_flow_on_qp(src, dst, bytes, start, qp)
    }

    /// Bounds-checked [`Simulator::add_flow`].
    pub fn try_add_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        start: Nanos,
    ) -> Result<FlowId, SimError> {
        let qp = self.flows.len() as FlowId;
        self.try_add_flow_on_qp(src, dst, bytes, start, qp)
    }

    /// Admit a flow carried on an explicit QP identity: sketches, ground
    /// truth and ECMP hashing observe `qp`, so successive transfers on
    /// one QP appear as a single long-lived entity to the monitor (NCCL
    /// reuses QPs across collective rounds). Panics on invalid arguments;
    /// see [`Simulator::try_add_flow_on_qp`] for the checked variant.
    pub fn add_flow_on_qp(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        start: Nanos,
        qp: FlowId,
    ) -> FlowId {
        match self.try_add_flow_on_qp(src, dst, bytes, start, qp) {
            Ok(id) => id,
            Err(e) => panic!("add_flow_on_qp: {e}"),
        }
    }

    /// Bounds-checked [`Simulator::add_flow_on_qp`].
    pub fn try_add_flow_on_qp(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        start: Nanos,
        qp: FlowId,
    ) -> Result<FlowId, SimError> {
        let n_hosts = self.topo.n_hosts();
        if src >= n_hosts || dst >= n_hosts || src == dst {
            return Err(SimError::BadEndpoints { src, dst, n_hosts });
        }
        if bytes == 0 {
            return Err(SimError::EmptyFlow);
        }
        if start < self.now {
            return Err(SimError::TimeInPast {
                at: start,
                now: self.now,
            });
        }
        Ok(self.register_flow(src, dst, bytes, start, qp))
    }

    /// Record a (pre-validated) flow and, when this engine instance owns
    /// its source host, schedule its start. Every shard of a parallel
    /// run registers every flow — flow ids are indices into `flows`, so
    /// the table must stay globally aligned — but only the source owner
    /// schedules and counts it as active.
    pub(crate) fn register_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        start: Nanos,
        qp: FlowId,
    ) -> FlowId {
        let id = self.flows.len() as FlowId;
        self.flows.push(FlowMeta {
            src,
            dst,
            bytes,
            start,
            qp,
            done: false,
        });
        if self.owns(src) {
            self.active_flows += 1;
            // External namespace with the flow id as counter: identical
            // in both engines without any shared counter state.
            let key = (FLOW_NS << KEY_SHIFT) | id;
            self.events.push(start, key, Event::FlowStart(id));
        }
        id
    }

    /// Drain the list of flows completed since the last call, sorted by
    /// `(finish, flow)`. The sort (rather than raw completion-processing
    /// order) gives both engines one canonical order: a parallel run
    /// concatenates per-shard completion lists before sorting the same
    /// way.
    pub fn take_completions(&mut self) -> Vec<FlowRecord> {
        let mut v = std::mem::take(&mut self.completions);
        v.sort_unstable_by_key(|r| (r.finish, r.flow));
        v
    }

    /// Dispatch a new DCQCN parameter setting to every RNIC and switch
    /// (the controller's action after a tuning round; homogeneous, like
    /// the paper's centralized design).
    pub fn set_dcqcn_params(&mut self, params: &DcqcnParams) {
        self.cfg.dcqcn = *params;
        for h in &mut self.hosts {
            h.set_params(params);
        }
        for s in &mut self.switches {
            s.marker.set_params(params);
        }
    }

    /// The active parameter setting.
    pub fn dcqcn_params(&self) -> &DcqcnParams {
        &self.cfg.dcqcn
    }

    /// Override one switch's ECN thresholds only (ACC-style per-switch
    /// tuning; RNIC parameters are untouched). `switch_index` counts ToRs
    /// first, then leaves, matching `IntervalMetrics::switch_obs`.
    /// Bounds-checked: a stale or corrupt index from the controller must
    /// not crash the fabric model.
    pub fn set_switch_ecn(
        &mut self,
        switch_index: usize,
        params: &DcqcnParams,
    ) -> Result<(), SimError> {
        let n_switches = self.switches.len();
        let sw = self
            .switches
            .get_mut(switch_index)
            .ok_or(SimError::SwitchIndexOutOfRange {
                index: switch_index,
                n_switches,
            })?;
        sw.marker.set_params(params);
        Ok(())
    }

    /// Number of switches (ToRs + leaves).
    pub fn n_switches(&self) -> usize {
        self.switches.len()
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Install a [`FaultPlan`]: validates every transition, reseeds the
    /// dedicated corruption RNG from the plan's seed, and schedules one
    /// `Event::Fault` per transition on the ordinary event queue (so
    /// faults interleave deterministically with traffic).
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        let n_nodes = self.topo.n_nodes();
        let n_hosts = self.topo.n_hosts();
        for ev in plan.events() {
            if ev.at < self.now {
                return Err(SimError::TimeInPast {
                    at: ev.at,
                    now: self.now,
                });
            }
            // Control-plane transitions carry no link address; they are
            // consumed by the closed loop, not the data plane.
            if ev.kind.is_ctrl() {
                continue;
            }
            if ev.node >= n_nodes {
                return Err(SimError::NodeOutOfRange {
                    node: ev.node,
                    n_nodes,
                });
            }
            match ev.kind {
                FaultKind::PfcStormStart | FaultKind::PfcStormEnd => {
                    if ev.node >= n_hosts {
                        return Err(SimError::NotAHost { node: ev.node });
                    }
                }
                _ => {
                    let n_ports = self.topo.ports(ev.node).len();
                    if ev.port >= n_ports {
                        return Err(SimError::PortOutOfRange {
                            node: ev.node,
                            port: ev.port,
                            n_ports,
                        });
                    }
                }
            }
        }
        for n in 0..n_nodes {
            self.fault_rngs[n] = Self::fault_rng_for(plan.seed, n);
        }
        for ev in plan.events() {
            if ev.kind.is_ctrl() {
                continue;
            }
            // Every shard records every transition so `Event::Fault`
            // indices stay globally aligned; only shards owning one of
            // the affected link ends schedule it.
            let idx = self.fault_plan.len() as u32;
            self.fault_plan.push(*ev);
            if self.fault_relevant(ev) {
                // External namespace with the plan index as counter:
                // shared-state-free, identical across engines (replicas
                // on two shards carry the same key and run at the same
                // barrier-aligned instant).
                let key = (FAULT_NS << KEY_SHIFT) | idx as u64;
                self.events.push(ev.at, key, Event::Fault(idx));
            }
        }
        Ok(())
    }

    /// Whether this engine instance must run a fault transition: it owns
    /// the addressed node or the peer across the addressed link. The
    /// serial engine owns everything.
    fn fault_relevant(&self, ev: &FaultEvent) -> bool {
        if self.shard.is_none() {
            return true;
        }
        let peer = match ev.kind {
            FaultKind::PfcStormStart | FaultKind::PfcStormEnd => self.topo.ports(ev.node)[0].peer,
            _ => self.topo.ports(ev.node)[ev.port].peer,
        };
        self.owns(ev.node) || self.owns(peer)
    }

    /// Runtime state of the directed link at `(node, port)`.
    pub fn link_state(&self, node: NodeId, port: usize) -> LinkState {
        self.links[node][port]
    }

    /// Whether `node` still has at least one live link — a fully
    /// cut-off switch cannot upload observations or sketch readings.
    pub fn node_reachable(&self, node: NodeId) -> bool {
        self.links[node].iter().any(|l| l.up)
    }

    fn apply_fault(&mut self, idx: u32) {
        let ev = self.fault_plan[idx as usize];
        let FaultEvent {
            node, port, kind, ..
        } = ev;
        // A cross-cut fault is replicated onto both end shards; the shard
        // owning `ev.node` is the *primary* and performs the one-time
        // side effects (telemetry, global counters). The secondary only
        // updates its own side's link state — and un-counts the replica
        // so `events_processed` sums to the serial figure.
        let primary = self.owns(node);
        if !primary {
            self.events_processed -= 1;
        }
        match kind {
            FaultKind::LinkDown => {
                self.set_link_owned(node, port, |l| l.up = false);
                self.recount_links_down();
                if primary {
                    tel::event_at(
                        self.now,
                        tel::Event::FaultLinkDown {
                            node: node as u32,
                            port: port as u32,
                        },
                    );
                }
            }
            FaultKind::LinkUp => {
                self.set_link_owned(node, port, |l| l.up = true);
                self.recount_links_down();
                if primary {
                    tel::event_at(
                        self.now,
                        tel::Event::FaultLinkUp {
                            node: node as u32,
                            port: port as u32,
                        },
                    );
                }
                // Restart any idle port that queued packets while down —
                // each side's owner restarts its own end (the restart
                // only generates events sourced at that end, so causal
                // keys stay consistent with the serial engine).
                if self.owns(node) {
                    self.kick_port(node, port);
                }
                let peer = self.topo.ports(node)[port];
                if self.owns(peer.peer) {
                    self.kick_port(peer.peer, peer.peer_port);
                }
            }
            FaultKind::Degrade { factor } => {
                self.set_link_owned(node, port, |l| l.rate_factor = factor);
                if primary {
                    tel::event_at(
                        self.now,
                        tel::Event::FaultDegrade {
                            node: node as u32,
                            port: port as u32,
                            factor,
                        },
                    );
                }
            }
            FaultKind::PktLoss { drop_prob } => {
                self.set_link_owned(node, port, |l| l.drop_prob = drop_prob);
                if primary {
                    tel::event_at(
                        self.now,
                        tel::Event::FaultPktLoss {
                            node: node as u32,
                            port: port as u32,
                            drop_prob,
                        },
                    );
                }
            }
            FaultKind::PfcStormStart => {
                // The misbehaving host asserts sustained XOFF: freeze its
                // ToR down-port. Congestion then spreads upstream through
                // the shared buffer exactly as a real storm would. The
                // partitioner co-locates a host with its ToR, so the
                // primary owner handles the whole transition.
                let up = self.topo.ports(node)[0];
                debug_assert!(
                    self.shard.is_none() || self.owns(node) == self.owns(up.peer),
                    "PFC storm across a shard cut: host and ToR must share a shard"
                );
                if primary {
                    self.accum.pfc_events += 1;
                    self.total_pfc_events += 1;
                    tel::event_at(self.now, tel::Event::PfcStormStart { host: node as u32 });
                    self.on_pfc_set(up.peer, up.peer_port, true);
                }
            }
            FaultKind::PfcStormEnd => {
                let up = self.topo.ports(node)[0];
                if primary {
                    tel::event_at(self.now, tel::Event::PfcStormEnd { host: node as u32 });
                    self.on_pfc_set(up.peer, up.peer_port, false);
                }
            }
            // Control-plane transitions never reach the event queue —
            // `install_fault_plan` filters them out.
            FaultKind::CtrlImpair { .. } | FaultKind::CtrlCrash { .. } => {
                unreachable!("ctrl fault scheduled on the data plane")
            }
        }
    }

    /// Apply `f` to the owned end(s) of the directed link pair at
    /// `(node, port)`. The serial engine owns both ends; a shard touches
    /// only its own rows (a foreign row would never be consulted here,
    /// but writing it would race under parallel execution).
    fn set_link_owned(&mut self, node: NodeId, port: usize, f: impl Fn(&mut LinkState)) {
        let peer = self.topo.ports(node)[port];
        if self.owns(node) {
            f(&mut self.links[node][port]);
        }
        if self.owns(peer.peer) {
            f(&mut self.links[peer.peer][peer.peer_port]);
        }
    }

    /// Recount [`Self::links_down`] after a liveness transition. O(links),
    /// but only runs on (rare) LinkDown/LinkUp fault events; counting
    /// transitions instead would miscount idempotent re-application.
    /// Counts owned rows only: routing from owned nodes consults owned
    /// rows exclusively, so the fast-path predicate stays sound per shard.
    fn recount_links_down(&mut self) {
        let mut down = 0u32;
        for (n, ls) in self.links.iter().enumerate() {
            if match &self.shard {
                None => true,
                Some(s) => s.shard_of[n] == s.me,
            } {
                down += ls.iter().filter(|l| !l.up).count() as u32;
            }
        }
        self.links_down = down;
    }

    fn kick_port(&mut self, node: NodeId, port: usize) {
        match self.topo.kind(node) {
            NodeKind::Host => {
                if !self.hosts[node].tx_busy {
                    self.host_try_tx(node);
                }
            }
            _ => {
                let sw = node - self.topo.n_hosts();
                if !self.switches[sw].ports[port].busy {
                    self.switch_try_tx(node, port);
                }
            }
        }
    }

    /// A packet leaves `(node, port)`: returns `false` when an injected
    /// fault eats it on the wire (dead link, or a corruption draw from
    /// the plan's dedicated RNG stream).
    fn link_delivers(&mut self, node: NodeId, port: usize) -> bool {
        let ls = self.links[node][port];
        if ls.is_clean() {
            return true;
        }
        let delivered =
            ls.up && (ls.drop_prob <= 0.0 || self.fault_rngs[node].gen::<f64>() >= ls.drop_prob);
        if !delivered {
            self.accum.fault_drops += 1;
            self.total_fault_drops += 1;
            tel::count(tel::Ctr::FaultDrops);
        }
        delivered
    }

    /// Process all events up to and including time `t`, then set the
    /// clock to `t`.
    pub fn run_until(&mut self, t: Nanos) {
        assert!(t >= self.now, "time cannot run backward");
        self.run_window(t, true);
    }

    /// Run one execution window: all pending events with `ts <= end`
    /// (`inclusive`, the serial engine's whole-run case) or `ts < end`
    /// (the parallel engine's half-open epoch windows — events at
    /// exactly the barrier must wait for the mailbox exchange so
    /// same-instant cross-shard events keep their key order). The clock
    /// is left at `end` either way; an exclusive window may be followed
    /// by an inclusive window at the same `end`.
    pub(crate) fn run_window(&mut self, end: Nanos, inclusive: bool) {
        if inclusive {
            while let Some((ts, key, ev)) = self.events.pop_before(end) {
                debug_assert!(ts >= self.now);
                self.now = ts;
                if self.tel_capture {
                    tel::capture_stamp(ts, key);
                }
                self.events_processed += 1;
                self.handle(ev);
            }
        } else {
            while let Some((ts, key, ev)) = self.events.pop_strictly_before(end) {
                debug_assert!(ts >= self.now);
                self.now = ts;
                if self.tel_capture {
                    tel::capture_stamp(ts, key);
                }
                self.events_processed += 1;
                self.handle(ev);
            }
        }
        self.now = end;
    }

    /// Convenience: run for `dt` more nanoseconds.
    pub fn run_for(&mut self, dt: Nanos) {
        self.run_until(self.now + dt);
    }

    /// Whether any events remain scheduled.
    pub fn has_pending_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Base RTT between two hosts (cached; used for RTT normalisation).
    pub fn base_rtt(&mut self, a: NodeId, b: NodeId) -> Nanos {
        let key = (a.min(b), a.max(b));
        if let Some(&v) = self.base_rtt_cache.get(&key) {
            return v;
        }
        let v = self
            .topo
            .base_rtt(key.0, key.1, self.cfg.mtu_wire(), self.cfg.ctrl_bytes);
        self.base_rtt_cache.insert(key, v);
        v
    }

    /// Snapshot and reset the per-interval metrics; drains ToR sketches
    /// (the once-per-λ_MI control-plane read-and-reset).
    pub fn collect_interval(&mut self) -> IntervalMetrics {
        let raw = self.interval_raw();
        Self::finalize_interval(&self.topo, &self.cfg, vec![raw])
    }

    /// The per-shard half of interval collection: close pause intervals,
    /// take the accumulators, snapshot per-switch observables and drain
    /// sketches — for *owned* entities only — and run the audit sweep.
    /// The serial engine is the one-shard special case.
    pub(crate) fn interval_raw(&mut self) -> IntervalRaw {
        let dt = self.now.saturating_sub(self.interval_start);
        self.finalize_pause_accounting();
        let n_hosts = self.topo.n_hosts();
        let n_nodes = self.topo.n_nodes();
        // Reachability is computed from this shard's link rows; foreign
        // rows are never faulted here, so `true` placeholders AND-merge
        // into the owner's verdict.
        let reachable: Vec<bool> = (0..n_nodes)
            .map(|n| !self.owns(n) || self.node_reachable(n))
            .collect();
        let n_sw = self.switches.len();
        let mut sw_seen = vec![0u64; n_sw];
        let mut sw_marked = vec![0u64; n_sw];
        let mut sw_buffer = vec![0u64; n_sw];
        let mut sketches = Vec::new();
        for i in 0..n_sw {
            let node = n_hosts + i;
            if !self.owns(node) {
                continue;
            }
            let sw = &mut self.switches[i];
            // Per-interval marking deltas; snapshots advance even when
            // the switch is unreachable (the delta is simply not
            // uploaded, matching a dead management channel).
            sw_seen[i] = sw.marker.seen - sw.prev_seen;
            sw_marked[i] = sw.marker.marked - sw.prev_marked;
            sw.prev_seen = sw.marker.seen;
            sw.prev_marked = sw.marker.marked;
            sw_buffer[i] = sw.buffer_used;
            // Drain ToR sketches (control-plane read-and-reset). A
            // cut-off ToR cannot answer the read: its sketch keeps
            // accumulating and is delivered after connectivity returns.
            if reachable[node] {
                if let Some(sk) = sw.sketch.as_mut() {
                    let entries: Vec<(FlowId, u64)> =
                        sk.drain().into_iter().map(|e| (e.flow, e.bytes)).collect();
                    sketches.push((node, entries));
                }
            }
        }
        self.audit_sweep(dt);
        let accum = std::mem::replace(&mut self.accum, IntervalAccum::new(n_nodes, n_hosts));
        let raw = IntervalRaw {
            start: self.interval_start,
            end: self.now,
            accum,
            reachable,
            sw_seen,
            sw_marked,
            sw_buffer,
            sketches,
        };
        self.interval_start = self.now;
        raw
    }

    /// The engine-independent half of interval collection: merge one raw
    /// snapshot per shard (each entity's data lives in exactly one) and
    /// compute the uploaded metrics, folding in global node order so the
    /// floating-point results are bit-identical between engines.
    pub(crate) fn finalize_interval(
        topo: &Topology,
        cfg: &SimConfig,
        raws: Vec<IntervalRaw>,
    ) -> IntervalMetrics {
        let mut it = raws.into_iter();
        let mut base = it.next().expect("at least one shard");
        for r in it {
            debug_assert_eq!(base.start, r.start);
            debug_assert_eq!(base.end, r.end);
            let a = &mut base.accum;
            let b = r.accum;
            for (x, y) in a.host_up_bytes.iter_mut().zip(&b.host_up_bytes) {
                *x += y;
            }
            for (x, y) in a.host_down_bytes.iter_mut().zip(&b.host_down_bytes) {
                *x += y;
            }
            // Safe f64 merge: a host's samples accumulate on exactly one
            // shard, so this is selection, not reassociation.
            for (x, y) in a.gamma_sum.iter_mut().zip(&b.gamma_sum) {
                *x += y;
            }
            for (x, y) in a.rtt_sum.iter_mut().zip(&b.rtt_sum) {
                *x += y;
            }
            for (x, y) in a.rtt_count.iter_mut().zip(&b.rtt_count) {
                *x += y;
            }
            for (x, y) in a.pause_ns.iter_mut().zip(&b.pause_ns) {
                *x += y;
            }
            for (x, y) in a.switch_tx_bytes.iter_mut().zip(&b.switch_tx_bytes) {
                *x += y;
            }
            a.cnps += b.cnps;
            a.ecn_marks += b.ecn_marks;
            a.drops += b.drops;
            a.fault_drops += b.fault_drops;
            a.bytes_delivered += b.bytes_delivered;
            a.pfc_events += b.pfc_events;
            for (flow, bytes) in b.truth_flow_bytes {
                *a.truth_flow_bytes.entry(flow).or_insert(0) += bytes;
            }
            for (x, y) in base.reachable.iter_mut().zip(&r.reachable) {
                *x &= y;
            }
            for (x, y) in base.sw_seen.iter_mut().zip(&r.sw_seen) {
                *x += y;
            }
            for (x, y) in base.sw_marked.iter_mut().zip(&r.sw_marked) {
                *x += y;
            }
            for (x, y) in base.sw_buffer.iter_mut().zip(&r.sw_buffer) {
                *x += y;
            }
            base.sketches.extend(r.sketches);
        }
        base.sketches.sort_unstable_by_key(|&(n, _)| n);

        let accum = &base.accum;
        let reachable = &base.reachable;
        let dt = base.end.saturating_sub(base.start);
        let dt_f = dt.max(1) as f64;

        // O_TP over active host<->ToR uplinks.
        let mut util_sum = 0.0;
        let mut util_n = 0u32;
        for h in 0..topo.n_hosts() {
            let bw = topo.ports(h)[0].bw; // bytes/ns
            for bytes in [accum.host_up_bytes[h], accum.host_down_bytes[h]] {
                if bytes > 0 {
                    util_sum += (bytes as f64 / (bw * dt_f)).min(1.0);
                    util_n += 1;
                }
            }
        }
        let avg_util = if util_n == 0 {
            0.0
        } else {
            util_sum / util_n as f64
        };

        // O_RTT: fold per-host partial sums in host order.
        let mut gamma_sum = 0.0;
        let mut rtt_sum = 0.0;
        let mut rtt_count = 0u64;
        for h in 0..topo.n_hosts() {
            gamma_sum += accum.gamma_sum[h];
            rtt_sum += accum.rtt_sum[h];
            rtt_count += accum.rtt_count[h];
        }
        let (gamma, avg_rtt) = if rtt_count == 0 {
            (1.0, 0.0)
        } else {
            (gamma_sum / rtt_count as f64, rtt_sum / rtt_count as f64)
        };

        // O_PFC over devices the controller can still hear from — a
        // fully cut-off node cannot upload pause statistics, and must
        // not be averaged in as a silent zero.
        let mut pause_sum = 0.0;
        let mut present = 0u32;
        for (node, &p) in accum.pause_ns.iter().enumerate() {
            if !reachable[node] {
                continue;
            }
            present += 1;
            pause_sum += (p.min(dt) as f64) / dt_f;
        }
        let pause_ratio = pause_sum / present.max(1) as f64;

        // Per-switch local observations (the ACC agents' inputs). A
        // switch with every link dead stops uploading: it is simply
        // absent from this interval's `switch_obs`.
        let n_sw = base.sw_seen.len();
        let mut switch_obs = Vec::with_capacity(n_sw);
        for i in 0..n_sw {
            let node = topo.n_hosts() + i;
            if !reachable[node] {
                continue;
            }
            let seen = base.sw_seen[i];
            let marked = base.sw_marked[i];
            let total_bw: f64 = topo.ports(node).iter().map(|p| p.bw).sum();
            let tx_util = (accum.switch_tx_bytes[i] as f64 / (total_bw * dt_f)).min(1.0);
            let marking_rate = if seen == 0 {
                0.0
            } else {
                marked as f64 / seen as f64
            };
            let queue_frac = base.sw_buffer[i] as f64 / cfg.switch_buffer_bytes.max(1) as f64;
            switch_obs.push(SwitchObs {
                node,
                tx_utilization: tx_util,
                marking_rate,
                queue_frac,
            });
        }

        let mut truth: Vec<(FlowId, u64)> = base.accum.truth_flow_bytes.drain().collect();
        truth.sort_unstable();

        IntervalMetrics {
            start: base.start,
            end: base.end,
            avg_uplink_utilization: avg_util,
            avg_normalized_rtt: gamma.min(1.0),
            avg_rtt_ns: avg_rtt,
            pfc_pause_ratio: pause_ratio.min(1.0),
            cnps: base.accum.cnps,
            ecn_marks: base.accum.ecn_marks,
            drops: base.accum.drops,
            fault_drops: base.accum.fault_drops,
            pfc_events: base.accum.pfc_events,
            bytes_delivered: base.accum.bytes_delivered,
            switch_obs,
            tor_sketches: base.sketches,
            truth_flow_bytes: truth,
        }
    }

    /// Structural invariant sweep run at every interval collection (the
    /// natural event boundary where no packet is mid-function). Folds to
    /// nothing unless the `audit` feature is on.
    fn audit_sweep(&self, dt: Nanos) {
        use paraleon_audit as audit;
        if !audit::enabled() {
            return;
        }
        // Packet conservation: per-flow tallies must match the arena.
        self.packets.audit_check();
        let n_hosts = self.topo.n_hosts();
        for (i, s) in self.switches.iter().enumerate() {
            let node = (n_hosts + i) as u32;
            // Shared-buffer occupancy == Σ lossless queued bytes == Σ
            // per-ingress accounting, and never above capacity.
            let queued: u64 = s.ports.iter().map(|p| p.qbytes[CLASS_DATA]).sum();
            let ingress: u64 = s.ingress_bytes.iter().sum();
            audit::check(s.buffer_used == queued && s.buffer_used == ingress, || {
                audit::AuditViolation::BufferAccounting {
                    switch: node,
                    buffer_used: s.buffer_used,
                    queued,
                    ingress,
                }
            });
            audit::check(s.buffer_used <= self.cfg.switch_buffer_bytes, || {
                audit::AuditViolation::BufferOverflow {
                    switch: node,
                    buffer_used: s.buffer_used,
                    buffer_total: self.cfg.switch_buffer_bytes,
                }
            });
            // Per-(port, class) byte counters == wire bytes actually
            // sitting in the queues.
            for (pi, p) in s.ports.iter().enumerate() {
                for c in 0..N_CLASSES {
                    let sum: u64 = p.queues[c].iter().map(|q| q.wire as u64).sum();
                    audit::check(p.qbytes[c] == sum, || {
                        audit::AuditViolation::QueueAccounting {
                            switch: node,
                            port: pi as u32,
                            class: c as u32,
                            qbytes: p.qbytes[c],
                            queued: sum,
                        }
                    });
                }
            }
        }
        // Pause-time budgets: a host has one port, so its accumulated
        // pause cannot exceed the interval; a switch accumulates per
        // node, so its bound is dt × radix.
        for (node, &p) in self.accum.pause_ns.iter().enumerate() {
            let budget = if node < n_hosts {
                dt
            } else {
                dt * self.topo.ports(node).len() as u64
            };
            audit::check(p <= budget, || audit::AuditViolation::PfcPauseOverflow {
                node: node as u32,
                pause_ns: p,
                budget_ns: budget,
            });
        }
    }

    /// Close out pause intervals that span the collection instant.
    fn finalize_pause_accounting(&mut self) {
        let now = self.now;
        let istart = self.interval_start;
        for (h, host) in self.hosts.iter_mut().enumerate() {
            if let Some(st) = host.pause_started {
                self.accum.pause_ns[h] += now.saturating_sub(st.max(istart));
                host.pause_started = Some(now);
            }
        }
        let n_hosts = self.topo.n_hosts();
        for (i, sw) in self.switches.iter_mut().enumerate() {
            for p in &mut sw.ports {
                if let Some(st) = p.pause_started {
                    self.accum.pause_ns[n_hosts + i] += now.saturating_sub(st.max(istart));
                    p.pause_started = Some(now);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::FlowStart(f) => self.on_flow_start(f),
            Event::QpSend(f) => self.on_qp_send(f),
            Event::Arrive { node, in_port, pkt } => {
                let node = node as NodeId;
                match self.topo.kind(node) {
                    NodeKind::Host => self.host_receive(node, pkt),
                    _ => self.switch_receive(node, in_port as usize, pkt),
                }
            }
            Event::PortFree { node, port } => {
                let (node, port) = (node as NodeId, port as usize);
                match self.topo.kind(node) {
                    NodeKind::Host => {
                        self.hosts[node].tx_busy = false;
                        self.unblock_host_flows(node);
                        self.host_try_tx(node);
                    }
                    _ => {
                        let sw = node - self.topo.n_hosts();
                        self.switches[sw].ports[port].busy = false;
                        self.switch_try_tx(node, port);
                    }
                }
            }
            Event::PfcSet { node, port, paused } => {
                self.on_pfc_set(node as NodeId, port as usize, paused)
            }
            Event::RetxCheck(f) => self.on_retx_check(f),
            Event::Fault(idx) => self.apply_fault(idx),
        }
    }

    fn on_flow_start(&mut self, f: FlowId) {
        let meta = self.flows[f as usize];
        let port = self.topo.ports(meta.src)[0];
        let line_rate = port.bw * 1e9; // bytes/ns -> bytes/sec
        let rp = RpState::new(line_rate, self.cfg.dcqcn, self.now);
        self.hosts[meta.src].senders.insert(
            f,
            SenderFlow {
                dst: meta.dst,
                bytes: meta.bytes,
                sent: 0,
                acked: 0,
                rp,
                send_scheduled: true,
                last_send: None,
                blocked: false,
                last_progress: self.now,
                retx_armed: false,
                done: false,
            },
        );
        self.sched_local(meta.src, self.now, Event::QpSend(f));
    }

    /// A QP pacing tick. The pacing gap after a segment is
    /// `wire_bytes / R_C`, but `R_C` keeps moving (DCQCN timer increases),
    /// so a tick that fires before the gap has elapsed *re-evaluates* at
    /// the earlier of the remaining gap or one increase-timer period —
    /// this is what lets a min-rate QP recover at timer speed instead of
    /// once per (possibly huge) pacing gap.
    fn on_qp_send(&mut self, f: FlowId) {
        /// Upper bound between pacing re-evaluations for throttled QPs.
        const RECHECK: Nanos = 50 * MICRO;
        let meta = self.flows[f as usize];
        let h = meta.src;
        let (payload, wire, dst, next_gap, all_sent, arm_retx);
        {
            let nic_limit = self.cfg.nic_queue_pkts;
            let data_depth = self.hosts[h].tx_queues[CLASS_DATA].len();
            let Some(s) = self.hosts[h].senders.get_mut(&f) else {
                return; // completed
            };
            s.send_scheduled = false;
            if s.done || s.sent >= s.bytes {
                return;
            }
            if data_depth >= nic_limit {
                if !s.blocked {
                    s.blocked = true;
                    self.hosts[h].blocked.push(f);
                }
                return;
            }
            s.rp.advance(self.now);
            payload = (self.cfg.mtu_payload as u64).min(s.bytes - s.sent) as u32;
            wire = payload + self.cfg.header_bytes;
            dst = s.dst;
            // Pacing: may we transmit yet at the *current* rate?
            let rate = s.rp.rate().max(1.0); // bytes/sec
            if let Some(last) = s.last_send {
                let gap = ((wire as f64) * 1e9 / rate).ceil() as Nanos;
                let allowed = last.saturating_add(gap);
                if allowed > self.now {
                    // Too early; re-check when the gap (at today's rate)
                    // elapses, or sooner so rate recovery shortens it.
                    s.send_scheduled = true;
                    let recheck = allowed.min(self.now + RECHECK).max(self.now + 1);
                    self.sched_local(h, recheck, Event::QpSend(f));
                    return;
                }
            }
            let seq = s.sent;
            s.sent += payload as u64;
            s.last_send = Some(self.now);
            all_sent = s.sent >= s.bytes;
            s.rp.on_send(self.now, wire as u64);
            let rate = s.rp.rate().max(1.0);
            next_gap = ((wire as f64) * 1e9 / rate).ceil() as Nanos;
            arm_retx = all_sent && !s.retx_armed;
            if arm_retx {
                s.retx_armed = true;
            }
            if !all_sent {
                s.send_scheduled = true;
            }
            let pkt = Packet::data(
                f,
                meta.qp,
                h,
                dst,
                seq,
                s.bytes,
                payload,
                self.cfg.header_bytes,
                self.now,
            );
            let id = self.packets.insert(pkt);
            self.hosts[h].tx_queues[CLASS_DATA].push_back(QueuedPkt {
                id,
                wire,
                in_port: 0,
            });
        }
        if self.cfg.track_ground_truth {
            *self.accum.truth_flow_bytes.entry(meta.qp).or_insert(0) += payload as u64;
        }
        if !all_sent {
            let next = self.now + next_gap.clamp(1, RECHECK);
            self.sched_local(h, next, Event::QpSend(f));
        }
        if arm_retx {
            self.sched_local(h, self.now + self.cfg.rto, Event::RetxCheck(f));
        }
        self.host_try_tx(h);
    }

    /// Serialization time of a `wire`-byte packet leaving `(node, port)`.
    /// Clean links hit the precomputed MTU/control-frame entries; odd
    /// sizes (a flow's final partial segment) and degraded links pay the
    /// ceil-division.
    #[inline]
    fn ser_time(&self, node: NodeId, port: usize, wire: u32) -> Nanos {
        let rf = self.links[node][port].rate_factor;
        if rf == 1.0 {
            let (ser_mtu, ser_ctrl) = self.ser_cache[node][port];
            if wire == self.mtu_wire {
                return ser_mtu;
            }
            if wire == self.cfg.ctrl_bytes {
                return ser_ctrl;
            }
        }
        let rate = self.topo.ports(node)[port].bw * rf.max(f64::MIN_POSITIVE);
        ((wire as f64) / rate).ceil() as Nanos
    }

    fn unblock_host_flows(&mut self, h: NodeId) {
        if self.hosts[h].blocked.is_empty()
            || self.hosts[h].tx_queues[CLASS_DATA].len() >= self.cfg.nic_queue_pkts
        {
            return;
        }
        let blocked = std::mem::take(&mut self.hosts[h].blocked);
        for f in blocked {
            if let Some(s) = self.hosts[h].senders.get_mut(&f) {
                s.blocked = false;
                if !s.send_scheduled && !s.done && s.sent < s.bytes {
                    s.send_scheduled = true;
                    self.sched_local(h, self.now, Event::QpSend(f));
                }
            }
        }
    }

    fn host_try_tx(&mut self, h: NodeId) {
        if self.hosts[h].tx_busy {
            return;
        }
        let Some((q, class)) = self.hosts[h].dequeue() else {
            return;
        };
        paraleon_audit::check(!(class == CLASS_DATA && self.hosts[h].data_paused), || {
            paraleon_audit::AuditViolation::PfcPausedDequeue {
                node: h as u32,
                port: 0,
            }
        });
        self.hosts[h].tx_busy = true;
        if class == CLASS_DATA {
            self.accum.host_up_bytes[h] += q.wire as u64;
        }
        let port = self.topo.ports(h)[0];
        let ser = self.ser_time(h, 0, q.wire);
        if self.link_delivers(h, 0) {
            self.sched_cross(
                h,
                port.peer,
                self.now + ser + port.delay,
                Event::Arrive {
                    node: port.peer as u32,
                    in_port: port.peer_port as u16,
                    pkt: q.id,
                },
                Some(q.id),
            );
        } else {
            self.packets.discard(q.id);
        }
        self.sched_local(
            h,
            self.now + ser,
            Event::PortFree {
                node: h as u32,
                port: 0,
            },
        );
    }

    // ------------------------------------------------------------------
    // Switch path
    // ------------------------------------------------------------------

    fn switch_receive(&mut self, node: NodeId, in_port: usize, id: PacketId) {
        let n_hosts = self.topo.n_hosts();
        let sw = node - n_hosts;
        let (wire, class, qp, dst, payload, already_sketched) = {
            let pkt = self.packets.get(id);
            (
                pkt.wire_bytes as u64,
                pkt.class as usize,
                pkt.qp,
                pkt.dst as NodeId,
                pkt.payload_bytes as u64,
                pkt.sketched,
            )
        };
        if class == CLASS_DATA {
            // One bounds-checked index into the switch table for the whole
            // admission + PFC + sketch block (this runs per data packet
            // per hop; `accum`/`packets` are disjoint fields, so the
            // scoped borrow coexists with them; the XOFF frame itself is
            // scheduled after the borrow ends).
            let s = &mut self.switches[sw];
            // Shared-buffer admission.
            if s.buffer_used + wire > self.cfg.switch_buffer_bytes {
                s.drops += 1;
                self.accum.drops += 1;
                self.total_drops += 1;
                tel::count(tel::Ctr::Drops);
                self.packets.discard(id);
                return;
            }
            s.buffer_used += wire;
            s.ingress_bytes[in_port] += wire;
            // PFC XOFF on the upstream if this ingress queue exceeds the
            // dynamic threshold.
            let th = s.pause_threshold(self.cfg.pfc_alpha, self.cfg.switch_buffer_bytes);
            let xoff = s.ingress_bytes[in_port] as f64 > th && !s.sent_xoff[in_port];
            if xoff {
                s.sent_xoff[in_port] = true;
            }
            // ToR measurement point (Keypoint 1: insert once, mark TOS).
            let dedup = self.cfg.tos_dedup;
            if let Some(sk) = s.sketch.as_mut() {
                if !dedup || !already_sketched {
                    sk.insert(qp, payload);
                    if dedup {
                        self.packets.get_mut(id).sketched = true;
                    }
                }
            }
            if xoff {
                self.pfc_audit.xoff(sw as u32, in_port as u32);
                self.accum.pfc_events += 1;
                self.total_pfc_events += 1;
                tel::event_at(
                    self.now,
                    tel::Event::PfcXoff {
                        switch: sw as u32,
                        port: in_port as u32,
                    },
                );
                let up = self.topo.ports(node)[in_port];
                self.sched_cross(
                    node,
                    up.peer,
                    self.now + up.delay,
                    Event::PfcSet {
                        node: up.peer as u32,
                        port: up.peer_port as u16,
                        paused: true,
                    },
                    None,
                );
            }
        }
        // Route and (for data) ECN-mark on enqueue: ECMP pins the QP, so
        // round after round of a collective follows one path — unless a
        // fault killed it, in which case the flow rehashes over the
        // surviving uplinks.
        let hash = hash64(qp, 0x5EED_0F10);
        let out = if self.links_down == 0 {
            // Fault-free fast path: with every link up the liveness mask
            // is vacuous, so routing collapses to pure index arithmetic
            // (the masked ECMP picks the k-th *live* uplink, which is
            // exactly `next_port`'s k-th uplink when none are down).
            Some(self.topo.next_port(node, dst, hash))
        } else {
            let links = &self.links;
            self.topo
                .next_port_masked(node, dst, hash, |n, p| links[n][p].up)
        };
        let Some(out) = out else {
            // No live egress toward the destination: the packet is lost
            // to the fault (go-back-N recovers once a path returns).
            if class == CLASS_DATA {
                self.switches[sw].buffer_used -= wire;
                self.switches[sw].ingress_bytes[in_port] -= wire;
            }
            self.accum.fault_drops += 1;
            self.total_fault_drops += 1;
            tel::count(tel::Ctr::FaultDrops);
            self.packets.discard(id);
            return;
        };
        if class == CLASS_DATA {
            // The RED coin comes from *this switch's* stream: the draw
            // sequence depends only on the data packets this switch
            // examined, in its own event order — identical under the
            // sharded engine.
            let (qb, mark) = {
                let s = &mut self.switches[sw];
                let qb = s.ports[out].qbytes[CLASS_DATA];
                let u: f64 = s.ecn_rng.gen();
                (qb, s.marker.should_mark(qb as f64, u))
            };
            tel::observe(tel::Hist::QueueBytes, qb);
            if mark {
                self.packets.get_mut(id).ecn = true;
                self.accum.ecn_marks += 1;
                tel::event_at(
                    self.now,
                    tel::Event::EcnMark {
                        switch: sw as u32,
                        queue_bytes: qb,
                    },
                );
            }
        }
        {
            let p = &mut self.switches[sw].ports[out];
            p.qbytes[class] += wire;
            p.queues[class].push_back(QueuedPkt {
                id,
                wire: wire as u32,
                in_port: in_port as u16,
            });
        }
        self.switch_try_tx(node, out);
    }

    fn switch_try_tx(&mut self, node: NodeId, port: usize) {
        let n_hosts = self.topo.n_hosts();
        let sw = node - n_hosts;
        // Scoped borrow: one switch-table index for the dequeue + byte
        // accounting block (disjoint from `accum`/`events`/`topo`).
        let s = &mut self.switches[sw];
        if s.ports[port].busy {
            return;
        }
        let Some((q, class)) = s.dequeue(port) else {
            return;
        };
        paraleon_audit::check(!(class == CLASS_DATA && s.ports[port].data_paused), || {
            paraleon_audit::AuditViolation::PfcPausedDequeue {
                node: node as u32,
                port: port as u32,
            }
        });
        s.ports[port].busy = true;
        let id = q.id;
        let pin_port = q.in_port as usize;
        if class == CLASS_DATA {
            let wire = q.wire as u64;
            s.buffer_used -= wire;
            s.ingress_bytes[pin_port] -= wire;
            self.accum.switch_tx_bytes[sw] += wire;
            // PFC XON once the ingress queue drains below hysteresis.
            if s.sent_xoff[pin_port] {
                let th = s.pause_threshold(self.cfg.pfc_alpha, self.cfg.switch_buffer_bytes)
                    * self.cfg.pfc_xon_frac;
                if (s.ingress_bytes[pin_port] as f64) <= th {
                    s.sent_xoff[pin_port] = false;
                    self.pfc_audit.xon(sw as u32, pin_port as u32);
                    tel::event_at(
                        self.now,
                        tel::Event::PfcXon {
                            switch: sw as u32,
                            port: pin_port as u32,
                        },
                    );
                    let up = self.topo.ports(node)[pin_port];
                    self.sched_cross(
                        node,
                        up.peer,
                        self.now + up.delay,
                        Event::PfcSet {
                            node: up.peer as u32,
                            port: up.peer_port as u16,
                            paused: false,
                        },
                        None,
                    );
                }
            }
        }
        let link = self.topo.ports(node)[port];
        let ser = self.ser_time(node, port, q.wire);
        if self.link_delivers(node, port) {
            self.sched_cross(
                node,
                link.peer,
                self.now + ser + link.delay,
                Event::Arrive {
                    node: link.peer as u32,
                    in_port: link.peer_port as u16,
                    pkt: id,
                },
                Some(id),
            );
        } else {
            self.packets.discard(id);
        }
        self.sched_local(
            node,
            self.now + ser,
            Event::PortFree {
                node: node as u32,
                port: port as u16,
            },
        );
    }

    fn on_pfc_set(&mut self, node: NodeId, port: usize, paused: bool) {
        match self.topo.kind(node) {
            NodeKind::Host => {
                let host = &mut self.hosts[node];
                if paused {
                    if host.pause_started.is_none() {
                        host.pause_started = Some(self.now);
                    }
                    host.data_paused = true;
                } else {
                    if let Some(st) = host.pause_started.take() {
                        self.accum.pause_ns[node] +=
                            self.now.saturating_sub(st.max(self.interval_start));
                    }
                    host.data_paused = false;
                    self.host_try_tx(node);
                }
            }
            _ => {
                let n_hosts = self.topo.n_hosts();
                let sw = node - n_hosts;
                let p = &mut self.switches[sw].ports[port];
                if paused {
                    if p.pause_started.is_none() {
                        p.pause_started = Some(self.now);
                    }
                    p.data_paused = true;
                } else {
                    if let Some(st) = p.pause_started.take() {
                        self.accum.pause_ns[node] +=
                            self.now.saturating_sub(st.max(self.interval_start));
                    }
                    p.data_paused = false;
                    self.switch_try_tx(node, port);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Host receive path
    // ------------------------------------------------------------------

    fn host_receive(&mut self, h: NodeId, id: PacketId) {
        // Final consumption: the packet leaves the arena here.
        let pkt = self.packets.take(id);
        match pkt.kind {
            PacketKind::Data { seq, flow_bytes } => {
                self.accum.host_down_bytes[h] += pkt.wire_bytes as u64;
                self.accum.bytes_delivered += pkt.payload_bytes as u64;
                let dcqcn_plus = self.cfg.dcqcn_plus;
                let params = self.cfg.dcqcn;
                let ctrl = self.cfg.ctrl_bytes;
                let ack_every = self.cfg.ack_every;
                let host = &mut self.hosts[h];
                let iv = if pkt.ecn && dcqcn_plus {
                    Some(host.incast.on_mark(pkt.flow, self.now))
                } else {
                    None
                };
                let r = host.receivers.entry(pkt.flow).or_insert_with(|| RecvFlow {
                    received: 0,
                    np: NpState::new(params),
                    pkts_since_ack: 0,
                });
                r.received = (r.received + pkt.payload_bytes as u64).min(flow_bytes);
                // At most one CNP and one ACK per arrival; stack slots
                // keep this per-packet path allocation-free.
                let mut cnp: Option<Packet> = None;
                let mut ack: Option<Packet> = None;
                if pkt.ecn {
                    if let Some(sig) = r.np.on_packet(self.now, true, iv) {
                        cnp = Some(Packet::cnp(
                            pkt.flow,
                            h,
                            pkt.src as NodeId,
                            sig.advertised_interval_us,
                            ctrl,
                            self.now,
                        ));
                    }
                }
                r.pkts_since_ack += 1;
                let last = seq + pkt.payload_bytes as u64 >= flow_bytes;
                if last || r.pkts_since_ack >= ack_every {
                    ack = Some(Packet::ack(
                        pkt.flow,
                        h,
                        pkt.src as NodeId,
                        r.received,
                        pkt.sent_at,
                        ctrl,
                        self.now,
                    ));
                    r.pkts_since_ack = 0;
                }
                let finished = r.received >= flow_bytes && last;
                if finished {
                    host.receivers.remove(&pkt.flow);
                }
                if cnp.is_some() {
                    tel::event_at(
                        self.now,
                        tel::Event::CnpSent {
                            host: h as u32,
                            flow: pkt.flow,
                        },
                    );
                }
                for p in [cnp, ack].into_iter().flatten() {
                    let wire = p.wire_bytes;
                    let pid = self.packets.insert(p);
                    self.hosts[h].tx_queues[CLASS_CTRL].push_back(QueuedPkt {
                        id: pid,
                        wire,
                        in_port: 0,
                    });
                }
                self.host_try_tx(h);
            }
            PacketKind::Ack { acked_bytes, echo } => {
                let meta = self.flows[pkt.flow as usize];
                let rtt = self.now.saturating_sub(echo).max(1);
                tel::observe(tel::Hist::RttNs, rtt);
                let base = self.base_rtt(meta.src, meta.dst);
                // Per-sender-host slots: the interval fold over hosts is
                // in fixed id order, so the f64 sums are bit-identical no
                // matter which shard (or order) the ACKs landed in.
                self.accum.gamma_sum[h] += (base as f64 / rtt as f64).min(1.0);
                self.accum.rtt_sum[h] += rtt as f64;
                self.accum.rtt_count[h] += 1;
                let mut completed = false;
                if let Some(s) = self.hosts[h].senders.get_mut(&pkt.flow) {
                    if acked_bytes > s.acked {
                        s.acked = acked_bytes;
                        s.last_progress = self.now;
                    }
                    if s.acked >= s.bytes && !s.done {
                        s.done = true;
                        completed = true;
                    }
                }
                if completed {
                    self.hosts[h].senders.remove(&pkt.flow);
                    self.flows[pkt.flow as usize].done = true;
                    self.active_flows -= 1;
                    tel::observe(tel::Hist::FctNs, self.now.saturating_sub(meta.start).max(1));
                    self.completions.push(FlowRecord {
                        flow: pkt.flow,
                        src: meta.src,
                        dst: meta.dst,
                        bytes: meta.bytes,
                        start: meta.start,
                        finish: self.now,
                    });
                }
            }
            PacketKind::Cnp {
                advertised_interval_us,
            } => {
                self.accum.cnps += 1;
                tel::count(tel::Ctr::CnpReceived);
                let dcqcn_plus = self.cfg.dcqcn_plus;
                let base_iv = self.cfg.dcqcn.min_time_between_cnps.max(1.0);
                if let Some(s) = self.hosts[h].senders.get_mut(&pkt.flow) {
                    s.rp.on_cnp(self.now);
                    if dcqcn_plus {
                        if let Some(iv) = advertised_interval_us {
                            // DCQCN+: scale rate-increase aggressiveness
                            // down with the incast degree.
                            s.rp.set_increase_scale((base_iv / iv).clamp(0.01, 1.0));
                        }
                    }
                }
            }
        }
    }

    fn on_retx_check(&mut self, f: FlowId) {
        let rto = self.cfg.rto;
        let src = self.flows[f as usize].src;
        let mut reschedule = false;
        let mut resend = false;
        if let Some(s) = self.hosts[src].senders.get_mut(&f) {
            if !s.done {
                reschedule = true;
                if self.now.saturating_sub(s.last_progress) >= rto && s.sent >= s.bytes {
                    // Go-back-N: rewind to the cumulative ACK point.
                    s.sent = s.acked;
                    s.last_progress = self.now;
                    if !s.send_scheduled {
                        s.send_scheduled = true;
                        resend = true;
                    }
                }
            } else {
                s.retx_armed = false;
            }
        }
        if resend {
            self.sched_local(src, self.now, Event::QpSend(f));
        }
        if reschedule {
            self.sched_local(src, self.now + rto, Event::RetxCheck(f));
        }
    }
}
