//! Fault-plan behaviour tests: scheduled link failures, degradation,
//! corruption and PFC storms executed through the event engine — and the
//! determinism property that makes the whole mechanism usable for
//! reproducible experiments.

use proptest::prelude::*;

use paraleon_netsim::{FaultPlan, SimConfig, SimError, Simulator, Topology, MICRO, MILLI, SEC};
use paraleon_telemetry as tel;

fn small_clos() -> Topology {
    Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000)
}

/// ToR0 is node 8 in the 2×4×2 CLOS; its uplinks are ports 4 and 5.
const TOR0: usize = 8;

#[test]
fn flows_survive_a_link_flap_via_ecmp_reroute() {
    // Cross-ToR flows with one ToR0 uplink flapping: the masked ECMP
    // steers affected flows over the surviving uplink, go-back-N cleans
    // up whatever was in flight, and every flow completes.
    let mut s = Simulator::new(small_clos(), SimConfig::default());
    let mut plan = FaultPlan::new(3);
    plan.link_flap(TOR0, 4, 200 * MICRO, 300 * MICRO, 800 * MICRO, 3);
    s.install_fault_plan(&plan).unwrap();
    for src in 0..4usize {
        s.add_flow(src, 4 + src, 2_000_000, 0);
    }
    s.run_until(5 * SEC);
    assert_eq!(s.take_completions().len(), 4, "all flows must complete");
    assert!(
        s.total_fault_drops > 0,
        "in-flight packets on the dying link must be lost"
    );
    assert!(s.link_state(TOR0, 4).is_clean(), "flap must end link-up");
}

#[test]
fn dead_link_stops_delivering_until_recovery() {
    // Single-path victim: host 0's only link goes down mid-transfer.
    // Nothing can reroute (hosts are single-homed), so the flow stalls
    // and only finishes after recovery.
    let mut s = Simulator::new(small_clos(), SimConfig::default());
    let mut plan = FaultPlan::new(1);
    plan.link_down(20 * MICRO, 0, 0);
    plan.link_up(2 * MILLI, 0, 0);
    s.install_fault_plan(&plan).unwrap();
    s.add_flow(0, 5, 2_000_000, 0);
    s.run_until(2 * MILLI - MICRO); // just before the scheduled recovery
    assert_eq!(s.take_completions().len(), 0, "flow cannot finish cut off");
    assert!(!s.node_reachable(0), "host 0 is unreachable while down");
    s.run_until(5 * SEC);
    assert_eq!(s.take_completions().len(), 1, "recovery completes the flow");
}

#[test]
fn degraded_link_slows_the_flow_down() {
    let fct = |factor: Option<f64>| {
        let mut s = Simulator::new(small_clos(), SimConfig::default());
        if let Some(f) = factor {
            let mut plan = FaultPlan::new(0);
            plan.degrade(0, 0, 0, f);
            s.install_fault_plan(&plan).unwrap();
        }
        s.add_flow(0, 1, 2_000_000, 0);
        s.run_until(5 * SEC);
        s.take_completions()[0].fct()
    };
    let clean = fct(None);
    let slow = fct(Some(0.25));
    assert!(
        slow > clean * 2,
        "quarter-rate link must at least double the FCT: {clean} -> {slow}"
    );
}

#[test]
fn corruption_drops_packets_but_flows_recover() {
    let mut s = Simulator::new(small_clos(), SimConfig::default());
    let mut plan = FaultPlan::new(42);
    plan.pkt_loss(0, 4 * MILLI, 0, 0, 0.05);
    s.install_fault_plan(&plan).unwrap();
    s.add_flow(0, 5, 2_000_000, 0);
    s.run_until(10 * SEC);
    assert!(s.total_fault_drops > 0, "5% corruption must hit something");
    assert_eq!(s.take_completions().len(), 1, "go-back-N must recover");
    assert!(s.link_state(0, 0).is_clean(), "window must self-clear");
}

#[test]
fn pfc_storm_pauses_the_tor_down_port_and_spikes_the_ratio() {
    let mut s = Simulator::new(small_clos(), SimConfig::default());
    let mut plan = FaultPlan::new(0);
    plan.pfc_storm(0, 0, MILLI);
    s.install_fault_plan(&plan).unwrap();
    // Traffic towards the stormer keeps its ToR down-port busy-paused.
    s.add_flow(1, 0, 4_000_000, 0);
    s.run_until(MILLI);
    let m = s.collect_interval();
    // The frozen down-port pauses ToR0 for the full interval and the
    // backed-up buffer XOFFs the sender; averaged over all 20 nodes
    // that is a clear spike above the (otherwise ~0) baseline.
    assert!(
        m.pfc_pause_ratio > 0.1,
        "sustained XOFF must dominate the pause accounting, got {}",
        m.pfc_pause_ratio
    );
    assert!(m.pfc_events > 0);
    // After the storm the fabric drains and the flow completes.
    s.run_until(5 * SEC);
    assert_eq!(s.take_completions().len(), 1);
    let m = s.collect_interval();
    assert!(
        m.pfc_pause_ratio < 0.05,
        "storm end must release the port, got {}",
        m.pfc_pause_ratio
    );
}

#[test]
fn cut_off_switch_is_omitted_from_uploads_not_zeroed() {
    let mut s = Simulator::new(small_clos(), SimConfig::default());
    let n_switches = s.n_switches();
    // Kill every link of ToR1 (node 9: 4 down-ports + 2 uplinks).
    let mut plan = FaultPlan::new(0);
    for port in 0..6 {
        plan.link_down(100 * MICRO, 9, port);
    }
    s.install_fault_plan(&plan).unwrap();
    s.add_flow(0, 1, 500_000, 0); // intra-ToR0 traffic keeps flowing
    s.run_until(MILLI);
    let m = s.collect_interval();
    assert!(!s.node_reachable(9));
    assert_eq!(
        m.switch_obs.len(),
        n_switches - 1,
        "the dead switch must be absent, not reported as zeros"
    );
    assert!(m.switch_obs.iter().all(|o| o.node != 9));
    assert_eq!(s.take_completions().len(), 1);
}

#[test]
fn install_validates_the_plan() {
    let mut s = Simulator::new(small_clos(), SimConfig::default());
    s.run_until(MILLI);

    let mut past = FaultPlan::new(0);
    past.link_down(0, 0, 0); // now = 1 ms
    assert!(matches!(
        s.install_fault_plan(&past),
        Err(SimError::TimeInPast { .. })
    ));

    let mut bad_node = FaultPlan::new(0);
    bad_node.link_down(2 * MILLI, 999, 0);
    assert!(matches!(
        s.install_fault_plan(&bad_node),
        Err(SimError::NodeOutOfRange { .. })
    ));

    let mut bad_port = FaultPlan::new(0);
    bad_port.link_down(2 * MILLI, 0, 7);
    assert!(matches!(
        s.install_fault_plan(&bad_port),
        Err(SimError::PortOutOfRange { .. })
    ));

    let mut storm_on_switch = FaultPlan::new(0);
    storm_on_switch.pfc_storm(TOR0, 2 * MILLI, 3 * MILLI);
    assert!(matches!(
        s.install_fault_plan(&storm_on_switch),
        Err(SimError::NotAHost { .. })
    ));
}

#[test]
fn set_switch_ecn_rejects_out_of_range_indexes() {
    let mut s = Simulator::new(small_clos(), SimConfig::default());
    let p = paraleon_dcqcn::DcqcnParams::nvidia_default();
    assert!(s.set_switch_ecn(0, &p).is_ok());
    assert!(matches!(
        s.set_switch_ecn(99, &p),
        Err(SimError::SwitchIndexOutOfRange { index: 99, .. })
    ));
}

#[test]
fn try_add_flow_rejects_bad_endpoints() {
    let mut s = Simulator::new(small_clos(), SimConfig::default());
    assert!(matches!(
        s.try_add_flow(0, 50, 1_000, 0),
        Err(SimError::BadEndpoints { .. })
    ));
    assert!(matches!(
        s.try_add_flow(0, 1, 0, 0),
        Err(SimError::EmptyFlow)
    ));
    assert!(s.try_add_flow(0, 1, 1_000, 0).is_ok());
}

// ---------------------------------------------------------------------
// Determinism under faults (ISSUE satellite): identical seeds and an
// identical fault plan must replay identically — same FlowRecords (FCT
// for FCT) and the same telemetry event stream.
// ---------------------------------------------------------------------

/// One full run; returns (completions, flight-recorder events).
fn run_once(
    seed: u64,
    flows: &[(usize, usize, u64, u64)],
    plan: &FaultPlan,
) -> (
    Vec<paraleon_netsim::FlowRecord>,
    Vec<paraleon_telemetry::TimedEvent>,
) {
    tel::reset();
    let cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    let mut s = Simulator::new(small_clos(), cfg);
    s.install_fault_plan(plan).unwrap();
    for &(src, dst, bytes, start) in flows {
        s.add_flow(src, dst, bytes, start);
    }
    for _ in 0..8 {
        s.run_for(500 * MICRO);
        s.collect_interval();
    }
    s.run_until(5 * SEC);
    let mut done = s.take_completions();
    done.sort_by_key(|r| r.flow);
    (done, tel::flight_events())
}

fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    let flap = (0usize..2, 4usize..6, 1u32..3).prop_map(|(tor, port, n)| {
        let mut p = FaultPlan::new(0);
        p.link_flap(8 + tor, port, 200 * MICRO, 200 * MICRO, 600 * MICRO, n);
        p
    });
    let loss = (0usize..8, 1u64..30).prop_map(|(host, pct)| {
        let mut p = FaultPlan::new(0);
        p.pkt_loss(100 * MICRO, 2 * MILLI, host, 0, pct as f64 / 100.0);
        p
    });
    let storm = (0usize..8,).prop_map(|(host,)| {
        let mut p = FaultPlan::new(0);
        p.pfc_storm(host, 300 * MICRO, 1_200 * MICRO);
        p
    });
    let degrade = (8usize..10, 0usize..4, 1u64..9).prop_map(|(node, port, tenths)| {
        let mut p = FaultPlan::new(0);
        p.degrade(150 * MICRO, node, port, tenths as f64 / 10.0);
        p.restore_rate(2 * MILLI, node, port);
        p
    });
    (
        prop::collection::vec(prop_oneof![flap, loss, storm, degrade], 1..4),
        0u64..1_000,
    )
        .prop_map(|(parts, seed)| {
            let mut plan = FaultPlan::new(seed);
            for part in parts {
                for ev in part.events() {
                    plan.push(*ev);
                }
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn identical_seed_and_plan_replay_identically(
        seed in 0u64..10_000,
        flows in prop::collection::vec(
            (0usize..8, 0usize..8, 50_000u64..1_500_000, 0u64..500_000),
            1..6,
        ),
        plan in arb_fault_plan(),
    ) {
        // Self-flows are invalid: remap the destination off the source.
        let flows: Vec<_> = flows
            .into_iter()
            .map(|(s, d, b, t)| if s == d { (s, (d + 1) % 8, b, t) } else { (s, d, b, t) })
            .collect();
        let (fct_a, ev_a) = run_once(seed, &flows, &plan);
        let (fct_b, ev_b) = run_once(seed, &flows, &plan);
        prop_assert_eq!(fct_a, fct_b, "FlowRecords diverged under replay");
        prop_assert_eq!(ev_a, ev_b, "telemetry event streams diverged");
    }

    #[test]
    fn different_plan_seed_changes_only_corruption_draws(
        seed in 0u64..1_000,
    ) {
        // Same sim seed, two plan seeds: with corruption active the drop
        // pattern may differ, but the run must stay internally valid
        // (all flows complete; fault drops occur under 30% loss).
        for plan_seed in [1u64, 2] {
            let mut plan = FaultPlan::new(plan_seed);
            plan.pkt_loss(0, 3 * MILLI, 0, 0, 0.3);
            let (done, _) = {
                tel::reset();
                let cfg = SimConfig { seed, ..SimConfig::default() };
                let mut s = Simulator::new(small_clos(), cfg);
                s.install_fault_plan(&plan).unwrap();
                s.add_flow(0, 5, 500_000, 0);
                s.run_until(10 * SEC);
                prop_assert!(s.total_fault_drops > 0);
                (s.take_completions(), ())
            };
            prop_assert_eq!(done.len(), 1);
        }
    }
}
