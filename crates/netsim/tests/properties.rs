//! Property-based tests for the fabric simulator: conservation and
//! liveness under randomized scenarios.

use proptest::prelude::*;

use paraleon_netsim::{SimConfig, Simulator, Topology, MILLI, SEC};

/// Random small scenarios: up to 12 flows between random host pairs.
fn scenarios() -> impl Strategy<Value = Vec<(usize, usize, u64, u64)>> {
    prop::collection::vec(
        (0usize..8, 0usize..8, 1u64..2_000_000, 0u64..2 * MILLI),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every admitted flow eventually completes, exactly once, with a
    /// completion time after its start, and the fabric stays lossless.
    #[test]
    fn all_flows_complete_exactly_once(scenario in scenarios()) {
        let topo = Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000);
        let mut sim = Simulator::new(topo, SimConfig::default());
        let mut expected = 0;
        for (src, dst, bytes, start) in scenario {
            if src != dst {
                sim.add_flow(src, dst, bytes, start);
                expected += 1;
            }
        }
        sim.run_until(5 * SEC);
        let done = sim.take_completions();
        prop_assert_eq!(done.len(), expected, "missing completions");
        prop_assert_eq!(sim.active_flows(), 0);
        prop_assert_eq!(sim.total_drops, 0, "PFC must keep it lossless");
        let mut ids: Vec<_> = done.iter().map(|r| r.flow).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), expected, "duplicate completion records");
        for r in &done {
            prop_assert!(r.finish > r.start);
            // Can't beat the line rate plus propagation.
            let min_fct = (r.bytes as f64 / 12.5) as u64; // ns at 100G
            prop_assert!(r.fct() >= min_fct.min(1), "impossible FCT {}", r.fct());
        }
    }

    /// Delivered payload bytes over all intervals equal the sum of flow
    /// sizes (byte conservation across queues, PFC and retransmit).
    #[test]
    fn payload_bytes_are_conserved(scenario in scenarios()) {
        let topo = Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000);
        let mut sim = Simulator::new(topo, SimConfig::default());
        let mut total = 0u64;
        for (src, dst, bytes, start) in scenario {
            if src != dst {
                sim.add_flow(src, dst, bytes, start);
                total += bytes;
            }
        }
        let mut delivered = 0u64;
        while sim.active_flows() > 0 && sim.now() < 5 * SEC {
            sim.run_for(10 * MILLI);
            delivered += sim.collect_interval().bytes_delivered;
        }
        delivered += sim.collect_interval().bytes_delivered;
        prop_assert_eq!(delivered, total);
    }

    /// Interval metric terms stay within their documented ranges.
    #[test]
    fn metric_terms_stay_normalized(scenario in scenarios()) {
        let topo = Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000);
        let mut sim = Simulator::new(topo, SimConfig::default());
        for (src, dst, bytes, start) in scenario {
            if src != dst {
                sim.add_flow(src, dst, bytes, start);
            }
        }
        for _ in 0..10 {
            sim.run_for(MILLI);
            let m = sim.collect_interval();
            prop_assert!((0.0..=1.0).contains(&m.avg_uplink_utilization));
            prop_assert!((0.0..=1.0).contains(&m.avg_normalized_rtt));
            prop_assert!((0.0..=1.0).contains(&m.pfc_pause_ratio));
            for s in &m.switch_obs {
                prop_assert!((0.0..=1.0).contains(&s.tx_utilization));
                prop_assert!((0.0..=1.0).contains(&s.marking_rate));
                prop_assert!((0.0..=1.0).contains(&s.queue_frac));
            }
        }
    }
}
