//! Auditor-centric property tests.
//!
//! Two guarantees, exercised over randomized topologies, workloads and
//! fault plans:
//!
//! 1. **Zero violations** — the simulator maintains every invariant the
//!    auditor checks (packet conservation, shared-buffer accounting, PFC
//!    pairing and pause budgets, event ordering) across random scenarios,
//!    including incast pressure and injected faults.
//! 2. **Observational transparency** — auditing never perturbs the
//!    simulation: an audited run and an unaudited run of the same
//!    (config, seed, FaultPlan) produce byte-identical metrics.
//!
//! Both tests also run (vacuously for the first, trivially for the
//! second) when the `audit` feature is off, so the default test suite
//! keeps covering the scenario space.

use proptest::prelude::*;

use paraleon_audit as audit;
use paraleon_netsim::{FaultPlan, IntervalMetrics, SimConfig, Simulator, Topology, MICRO, MILLI};

/// A randomized scenario: topology dimensions, incast-ish flow set,
/// shrunken shared buffer (to provoke PFC), and a fault plan.
#[derive(Debug, Clone)]
struct Scenario {
    tors: usize,
    hosts_per_tor: usize,
    leaves: usize,
    buffer_kb: u64,
    seed: u64,
    flows: Vec<(usize, usize, u64, u64)>,
    flap_uplink: bool,
    storm_host: Option<usize>,
}

fn scenarios() -> impl Strategy<Value = Scenario> {
    (
        (2usize..=4, 2usize..=5, 1usize..=3),
        256u64..=4096,
        0u64..1u64 << 32,
        prop::collection::vec(
            (0usize..20, 0usize..20, 1u64..1_500_000, 0u64..MILLI),
            1..16,
        ),
        any::<bool>(),
        (any::<bool>(), 0usize..20),
    )
        .prop_map(
            |((tors, hosts_per_tor, leaves), buffer_kb, seed, flows, flap_uplink, storm)| {
                Scenario {
                    tors,
                    hosts_per_tor,
                    leaves,
                    buffer_kb,
                    seed,
                    flows,
                    flap_uplink,
                    storm_host: storm.0.then_some(storm.1),
                }
            },
        )
}

/// Build and run one scenario to quiescence (or a horizon), collecting
/// intervals along the way; returns the per-interval metrics.
fn run_scenario(sc: &Scenario, audited: bool) -> Vec<IntervalMetrics> {
    audit::set_enabled(audited);
    let topo = Topology::two_tier_clos(sc.tors, sc.hosts_per_tor, sc.leaves, 100.0, 100.0, 1_000);
    let n_hosts = sc.tors * sc.hosts_per_tor;
    let cfg = SimConfig {
        switch_buffer_bytes: sc.buffer_kb << 10,
        seed: sc.seed,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo, cfg);
    let mut plan = FaultPlan::new(sc.seed ^ 0xF417);
    if sc.flap_uplink {
        // First ToR's first uplink (port index = hosts_per_tor).
        plan.link_flap(
            n_hosts,
            sc.hosts_per_tor,
            100 * MICRO,
            150 * MICRO,
            500 * MICRO,
            2,
        );
    }
    if let Some(h) = sc.storm_host {
        let h = h % n_hosts;
        plan.pfc_storm(h, 200 * MICRO, 600 * MICRO);
    }
    if !plan.is_empty() {
        sim.install_fault_plan(&plan).unwrap();
    }
    for &(src, dst, bytes, start) in &sc.flows {
        let (src, dst) = (src % n_hosts, dst % n_hosts);
        if src != dst {
            sim.add_flow(src, dst, bytes, start);
        }
    }
    let mut out = Vec::new();
    // λ_MI-style cadence with a bounded horizon (stalled flows under a
    // permanent fault must not hang the test).
    for _ in 0..40 {
        sim.run_for(MILLI);
        out.push(sim.collect_interval());
        if sim.active_flows() == 0 && !sim.has_pending_events() {
            break;
        }
    }
    audit::set_enabled(true);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulator holds every audited invariant across randomized
    /// topologies, incast pressure, link flaps and PFC storms.
    #[test]
    fn randomized_scenarios_produce_zero_violations(sc in scenarios()) {
        audit::reset();
        audit::set_panic_on_violation(false);
        let intervals = run_scenario(&sc, true);
        prop_assert!(!intervals.is_empty());
        let violations = audit::violations();
        prop_assert_eq!(
            audit::violation_count(),
            0,
            "invariant violations: {:?}",
            violations.iter().map(|r| r.violation.to_string()).collect::<Vec<_>>()
        );
    }

    /// Auditing is observationally transparent: the same scenario run
    /// with checks on and off yields byte-identical metrics.
    #[test]
    fn audited_and_unaudited_runs_are_identical(sc in scenarios()) {
        audit::reset();
        audit::set_panic_on_violation(false);
        let on = run_scenario(&sc, true);
        let off = run_scenario(&sc, false);
        prop_assert_eq!(on.len(), off.len());
        for (a, b) in on.iter().zip(off.iter()) {
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }
}
