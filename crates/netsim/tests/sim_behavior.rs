//! End-to-end behavioural tests of the RoCEv2 fabric simulator.

use paraleon_dcqcn::DcqcnParams;
use paraleon_netsim::{SimConfig, Simulator, Topology, MICRO, MILLI, SEC};

fn small_clos() -> Topology {
    // 2 ToRs × 4 hosts, 2 leaves, 100G everywhere, 1 µs links.
    Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000)
}

fn sim(topo: Topology) -> Simulator {
    Simulator::new(topo, SimConfig::default())
}

#[test]
fn single_flow_completes_with_sane_fct() {
    let mut s = sim(small_clos());
    let bytes = 1_250_000u64; // 100 µs of payload at 100 Gbps
    s.add_flow(0, 5, bytes, 0);
    s.run_until(10 * MILLI);
    let done = s.take_completions();
    assert_eq!(done.len(), 1);
    let r = done[0];
    assert_eq!(r.bytes, bytes);
    // Must take at least the line-rate serialization time and less than
    // 5x of it in an empty network.
    let ideal = (bytes as f64 / 12.5e9 * 1e9) as u64;
    assert!(r.fct() >= ideal, "fct {} < ideal {}", r.fct(), ideal);
    assert!(
        r.fct() < 5 * ideal,
        "fct {} way above ideal {}",
        r.fct(),
        ideal
    );
    assert_eq!(s.active_flows(), 0);
}

#[test]
fn intra_tor_beats_inter_tor_latency() {
    let mut s = sim(small_clos());
    s.add_flow(0, 1, 100_000, 0); // same ToR
    s.add_flow(2, 6, 100_000, 0); // across the fabric
    s.run_until(10 * MILLI);
    let done = s.take_completions();
    assert_eq!(done.len(), 2);
    let near = done.iter().find(|r| r.dst == 1).unwrap();
    let far = done.iter().find(|r| r.dst == 6).unwrap();
    assert!(near.fct() < far.fct());
}

#[test]
fn deterministic_replay() {
    let run = || {
        let mut s = sim(small_clos());
        for i in 0..6usize {
            s.add_flow(
                i,
                (i + 4) % 8,
                500_000 + i as u64 * 7_777,
                (i as u64) * 10 * MICRO,
            );
        }
        s.run_until(20 * MILLI);
        let mut f: Vec<_> = s.take_completions();
        f.sort_by_key(|r| r.flow);
        f
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must replay identically");
    assert_eq!(a.len(), 6);
}

#[test]
fn incast_triggers_ecn_and_cnps() {
    let mut s = sim(small_clos());
    // 7-to-1 incast into host 0: heavy congestion at its ToR down-port.
    for src in 1..8usize {
        s.add_flow(src, 0, 4_000_000, 0);
    }
    s.run_until(2 * MILLI);
    let m = s.collect_interval();
    assert!(m.ecn_marks > 0, "incast must mark packets");
    assert!(m.cnps > 0, "marked packets must produce CNPs");
    assert_eq!(m.drops, 0, "PFC must keep the fabric lossless");
    s.run_until(60 * MILLI);
    assert_eq!(s.take_completions().len(), 7, "all incast flows finish");
}

#[test]
fn dcqcn_throttles_senders_under_congestion() {
    let mut s = sim(small_clos());
    for src in 1..8usize {
        s.add_flow(src, 0, 8_000_000, 0);
    }
    // After a while, aggregate delivery rate ~ one line rate (the
    // bottleneck), not seven.
    s.run_until(2 * MILLI);
    s.collect_interval();
    s.run_until(4 * MILLI);
    let m = s.collect_interval();
    let goodput = m.goodput_bytes_per_sec();
    assert!(
        goodput < 1.3 * 12.5e9,
        "goodput {goodput:.3e} exceeds the single bottleneck link"
    );
    assert!(goodput > 0.3 * 12.5e9, "goodput {goodput:.3e} collapsed");
}

#[test]
fn severe_incast_triggers_pfc_but_no_drops() {
    // Tiny buffer to force PFC quickly.
    let cfg = SimConfig {
        switch_buffer_bytes: 256 * 1024,
        ..SimConfig::default()
    };
    let mut s = Simulator::new(small_clos(), cfg);
    for src in 1..8usize {
        s.add_flow(src, 0, 2_000_000, 0);
    }
    s.run_until(5 * MILLI);
    let m = s.collect_interval();
    assert!(m.pfc_events > 0, "tiny buffers must trigger PFC");
    assert!(m.pfc_pause_ratio > 0.0);
    assert_eq!(s.total_drops, 0, "PFC must prevent drops");
}

#[test]
fn uplink_utilization_reflects_load() {
    let mut s = sim(small_clos());
    s.add_flow(0, 5, 12_500_000, 0); // ~1 ms at line rate
    s.run_until(MILLI);
    let m = s.collect_interval();
    assert!(
        m.avg_uplink_utilization > 0.5,
        "one line-rate flow should drive its uplinks hard: {}",
        m.avg_uplink_utilization
    );
    // Idle interval afterwards.
    s.run_until(20 * MILLI);
    s.take_completions();
    s.collect_interval();
    s.run_until(21 * MILLI);
    let idle = s.collect_interval();
    assert_eq!(idle.avg_uplink_utilization, 0.0);
    assert_eq!(idle.bytes_delivered, 0);
}

#[test]
fn rtt_normalization_close_to_one_when_idle() {
    let mut s = sim(small_clos());
    s.add_flow(0, 5, 50_000, 0); // small flow, empty network
    s.run_until(MILLI);
    let m = s.collect_interval();
    assert!(
        m.avg_normalized_rtt > 0.6,
        "empty network should have near-base RTT, got {}",
        m.avg_normalized_rtt
    );
    assert!(m.avg_rtt_ns > 0.0);
}

#[test]
fn rtt_degrades_under_congestion() {
    let mut idle = sim(small_clos());
    idle.add_flow(0, 5, 100_000, 0);
    idle.run_until(MILLI);
    let idle_m = idle.collect_interval();

    let mut busy = sim(small_clos());
    for src in 1..8usize {
        busy.add_flow(src, 0, 8_000_000, 0);
    }
    busy.run_until(2 * MILLI);
    busy.collect_interval();
    busy.run_until(3 * MILLI);
    let busy_m = busy.collect_interval();
    assert!(
        busy_m.avg_normalized_rtt < idle_m.avg_normalized_rtt,
        "congestion should reduce normalized RTT: {} vs {}",
        busy_m.avg_normalized_rtt,
        idle_m.avg_normalized_rtt
    );
}

#[test]
fn tor_sketches_capture_flows_with_tos_dedup() {
    let cfg = SimConfig {
        tos_dedup: true,
        ..SimConfig::default()
    };
    let mut s = Simulator::new(small_clos(), cfg);
    s.add_flow(0, 6, 2_000_000, 0); // crosses two ToRs
    s.run_until(MILLI);
    let m = s.collect_interval();
    let total_sketched: u64 = m
        .tor_sketches
        .iter()
        .flat_map(|(_, e)| e.iter().map(|(_, b)| *b))
        .sum();
    // With dedup, the flow is counted once network-wide; bytes recorded
    // must not exceed what was actually injected (payload bytes).
    assert!(total_sketched > 0);
    assert!(
        total_sketched <= m.bytes_delivered + 200_000,
        "dedup must prevent double counting: {total_sketched}"
    );
}

#[test]
fn disabling_tos_dedup_double_counts_across_tors() {
    let run = |dedup: bool| {
        let cfg = SimConfig {
            tos_dedup: dedup,
            ..SimConfig::default()
        };
        let mut s = Simulator::new(small_clos(), cfg);
        s.add_flow(0, 6, 2_000_000, 0); // crosses both ToRs
        s.run_until(4 * MILLI);
        let m = s.collect_interval();
        m.tor_sketches
            .iter()
            .flat_map(|(_, e)| e.iter().map(|(_, b)| *b))
            .sum::<u64>()
    };
    let deduped = run(true);
    let naive = run(false);
    assert!(
        naive as f64 > 1.8 * deduped as f64,
        "naive sketching should double-count: {naive} vs {deduped}"
    );
}

#[test]
fn ground_truth_tracks_injected_bytes() {
    let cfg = SimConfig {
        track_ground_truth: true,
        ..SimConfig::default()
    };
    let mut s = Simulator::new(small_clos(), cfg);
    let f = s.add_flow(0, 5, 300_000, 0);
    s.run_until(5 * MILLI);
    let m = s.collect_interval();
    let truth: u64 = m
        .truth_flow_bytes
        .iter()
        .filter(|(id, _)| *id == f)
        .map(|(_, b)| *b)
        .sum();
    assert_eq!(truth, 300_000);
}

#[test]
fn live_param_update_applies_to_running_flows() {
    let mut s = sim(small_clos());
    for src in 1..8usize {
        s.add_flow(src, 0, 16_000_000, 0);
    }
    s.run_until(2 * MILLI);
    // Make marking maximally aggressive: Kmin/Kmax tiny → every packet
    // marked; CNP rate should jump.
    let mut p = DcqcnParams::nvidia_default();
    p.k_min = 1.0;
    p.k_max = 2.0;
    p.p_max = 1.0;
    p.min_time_between_cnps = 0.0;
    s.set_dcqcn_params(&p);
    s.collect_interval();
    s.run_until(3 * MILLI);
    let aggressive = s.collect_interval();
    assert!(aggressive.ecn_marks > 0);
    // And rate collapse follows: goodput well below bottleneck.
    s.run_until(5 * MILLI);
    let after = s.collect_interval();
    assert!(
        after.goodput_bytes_per_sec() < 0.8 * 12.5e9,
        "constant marking should depress throughput, got {:.3e}",
        after.goodput_bytes_per_sec()
    );
}

#[test]
fn expert_params_beat_default_for_alltoall_elephants() {
    // Mirrors Table II's direction: the expert setting (higher ECN
    // thresholds, gentler CNPs) should finish a synchronized alltoall of
    // elephants no slower than the conservative default.
    let run = |params: DcqcnParams| {
        let cfg = SimConfig {
            dcqcn: params,
            ..SimConfig::default()
        };
        let mut s = Simulator::new(small_clos(), cfg);
        for i in 0..8usize {
            for j in 0..8usize {
                if i != j {
                    s.add_flow(i, j, 1_000_000, 0);
                }
            }
        }
        s.run_until(SEC);
        let done = s.take_completions();
        assert_eq!(done.len(), 56);
        done.iter().map(|r| r.finish).max().unwrap()
    };
    let default_t = run(DcqcnParams::nvidia_default());
    let expert_t = run(DcqcnParams::expert());
    assert!(
        (expert_t as f64) < 1.1 * default_t as f64,
        "expert {expert_t} vs default {default_t}"
    );
}

#[test]
fn completions_only_reported_once() {
    let mut s = sim(small_clos());
    s.add_flow(0, 1, 10_000, 0);
    s.run_until(MILLI);
    assert_eq!(s.take_completions().len(), 1);
    assert!(s.take_completions().is_empty());
    s.run_until(2 * MILLI);
    assert!(s.take_completions().is_empty());
}

#[test]
fn many_small_flows_all_finish() {
    let mut s = sim(small_clos());
    let mut n = 0;
    for i in 0..50u64 {
        let src = (i % 8) as usize;
        let dst = ((i + 3) % 8) as usize;
        if src != dst {
            s.add_flow(src, dst, 20_000 + 100 * i, i * 20 * MICRO);
            n += 1;
        }
    }
    s.run_until(SEC);
    assert_eq!(s.take_completions().len(), n);
    assert_eq!(s.active_flows(), 0);
}

#[test]
fn dcqcn_plus_mode_runs_and_completes() {
    let cfg = SimConfig {
        dcqcn_plus: true,
        ..SimConfig::default()
    };
    let mut s = Simulator::new(small_clos(), cfg);
    for src in 1..8usize {
        s.add_flow(src, 0, 2_000_000, 0);
    }
    s.run_until(100 * MILLI);
    assert_eq!(s.take_completions().len(), 7);
}
