//! Failure-injection tests: behaviour when the lossless assumptions are
//! deliberately broken, and PFC side effects the paper's motivation
//! section describes (head-of-line blocking, pause propagation).

use paraleon_netsim::{SimConfig, Simulator, Topology, MICRO, MILLI, SEC};

fn small_clos() -> Topology {
    Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000)
}

#[test]
fn drops_occur_without_pfc_and_flows_still_complete() {
    // Neuter PFC (threshold far above the buffer) and shrink the buffer:
    // the incast must now overflow and drop, and go-back-N recovery must
    // still complete every flow.
    let cfg = SimConfig {
        pfc_alpha: 1e9, // never pause
        switch_buffer_bytes: 64 * 1024,
        ..SimConfig::default()
    };
    let mut s = Simulator::new(small_clos(), cfg);
    for src in 1..8usize {
        s.add_flow(src, 0, 1_000_000, 0);
    }
    s.run_until(5 * SEC);
    assert!(s.total_drops > 0, "tiny buffer without PFC must drop");
    assert_eq!(
        s.take_completions().len(),
        7,
        "retransmission must recover every flow despite drops"
    );
    assert_eq!(s.active_flows(), 0);
}

#[test]
fn pfc_prevents_the_drops_the_previous_test_forced() {
    // Same incast with PFC restored and a buffer large enough to absorb
    // the in-flight data per paused port (PFC needs headroom: at 100 G
    // and 1 us links, ~25 KB per upstream port is already committed when
    // the XOFF lands): zero drops.
    let cfg = SimConfig {
        switch_buffer_bytes: 256 * 1024,
        pfc_alpha: 1.0 / 8.0,
        ..SimConfig::default()
    };
    let mut s = Simulator::new(small_clos(), cfg);
    for src in 1..8usize {
        s.add_flow(src, 0, 1_000_000, 0);
    }
    s.run_until(5 * SEC);
    assert_eq!(s.total_drops, 0);
    assert!(s.total_pfc_events > 0, "PFC must have intervened");
    assert_eq!(s.take_completions().len(), 7);
}

#[test]
fn pfc_head_of_line_blocking_hurts_innocent_flows() {
    // The paper's §II motivation: PFC pauses an entire upstream port, so
    // a victim flow sharing that port with an incast suffers even though
    // its own path is uncongested. Compare the victim's FCT with and
    // without the incast; under a tiny buffer the gap must be large.
    let victim_fct = |with_incast: bool| {
        let cfg = SimConfig {
            switch_buffer_bytes: 128 * 1024, // aggressive pausing
            ..SimConfig::default()
        };
        let mut s = Simulator::new(small_clos(), cfg);
        // Victim: host 1 -> host 5 (cross-ToR, shares ToR0 uplinks).
        s.add_flow(1, 5, 2_000_000, 0);
        if with_incast {
            // Incast onto host 4 from ToR0 hosts: enough flows that both
            // ECMP leaves carry incast traffic, so the victim cannot dodge
            // the pause wave. Pauses propagate ToR1 -> leaves -> ToR0.
            for k in 0..8usize {
                let src = [0usize, 2, 3][k % 3];
                s.add_flow(src, 4, 2_000_000, 0);
            }
        }
        s.run_until(5 * SEC);
        s.take_completions()
            .iter()
            .find(|r| r.dst == 5)
            .expect("victim finishes")
            .fct()
    };
    let clean = victim_fct(false);
    let blocked = victim_fct(true);
    assert!(
        blocked > clean * 2,
        "HOL blocking should inflate the victim's FCT: {clean} -> {blocked}"
    );
}

#[test]
fn control_traffic_is_never_pfc_blocked() {
    // CNPs/ACKs ride the control class: even under heavy data-class
    // pausing the congestion feedback loop keeps working, so senders
    // keep cutting rates (CNPs delivered) rather than stalling silently.
    let cfg = SimConfig {
        switch_buffer_bytes: 128 * 1024,
        ..SimConfig::default()
    };
    let mut s = Simulator::new(small_clos(), cfg);
    for src in 1..8usize {
        s.add_flow(src, 0, 2_000_000, 0);
    }
    s.run_until(3 * MILLI);
    let m = s.collect_interval();
    assert!(m.pfc_events > 0, "the scenario must pause");
    assert!(m.cnps > 0, "CNPs must flow despite data-class pauses");
}

#[test]
fn pause_accounting_is_bounded_by_interval() {
    let cfg = SimConfig {
        switch_buffer_bytes: 96 * 1024,
        ..SimConfig::default()
    };
    let mut s = Simulator::new(small_clos(), cfg);
    for src in 1..8usize {
        s.add_flow(src, 0, 8_000_000, 0);
    }
    for _ in 0..20 {
        s.run_for(500 * MICRO);
        let m = s.collect_interval();
        assert!(
            (0.0..=1.0).contains(&m.pfc_pause_ratio),
            "pause ratio {} out of range",
            m.pfc_pause_ratio
        );
    }
}

#[test]
fn rto_sweep_recovers_from_drops_at_any_timeout() {
    for rto_us in [200u64, 1_000, 5_000] {
        let cfg = SimConfig {
            pfc_alpha: 1e9,
            switch_buffer_bytes: 48 * 1024,
            rto: rto_us * MICRO,
            ..SimConfig::default()
        };
        let mut s = Simulator::new(small_clos(), cfg);
        for src in 1..6usize {
            s.add_flow(src, 0, 500_000, 0);
        }
        s.run_until(10 * SEC);
        assert_eq!(
            s.take_completions().len(),
            5,
            "rto={rto_us}us must still recover all flows"
        );
    }
}
