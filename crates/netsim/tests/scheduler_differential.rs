//! Differential property test for the event scheduler: the production
//! calendar queue ([`EventQueue`]) and the reference binary heap
//! ([`BinaryHeapQueue`]) must emit *identical* `(time, event)` sequences
//! on any workload. This is the determinism contract every experiment
//! relies on — the calendar queue is only allowed to be faster, never
//! different.

use proptest::prelude::*;

use paraleon_netsim::event::{BinaryHeapQueue, Event, EventQueue};
use paraleon_netsim::{Nanos, Packet, PacketPool};

/// One scripted scheduler operation.
#[derive(Debug, Clone)]
enum Op {
    /// Push a burst of `count` events `dt` ns after the last *popped*
    /// time (dt = 0 exercises same-timestamp bursts and the late heap).
    Push { dt: u64, kind: u8, count: u8 },
    /// Pop up to `n` events, comparing both queues at each step.
    Pop { n: u8 },
    /// Pop everything at or before `last_popped + dt` via `pop_before`.
    PopBefore { dt: u64 },
}

fn push_op() -> impl Strategy<Value = Op> {
    (
        prop_oneof![
            Just(0u64),            // same instant — hits the late heap
            1u64..256,             // within the active bucket
            256u64..1 << 14,       // nearby wheel slots
            (1u64 << 14)..1 << 21, // spread across the wheel
            (1u64 << 21)..1 << 42, // beyond the horizon: overflow heap
        ],
        0u8..7,
        1u8..12,
    )
        .prop_map(|(dt, kind, count)| Op::Push { dt, kind, count })
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let pop = (1u8..16).prop_map(|n| Op::Pop { n });
    let pop_before = (0u64..1 << 22).prop_map(|dt| Op::PopBefore { dt });
    // Uniform choice biases toward pushes by listing the arm twice.
    prop::collection::vec(prop_oneof![push_op(), push_op(), pop, pop_before], 1..80)
}

/// Materialize event `kind` — every variant, including `Fault` and
/// `Arrive` (whose `PacketId` handles are minted from a real arena).
fn make_event(kind: u8, n: u64, pool: &mut PacketPool) -> Event {
    match kind % 7 {
        0 => Event::FlowStart(n),
        1 => Event::QpSend(n),
        2 => Event::Arrive {
            node: (n % 128) as u32,
            in_port: (n % 16) as u16,
            pkt: pool.insert(Packet::data(n, n, 0, 1, 0, 1 << 20, 1000, 48, n)),
        },
        3 => Event::PortFree {
            node: (n % 128) as u32,
            port: (n % 16) as u16,
        },
        4 => Event::PfcSet {
            node: (n % 128) as u32,
            port: (n % 16) as u16,
            paused: n.is_multiple_of(2),
        },
        5 => Event::RetxCheck(n),
        _ => Event::Fault((n % 32) as u32),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replay a random op script through both implementations and demand
    /// bit-identical behavior at every step, then on the full drain.
    #[test]
    fn calendar_queue_matches_reference_heap(script in ops()) {
        let mut cal = EventQueue::new();
        let mut heap = BinaryHeapQueue::new();
        let mut pool = PacketPool::new();
        let mut last_popped: Nanos = 0;
        let mut n: u64 = 0;
        for op in script {
            match op {
                Op::Push { dt, kind, count } => {
                    for _ in 0..count {
                        let ev = make_event(kind, n, &mut pool);
                        let key = n;
                        n += 1;
                        cal.push(last_popped + dt, key, ev);
                        heap.push(last_popped + dt, key, ev);
                    }
                }
                Op::Pop { n } => {
                    for _ in 0..n {
                        prop_assert_eq!(cal.peek_time(), heap.peek_time());
                        let (a, b) = (cal.pop(), heap.pop());
                        prop_assert_eq!(a, b, "pop diverged");
                        match a {
                            Some((t, _, _)) => last_popped = t,
                            None => break,
                        }
                    }
                }
                Op::PopBefore { dt } => {
                    let bound = last_popped + dt;
                    loop {
                        let (a, b) = (cal.pop_before(bound), heap.pop_before(bound));
                        prop_assert_eq!(a, b, "pop_before diverged");
                        match a {
                            Some((t, _, _)) => last_popped = t,
                            None => break,
                        }
                    }
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.is_empty(), heap.is_empty());
        }
        // Full drain must agree to the very end.
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    /// Same-timestamp bursts must pop in ascending-key order — the
    /// causal tie-break the parallel engine's determinism relies on
    /// (keys are pushed here in *reverse* to prove it is the key, not
    /// insertion order, that decides).
    #[test]
    fn same_timestamp_bursts_pop_by_key(at in 0u64..1 << 40, count in 2usize..64) {
        let mut cal = EventQueue::new();
        let mut heap = BinaryHeapQueue::new();
        for i in (0..count as u64).rev() {
            cal.push(at, i, Event::FlowStart(i));
            heap.push(at, i, Event::FlowStart(i));
        }
        for i in 0..count as u64 {
            let a = cal.pop();
            prop_assert_eq!(a, heap.pop());
            prop_assert_eq!(a, Some((at, i, Event::FlowStart(i))));
        }
        prop_assert!(cal.is_empty() && heap.is_empty());
    }
}
