//! Per-switch sketch seeds must be pairwise decorrelated.
//!
//! Each ToR runs its sketch with its own seed, "like distinct hardware".
//! The previous derivation, `base + node`, left adjacent ToRs' seeds a
//! tiny XOR apart — and the Elastic light part keys its count-min row
//! `r` as `seed ^ (row constant + r)`, so a small seed delta can equal a
//! row-constant delta. Concretely, with the default base seed on the
//! 128-host CLOS, ToR 128's row 1 and ToR 129's row 0 hashed every flow
//! identically: their estimation errors were perfectly correlated, and
//! the controller merge (which assumes independent per-switch error)
//! preserved the shared error instead of averaging it away.
//!
//! Both tests here fail against the additive derivation.

use paraleon_netsim::sim::tor_sketch_seed;

/// Base seeds to exercise: the sketch default, the degenerate zero, and
/// two arbitrary extremes. All fixed — the tests are deterministic.
const BASES: [u64; 4] = [0xE1A5_71C5, 0, 0xDEAD_BEEF, u64::MAX];

/// Node-id range covering every switch id any supported topology
/// produces (hosts come first, so ToR ids start in the hundreds).
const NODES: std::ops::Range<usize> = 0..512;

/// Seeds derived from related inputs must avalanche: any two switches'
/// seeds should differ like independent random words (~32 bits), never
/// by a handful of bits as `base + node` produces for neighbours.
#[test]
fn derived_seeds_avalanche() {
    for base in BASES {
        let seeds: Vec<u64> = NODES.map(|n| tor_sketch_seed(base, n)).collect();
        let mut min_dist = u32::MAX;
        for (i, &a) in seeds.iter().enumerate() {
            for &b in &seeds[i + 1..] {
                min_dist = min_dist.min((a ^ b).count_ones());
            }
        }
        assert!(
            min_dist >= 8,
            "base {base:#x}: two derived seeds differ by only {min_dist} bits"
        );
    }
}

/// No two derived seeds may sit within a row-constant-sized XOR delta of
/// each other — that is exactly the distance at which the sketch's
/// XOR-keyed row family collapses two switches' rows into the same hash
/// function.
#[test]
fn derived_seeds_never_differ_by_a_row_constant_delta() {
    for base in BASES {
        let seeds: Vec<u64> = NODES.map(|n| tor_sketch_seed(base, n)).collect();
        for (i, &a) in seeds.iter().enumerate() {
            for &b in &seeds[i + 1..] {
                assert!(
                    (a ^ b) > 0xFFFF,
                    "base {base:#x}: seeds {a:#x} and {b:#x} differ by a \
                     small delta ({:#x})",
                    a ^ b
                );
            }
        }
    }
}
