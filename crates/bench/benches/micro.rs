//! Criterion micro-benchmarks backing the Table IV overhead discussion:
//! the per-packet and per-interval costs of every PARALEON component.
//!
//! Run: `cargo bench -p paraleon-bench`

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use paraleon_dcqcn::{DcqcnParams, EcnMarker, ParamSpace, RpState};
use paraleon_netsim::event::{BinaryHeapQueue, Event, EventQueue};
use paraleon_netsim::{SimConfig, Simulator, Topology, MILLI};
use paraleon_sketch::FlowType;
use paraleon_sketch::{
    ElasticSketch, FsdBuilder, SketchConfig, SlidingWindowClassifier, WindowConfig,
};
use paraleon_tuner::{SaConfig, SaTuner};

/// Data-plane cost: one Elastic Sketch insertion (per packet on a ToR).
fn bench_sketch_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("sketch");
    g.throughput(Throughput::Elements(1));
    let mut s = ElasticSketch::new(SketchConfig::default());
    let mut flow = 0u64;
    g.bench_function("insert", |b| {
        b.iter(|| {
            flow = flow.wrapping_add(0x9E37_79B9);
            s.insert(black_box(flow % 4096), black_box(1000));
        })
    });
    g.bench_function("query", |b| {
        b.iter(|| black_box(s.query(black_box(42))));
    });
    g.finish();
}

/// Control-plane cost: drain + sliding-window update for one interval.
fn bench_control_plane_interval(c: &mut Criterion) {
    let mut g = c.benchmark_group("control_plane");
    g.bench_function("drain_1k_flows", |b| {
        b.iter_batched(
            || {
                let mut s = ElasticSketch::new(SketchConfig::default());
                for f in 0..1000u64 {
                    s.insert(f, 10_000);
                }
                s
            },
            |mut s| black_box(s.drain()),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("window_update_1k_flows", |b| {
        let mut cl = SlidingWindowClassifier::new(WindowConfig::default());
        let batch: Vec<(u64, u64)> = (0..1000u64).map(|f| (f, 50_000)).collect();
        b.iter(|| {
            cl.end_interval(batch.iter().copied());
            black_box(cl.tracked_flows());
        })
    });
    g.bench_function("local_fsd_1k_flows", |b| {
        let mut cl = SlidingWindowClassifier::new(WindowConfig::default());
        cl.end_interval((0..1000u64).map(|f| (f, 50_000)));
        b.iter(|| black_box(cl.local_fsd()))
    });
    g.finish();
}

/// Controller cost: KL divergence and one SA round.
fn bench_controller(c: &mut Criterion) {
    let mut g = c.benchmark_group("controller");
    let fsd_a = {
        let mut b = FsdBuilder::new();
        for i in 0..500u64 {
            b.add_flow(1000 * (i + 1), (i % 2) as f64);
        }
        b.build()
    };
    let fsd_b = {
        let mut b = FsdBuilder::new();
        for i in 0..500u64 {
            b.add_flow(2000 * (i + 1), ((i + 1) % 2) as f64);
        }
        b.build()
    };
    g.bench_function("kl_divergence", |b| {
        b.iter(|| black_box(fsd_a.kl_divergence(black_box(&fsd_b))))
    });
    g.bench_function("sa_step", |b| {
        let mut t = SaTuner::new(
            ParamSpace::standard(),
            SaConfig {
                total_iter_num: u32::MAX, // never cool during the bench
                ..SaConfig::paper_default()
            },
            DcqcnParams::nvidia_default(),
            1,
        );
        let mut u = 0.4;
        b.iter(|| {
            u = (u + 0.013) % 1.0;
            black_box(t.step(u, FlowType::Elephant, 0.8))
        })
    });
    g.finish();
}

/// RNIC cost: the DCQCN RP hot path (advance + send accounting).
fn bench_rp_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("dcqcn_rp");
    g.throughput(Throughput::Elements(1));
    g.bench_function("on_send", |b| {
        let mut rp = RpState::new(12.5e9, DcqcnParams::nvidia_default(), 0);
        rp.on_cnp(0);
        let mut now = 0u64;
        b.iter(|| {
            now += 84; // 1048 B at 100 G
            rp.on_send(black_box(now), 1048);
            black_box(rp.rate());
        })
    });
    g.bench_function("ecn_mark_decision", |b| {
        let mut m = EcnMarker::from_params(&DcqcnParams::nvidia_default());
        let mut q = 0.0;
        b.iter(|| {
            q = (q + 4096.0) % 800_000.0;
            black_box(m.should_mark(black_box(q), 0.5));
        })
    });
    g.finish();
}

/// Scheduler cost: steady-state push+pop through the production calendar
/// queue vs. the reference binary heap, at small (1 k) and large (100 k)
/// pending-event populations. Each iteration pops the minimum and pushes
/// a replacement at a deterministic pseudo-random future offset, so the
/// population stays constant — the regime the simulator's hot loop runs
/// in.
fn bench_event_queue(c: &mut Criterion) {
    /// Next-event offset: an LCG-mixed spread over ~100 µs, matching the
    /// simulator's mix of sub-µs serialization and multi-µs propagation.
    fn offset(now: u64, i: u64) -> u64 {
        1 + (now ^ i).wrapping_mul(2_654_435_761) % 100_000
    }
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(1));
    for pending in [1_000u64, 100_000] {
        g.bench_function(format!("calendar_push_pop_{pending}"), |b| {
            let mut q = EventQueue::new();
            for i in 0..pending {
                q.push(1 + i.wrapping_mul(313) % 100_000, i, Event::QpSend(i));
            }
            let mut i = pending;
            b.iter(|| {
                let (now, _, _) = q.pop().expect("steady state");
                i += 1;
                q.push(now + offset(now, i), i, Event::QpSend(i));
                black_box(now)
            })
        });
        g.bench_function(format!("heap_push_pop_{pending}"), |b| {
            let mut q = BinaryHeapQueue::new();
            for i in 0..pending {
                q.push(1 + i.wrapping_mul(313) % 100_000, i, Event::QpSend(i));
            }
            let mut i = pending;
            b.iter(|| {
                let (now, _, _) = q.pop().expect("steady state");
                i += 1;
                q.push(now + offset(now, i), i, Event::QpSend(i));
                black_box(now)
            })
        });
    }
    g.finish();
}

/// End-to-end simulator event rate (the substrate's own speed).
fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("incast_1ms", |b| {
        b.iter_batched(
            || {
                let topo = Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 1_000);
                let mut sim = Simulator::new(topo, SimConfig::default());
                for src in 1..8usize {
                    sim.add_flow(src, 0, 4 << 20, 0);
                }
                sim
            },
            |mut sim| {
                sim.run_until(MILLI);
                black_box(sim.events_processed)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sketch_insert,
    bench_control_plane_interval,
    bench_controller,
    bench_rp_hot_path,
    bench_event_queue,
    bench_simulator
);
criterion_main!(benches);
