//! Diagnostic probe (not a paper experiment): traces PARALEON's tuning
//! decisions on the Fig 7 FB_Hadoop workload.
use paraleon::prelude::*;
use paraleon_bench::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::Reduced;
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: scale.hosts(),
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.3,
            start: 0,
            end: scale.fb_window(),
        },
        FlowSizeDist::fb_hadoop(),
    );
    let mut rng = StdRng::seed_from_u64(13);
    let flows = wl.generate(&mut rng);
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme(scale.paraleon())
        .loop_config(LoopConfig {
            force_tuning: true,
            ..LoopConfig::default()
        })
        .build();
    drivers::run_schedule(&mut cl, &flows, scale.fb_window());
    cl.run_to_completion(scale.fb_window() + 300 * MILLI);
    let trig = cl.cell.history.iter().filter(|r| r.triggered).count();
    let disp = cl.cell.history.iter().filter(|r| r.dispatched).count();
    println!(
        "intervals={} triggers={} dispatches={}",
        cl.cell.history.len(),
        trig,
        disp
    );
    for (i, r) in cl.cell.history.iter().enumerate() {
        if i % 10 == 0 || r.triggered {
            println!(
                "i={:>3} U={:.3} otp={:.2} ortt={:.2} opfc={:.2} mu={:.2} {:?} trig={} disp={}",
                i, r.utility, r.o_tp, r.o_rtt, r.o_pfc, r.mu, r.dominant, r.triggered, r.dispatched
            );
        }
    }
    let p = &cl.cell.last_params;
    println!(
        "final params: ai={:.0} hai={:.0} rrmp={:.0} cnp={:.0} timer={:.0} kmin={:.0} kmax={:.0} pmax={:.2}",
        p.ai_rate, p.hai_rate, p.rate_reduce_monitor_period, p.min_time_between_cnps,
        p.rpg_time_reset, p.k_min, p.k_max, p.p_max
    );
}
