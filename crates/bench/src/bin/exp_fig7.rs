//! Figure 7: overall performance on the two workloads.
//!
//! * (a, b) FB_Hadoop at 30% load: mean and 99.9th-percentile FCT
//!   slowdown per flow-size bin, for all five tuning schemes.
//! * (c, d) LLM ON-OFF alltoall: CDF of flow completion times at two
//!   collective scales (pass `--llm` for this half only, default runs
//!   both).
//!
//! Run: `cargo run --release -p paraleon-bench --bin exp_fig7 [--paper] [--llm|--fb]`

use paraleon::prelude::*;
use paraleon::stats::{self, FIG7_BINS};
use paraleon_bench::{all_schemes, print_table, write_json, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct FbRow {
    scheme: String,
    bin_lo: u64,
    bin_hi: u64,
    count: usize,
    avg_slowdown: f64,
    p999_slowdown: f64,
}

#[derive(Serialize)]
struct LlmRow {
    scheme: String,
    workers: usize,
    fct_cdf_ms: Vec<(f64, f64)>,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

fn fb_hadoop(scale: Scale) -> Vec<FbRow> {
    println!("\n--- Fig 7(a,b): FB_Hadoop 30% load ---");
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: scale.hosts(),
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.3,
            start: 0,
            end: scale.fb_window(),
        },
        FlowSizeDist::fb_hadoop(),
    );
    let mut out = Vec::new();
    for scheme in all_schemes(scale) {
        let mut rng = StdRng::seed_from_u64(13);
        let flows = wl.generate(&mut rng);
        let mut cl = ClosedLoop::builder(scale.clos())
            .scheme(scheme.clone())
            .loop_config(LoopConfig {
                force_tuning: scheme.is_adaptive(),
                ..LoopConfig::default()
            })
            .build();
        drivers::run_schedule(&mut cl, &flows, scale.fb_window());
        // Drain the tail: let remaining flows finish.
        cl.run_to_completion(scale.fb_window() + 300 * MILLI);
        let base_rtt = cl.sim.base_rtt(0, scale.hosts() - 1);
        let bins = stats::slowdown_bins(&cl.completions, 12.5e9, base_rtt, &FIG7_BINS);
        let mut rows = Vec::new();
        for b in &bins {
            rows.push(vec![
                format!("{}-{}", stats::fmt_size(b.lo), stats::fmt_size(b.hi)),
                format!("{}", b.count),
                format!("{:.2}", b.avg),
                format!("{:.2}", b.p999),
            ]);
            out.push(FbRow {
                scheme: scheme.name().to_string(),
                bin_lo: b.lo,
                bin_hi: b.hi,
                count: b.count,
                avg_slowdown: b.avg,
                p999_slowdown: b.p999,
            });
        }
        print_table(
            &format!(
                "{}: FCT slowdown by flow size ({} flows done)",
                scheme.name(),
                cl.completions.len()
            ),
            &["size bin", "flows", "avg", "p99.9"],
            &rows,
        );
    }
    out
}

fn llm(scale: Scale) -> Vec<LlmRow> {
    println!("\n--- Fig 7(c,d): LLM alltoall FCT CDF ---");
    let worker_counts: Vec<usize> = match scale {
        Scale::Reduced => vec![8, 16],
        Scale::Paper => vec![10, 20],
    };
    let mut out = Vec::new();
    for &n in &worker_counts {
        let mut rows = Vec::new();
        for scheme in all_schemes(scale) {
            let mut cl = ClosedLoop::builder(scale.clos())
                .scheme(scheme.clone())
                .loop_config(LoopConfig {
                    force_tuning: scheme.is_adaptive(),
                    weights: UtilityWeights::throughput_sensitive(),
                    ..LoopConfig::default()
                })
                .build();
            let stride = scale.hosts() / n;
            let mut a2a = AllToAll::new(AllToAllConfig {
                workers: (0..n).map(|i| i * stride).collect(),
                message_bytes: scale.llm_message(),
                off_time: 5 * MILLI,
                // Enough rounds that PARALEON's SA episode (≈60 monitor
                // intervals) converges within the first third of the run.
                rounds: Some(24),
            });
            let records = drivers::run_alltoall(&mut cl, &mut a2a, 0, 20 * SEC);
            // Steady-state measurement: discard the warm-up third of the
            // run (covers the adaptive schemes' tuning transient) for
            // every scheme alike.
            let t_end = records.iter().map(|r| r.finish).max().unwrap_or(0);
            let warmup = t_end / 3;
            let fcts_ms: Vec<f64> = records
                .iter()
                .filter(|r| r.start >= warmup)
                .map(|r| r.fct() as f64 / 1e6)
                .collect();
            let mut sorted = fcts_ms.clone();
            let p50 = stats::percentile(&mut sorted, 50.0);
            let p99 = stats::percentile(&mut sorted, 99.0);
            let max = sorted.last().copied().unwrap_or(0.0);
            rows.push(vec![
                scheme.name().to_string(),
                format!("{}", records.len()),
                format!("{p50:.2}"),
                format!("{p99:.2}"),
                format!("{max:.2}"),
            ]);
            out.push(LlmRow {
                scheme: scheme.name().to_string(),
                workers: n,
                fct_cdf_ms: stats::cdf(&fcts_ms, 20),
                p50_ms: p50,
                p99_ms: p99,
                max_ms: max,
            });
        }
        print_table(
            &format!("{n}x{n} alltoall flow FCTs (ms)"),
            &["scheme", "flows", "p50", "p99", "max"],
            &rows,
        );
    }
    out
}

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let only_llm = args.iter().any(|a| a == "--llm");
    let only_fb = args.iter().any(|a| a == "--fb");
    println!("Figure 7 reproduction ({} scale)", scale.label());
    if !only_llm {
        let fb = fb_hadoop(scale);
        write_json("fig7_fb", &fb);
    }
    if !only_fb {
        let llm_rows = llm(scale);
        write_json("fig7_llm", &llm_rows);
    }
}
