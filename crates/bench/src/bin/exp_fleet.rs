//! Fleet-service scaling experiment: one tuner process managing N
//! heterogeneous simulated fabrics.
//!
//! For each fleet size the harness admits N tenants rotating over four
//! topology families, four schemes, mixed monitors, mixed λ_MI, mixed
//! initial DCQCN parameters, per-tenant Poisson workloads and one
//! control-plane-impaired tenant — then runs the service and reports
//! controller memory footprint and per-tick scheduling latency.
//!
//! Flags:
//! * `--smoke` — small sizes and short runs (CI).
//! * `--check` — enforce the fleet's correctness gates and exit
//!   nonzero on violation: serial vs threaded byte-identity, per-tenant
//!   equivalence with a standalone `ClosedLoop`, and snapshot
//!   round-trip identity.
//! * `--paper` — paper-scale SA schedule for the PARALEON tenants.

use std::time::Instant;

use paraleon::prelude::*;
use paraleon_bench::{print_table, telemetry_begin, telemetry_dump, write_json, Scale};
use paraleon_dcqcn::DcqcnParams;
use paraleon_fleet::{standalone_run, FleetConfig, FleetService, TenantSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The four small topology families tenants rotate over.
fn topo_for(i: usize) -> TopoSpec {
    match i % 4 {
        0 => TopoSpec::TwoTier(ClosSpec {
            n_tor: 2,
            hosts_per_tor: 4,
            n_leaf: 2,
            host_gbps: 25.0,
            uplink_gbps: 50.0,
            delay_ns: 1_000,
        }),
        1 => TopoSpec::ThreeTier(ThreeTierSpec {
            n_pod: 2,
            tors_per_pod: 2,
            hosts_per_tor: 2,
            aggs_per_pod: 1,
            spines_per_agg: 1,
            host_gbps: 25.0,
            agg_gbps: 50.0,
            spine_gbps: 50.0,
            delay_ns: 1_000,
        }),
        2 => TopoSpec::Rail(RailSpec {
            n_rail: 2,
            n_server: 4,
            n_spine: 1,
            host_gbps: 25.0,
            uplink_gbps: 50.0,
            delay_ns: 1_500,
        }),
        _ => TopoSpec::MixedRate(MixedRateSpec {
            n_tor: 2,
            hosts_per_tor: 4,
            n_leaf: 2,
            host_gbps: 25.0,
            fast_gbps: 50.0,
            slow_gbps: 25.0,
            delay_ns: 1_000,
        }),
    }
}

fn topo_label(spec: &TopoSpec) -> String {
    match spec {
        TopoSpec::TwoTier(c) => format!("clos/{}h", c.n_tor * c.hosts_per_tor),
        TopoSpec::ThreeTier(t) => format!("3tier/{}h", t.n_pod * t.tors_per_pod * t.hosts_per_tor),
        TopoSpec::Rail(r) => format!("rail/{}h", r.n_rail * r.n_server),
        TopoSpec::MixedRate(m) => format!("mixed/{}h", m.n_tor * m.hosts_per_tor),
    }
}

fn hosts_of(spec: &TopoSpec) -> usize {
    match spec {
        TopoSpec::TwoTier(c) => c.n_tor * c.hosts_per_tor,
        TopoSpec::ThreeTier(t) => t.n_pod * t.tors_per_pod * t.hosts_per_tor,
        TopoSpec::Rail(r) => r.n_rail * r.n_server,
        TopoSpec::MixedRate(m) => m.n_tor * m.hosts_per_tor,
    }
}

/// Build tenant `i` of an `n`-tenant fleet: heterogeneous along every
/// axis a tenant has (topology, scheme, monitor, λ_MI, initial DCQCN
/// parameters, engine parallelism, workload load, faults).
fn tenant_spec(i: usize, ticks: u64, scale: Scale) -> TenantSpec {
    let mut spec = TenantSpec::new(topo_for(i));
    spec.seed = 0xF1EE7 + i as u64;
    spec.scheme = match i % 4 {
        0 => scale.paraleon(),
        1 => SchemeKind::Expert,
        2 => SchemeKind::Default,
        _ => scale.paraleon(),
    };
    spec.monitor = if i % 4 == 2 {
        MonitorKind::NaiveSketch
    } else {
        MonitorKind::Paraleon
    };
    if i % 5 == 4 {
        spec.loop_cfg.lambda_mi = 2 * MILLI;
    }
    if i % 2 == 1 {
        spec.sim_cfg.dcqcn = DcqcnParams::expert();
    }
    if i % 8 == 3 {
        spec.engine_threads = 2;
    }
    if i % 8 == 5 {
        // One tenant per 8 suffers an impaired upload channel mid-run.
        let mut plan = FaultPlan::new(spec.seed);
        plan.push(FaultEvent {
            at: 5 * MILLI,
            node: 0,
            port: 0,
            kind: FaultKind::CtrlImpair {
                up: true,
                down: false,
                loss: 0.1,
                delay_max: 1,
                dup: 0.05,
            },
        });
        spec.fault_plan = Some(plan);
    }
    let hosts = hosts_of(&spec.topo);
    let load = [0.35, 0.55, 0.7, 0.45][i % 4];
    let mut rng = StdRng::seed_from_u64(spec.seed);
    spec.schedule = PoissonWorkload::new(
        PoissonConfig {
            hosts,
            host_bw_bytes_per_sec: 25.0e9 / 8.0,
            load,
            start: 0,
            end: ticks * spec.loop_cfg.lambda_mi,
        },
        FlowSizeDist::fb_hadoop(),
    )
    .generate(&mut rng);
    spec
}

#[derive(Serialize)]
struct TenantSummary {
    id: u32,
    topo: String,
    scheme: String,
    monitor: String,
    lambda_us: u64,
    intervals: usize,
    completions: usize,
    backlog: usize,
    upload_drops: u64,
    starved: u64,
    faulted: bool,
}

#[derive(Serialize)]
struct FleetRow {
    n_tenants: usize,
    ticks: u64,
    wall_ms: f64,
    mean_tick_us: f64,
    max_tick_us: f64,
    mean_phase_a_us: f64,
    mean_phase_b_us: f64,
    controller_mem_bytes: usize,
    mem_per_tenant_bytes: usize,
    turns: u64,
    throttled: u64,
    starved_turns: u64,
    upload_drops: u64,
    serial_threaded_identical: Option<bool>,
    standalone_identical: Option<bool>,
    snapshot_round_trip_ok: Option<bool>,
    tenants: Vec<TenantSummary>,
}

impl FleetRow {
    fn checks_ok(&self) -> bool {
        self.serial_threaded_identical != Some(false)
            && self.standalone_identical != Some(false)
            && self.snapshot_round_trip_ok != Some(false)
    }
}

#[derive(Serialize)]
struct FleetReport {
    smoke: bool,
    checked: bool,
    scale: String,
    threads_checked: usize,
    rows: Vec<FleetRow>,
}

fn build_fleet(specs: &[TenantSpec], threads: usize) -> FleetService {
    let mut fleet = FleetService::new(FleetConfig {
        threads,
        ..FleetConfig::default()
    });
    for s in specs {
        fleet.admit(s.clone());
    }
    fleet
}

/// Byte-identity between two fleets over everything the controller
/// owns: interval histories, tuned parameters, completions, queues and
/// buckets.
fn fleets_identical(a: &FleetService, b: &FleetService) -> bool {
    a.n_tenants() == b.n_tenants()
        && a.stats() == b.stats()
        && a.tenants().iter().zip(b.tenants()).all(|(x, y)| {
            x.id == y.id
                && x.cell.history == y.cell.history
                && x.cell.last_params == y.cell.last_params
                && x.completions == y.completions
                && x.ticks == y.ticks
                && x.queue.len() == y.queue.len()
                && x.bucket == y.bucket
        })
}

fn run_size(n: usize, ticks: u64, check: bool, scale: Scale, dump: bool) -> FleetRow {
    let specs: Vec<TenantSpec> = (0..n).map(|i| tenant_spec(i, ticks, scale)).collect();

    if dump {
        telemetry_begin();
    }
    let mut fleet = build_fleet(&specs, 1);
    let t0 = Instant::now();
    let mut turns = 0u64;
    let mut tick_us: Vec<f64> = Vec::with_capacity(ticks as usize);
    let mut phase_a_us = 0.0;
    let mut phase_b_us = 0.0;
    for _ in 0..ticks {
        let r = fleet.tick();
        turns += r.turns as u64;
        let a = r.phase_a.as_secs_f64() * 1e6;
        let b = r.phase_b.as_secs_f64() * 1e6;
        phase_a_us += a;
        phase_b_us += b;
        tick_us.push(a + b);
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    if dump {
        telemetry_dump(&format!("fleet_n{n}"));
    }

    let stats = fleet.stats();
    let mem = fleet.controller_memory_bytes();
    let tenants = fleet
        .tenants()
        .iter()
        .enumerate()
        .map(|(i, t)| TenantSummary {
            id: t.id,
            topo: topo_label(&t.spec().topo),
            scheme: t.cell.scheme_name().to_string(),
            monitor: t.cell.monitor_name().to_string(),
            lambda_us: t.lambda() / 1_000,
            intervals: t.cell.history.len(),
            completions: t.completions.len(),
            backlog: t.backlog(),
            upload_drops: t.queue.dropped,
            starved: t.starved,
            faulted: specs[i].fault_plan.is_some(),
        })
        .collect();

    let (mut serial_threaded, mut standalone, mut snapshot_ok) = (None, None, None);
    if check {
        // Gate 1: the threaded scheduler is byte-identical to serial.
        let mut threaded = build_fleet(&specs, 4);
        threaded.run(ticks);
        serial_threaded = Some(fleets_identical(&fleet, &threaded));

        // Gate 2: each tenant matches its spec run standalone.
        standalone = Some(fleet.tenants().iter().zip(&specs).all(|(t, spec)| {
            let cl = standalone_run(spec, ticks);
            t.cell.history == cl.cell.history
                && t.cell.last_params == cl.cell.last_params
                && t.completions == cl.completions
        }));

        // Gate 3: snapshot + restore mid-run changes nothing.
        let mut snapped = build_fleet(&specs, 1);
        snapped.run(ticks / 2);
        let snap = snapped.snapshot().expect("armed cells checkpoint");
        snapped.restore(&snap).expect("same tenant set restores");
        snapped.run(ticks - ticks / 2);
        snapshot_ok = Some(fleets_identical(&fleet, &snapped));
    }

    FleetRow {
        n_tenants: n,
        ticks,
        wall_ms,
        mean_tick_us: tick_us.iter().sum::<f64>() / tick_us.len().max(1) as f64,
        max_tick_us: tick_us.iter().cloned().fold(0.0, f64::max),
        mean_phase_a_us: phase_a_us / ticks.max(1) as f64,
        mean_phase_b_us: phase_b_us / ticks.max(1) as f64,
        controller_mem_bytes: mem,
        mem_per_tenant_bytes: mem / n.max(1),
        turns,
        throttled: stats.throttled,
        starved_turns: stats.starved_turns,
        upload_drops: stats.upload_drops,
        serial_threaded_identical: serial_threaded,
        standalone_identical: standalone,
        snapshot_round_trip_ok: snapshot_ok,
        tenants,
    }
}

fn main() {
    let smoke = flag("--smoke");
    let check = flag("--check");
    let scale = Scale::from_args();
    let sizes: &[usize] = if smoke { &[2, 8] } else { &[2, 4, 8, 16] };
    let ticks: u64 = if smoke { 12 } else { 40 };

    let mut rows = Vec::new();
    for &n in sizes {
        let dump = n == *sizes.last().unwrap();
        println!("[fleet: {n} tenants, {ticks} ticks]");
        rows.push(run_size(n, ticks, check, scale, dump));
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n_tenants.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.mean_tick_us),
                format!("{:.0}", r.max_tick_us),
                format!("{}", r.controller_mem_bytes / 1024),
                format!("{}", r.mem_per_tenant_bytes / 1024),
                r.turns.to_string(),
                r.upload_drops.to_string(),
                fmt_check(r.serial_threaded_identical),
                fmt_check(r.standalone_identical),
                fmt_check(r.snapshot_round_trip_ok),
            ]
        })
        .collect();
    print_table(
        "Fleet service: one tuner process, N fabrics",
        &[
            "tenants",
            "wall ms",
            "tick µs",
            "max µs",
            "ctrl KiB",
            "KiB/tenant",
            "turns",
            "drops",
            "thr==ser",
            "==standalone",
            "snap ok",
        ],
        &table,
    );

    let ok = rows.iter().all(FleetRow::checks_ok);
    write_json(
        "fleet",
        &FleetReport {
            smoke,
            checked: check,
            scale: scale.label().to_string(),
            threads_checked: 4,
            rows,
        },
    );
    if check {
        if ok {
            println!("[fleet checks: all gates passed]");
        } else {
            eprintln!("[fleet checks: GATE FAILED]");
            std::process::exit(1);
        }
    }
}

fn fmt_check(v: Option<bool>) -> String {
    match v {
        None => "-".to_string(),
        Some(true) => "yes".to_string(),
        Some(false) => "NO".to_string(),
    }
}
