//! Figure 14: testbed-style runtime bandwidth and latency with a
//! SolarRPC influx into an alltoall background.
//!
//! An alltoall collective runs continuously; a SolarRPC burst (all mice,
//! Poisson arrivals) lands mid-run. Expectation (paper §IV-C1): PARALEON
//! drives the parameters latency-friendly during the burst (lower RPC
//! latency than static settings) and recovers throughput afterwards.
//!
//! Run: `cargo run --release -p paraleon-bench --bin exp_fig14 [--paper]`

use paraleon::prelude::*;
use paraleon_bench::{gbps_of, print_table, telemetry_begin, telemetry_dump, write_json, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    scheme: String,
    t_ms: Vec<f64>,
    goodput_gbps: Vec<f64>,
    rtt_us: Vec<f64>,
    rpc_avg_fct_us: f64,
    rpc_p99_fct_us: f64,
    /// p99 FCT over *all* flows (collective + RPC), from the telemetry
    /// histogram — the fabric-wide view next to the RPC-only numbers.
    fabric_p99_fct_us: f64,
    post_tp_gbps: f64,
    burst_start_ms: f64,
    burst_end_ms: f64,
}

fn run_one(scale: Scale, scheme: SchemeKind) -> Series {
    telemetry_begin();
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme(scheme.clone())
        .loop_config(LoopConfig {
            force_tuning: scheme.is_adaptive(),
            // React within a few ms of the influx (the trigger is checked
            // once per window).
            trigger_window: 4,
            ..LoopConfig::default()
        })
        .build();
    let n = scale.hosts() / 4;
    let mut a2a = AllToAll::new(AllToAllConfig {
        workers: (0..n).map(|i| i * 2).collect(),
        message_bytes: scale.llm_message(),
        off_time: MILLI,
        rounds: None,
    });
    let total = match scale {
        Scale::Reduced => 60 * MILLI,
        Scale::Paper => 150 * MILLI,
    };
    let burst_start = total / 3;
    let burst_len = total / 4;
    let rpc = PoissonWorkload::new(
        PoissonConfig {
            hosts: scale.hosts(),
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.2,
            start: burst_start,
            end: burst_start + burst_len,
        },
        FlowSizeDist::solar_rpc(),
    );
    let mut rng = StdRng::seed_from_u64(41);
    let rpc_flows = rpc.generate(&mut rng);

    let mut idx = 0;
    let mut next_round = Some(0u64);
    let mut seen = 0usize;
    let mut collective: std::collections::HashSet<u64> = Default::default();
    let mut rpc_ids: std::collections::HashSet<u64> = Default::default();
    let mut rpc_fcts_us: Vec<f64> = Vec::new();
    while cl.sim.now() < total {
        if let Some(t) = next_round {
            if cl.sim.now() >= t {
                for f in a2a
                    .start_round(cl.sim.now())
                    .expect("round start while idle")
                {
                    let qp = drivers::qp_id(f.src, f.dst);
                    collective.insert(cl.sim.add_flow_on_qp(
                        f.src,
                        f.dst,
                        f.bytes,
                        cl.sim.now(),
                        qp,
                    ));
                }
                next_round = None;
            }
        }
        let horizon = cl.sim.now() + 2 * MILLI;
        while idx < rpc_flows.len() && rpc_flows[idx].start <= horizon {
            let f = rpc_flows[idx];
            if f.start >= cl.sim.now() {
                rpc_ids.insert(cl.sim.add_flow(f.src, f.dst, f.bytes, f.start));
            }
            idx += 1;
        }
        cl.step();
        let new = cl.completions[seen..].to_vec();
        seen = cl.completions.len();
        for r in new {
            if collective.remove(&r.flow) {
                if let Some(t) = a2a.on_flow_done(r.finish).expect("round in flight") {
                    next_round = Some(t);
                }
            } else if rpc_ids.remove(&r.flow) {
                rpc_fcts_us.push(r.fct() as f64 / 1e3);
            }
        }
    }
    let burst_end = burst_start + burst_len;
    // Time series come from the run's exported telemetry; RPC-only FCTs
    // still need the per-flow completion records (the histogram
    // aggregates all flows).
    let dump = telemetry_dump(&format!("fig14_{}", scheme.name()));
    let goodput = dump.series_get("goodput_bytes_per_sec", 0);
    let post: Vec<f64> = goodput
        .iter()
        .filter(|&&(t, _)| t > burst_end)
        .map(|&(_, v)| gbps_of(v))
        .collect();
    let mut fcts = rpc_fcts_us.clone();
    Series {
        scheme: scheme.name().to_string(),
        t_ms: goodput.iter().map(|&(t, _)| t as f64 / 1e6).collect(),
        goodput_gbps: goodput.iter().map(|&(_, v)| gbps_of(v)).collect(),
        rtt_us: dump
            .series_get("avg_rtt_ns", 0)
            .iter()
            .map(|&(_, v)| v / 1e3)
            .collect(),
        rpc_avg_fct_us: paraleon::stats::mean(&rpc_fcts_us),
        rpc_p99_fct_us: paraleon::stats::percentile(&mut fcts, 99.0),
        fabric_p99_fct_us: dump
            .hist("fct_ns")
            .map(|h| h.p99 as f64 / 1e3)
            .unwrap_or(0.0),
        post_tp_gbps: paraleon::stats::mean(&post),
        burst_start_ms: burst_start as f64 / 1e6,
        burst_end_ms: burst_end as f64 / 1e6,
    }
}

fn main() {
    let scale = Scale::from_args();
    println!("Figure 14 reproduction ({} scale)", scale.label());
    let schemes = [SchemeKind::Default, SchemeKind::Expert, scale.paraleon()];
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for scheme in schemes {
        let s = run_one(scale, scheme);
        rows.push(vec![
            s.scheme.clone(),
            format!("{:.0}", s.rpc_avg_fct_us),
            format!("{:.0}", s.rpc_p99_fct_us),
            format!("{:.0}", s.fabric_p99_fct_us),
            format!("{:.1}", s.post_tp_gbps),
        ]);
        out.push(s);
    }
    print_table(
        "Fig 14: SolarRPC burst into alltoall background",
        &[
            "scheme",
            "RPC avg FCT (us)",
            "RPC p99 FCT (us)",
            "all-flow p99 FCT (us)",
            "post-burst TP (Gbps)",
        ],
        &rows,
    );
    write_json("fig14", &out);
}
