//! Quick performance probe (not a paper experiment): measures simulator
//! event throughput at paper scale to size the default experiment scale.
use paraleon::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let topo = Topology::two_tier_clos(8, 16, 4, 100.0, 100.0, 5_000);
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: 128,
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.3,
            start: 0,
            end: 20 * MILLI,
        },
        FlowSizeDist::fb_hadoop(),
    );
    let mut rng = StdRng::seed_from_u64(5);
    let flows = wl.generate(&mut rng);
    println!("flows: {}", flows.len());
    let mut cl = ClosedLoop::builder(topo)
        .scheme(SchemeKind::Paraleon)
        .build();
    let t0 = Instant::now();
    drivers::run_schedule(&mut cl, &flows, 25 * MILLI);
    let wall = t0.elapsed();
    println!(
        "sim 25ms wall {:?}  events {}  ev/s {:.1}M  completions {}/{}",
        wall,
        cl.sim.events_processed,
        cl.sim.events_processed as f64 / wall.as_secs_f64() / 1e6,
        cl.completions.len(),
        flows.len()
    );
}
