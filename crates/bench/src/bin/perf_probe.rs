//! Performance benchmark harness for the simulator core.
//!
//! Three modes:
//!
//! * default — one human-readable run of the standard probe (quick
//!   sanity check while hacking on the hot path).
//! * `--json` — the full harness: single-thread event throughput
//!   (min-of-N over the standard two-tier CLOS probe: 20 ms of load
//!   run to a 25 ms horizon), multi-seed sweep wall-clock at 1/2/4/8
//!   worker threads through the parallel runner, and single-simulation
//!   scaling of the sharded parallel engine at 1/2/4/8 threads. Both
//!   scaling tables record the *requested* and the *effective* thread
//!   count — on a small box they differ, and the file says so instead
//!   of implying an 8-way machine ran. Writes
//!   `results/BENCH_netsim.json`, the committed perf baseline.
//! * `--check <baseline.json>` — CI regression gate: re-measures
//!   single-thread throughput and exits non-zero if it is more than 25%
//!   below the baseline's `events_per_sec`.
//!
//! `--par-threads N` switches the default and `--audited` modes onto the
//! conservative parallel engine with N shard threads.
//!
//! Min-of-N (not mean) is deliberate: throughput noise on a shared box
//! is strictly additive (preemption, cache pollution), so the minimum
//! wall time is the best estimator of the code's true cost.

use std::time::Instant;

use paraleon::prelude::*;
use paraleon_bench::{sweep, write_json};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use serde_json::Value;

/// Repetitions per measurement; the minimum wall time wins.
const RUNS: usize = 3;
/// `--check` fails when throughput drops more than this fraction below
/// the committed baseline.
const REGRESSION_FRAC: f64 = 0.25;
/// Seeds fanned through the parallel runner for the scaling measurement.
const SWEEP_SEEDS: u64 = 8;

struct ProbeRun {
    events: u64,
    wall_s: f64,
    completions: usize,
    flows: usize,
}

/// The standard probe: the paper's 128-host two-tier CLOS under a 0.3
/// load FB_Hadoop Poisson workload for `sim_ms` of simulated load (run
/// to a `sim_ms + 5` horizon so in-flight flows drain), with the full
/// PARALEON closed loop attached. One fixed seed — the run is
/// deterministic, so every invocation simulates the identical trace.
fn standard_probe(sim_ms: u64, seed: u64, par_threads: usize) -> ProbeRun {
    let topo = Topology::two_tier_clos(8, 16, 4, 100.0, 100.0, 5_000);
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: 128,
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.3,
            start: 0,
            end: sim_ms * MILLI,
        },
        FlowSizeDist::fb_hadoop(),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let flows = wl.generate(&mut rng);
    let mut cl = ClosedLoop::builder(topo)
        .scheme(SchemeKind::Paraleon)
        .parallel(par_threads)
        .build();
    let t0 = Instant::now();
    drivers::run_schedule(&mut cl, &flows, (sim_ms + 5) * MILLI);
    ProbeRun {
        events: cl.sim.events_processed(),
        wall_s: t0.elapsed().as_secs_f64(),
        completions: cl.completions.len(),
        flows: flows.len(),
    }
}

/// Best-of-N single-thread measurement of the standard probe.
fn measure_single_thread() -> ProbeRun {
    let mut best: Option<ProbeRun> = None;
    for _ in 0..RUNS {
        let r = standard_probe(20, 5, 1);
        if best.as_ref().is_none_or(|b| r.wall_s < b.wall_s) {
            best = Some(r);
        }
    }
    best.expect("RUNS > 0")
}

#[derive(Serialize)]
struct SweepPoint {
    /// Worker threads asked for.
    threads_requested: usize,
    /// Worker threads the sweep runner actually spawned (clamped to the
    /// machine — on a 1-core box every point effectively runs serially,
    /// and the speedup column honestly says so).
    threads_effective: usize,
    wall_seconds: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct IntraRunPoint {
    /// Shard/worker threads asked of the parallel engine.
    threads_requested: usize,
    /// Shards the engine actually built (clamped to the topology's ToR
    /// count; 1 means the serial engine ran).
    shards: usize,
    /// Worker threads that can truly run concurrently:
    /// `min(shards, available_parallelism)`.
    threads_effective: usize,
    wall_seconds: f64,
    speedup: f64,
    /// Events processed — must match the serial point exactly.
    events: u64,
}

#[derive(Serialize)]
struct Report {
    /// Bump when the shape of this file changes.
    schema: u32,
    /// What the probe simulates, for the reader of the JSON.
    probe: String,
    runs_per_measurement: usize,
    /// Events in the deterministic probe trace (identical every run).
    events: u64,
    flows: usize,
    completions: usize,
    wall_seconds: f64,
    /// The number the CI gate compares.
    events_per_sec: f64,
    /// Worker threads the measuring machine could actually run; scaling
    /// points beyond this are expected to be flat.
    threads_available: usize,
    /// Multi-seed sweep through the parallel runner at 1/2/4/8 workers.
    sweep_scaling: Vec<SweepPoint>,
    /// Whether every thread count produced the identical result vector.
    sweep_deterministic: bool,
    /// Conservative parallel engine inside a *single* simulation: the
    /// standard probe shortened to 5 ms, run at 1/2/4/8 shard threads.
    intra_run_scaling: Vec<IntraRunPoint>,
    /// Whether every intra-run point processed the identical event count
    /// (the byte-identity differential test is the real gate; this is
    /// the fingerprint the perf reader can see).
    intra_run_deterministic: bool,
}

/// One cell of the scaling sweep: a short paper-scale probe at `seed`.
/// Returns the processed-event count — both the work done and a
/// determinism fingerprint.
fn sweep_cell(seed: u64) -> u64 {
    standard_probe(3, seed, 1).events
}

fn measure_sweep_scaling() -> (Vec<SweepPoint>, bool) {
    let seeds: Vec<u64> = (0..SWEEP_SEEDS).collect();
    let mut points = Vec::new();
    let mut fingerprints: Vec<Vec<u64>> = Vec::new();
    let mut serial_wall = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let effective = sweep::effective_threads(threads);
        let mut best = f64::INFINITY;
        let mut runs = RUNS;
        if threads > 1 {
            runs = 1; // scaling points are comparative, not baselines
        }
        for _ in 0..runs {
            let jobs: Vec<_> = seeds.iter().map(|&s| move || sweep_cell(s)).collect();
            let t0 = Instant::now();
            let out = sweep::run(threads, jobs);
            best = best.min(t0.elapsed().as_secs_f64());
            fingerprints.push(out);
        }
        if threads == 1 {
            serial_wall = best;
        }
        points.push(SweepPoint {
            threads_requested: threads,
            threads_effective: effective,
            wall_seconds: best,
            speedup: serial_wall / best,
        });
        eprintln!(
            "sweep {} thread(s) (effective {}): {:.2}s (speedup {:.2}x)",
            threads,
            effective,
            best,
            serial_wall / best
        );
    }
    let deterministic = fingerprints.windows(2).all(|w| w[0] == w[1]);
    (points, deterministic)
}

/// Scaling of the conservative parallel engine *inside* one simulation:
/// the standard probe at 5 ms of load, sharded 1/2/4/8 ways. Every point
/// must process the identical event count — the engine is byte-identical
/// to serial by construction, and the differential tests enforce it; the
/// fingerprint here keeps the perf report honest on its own.
fn measure_intra_run_scaling() -> (Vec<IntraRunPoint>, bool) {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut points: Vec<IntraRunPoint> = Vec::new();
    let mut serial_wall = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let runs = if threads == 1 { RUNS } else { 1 };
        let mut best: Option<ProbeRun> = None;
        let mut shards = 1usize;
        for _ in 0..runs {
            let topo = Topology::two_tier_clos(8, 16, 4, 100.0, 100.0, 5_000);
            shards = topo.partition(threads).len();
            let r = standard_probe(5, 5, threads);
            if best.as_ref().is_none_or(|b| r.wall_s < b.wall_s) {
                best = Some(r);
            }
        }
        let r = best.expect("runs > 0");
        if threads == 1 {
            serial_wall = r.wall_s;
        }
        points.push(IntraRunPoint {
            threads_requested: threads,
            shards,
            threads_effective: shards.min(avail),
            wall_seconds: r.wall_s,
            speedup: serial_wall / r.wall_s,
            events: r.events,
        });
        eprintln!(
            "intra-run {} thread(s) ({} shards, effective {}): {:.2}s (speedup {:.2}x, {} events)",
            threads,
            shards,
            shards.min(avail),
            r.wall_s,
            serial_wall / r.wall_s,
            r.events
        );
    }
    let deterministic = points.windows(2).all(|w| w[0].events == w[1].events);
    (points, deterministic)
}

/// `entries["key"]` on the vendored flat JSON object model.
fn field<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    match v {
        Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        _ => None,
    }
}

fn check(baseline_path: &str) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 2;
        }
    };
    let baseline = match serde_json::from_str_value(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cannot parse baseline {baseline_path}: {e}");
            return 2;
        }
    };
    let Some(base_eps) = field(&baseline, "events_per_sec").and_then(as_f64) else {
        eprintln!("baseline {baseline_path} has no events_per_sec field");
        return 2;
    };
    let r = measure_single_thread();
    let eps = r.events as f64 / r.wall_s;
    let floor = base_eps * (1.0 - REGRESSION_FRAC);
    println!(
        "perf check: measured {:.2}M ev/s, baseline {:.2}M ev/s, floor {:.2}M ev/s",
        eps / 1e6,
        base_eps / 1e6,
        floor / 1e6
    );
    if eps < floor {
        println!(
            "REGRESSION: event throughput dropped {:.0}% (limit {:.0}%)",
            (1.0 - eps / base_eps) * 100.0,
            REGRESSION_FRAC * 100.0
        );
        1
    } else {
        println!("perf check passed");
        0
    }
}

/// `--audited` mode: run the standard probe under the invariant auditor
/// and fail on any violation. In debug (or `-C debug-assertions`) builds
/// the first violation panics at its detection site; in plain release
/// builds violations are counted and reported here. Composes with
/// `--par-threads N`: shard workers re-arm the auditor on their own
/// threads and the engine folds their violations back in, so the count
/// below covers the whole run either way.
fn audited(sim_ms: u64, par_threads: usize) -> i32 {
    if !paraleon_audit::compiled_in() {
        eprintln!("perf_probe --audited requires building with --features audit");
        return 2;
    }
    let r = standard_probe(sim_ms, 5, par_threads);
    let violations = paraleon_audit::violation_count();
    println!(
        "audited probe: sim {}ms, {} threads, {} events, completions {}/{}, {} audit violations",
        sim_ms, par_threads, r.events, r.completions, r.flows, violations
    );
    for rep in paraleon_audit::violations().iter().take(10) {
        eprintln!("  violation: {}", rep.violation);
    }
    if violations == 0 {
        0
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let par_threads: usize = args
        .iter()
        .position(|a| a == "--par-threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("usage: perf_probe --check <baseline.json>");
            std::process::exit(2);
        };
        std::process::exit(check(path));
    }
    if args.iter().any(|a| a == "--audited") {
        let ms = args
            .iter()
            .position(|a| a == "--ms")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        std::process::exit(audited(ms, par_threads));
    }
    if args.iter().any(|a| a == "--json") {
        eprintln!("measuring single-thread throughput ({RUNS} runs)...");
        let r = measure_single_thread();
        let eps = r.events as f64 / r.wall_s;
        eprintln!(
            "single thread: {:.2}s, {} events, {:.2}M ev/s",
            r.wall_s,
            r.events,
            eps / 1e6
        );
        let (scaling, deterministic) = measure_sweep_scaling();
        let (intra, intra_deterministic) = measure_intra_run_scaling();
        let report = Report {
            schema: 2,
            probe: "two_tier_clos(8x16, 4 leaves, 100G, 5us) + fb_hadoop poisson \
                    load 0.3 seed 5, 20ms of load run to 25ms, full PARALEON loop"
                .to_string(),
            runs_per_measurement: RUNS,
            events: r.events,
            flows: r.flows,
            completions: r.completions,
            wall_seconds: r.wall_s,
            events_per_sec: eps,
            threads_available: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            sweep_scaling: scaling,
            sweep_deterministic: deterministic,
            intra_run_scaling: intra,
            intra_run_deterministic: intra_deterministic,
        };
        assert!(
            report.sweep_deterministic,
            "parallel sweep produced thread-count-dependent results"
        );
        assert!(
            report.intra_run_deterministic,
            "parallel engine produced thread-count-dependent event counts"
        );
        write_json("BENCH_netsim", &report);
        return;
    }
    // Default: one human-readable probe run (`--ms N` shortens it,
    // `--par-threads N` runs it on the sharded parallel engine).
    let ms = args
        .iter()
        .position(|a| a == "--ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let r = standard_probe(ms, 5, par_threads);
    println!(
        "sim {}ms threads {}  wall {:.3}s  events {}  ev/s {:.1}M  completions {}/{}",
        ms,
        par_threads,
        r.wall_s,
        r.events,
        r.events as f64 / r.wall_s / 1e6,
        r.completions,
        r.flows
    );
}
