//! Fault-injection + guardrail experiment: the deployment-safety story.
//!
//! A steady cross-ToR workload runs while the fabric takes a scheduled
//! beating — a flapping ToR uplink plus a misbehaving host asserting a
//! sustained-XOFF PFC storm — and, mid-fault, the tuner goes rogue and
//! dispatches a collapsing (but bounds-valid) DCQCN parameter set.
//!
//! * **Unguarded** loop: the bad setting sticks; goodput stays on the
//!   floor after the faults clear.
//! * **Guardrailed** loop: the collapse is detected within the hold-down
//!   window (≤ 8 monitor intervals), the fabric rolls back to the
//!   last-known-good setting and recovers ≥ 90% of pre-fault goodput.
//!
//! A second scenario hammers the guardrail with repeated bad dispatches
//! plus one out-of-bounds candidate: the candidate is rejected outright,
//! the repeats escalate to safe mode (tuning frozen, paper-default
//! fallback deployed), and the freeze exits after the backoff.
//!
//! Every fault/rollback/safe-mode transition lands in the exported
//! telemetry JSONL; the binary exits non-zero if any acceptance check
//! fails, so CI can run it as a smoke job:
//!
//! Run: `cargo run --release -p paraleon-bench --bin exp_faults [--smoke]`

use paraleon::prelude::*;
use paraleon_bench::{gbps_of, print_table, telemetry_begin, telemetry_dump, write_json};
use paraleon_hunt::oracle::{goodput_collapse, pfc_storm};
use paraleon_tuner::{Observation, TuningAction, TuningFeedback, TuningScheme};
use serde::Serialize;

/// Interval the rogue tuner first dispatches the collapsing setting.
const BAD_DISPATCH_AT: u64 = 24;
/// The ISSUE's detection budget: rollback within this many intervals.
const DETECT_BUDGET: u64 = 8;

/// A deliberately pathological — but bounds-valid — parameter set:
/// hair-trigger marking (K_min at the floor, P_max at 1), CNPs as fast
/// as they can be generated, rate cuts at every opportunity, and —
/// the real poison — `clamp_tgt_rate`, which ratchets the fast-recovery
/// target down with every cut so the RNICs death-spiral to the minimum
/// rate, with an additive increase too timid to ever climb back.
/// Every numeric knob is inside [`ParamSpace::standard`], so static
/// validation cannot catch this; only the behavioral guardrail can.
fn collapsing_params() -> DcqcnParams {
    let mut p = DcqcnParams::nvidia_default();
    p.ai_rate = 1.0;
    p.hai_rate = 10.0;
    p.rpg_time_reset = 1_500.0;
    p.rpg_byte_reset = 4_096.0;
    p.rpg_threshold = 10.0;
    p.rate_reduce_monitor_period = 2.0;
    p.min_rate = 1.0;
    p.alpha_g_exp = 4.0;
    p.alpha_timer = 500.0;
    p.min_time_between_cnps = 0.0;
    p.k_min = 5.0;
    p.k_max = 30.0;
    p.p_max = 1.0;
    p.clamp_tgt_rate = true;
    p
}

/// An out-of-bounds candidate (AI rate far past the 400 Mbps cap) that
/// validation must refuse before it reaches a single device.
fn out_of_bounds_params() -> DcqcnParams {
    let mut p = DcqcnParams::nvidia_default();
    p.ai_rate = 1e9;
    p
}

/// A misbehaving tuner: quiet until `bad_at`, then dispatches the
/// collapsing setting — and, if `persistent`, re-dispatches it two
/// intervals after every rollback it is told about (the repeated-offender
/// pattern that drives the guardrail into safe mode). Optionally emits
/// one out-of-bounds candidate first to exercise validation.
struct RogueScheme {
    interval: u64,
    bad_at: u64,
    persistent: bool,
    emit_out_of_bounds_at: Option<u64>,
    redispatch_at: Option<u64>,
    frozen: bool,
    /// Intervals at which this scheme emitted the collapsing setting.
    dispatches: Vec<u64>,
}

impl RogueScheme {
    fn new(bad_at: u64, persistent: bool, emit_out_of_bounds_at: Option<u64>) -> Self {
        Self {
            interval: 0,
            bad_at,
            persistent,
            emit_out_of_bounds_at,
            redispatch_at: None,
            frozen: false,
            dispatches: Vec::new(),
        }
    }
}

impl TuningScheme for RogueScheme {
    fn on_interval(&mut self, _obs: &Observation) -> Option<TuningAction> {
        self.interval += 1;
        if self.frozen {
            return None;
        }
        if Some(self.interval) == self.emit_out_of_bounds_at {
            return Some(TuningAction::Global(out_of_bounds_params()));
        }
        let due = self.interval == self.bad_at || Some(self.interval) == self.redispatch_at;
        if due {
            self.redispatch_at = None;
            self.dispatches.push(self.interval);
            return Some(TuningAction::Global(collapsing_params()));
        }
        None
    }

    fn on_feedback(&mut self, feedback: &TuningFeedback) {
        match feedback {
            TuningFeedback::RolledBack { .. } if self.persistent => {
                self.redispatch_at = Some(self.interval + 2);
            }
            TuningFeedback::Frozen { .. } => self.frozen = true,
            TuningFeedback::Unfrozen => self.frozen = false,
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "Rogue"
    }
}

/// Experiment scale: the reduced CLOS by default, a minimal fabric with
/// shortened phases under `--smoke` (the CI job).
#[derive(Clone, Copy)]
struct FaultScale {
    smoke: bool,
}

impl FaultScale {
    fn clos(self) -> Topology {
        if self.smoke {
            Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 5_000)
        } else {
            Topology::two_tier_clos(4, 8, 2, 100.0, 100.0, 5_000)
        }
    }

    fn n_hosts(self) -> usize {
        if self.smoke {
            8
        } else {
            32
        }
    }

    fn hosts_per_tor(self) -> usize {
        if self.smoke {
            4
        } else {
            8
        }
    }

    /// Per-host bytes injected per monitor interval (~80% uplink load).
    fn bytes_per_interval(self) -> u64 {
        if self.smoke {
            5_000_000
        } else {
            2_500_000
        }
    }

    fn total_intervals(self) -> u64 {
        if self.smoke {
            60
        } else {
            70
        }
    }

    fn label(self) -> &'static str {
        if self.smoke {
            "smoke"
        } else {
            "reduced"
        }
    }
}

/// One interval's offered load: every host sends one cross-ToR flow to
/// its counterpart one ToR over (host 0 receives too, so the PFC storm
/// scenario has traffic aimed at the stormer). Fresh flows every
/// interval keep queue pressure on the fabric — which is what lets the
/// collapse vector bite — and mean recovery after a rollback is
/// immediate: new QPs start clean at line rate under the restored
/// parameters.
fn inject_interval(cl: &mut ClosedLoop, scale: FaultScale) {
    let n = scale.n_hosts();
    let shift = scale.hosts_per_tor();
    let now = cl.sim.now();
    for src in 0..n {
        let dst = (src + shift) % n;
        cl.sim.add_flow(
            src,
            dst,
            scale.bytes_per_interval(),
            now + (src as u64) * 100,
        );
    }
}

/// Per-interval history dump for threshold tuning (`FAULTS_DEBUG=1`).
fn debug_dump(tag: &str, cl: &ClosedLoop) {
    if std::env::var("FAULTS_DEBUG").is_err() {
        return;
    }
    for (i, r) in cl.cell.history.iter().enumerate() {
        eprintln!(
            "[{tag}] MI {:>3} goodput {:>8.2} Gbps util {:.3} disp {} rej {} rb {} safe {}",
            i + 1,
            r.goodput * 8.0 / 1e9,
            r.utility,
            r.dispatched as u8,
            r.rejected as u8,
            r.rolled_back as u8,
            r.safe_mode as u8
        );
    }
}

/// The shared fault schedule: one ToR0 uplink flaps three times and
/// host 0 runs a sustained PFC storm, all inside the fault window.
fn fault_plan(scale: FaultScale) -> FaultPlan {
    let tor0 = scale.n_hosts();
    let uplink = scale.hosts_per_tor();
    let mut plan = FaultPlan::new(7);
    plan.link_flap(tor0, uplink, 20 * MILLI, 2 * MILLI, 5 * MILLI, 3);
    plan.pfc_storm(0, 22 * MILLI, 30 * MILLI);
    plan
}

/// Storm-oracle sliding window (intervals) — mirrors the anomaly
/// hunter's default so both harnesses judge "sustained storm" the same
/// way.
const STORM_WINDOW: usize = 5;

#[derive(Serialize)]
struct LoopOutcome {
    guarded: bool,
    pre_fault_goodput: f64,
    tail_goodput: f64,
    recovery_ratio: f64,
    /// Peak sliding-window mean PFC pause ratio (the shared
    /// `hunt::oracle::pfc_storm` measure over the loop's history).
    peak_pause_window: f64,
    bad_dispatch_interval: Option<u64>,
    first_rollback_interval: Option<u64>,
    detect_latency: Option<u64>,
    rollbacks: u64,
    rejects: u64,
    safe_mode_entries: u64,
    fault_drops: u64,
}

/// Run the flap+storm scenario once, guarded or not.
fn run_scenario(scale: FaultScale, guarded: bool) -> LoopOutcome {
    telemetry_begin();
    let mut builder = ClosedLoop::builder(scale.clos())
        .scheme_boxed(Box::new(RogueScheme::new(BAD_DISPATCH_AT, false, None)))
        .seed(11);
    if guarded {
        builder = builder.guardrail(GuardrailConfig::default());
    }
    let mut cl = builder.build();
    cl.sim.install_fault_plan(&fault_plan(scale)).expect("plan");
    for _ in 0..scale.total_intervals() {
        inject_interval(&mut cl, scale);
        cl.step();
    }
    debug_dump(if guarded { "guarded" } else { "unguarded" }, &cl);

    // Recovery and storm measures come from the shared oracle detectors
    // (crates/hunt), judged over the closed-loop history: baseline is
    // intervals 10..20 (faults start at 20 ms), tail is the last 10.
    let goodputs: Vec<f64> = cl.cell.history.iter().map(|r| r.goodput).collect();
    let collapse = goodput_collapse(&goodputs, 10..20, 10);
    let pauses: Vec<f64> = cl.cell.history.iter().map(|r| r.pause_ratio()).collect();
    let storm = pfc_storm(&pauses, STORM_WINDOW, 0.25);
    let first_rollback = cl
        .cell
        .history
        .iter()
        .position(|r| r.rolled_back)
        .map(|i| i as u64 + 1);
    let guard_stats = cl.guard().map(|g| g.stats()).unwrap_or_default();
    let name = format!(
        "faults_{}_{}",
        scale.label(),
        if guarded { "guarded" } else { "unguarded" }
    );
    let dump = telemetry_dump(&name);
    // The flight recorder must carry every fault transition.
    for ev in [
        "fault_link_down",
        "fault_link_up",
        "pfc_storm_start",
        "pfc_storm_end",
    ] {
        assert!(
            !dump.events_named(ev).is_empty(),
            "telemetry is missing {ev} events"
        );
    }
    LoopOutcome {
        guarded,
        pre_fault_goodput: collapse.baseline,
        tail_goodput: collapse.tail,
        recovery_ratio: collapse.recovery_ratio,
        peak_pause_window: storm.peak_window_mean,
        bad_dispatch_interval: Some(BAD_DISPATCH_AT),
        first_rollback_interval: first_rollback,
        detect_latency: first_rollback.map(|r| r.saturating_sub(BAD_DISPATCH_AT)),
        rollbacks: guard_stats.rollbacks,
        rejects: guard_stats.rejects,
        safe_mode_entries: guard_stats.safe_mode_entries,
        fault_drops: cl.sim.total_fault_drops(),
    }
}

#[derive(Serialize)]
struct SafeModeOutcome {
    rejects: u64,
    rollbacks: u64,
    safe_mode_entries: u64,
    safe_mode_intervals: u64,
    exited_safe_mode: bool,
    rejected_interval_seen: bool,
}

/// Scenario 2: no netsim faults — a persistent rogue re-dispatches the
/// collapsing setting after every rollback until the guardrail freezes
/// tuning, then the freeze expires and tuning unfreezes.
fn run_safe_mode(scale: FaultScale) -> SafeModeOutcome {
    telemetry_begin();
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme_boxed(Box::new(RogueScheme::new(12, true, Some(8))))
        .guardrail(GuardrailConfig {
            safe_mode_backoff_intervals: 10,
            ..GuardrailConfig::default()
        })
        .seed(12)
        .build();
    let total = scale.total_intervals() + 20;
    for _ in 0..total {
        inject_interval(&mut cl, scale);
        cl.step();
    }
    debug_dump("safemode", &cl);
    let guard = cl.guard().expect("guarded").stats();
    let safe_intervals = cl.cell.history.iter().filter(|r| r.safe_mode).count() as u64;
    let outcome = SafeModeOutcome {
        rejects: guard.rejects,
        rollbacks: guard.rollbacks,
        safe_mode_entries: guard.safe_mode_entries,
        safe_mode_intervals: safe_intervals,
        exited_safe_mode: !guard.in_safe_mode,
        rejected_interval_seen: cl.cell.history.iter().any(|r| r.rejected),
    };
    let dump = telemetry_dump(&format!("faults_{}_safemode", scale.label()));
    for ev in [
        "guardrail_reject",
        "guardrail_rollback",
        "safe_mode_enter",
        "safe_mode_exit",
    ] {
        assert!(
            !dump.events_named(ev).is_empty(),
            "telemetry is missing {ev} events"
        );
    }
    outcome
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = FaultScale { smoke };
    println!(
        "Fault injection + guardrail experiment ({} scale)",
        scale.label()
    );

    let unguarded = run_scenario(scale, false);
    let guarded = run_scenario(scale, true);
    let safe = run_safe_mode(scale);

    let row = |o: &LoopOutcome| {
        vec![
            if o.guarded {
                "guardrailed"
            } else {
                "unguarded"
            }
            .to_string(),
            format!("{:.1}", gbps_of(o.pre_fault_goodput)),
            format!("{:.1}", gbps_of(o.tail_goodput)),
            format!("{:.2}", o.recovery_ratio),
            o.detect_latency
                .map(|d| format!("{d}"))
                .unwrap_or_else(|| "-".into()),
            format!("{}", o.rollbacks),
        ]
    };
    print_table(
        "Flap + PFC storm + rogue dispatch: recovery",
        &[
            "loop",
            "pre-fault Gbps",
            "tail Gbps",
            "recovery",
            "detect (MIs)",
            "rollbacks",
        ],
        &[row(&unguarded), row(&guarded)],
    );
    print_table(
        "Repeated bad dispatches: guardrail escalation",
        &[
            "rejects",
            "rollbacks",
            "safe-mode entries",
            "frozen MIs",
            "exited",
        ],
        &[vec![
            format!("{}", safe.rejects),
            format!("{}", safe.rollbacks),
            format!("{}", safe.safe_mode_entries),
            format!("{}", safe.safe_mode_intervals),
            format!("{}", safe.exited_safe_mode),
        ]],
    );
    write_json(
        &format!("faults_{}", scale.label()),
        &(&unguarded, &guarded, &safe),
    );

    // --- Acceptance checks (CI smoke gate): exit non-zero on failure. ---
    let mut failures = Vec::new();
    let mut check = |ok: bool, msg: String| {
        if !ok {
            failures.push(msg);
        }
    };
    check(
        guarded.first_rollback_interval.is_some(),
        "guardrailed loop never rolled back".into(),
    );
    if let Some(d) = guarded.detect_latency {
        check(
            d <= DETECT_BUDGET,
            format!("detection took {d} intervals (budget {DETECT_BUDGET})"),
        );
    }
    check(
        guarded.recovery_ratio >= 0.9,
        format!(
            "guardrailed loop recovered only {:.0}% of pre-fault goodput",
            guarded.recovery_ratio * 100.0
        ),
    );
    check(
        guarded.recovery_ratio > unguarded.recovery_ratio,
        format!(
            "guardrail did not beat the unguarded loop ({:.2} vs {:.2})",
            guarded.recovery_ratio, unguarded.recovery_ratio
        ),
    );
    check(
        unguarded.fault_drops > 0,
        "fault plan injected no drops".into(),
    );
    // The shared storm oracle must see the injected sustained-XOFF storm
    // in both loops (it runs 22–30 ms regardless of tuning).
    for o in [&unguarded, &guarded] {
        check(
            o.peak_pause_window > 0.0,
            format!(
                "storm detector saw no pause pressure ({} loop)",
                if o.guarded { "guarded" } else { "unguarded" }
            ),
        );
    }
    check(
        safe.rejects >= 1,
        "out-of-bounds candidate not rejected".into(),
    );
    check(
        safe.safe_mode_entries >= 1,
        "repeated rollbacks never escalated to safe mode".into(),
    );
    check(
        safe.exited_safe_mode,
        "safe-mode backoff never expired".into(),
    );
    check(
        safe.rejected_interval_seen,
        "no interval recorded the rejection".into(),
    );
    // When built with the audit feature, a non-panicking (release) run
    // still fails the gate on any recorded invariant violation.
    if paraleon_audit::compiled_in() {
        let v = paraleon_audit::violation_count();
        for rep in paraleon_audit::violations().iter().take(5) {
            eprintln!("audit violation: {}", rep.violation);
        }
        check(v == 0, format!("{v} invariant violations recorded"));
    }

    if failures.is_empty() {
        println!("\nall acceptance checks passed");
    } else {
        eprintln!("\nACCEPTANCE FAILURES:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
