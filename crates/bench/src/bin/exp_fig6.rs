//! Figure 6: inter-parameter impacts — a 2-D sweep of `rpg_time_reset` ×
//! `K_max` on throughput and RTT.
//!
//! The paper's point: driving both parameters in the throughput-friendly
//! direction simultaneously (small `rpg_time_reset`, large `K_max`) does
//! **not** produce monotonically better throughput — over-aggressive
//! injection overshoots the equilibrium, triggers extra CNPs/PFCs and
//! hurts. The harness prints both metric grids and flags the
//! non-monotonicity.
//!
//! Run: `cargo run --release -p paraleon-bench --bin exp_fig6 [--paper]`

use paraleon::prelude::*;
use paraleon_bench::{gbps_of, print_table, tail_goodput, tail_rtt_us, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    rpg_time_reset: f64,
    k_max: f64,
    goodput_gbps: f64,
    rtt_us: f64,
}

/// Same bursty elephants-plus-mice-incast workload as `exp_fig5` (see
/// there for the rationale), with two parameters swept jointly.
fn measure(scale: Scale, rpg_time_reset: f64, k_max: f64) -> (f64, f64) {
    let mut p = DcqcnParams::nvidia_default();
    p.rpg_time_reset = rpg_time_reset;
    p.k_max = k_max;
    p.k_min = (k_max / 4.0).max(10.0);
    let cfg = SimConfig {
        dcqcn: p,
        ..SimConfig::default()
    };
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme(SchemeKind::Static(p, "grid"))
        .sim_config(cfg)
        .build();
    let hosts = scale.hosts();
    let pairs = hosts / 4;
    let window = match scale {
        Scale::Reduced => 24 * MILLI,
        Scale::Paper => 60 * MILLI,
    };
    for i in 0..pairs {
        let src = i * (hosts / pairs);
        let dst = (src + hosts / 2 + 1) % hosts;
        cl.sim.add_flow(src, dst, 2 * 12_500 * window / 1_000, 0);
    }
    let mut t = MILLI;
    while t < window {
        for i in 0..pairs {
            let dst = (i * (hosts / pairs) + hosts / 2 + 1) % hosts;
            for k in 0..8usize {
                let src = (dst + 1 + k * 3) % hosts;
                if src != dst {
                    cl.sim.add_flow(src, dst, 64 * 1024, t + k as u64 * 1000);
                }
            }
        }
        t += 3 * MILLI;
    }
    cl.run_until(window);
    let n = cl.cell.history.len();
    (
        tail_goodput(&cl, n.saturating_sub(1)),
        tail_rtt_us(&cl, n.saturating_sub(1)),
    )
}

fn main() {
    let scale = Scale::from_args();
    let timers = [20.0, 80.0, 300.0, 900.0];
    let kmaxes = [200.0, 800.0, 3200.0, 12800.0];
    println!("Figure 6 reproduction ({} scale)", scale.label());

    let mut cells = Vec::new();
    let mut tp_rows = Vec::new();
    let mut rtt_rows = Vec::new();
    for &t in &timers {
        let mut tp_row = vec![format!("{t}")];
        let mut rtt_row = vec![format!("{t}")];
        for &k in &kmaxes {
            let (tp, rtt) = measure(scale, t, k);
            tp_row.push(format!("{:.1}", gbps_of(tp)));
            rtt_row.push(format!("{rtt:.1}"));
            cells.push(Cell {
                rpg_time_reset: t,
                k_max: k,
                goodput_gbps: gbps_of(tp),
                rtt_us: rtt,
            });
        }
        tp_rows.push(tp_row);
        rtt_rows.push(rtt_row);
    }
    let header: Vec<String> = std::iter::once("timer\\Kmax".to_string())
        .chain(kmaxes.iter().map(|k| format!("{k}KB")))
        .collect();
    let header_ref: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table("Fig 6(a): throughput (Gbps)", &header_ref, &tp_rows);
    print_table("Fig 6(b): RTT (us)", &header_ref, &rtt_rows);

    // Non-monotonicity check along the "both throughput-friendly"
    // diagonal: smaller timer + larger Kmax should NOT be uniformly
    // better.
    let diag: Vec<f64> = (0..timers.len())
        .map(|i| {
            cells
                .iter()
                .find(|c| c.rpg_time_reset == timers[timers.len() - 1 - i] && c.k_max == kmaxes[i])
                .map(|c| c.goodput_gbps)
                .unwrap_or(0.0)
        })
        .collect();
    let monotonic = diag.windows(2).all(|w| w[1] >= w[0] - 1e-9);
    println!(
        "\nthroughput along the aggressive diagonal: {:?}\nmonotonic: {} (paper observes convex/concave points, i.e. NOT monotonic)",
        diag.iter().map(|v| format!("{v:.1}")).collect::<Vec<_>>(),
        monotonic
    );
    write_json("fig6", &cells);
}
