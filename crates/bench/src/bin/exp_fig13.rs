//! Figure 13: testbed-style alltoall bandwidth across collective scales,
//! default vs expert vs PARALEON.
//!
//! The paper runs NCCL alltoall on 8..32 H100 nodes at 400 G and finds
//! PARALEON up to 19.5% above the static settings. Our substitute (see
//! DESIGN.md §4) sweeps the worker count on the simulated fabric and
//! reports the steady-state algorithm bandwidth; PARALEON tunes online
//! (forced trigger, throughput-sensitive weights, as an LLM cluster
//! operator would configure).
//!
//! Run: `cargo run --release -p paraleon-bench --bin exp_fig13 [--paper]`

use paraleon::prelude::*;
use paraleon_bench::{print_table, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheme: String,
    workers: usize,
    algbw_gbps: f64,
}

fn run_one(scale: Scale, scheme: SchemeKind, workers: usize) -> f64 {
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme(scheme)
        .loop_config(LoopConfig {
            force_tuning: true,
            weights: UtilityWeights::throughput_sensitive(),
            ..LoopConfig::default()
        })
        .build();
    let stride = (scale.hosts() / workers).max(1);
    let rounds = match scale {
        Scale::Reduced => 8,
        Scale::Paper => 6,
    };
    let mut a2a = AllToAll::new(AllToAllConfig {
        workers: (0..workers).map(|i| i * stride).collect(),
        message_bytes: scale.llm_message(),
        off_time: MILLI,
        rounds: Some(rounds),
    });
    drivers::run_alltoall(&mut cl, &mut a2a, 0, 30 * SEC);
    // Steady state: mean algbw over the last half of the rounds (the
    // early rounds include PARALEON's search transient).
    let done = a2a.round_durations.len();
    let take = (done / 2).max(1);
    let vals: Vec<f64> = (done - take..done)
        .filter_map(|i| a2a.algbw_bytes_per_sec(i))
        .map(|b| b * 8.0 / 1e9)
        .collect();
    paraleon::stats::mean(&vals)
}

fn main() {
    let scale = Scale::from_args();
    println!("Figure 13 reproduction ({} scale)", scale.label());
    let worker_counts: Vec<usize> = match scale {
        Scale::Reduced => vec![8, 16, 32],
        Scale::Paper => vec![8, 16, 32, 64],
    };
    let schemes = [SchemeKind::Default, SchemeKind::Expert, scale.paraleon()];
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for &w in &worker_counts {
        let mut row = vec![format!("{w}")];
        for scheme in &schemes {
            let bw = run_one(scale, scheme.clone(), w);
            row.push(format!("{bw:.1}"));
            out.push(Row {
                scheme: scheme.name().to_string(),
                workers: w,
                algbw_gbps: bw,
            });
        }
        rows.push(row);
    }
    print_table(
        "Fig 13: alltoall algbw (Gbps) vs collective scale",
        &["workers", "Default", "Expert", "PARALEON"],
        &rows,
    );
    // PARALEON's headline advantage.
    for &w in &worker_counts {
        let get = |n: &str| {
            out.iter()
                .find(|r| r.workers == w && r.scheme == n)
                .map(|r| r.algbw_gbps)
                .unwrap_or(0.0)
        };
        let best_static = get("Default").max(get("Expert"));
        println!(
            "workers={w}: PARALEON vs best static = {:+.1}% (paper: up to +19.5%)",
            (get("PARALEON") / best_static.max(1e-9) - 1.0) * 100.0
        );
    }
    write_json("fig13", &out);
}
