//! Table IV: system overheads — controller/control-plane CPU, memory,
//! and per-interval control-channel data transfer.
//!
//! The paper reports (testbed, λ_MI = 30 ms): switch control plane 20.3%
//! CPU, centralized controller 3.2% CPU, 9.5 MB control-plane memory,
//! and per-interval transfers of 520 B (switches→controller), 12 B
//! (RNICs→controller) and 76 B (controller→devices). We measure the same
//! quantities on our implementation while it runs the FB_Hadoop workload
//! with active tuning.
//!
//! Run: `cargo run --release -p paraleon-bench --bin exp_table4 [--paper]`

use paraleon::prelude::*;
use paraleon_bench::{print_table, telemetry_begin, telemetry_dump, write_json, Scale};
use paraleon_monitor::{FsdMonitor, ParaleonMonitor};
use paraleon_sketch::{ElasticSketch, SketchConfig, SlidingWindowClassifier};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Overheads {
    monitor_cpu_pct_of_interval: f64,
    tuner_cpu_pct_of_interval: f64,
    control_plane_memory_bytes: usize,
    sketch_memory_bytes: usize,
    switch_to_controller_bytes_per_interval: f64,
    rnic_to_controller_bytes_per_interval: f64,
    controller_to_devices_bytes_per_interval: f64,
    intervals: u64,
    telemetry: TelemetryFootprint,
}

/// The observability subsystem's own memory cost while the run was
/// fully instrumented (counters, gauges, histograms, time series,
/// flight recorder).
#[derive(Serialize)]
struct TelemetryFootprint {
    total_bytes: usize,
    counters_bytes: usize,
    histograms_bytes: usize,
    series_bytes: usize,
    flight_bytes: usize,
    bytes_per_counter: usize,
    bytes_per_histogram: usize,
    bytes_per_event_slot: usize,
    bytes_per_series_point: usize,
    series_points_recorded: usize,
    flight_events_retained: usize,
    flight_events_evicted: u64,
}

fn main() {
    let scale = Scale::from_args();
    println!("Table IV reproduction ({} scale)", scale.label());
    telemetry_begin();
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme(scale.paraleon())
        .loop_config(LoopConfig {
            force_tuning: true,
            ..LoopConfig::default()
        })
        .build();
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: scale.hosts(),
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.3,
            start: 0,
            end: scale.fb_window(),
        },
        FlowSizeDist::fb_hadoop(),
    );
    let mut rng = StdRng::seed_from_u64(29);
    let flows = wl.generate(&mut rng);
    let t0 = Instant::now();
    drivers::run_schedule(&mut cl, &flows, scale.fb_window());
    let wall = t0.elapsed();

    // Measure the telemetry registry while it still holds the run's
    // data, then export + clear it.
    let fp = paraleon_telemetry::memory_footprint();
    let dump = telemetry_dump("table4");
    let telemetry = TelemetryFootprint {
        total_bytes: fp.total(),
        counters_bytes: fp.counters_bytes + fp.gauges_bytes,
        histograms_bytes: fp.histograms_bytes,
        series_bytes: fp.series_bytes,
        flight_bytes: fp.flight_bytes,
        bytes_per_counter: fp.bytes_per_counter(),
        bytes_per_histogram: fp.bytes_per_histogram(),
        bytes_per_event_slot: fp.bytes_per_event(),
        bytes_per_series_point: fp.bytes_per_series_point(),
        series_points_recorded: dump.series.len(),
        flight_events_retained: dump.events.len(),
        flight_events_evicted: dump.flight_dropped,
    };

    // Control-plane memory: a standalone classifier fed the same load
    // measures the flow-tracking footprint; the data-plane sketch size
    // comes from its configuration.
    let mut classifier = SlidingWindowClassifier::new(WindowConfig::default());
    let mut batch: Vec<(u64, u64)> = Vec::new();
    for f in flows.iter().take(2000) {
        batch.push((f.src as u64 ^ (f.dst as u64) << 16, f.bytes.min(1 << 20)));
    }
    classifier.end_interval(batch.iter().copied());
    let sketch_mem = ElasticSketch::new(SketchConfig::default()).memory_bytes();
    let monitor_mem = {
        let mut m = ParaleonMonitor::new(WindowConfig::default());
        let readings: Vec<(usize, Vec<(u64, u64)>)> = vec![(0, batch)];
        m.on_interval(&readings, 0);
        m.control_plane_memory_bytes()
    };

    // CPU percentages: controller work per interval relative to λ_MI of
    // wall time would overstate (the simulator compresses time), so we
    // report controller work relative to total harness wall-clock — the
    // honest analogue of "% of one core while the system runs".
    let (sw_b, rnic_b, disp_b) = cl.cell.ledger.per_interval();
    let o = Overheads {
        monitor_cpu_pct_of_interval: cl.cell.monitor_cpu.as_secs_f64() / wall.as_secs_f64() * 100.0,
        tuner_cpu_pct_of_interval: cl.cell.tuner_cpu.as_secs_f64() / wall.as_secs_f64() * 100.0,
        control_plane_memory_bytes: monitor_mem + classifier.memory_bytes(),
        sketch_memory_bytes: sketch_mem,
        switch_to_controller_bytes_per_interval: sw_b,
        rnic_to_controller_bytes_per_interval: rnic_b,
        controller_to_devices_bytes_per_interval: disp_b,
        intervals: cl.cell.ledger.intervals,
        telemetry,
    };
    let rows = vec![
        vec![
            "CPU: monitoring (switch CP analogue)".into(),
            format!("{:.2}% of harness wall", o.monitor_cpu_pct_of_interval),
            "20.3% (switch CP)".into(),
        ],
        vec![
            "CPU: tuning (controller analogue)".into(),
            format!("{:.2}% of harness wall", o.tuner_cpu_pct_of_interval),
            "3.2% (controller)".into(),
        ],
        vec![
            "Memory: control-plane flow states".into(),
            format!("{} KB", o.control_plane_memory_bytes / 1024),
            "9.5 MB (switch CP)".into(),
        ],
        vec![
            "Memory: data-plane sketch".into(),
            format!("{} KB", o.sketch_memory_bytes / 1024),
            "(per Elastic Sketch [29])".into(),
        ],
        vec![
            "Transfer: switches -> controller".into(),
            format!(
                "{:.0} B/interval",
                o.switch_to_controller_bytes_per_interval
            ),
            "520 B".into(),
        ],
        vec![
            "Transfer: RNICs -> controller".into(),
            format!("{:.0} B/interval", o.rnic_to_controller_bytes_per_interval),
            "12 B".into(),
        ],
        vec![
            "Transfer: controller -> devices".into(),
            format!(
                "{:.0} B/interval",
                o.controller_to_devices_bytes_per_interval
            ),
            "76 B".into(),
        ],
    ];
    print_table(
        "Table IV: system overheads (measured vs paper)",
        &["category", "measured", "paper"],
        &rows,
    );

    let t = &o.telemetry;
    let tel_rows = vec![
        vec![
            "total registry".into(),
            format!("{:.1} KB", t.total_bytes as f64 / 1024.0),
            format!(
                "{} series pts + {} ring events",
                t.series_points_recorded, t.flight_events_retained
            ),
        ],
        vec![
            "counters + gauges".into(),
            format!("{} B", t.counters_bytes),
            format!("{} B per metric", t.bytes_per_counter),
        ],
        vec![
            "histograms".into(),
            format!("{:.1} KB", t.histograms_bytes as f64 / 1024.0),
            format!(
                "{:.1} KB per histogram",
                t.bytes_per_histogram as f64 / 1024.0
            ),
        ],
        vec![
            "time series".into(),
            format!("{:.1} KB", t.series_bytes as f64 / 1024.0),
            format!("{} B per point", t.bytes_per_series_point),
        ],
        vec![
            "flight recorder".into(),
            format!("{:.1} KB", t.flight_bytes as f64 / 1024.0),
            format!(
                "{} B per slot, {} evicted",
                t.bytes_per_event_slot, t.flight_events_evicted
            ),
        ],
    ];
    print_table(
        "Telemetry subsystem footprint (fully instrumented run)",
        &["component", "bytes", "unit cost"],
        &tel_rows,
    );
    write_json("table4", &o);
}
