//! Figure 11: the effect of the monitor interval λ_MI on FSD accuracy
//! and FCT, comparing naive Elastic Sketch vs PARALEON.
//!
//! NetFlow is excluded (it is an O(seconds) scheme, as in the paper).
//! Expectation to reproduce: PARALEON stays near-perfect at every
//! millisecond-scale interval, while naive Elastic Sketch improves with
//! longer intervals yet remains behind; smaller intervals help
//! PARALEON's FCT by making the tuner more responsive.
//!
//! Run: `cargo run --release -p paraleon-bench --bin exp_fig11 [--paper]`

use paraleon::prelude::*;
use paraleon_bench::{print_table, write_json, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    monitor: String,
    lambda_mi_ms: f64,
    fsd_accuracy: f64,
    avg_fct_ms: f64,
    flows: usize,
}

fn run_one(scale: Scale, monitor: MonitorKind, lambda_mi: u64) -> Row {
    let sim_cfg = SimConfig {
        track_ground_truth: true,
        ..SimConfig::default()
    };
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme(scale.paraleon())
        .monitor(monitor.clone())
        .sim_config(sim_cfg)
        .loop_config(LoopConfig {
            lambda_mi,
            force_tuning: true,
            ..LoopConfig::default()
        })
        .build();
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: scale.hosts(),
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.3,
            start: 0,
            end: scale.monitor_window(),
        },
        FlowSizeDist::fb_hadoop(),
    );
    let mut rng = StdRng::seed_from_u64(19);
    let flows = wl.generate(&mut rng);
    drivers::run_schedule(&mut cl, &flows, scale.monitor_window());
    cl.run_to_completion(scale.monitor_window() + 200 * MILLI);
    let acc: Vec<f64> = cl
        .cell
        .history
        .iter()
        .filter_map(|r| r.fsd_accuracy)
        .collect();
    let fcts: Vec<f64> = cl
        .completions
        .iter()
        .map(|r| r.fct() as f64 / 1e6)
        .collect();
    Row {
        monitor: monitor.name().to_string(),
        lambda_mi_ms: lambda_mi as f64 / 1e6,
        fsd_accuracy: paraleon::stats::mean(&acc),
        avg_fct_ms: paraleon::stats::mean(&fcts),
        flows: cl.completions.len(),
    }
}

fn main() {
    let scale = Scale::from_args();
    println!("Figure 11 reproduction ({} scale)", scale.label());
    let intervals = [MILLI, 2 * MILLI, 4 * MILLI, 8 * MILLI];
    let mut out = Vec::new();
    for m in [MonitorKind::NaiveSketch, MonitorKind::Paraleon] {
        let mut rows = Vec::new();
        for &mi in &intervals {
            let r = run_one(scale, m.clone(), mi);
            rows.push(vec![
                format!("{:.0}", r.lambda_mi_ms),
                format!("{:.3}", r.fsd_accuracy),
                format!("{:.2}", r.avg_fct_ms),
                format!("{}", r.flows),
            ]);
            out.push(r);
        }
        print_table(
            &format!("Fig 11: {} across monitor intervals", m.name()),
            &["λ_MI (ms)", "FSD accuracy", "avg FCT (ms)", "flows"],
            &rows,
        );
    }
    write_json("fig11", &out);
}
