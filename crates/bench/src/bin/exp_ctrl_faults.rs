//! Control-plane fault experiment: the faulty-controller survival story.
//!
//! A steady cross-ToR workload runs while the *control plane* — not the
//! fabric — takes a scripted beating: both channel lanes turn lossy,
//! delaying and duplicating (telemetry uploads and parameter dispatches
//! alike), and mid-impairment the controller process crashes and
//! warm-restarts from its last checkpoint. The data plane itself is
//! never touched, so any end-state damage is purely a protocol failure.
//!
//! * **Hardened** loop (epoch-stamped dispatches, ACK/retry with seeded
//!   backoff, snapshot/restore): retries re-send what the channel ate,
//!   the restart resyncs the fabric, and after the loop quiesces the
//!   controller's believed parameters and the fabric's applied
//!   parameters agree — with post-recovery goodput within 5% of an
//!   identically-seeded fault-free run.
//! * **Naive** strawman (same channel, no epochs, no retries, fire and
//!   forget): a lost or reordered-stale final dispatch is never
//!   repaired, so the run ends with the fabric silently running
//!   different parameters than the controller believes — the divergence
//!   the gate exists to catch.
//!
//! The three scenarios fan across worker threads with the same sweep
//! runner the hunter uses; results come back in job order, so a
//! parallel run is byte-identical to `--serial` (`--check` proves this
//! by running both and comparing the serialized outcomes).
//!
//! Run: `cargo run --release -p paraleon-bench --bin exp_ctrl_faults
//! [--smoke] [--check] [--serial | --threads N]`

use paraleon::prelude::*;
use paraleon_bench::{gbps_of, print_table, telemetry_begin, telemetry_dump, write_json};
use paraleon_hunt::sweep;
use serde::Serialize;

/// Shared deterministic seed: fabric RNG, channel fault stream and
/// retry jitter all derive from it, so every scenario replays exactly.
const SEED: u64 = 5;

/// Interval count of the scripted run (fault window included).
const RUN_INTERVALS: u64 = 48;

/// Quiescence budget after the scripted run: must outlast the SA
/// episode still in flight (~280 monitor intervals at the paper's
/// Table III settings) plus the retry backoff cap.
const SETTLE_INTERVALS: u64 = 400;

/// Post-recovery measurement phase: intervals of fresh offered load
/// after the loop quiesced, where goodput is judged against the
/// fault-free twin over the same window.
const MEASURE_INTERVALS: u64 = 12;

/// The gate: post-recovery goodput must be at least this fraction of
/// the fault-free run's.
const RECOVERY_FLOOR: f64 = 0.95;

/// Experiment scale: identical fabric in both modes (the gate pins one
/// seed, so the scripted scenario must not change shape under CI); the
/// smoke flag only exists for symmetry with the other experiment
/// binaries and to keep a short-run escape hatch.
#[derive(Clone, Copy)]
struct CtrlScale {
    smoke: bool,
}

impl CtrlScale {
    fn clos(self) -> Topology {
        Topology::two_tier_clos(2, 4, 2, 100.0, 100.0, 5_000)
    }

    fn n_hosts(self) -> usize {
        8
    }

    fn hosts_per_tor(self) -> usize {
        4
    }

    /// Per-host bytes injected per monitor interval (~80% uplink load).
    fn bytes_per_interval(self) -> u64 {
        5_000_000
    }

    fn label(self) -> &'static str {
        if self.smoke {
            "smoke"
        } else {
            "full"
        }
    }
}

/// The scripted control-plane beating: both lanes impaired from 2 ms
/// (45% loss, up to 3 intervals of delay, 25% duplication — loss,
/// delay, reorder and duplication all at once), a warm controller
/// crash at 20 ms, and *no restore*: the channel stays hostile to the
/// end of the run, so the final dispatch of the tuning episode is as
/// likely to be eaten as any other. Only retries can repair that.
fn ctrl_fault_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(3);
    plan.ctrl_impair(2 * MILLI, true, true, 0.45, 3, 0.25);
    plan.ctrl_crash(20 * MILLI, true);
    plan
}

/// One interval's offered load: every host sends one cross-ToR flow to
/// its counterpart one ToR over. Fresh flows every interval keep
/// dispatch-relevant pressure on the fabric and make the post-recovery
/// measurement phase start clean under whatever parameters survived.
fn inject_interval(cl: &mut ClosedLoop, scale: CtrlScale) {
    let n = scale.n_hosts();
    let shift = scale.hosts_per_tor();
    let now = cl.sim.now();
    for src in 0..n {
        let dst = (src + shift) % n;
        cl.sim.add_flow(
            src,
            dst,
            scale.bytes_per_interval(),
            now + (src as u64) * 100,
        );
    }
}

#[derive(Serialize)]
struct CtrlOutcome {
    label: &'static str,
    faulted: bool,
    naive: bool,
    /// The loop reached quiescence inside the settle budget.
    settled: bool,
    /// Controller-believed vs fabric-applied parameter divergence at
    /// the end — the state a hardened protocol must drive to `false`.
    diverged: bool,
    /// Mean goodput (bytes/s) over the post-recovery measurement phase.
    recovery_goodput: f64,
    msgs_lost: u64,
    msgs_duplicated: u64,
    retries: u64,
    crashes: u64,
    resyncs: u64,
}

/// Run one scenario: scripted run → quiesce → divergence verdict →
/// fresh-load measurement phase.
fn run_scenario(scale: CtrlScale, label: &'static str, faulted: bool, naive: bool) -> CtrlOutcome {
    telemetry_begin();
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme(SchemeKind::Paraleon)
        .loop_config(LoopConfig {
            force_tuning: true,
            ..LoopConfig::default()
        })
        .ctrl_plane(CtrlPlaneConfig {
            naive,
            ..CtrlPlaneConfig::default()
        })
        .seed(SEED)
        .build();
    if faulted {
        cl.install_fault_plan(&ctrl_fault_plan()).expect("plan");
    }
    for _ in 0..RUN_INTERVALS {
        inject_interval(&mut cl, scale);
        cl.step();
    }
    let settled = cl.ctrl_settle(SETTLE_INTERVALS);
    // The divergence verdict is taken at quiescence, before fresh load
    // can trigger new tuning episodes: this is the protocol's end state.
    let diverged = cl.ctrl_diverged();
    let measure_from = cl.cell.history.len();
    for _ in 0..MEASURE_INTERVALS {
        inject_interval(&mut cl, scale);
        cl.step();
    }
    let phase = &cl.cell.history[measure_from..];
    let recovery_goodput = phase.iter().map(|r| r.goodput).sum::<f64>() / phase.len().max(1) as f64;
    let stats = cl.ctrl().expect("ctrl plane armed").stats();
    let dump = telemetry_dump(&format!("ctrl_faults_{}_{label}", scale.label()));
    if faulted {
        assert!(
            !dump.events_named("ctrl_crash").is_empty(),
            "telemetry is missing ctrl_crash events"
        );
        if !naive {
            assert!(
                !dump.events_named("ctrl_resync").is_empty(),
                "telemetry is missing ctrl_resync events"
            );
        }
    }
    CtrlOutcome {
        label,
        faulted,
        naive,
        settled,
        diverged,
        recovery_goodput,
        msgs_lost: stats.up.lost + stats.down.lost,
        msgs_duplicated: stats.up.duplicated + stats.down.duplicated,
        retries: stats.retries,
        crashes: stats.crashes,
        resyncs: stats.resyncs,
    }
}

/// Fan the three scenarios across the sweep runner; results come back
/// in job order regardless of worker count.
fn run_all(scale: CtrlScale, threads: usize) -> Vec<CtrlOutcome> {
    type Job<'a> = Box<dyn FnOnce() -> CtrlOutcome + Send + 'a>;
    let jobs: Vec<Job> = vec![
        Box::new(move || run_scenario(scale, "faultfree", false, false)),
        Box::new(move || run_scenario(scale, "hardened", true, false)),
        Box::new(move || run_scenario(scale, "naive", true, true)),
    ];
    sweep::run(threads, jobs)
}

/// Whether an outcome passes the acceptance gate relative to the
/// fault-free twin — the *same* gate judges hardened and naive.
fn passes_gate(o: &CtrlOutcome, faultfree: &CtrlOutcome) -> bool {
    o.settled && !o.diverged && o.recovery_goodput >= RECOVERY_FLOOR * faultfree.recovery_goodput
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let check_identical = std::env::args().any(|a| a == "--check");
    let scale = CtrlScale { smoke };
    let threads = sweep::threads_from_args();
    println!(
        "Control-plane fault experiment ({} scale, {threads} thread(s))",
        scale.label()
    );

    let outcomes = run_all(scale, threads);
    // `--check`: replay the whole sweep serially and require the
    // serialized outcomes to match the parallel run byte for byte.
    if check_identical {
        let serial = run_all(scale, 1);
        let a = serde_json::to_string(&outcomes).expect("outcomes serialize");
        let b = serde_json::to_string(&serial).expect("outcomes serialize");
        assert_eq!(
            a, b,
            "parallel run is not byte-identical to the serial replay"
        );
        println!("serial replay byte-identical: ok");
    }
    let [faultfree, hardened, naive] = &outcomes[..] else {
        unreachable!("three scenarios");
    };

    let row = |o: &CtrlOutcome| {
        vec![
            o.label.to_string(),
            format!("{:.1}", gbps_of(o.recovery_goodput)),
            format!("{}", o.settled),
            format!("{}", o.diverged),
            format!("{}", o.msgs_lost),
            format!("{}", o.retries),
            format!("{}", o.crashes),
            if passes_gate(o, faultfree) {
                "pass"
            } else {
                "FAIL"
            }
            .to_string(),
        ]
    };
    print_table(
        "Lossy channel + warm crash: recovery and end-state agreement",
        &[
            "loop",
            "recovery Gbps",
            "settled",
            "diverged",
            "msgs lost",
            "retries",
            "crashes",
            "gate",
        ],
        &[row(faultfree), row(hardened), row(naive)],
    );
    write_json(&format!("ctrl_faults_{}", scale.label()), &outcomes);

    // --- Acceptance checks (CI smoke gate): exit non-zero on failure. ---
    let mut failures = Vec::new();
    let mut check = |ok: bool, msg: String| {
        if !ok {
            failures.push(msg);
        }
    };
    check(
        passes_gate(faultfree, faultfree),
        "fault-free loop failed its own gate".into(),
    );
    check(
        passes_gate(hardened, faultfree),
        format!(
            "hardened loop failed the gate (settled {} diverged {} recovery {:.0}%)",
            hardened.settled,
            hardened.diverged,
            100.0 * hardened.recovery_goodput / faultfree.recovery_goodput
        ),
    );
    check(
        !passes_gate(naive, faultfree),
        "naive loop passed the gate — the hardened protocol is vacuous".into(),
    );
    check(
        naive.diverged,
        "naive loop did not end divergent under the scripted losses".into(),
    );
    check(
        hardened.msgs_lost > 0 && naive.msgs_lost > 0,
        "channel impairment never bit".into(),
    );
    check(
        hardened.retries > 0,
        "hardened loop never exercised the retry path".into(),
    );
    check(
        hardened.crashes == 1 && hardened.resyncs == 1,
        format!(
            "warm crash/resync miscounted ({} crash(es), {} resync(s))",
            hardened.crashes, hardened.resyncs
        ),
    );
    check(
        faultfree.msgs_lost == 0 && faultfree.retries == 0,
        "fault-free run saw channel losses or retries".into(),
    );
    // When built with the audit feature, a non-panicking (release) run
    // still fails the gate on any recorded invariant violation.
    if paraleon_audit::compiled_in() {
        let v = paraleon_audit::violation_count();
        for rep in paraleon_audit::violations().iter().take(5) {
            eprintln!("audit violation: {}", rep.violation);
        }
        check(v == 0, format!("{v} invariant violations recorded"));
    }

    if failures.is_empty() {
        println!("\nall acceptance checks passed");
    } else {
        eprintln!("\nACCEPTANCE FAILURES:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
