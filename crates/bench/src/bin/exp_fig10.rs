//! Figure 10: monitoring-scheme comparison — FSD accuracy and the FCT it
//! buys.
//!
//! Four variants drive the same PARALEON SA tuner on FB_Hadoop at
//! several loads: No-FSD (SA unguided), NetFlow (1:100 sampling, 1 s
//! export), naive Elastic Sketch (single-interval classification, no TOS
//! dedup) and PARALEON (windowed ternary states over deduped sketches).
//! Accuracy is the similarity of each interval's estimated network-wide
//! FSD to the ground truth computed from exact per-flow byte counts.
//!
//! Run: `cargo run --release -p paraleon-bench --bin exp_fig10 [--paper]`

use paraleon::prelude::*;
use paraleon_bench::{print_table, sweep, write_json, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    monitor: String,
    load: f64,
    fsd_accuracy: f64,
    avg_fct_ms: f64,
    p99_fct_ms: f64,
    flows: usize,
}

fn run_one(scale: Scale, monitor: MonitorKind, load: f64) -> Row {
    let sim_cfg = SimConfig {
        track_ground_truth: true,
        ..SimConfig::default()
    };
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme(scale.paraleon())
        .monitor(monitor.clone())
        .sim_config(sim_cfg)
        .loop_config(LoopConfig {
            force_tuning: true, // every variant tunes, FSD quality differs
            ..LoopConfig::default()
        })
        .build();
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: scale.hosts(),
            host_bw_bytes_per_sec: 12.5e9,
            load,
            start: 0,
            end: scale.monitor_window(),
        },
        FlowSizeDist::fb_hadoop(),
    );
    let mut rng = StdRng::seed_from_u64(17);
    let flows = wl.generate(&mut rng);
    drivers::run_schedule(&mut cl, &flows, scale.monitor_window());
    cl.run_to_completion(scale.monitor_window() + 200 * MILLI);

    let acc: Vec<f64> = cl
        .cell
        .history
        .iter()
        .filter_map(|r| r.fsd_accuracy)
        .collect();
    let mut fcts: Vec<f64> = cl
        .completions
        .iter()
        .map(|r| r.fct() as f64 / 1e6)
        .collect();
    let avg = paraleon::stats::mean(&fcts);
    let p99 = paraleon::stats::percentile(&mut fcts, 99.0);
    Row {
        monitor: monitor.name().to_string(),
        load,
        fsd_accuracy: paraleon::stats::mean(&acc),
        avg_fct_ms: avg,
        p99_fct_ms: p99,
        flows: cl.completions.len(),
    }
}

fn main() {
    let scale = Scale::from_args();
    println!("Figure 10 reproduction ({} scale)", scale.label());
    let monitors = [
        MonitorKind::NoFsd,
        MonitorKind::NetFlow,
        MonitorKind::NaiveSketch,
        MonitorKind::Paraleon,
    ];
    let loads = [0.3, 0.5, 0.7];
    // Every (load, monitor) cell is an independent simulation: fan them
    // across worker threads, collect in cell order (so output and JSON
    // match a `--serial` run byte for byte).
    let jobs: Vec<_> = loads
        .iter()
        .flat_map(|&load| {
            monitors
                .iter()
                .map(move |m| move || run_one(scale, m.clone(), load))
        })
        .collect();
    let mut results = sweep::run(sweep::threads_from_args(), jobs).into_iter();
    let mut out = Vec::new();
    for load in loads {
        let mut rows = Vec::new();
        for _ in &monitors {
            let r = results.next().expect("one result per cell");
            rows.push(vec![
                r.monitor.clone(),
                format!("{:.3}", r.fsd_accuracy),
                format!("{:.2}", r.avg_fct_ms),
                format!("{:.2}", r.p99_fct_ms),
                format!("{}", r.flows),
            ]);
            out.push(r);
        }
        print_table(
            &format!("Fig 10 @ load {load}"),
            &[
                "monitor",
                "FSD accuracy",
                "avg FCT (ms)",
                "p99 FCT (ms)",
                "flows",
            ],
            &rows,
        );
    }
    write_json("fig10", &out);
}
