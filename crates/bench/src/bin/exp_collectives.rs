//! Collective/topology scenario sweep: every collective shape the
//! workloads crate generates (alltoall, ring allreduce, tree allreduce,
//! pipeline bursts) crossed with every topology family the netsim crate
//! builds (two-tier Clos, oversubscribed three-tier Clos, rail-optimized)
//! under Default, Expert and PARALEON tuning.
//!
//! The paper's testbed evaluation (Figure 13) is a single collective on
//! a single fabric; this harness opens the rest of the scenario space
//! the poster gestures at — "tuning must adapt across workloads and
//! topologies" — and reports NCCL-style algorithm bandwidth per cell.
//!
//! Run: `cargo run --release -p paraleon-bench --bin exp_collectives
//!       [--paper] [--check]`
//!
//! `--check` additionally re-runs every cell on the 2-way sharded engine
//! and demands byte-identical flow records and interval history against
//! the serial run — the collective driver's barrier admission depends
//! only on the completion-record stream, so any engine divergence
//! surfaces here. The process exits non-zero on the first mismatch.

use paraleon::prelude::*;
use paraleon_bench::{print_table, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    collective: String,
    topology: String,
    scheme: String,
    algbw_gbps: f64,
    mean_round_ms: f64,
    rounds_done: u32,
}

/// The three topology families of the sweep, dimensioned so every family
/// carries the same host count at a given scale. The three-tier fabric
/// is 2:1 oversubscribed at the ToR→agg boundary; the rail fabric stripes
/// host incidence across rails (the layout most hostile to locality
/// assumptions in partitioning).
fn topologies(scale: Scale) -> Vec<(&'static str, TopoSpec)> {
    let (pods, tors, hpt, rails, servers) = match scale {
        Scale::Reduced => (2, 2, 4, 4, 4), // 16 hosts everywhere
        Scale::Paper => (2, 4, 8, 8, 8),   // 64 hosts everywhere
    };
    vec![
        (
            "two_tier",
            TopoSpec::TwoTier(ClosSpec {
                n_tor: pods * tors,
                hosts_per_tor: hpt,
                n_leaf: 2,
                host_gbps: 100.0,
                uplink_gbps: 100.0,
                delay_ns: 5_000,
            }),
        ),
        (
            "three_tier_oversub",
            TopoSpec::ThreeTier(ThreeTierSpec {
                n_pod: pods,
                tors_per_pod: tors,
                hosts_per_tor: hpt,
                aggs_per_pod: 2,
                spines_per_agg: 1,
                host_gbps: 100.0,
                agg_gbps: 100.0,
                spine_gbps: 100.0,
                delay_ns: 5_000,
            }),
        ),
        (
            "rail_optimized",
            TopoSpec::Rail(RailSpec {
                n_rail: rails,
                n_server: servers,
                n_spine: 2,
                host_gbps: 100.0,
                uplink_gbps: 100.0,
                delay_ns: 5_000,
            }),
        ),
    ]
}

const COLLECTIVES: &[&str] = &["ring_allreduce", "alltoall", "pipeline_burst"];

/// Build one collective over all hosts of the fabric.
fn collective(kind: &str, n_hosts: usize, scale: Scale, rounds: u32) -> Box<dyn Collective> {
    let workers: Vec<usize> = (0..n_hosts).collect();
    let message_bytes = scale.llm_message();
    match kind {
        "ring_allreduce" => Box::new(RingAllreduce::new(RingConfig {
            workers,
            message_bytes,
            off_time: MILLI,
            rounds: Some(rounds),
        })),
        "alltoall" => Box::new(AllToAll::new(AllToAllConfig {
            workers,
            message_bytes,
            off_time: MILLI,
            rounds: Some(rounds),
        })),
        "pipeline_burst" => Box::new(PipelineBurst::new(PipelineConfig {
            workers,
            microbatch_bytes: message_bytes,
            microbatches: 4,
            off_time: MILLI,
            rounds: Some(rounds),
        })),
        other => panic!("unknown collective {other}"),
    }
}

/// Run one (collective, topology, scheme) cell and return everything a
/// differential check needs alongside the headline numbers.
#[allow(clippy::type_complexity)]
fn run_cell(
    kind: &str,
    spec: &TopoSpec,
    scheme: SchemeKind,
    scale: Scale,
    rounds: u32,
    threads: usize,
) -> (Vec<FlowRecord>, Vec<IntervalRecord>, f64, f64, u32) {
    let mut cl = ClosedLoop::builder(spec.build())
        .scheme(scheme)
        .parallel(threads)
        .loop_config(LoopConfig {
            force_tuning: true,
            weights: UtilityWeights::throughput_sensitive(),
            ..LoopConfig::default()
        })
        .build();
    let mut coll = collective(kind, spec.n_hosts(), scale, rounds);
    let records = drivers::run_collective(&mut cl, coll.as_mut(), 0, 30 * SEC);
    // Steady state: mean algbw over the last half of the rounds (the
    // early rounds include PARALEON's search transient).
    let done = coll.round_durations().len();
    let take = (done / 2).max(1);
    let vals: Vec<f64> = (done.saturating_sub(take)..done)
        .filter_map(|i| coll.algbw_bytes_per_sec(i))
        .map(|b| b * 8.0 / 1e9)
        .collect();
    let mean_round_ms = paraleon::stats::mean(
        &coll
            .round_durations()
            .iter()
            .map(|&d| d as f64 / 1e6)
            .collect::<Vec<_>>(),
    );
    let algbw = paraleon::stats::mean(&vals);
    let rounds_done = coll.rounds_done();
    (
        records,
        cl.cell.history.clone(),
        algbw,
        mean_round_ms,
        rounds_done,
    )
}

fn main() {
    let scale = Scale::from_args();
    let check = std::env::args().any(|a| a == "--check");
    let rounds = match scale {
        Scale::Reduced => 4,
        Scale::Paper => 6,
    };
    println!(
        "Collective/topology sweep ({} scale{})",
        scale.label(),
        if check {
            ", serial-vs-parallel check"
        } else {
            ""
        }
    );
    let schemes = [SchemeKind::Default, SchemeKind::Expert, scale.paraleon()];
    let mut out = Vec::new();
    let mut rows = Vec::new();
    let mut mismatches = 0usize;
    for kind in COLLECTIVES {
        for (topo_name, spec) in &topologies(scale) {
            let mut row = vec![kind.to_string(), topo_name.to_string()];
            for scheme in &schemes {
                let (records, history, algbw, round_ms, rounds_done) =
                    run_cell(kind, spec, scheme.clone(), scale, rounds, 1);
                if check {
                    let (par_records, par_history, ..) =
                        run_cell(kind, spec, scheme.clone(), scale, rounds, 2);
                    if par_records != records || par_history != history {
                        mismatches += 1;
                        eprintln!(
                            "DIVERGED: {kind} on {topo_name} under {}: \
                             2-way sharded run is not byte-identical to serial",
                            scheme.name()
                        );
                    }
                }
                row.push(format!("{algbw:.1}"));
                out.push(Row {
                    collective: kind.to_string(),
                    topology: topo_name.to_string(),
                    scheme: scheme.name().to_string(),
                    algbw_gbps: algbw,
                    mean_round_ms: round_ms,
                    rounds_done,
                });
            }
            rows.push(row);
        }
    }
    print_table(
        "Collective algbw (Gbps) by topology family and scheme",
        &["collective", "topology", "Default", "Expert", "PARALEON"],
        &rows,
    );
    // PARALEON's adaptivity claim, cell by cell.
    for kind in COLLECTIVES {
        for (topo_name, _) in &topologies(scale) {
            let get = |n: &str| {
                out.iter()
                    .find(|r| r.collective == *kind && r.topology == *topo_name && r.scheme == n)
                    .map(|r| r.algbw_gbps)
                    .unwrap_or(0.0)
            };
            let best_static = get("Default").max(get("Expert"));
            println!(
                "{kind} on {topo_name}: PARALEON vs best static = {:+.1}%",
                (get("PARALEON") / best_static.max(1e-9) - 1.0) * 100.0
            );
        }
    }
    write_json("collectives", &out);
    if check {
        if mismatches > 0 {
            eprintln!("serial-vs-parallel check FAILED: {mismatches} diverged cell(s)");
            std::process::exit(1);
        }
        println!("serial-vs-parallel check passed: every cell byte-identical");
    }
}
