//! Figure 12: ablation of the SA optimizations — utility convergence of
//! PARALEON's guided/relaxed SA vs naive SA, on both workloads.
//!
//! Both tuners run a forced episode from t = 0; the series of utility
//! values per monitor interval shows convergence speed. The paper's
//! claim to reproduce: PARALEON reaches high utility within dozens of
//! intervals, naive SA needs many more.
//!
//! Run: `cargo run --release -p paraleon-bench --bin exp_fig12 [--paper]`

use paraleon::prelude::*;
use paraleon_bench::{print_table, telemetry_begin, telemetry_dump, write_json, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    scheme: String,
    workload: String,
    utility: Vec<f64>,
    best_so_far: Vec<f64>,
}

fn run_fb(scale: Scale, scheme: SchemeKind) -> Series {
    telemetry_begin();
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme(scheme.clone())
        .loop_config(LoopConfig {
            force_tuning: true,
            ..LoopConfig::default()
        })
        .build();
    let window = 2 * scale.fb_window();
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: scale.hosts(),
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.3,
            start: 0,
            end: window,
        },
        FlowSizeDist::fb_hadoop(),
    );
    let mut rng = StdRng::seed_from_u64(23);
    let flows = wl.generate(&mut rng);
    drivers::run_schedule(&mut cl, &flows, window);
    to_series(scheme.name(), "FB_Hadoop")
}

fn run_llm(scale: Scale, scheme: SchemeKind) -> Series {
    telemetry_begin();
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme(scheme.clone())
        .loop_config(LoopConfig {
            force_tuning: true,
            weights: UtilityWeights::throughput_sensitive(),
            ..LoopConfig::default()
        })
        .build();
    let n = scale.hosts() / 4;
    let mut a2a = AllToAll::new(AllToAllConfig {
        workers: (0..n).map(|i| i * 2).collect(),
        message_bytes: scale.llm_message(),
        off_time: MILLI,
        rounds: None,
    });
    let until = 2 * scale.fb_window();
    drivers::run_alltoall(&mut cl, &mut a2a, 0, until);
    to_series(scheme.name(), "LLM alltoall")
}

/// Build the convergence series from the run's exported telemetry: the
/// per-interval `utility` series the closed loop recorded.
fn to_series(scheme: &str, workload: &str) -> Series {
    let dump = telemetry_dump(&format!("fig12_{workload}_{scheme}"));
    let utility: Vec<f64> = dump
        .series_get("utility", 0)
        .iter()
        .map(|&(_, v)| v)
        .collect();
    let mut best = f64::NEG_INFINITY;
    let best_so_far = utility
        .iter()
        .map(|&u| {
            best = best.max(u);
            best
        })
        .collect();
    Series {
        scheme: scheme.to_string(),
        workload: workload.to_string(),
        utility,
        best_so_far,
    }
}

/// Convergence time: the first interval after which the `w`-interval
/// moving average of utility stays within `tol` of the final-third mean.
/// (Raw best-so-far is too noisy: workload stochasticity produces early
/// lucky peaks; what matters is when the *deployed* quality stabilizes.)
fn convergence_round(series: &Series, w: usize, tol: f64) -> usize {
    let u = &series.utility;
    if u.len() < 3 * w {
        return u.len();
    }
    let final_mean = paraleon::stats::mean(&u[u.len() - u.len() / 3..]);
    let ma: Vec<f64> = u
        .windows(w)
        .map(|win| win.iter().sum::<f64>() / w as f64)
        .collect();
    // Last index where the moving average deviates beyond tolerance.
    let last_bad = ma
        .iter()
        .rposition(|&m| (m - final_mean).abs() > tol)
        .map(|i| i + w)
        .unwrap_or(0);
    last_bad.min(u.len())
}

fn main() {
    let scale = Scale::from_args();
    println!("Figure 12 reproduction ({} scale)", scale.label());
    let mut all = Vec::new();
    let mut rows = Vec::new();
    for (label, runner) in [
        ("FB_Hadoop", run_fb as fn(Scale, SchemeKind) -> Series),
        ("LLM alltoall", run_llm),
    ] {
        for scheme in [scale.paraleon(), SchemeKind::ParaleonNaiveSa] {
            let s = runner(scale, scheme);
            let n = s.utility.len();
            let final_third = paraleon::stats::mean(&s.utility[n - n / 3..]);
            let mean_u = paraleon::stats::mean(&s.utility);
            rows.push(vec![
                label.to_string(),
                s.scheme.clone(),
                format!("{:.3}", mean_u),
                format!("{:.3}", final_third),
                format!("{}", convergence_round(&s, 10, 0.08)),
            ]);
            all.push(s);
        }
    }
    print_table(
        "Fig 12: SA ablation (rounds-to-95% = intervals until 95% of final best utility)",
        &["workload", "scheme", "mean U", "final U", "converged @"],
        &rows,
    );
    write_json("fig12", &all);
}
