//! Figures 8 & 9: traffic dynamics under a workload "influx".
//!
//! An LLM alltoall runs as background traffic; mid-run, a burst of
//! FB_Hadoop traffic arrives for a short window and competes. The
//! harness prints the runtime throughput / RTT time series per scheme
//! (Figure 8) and, with `--pretrained`, compares PARALEON against two
//! static settings pretrained offline by PARALEON itself on each
//! workload in isolation (Figure 9).
//!
//! Run: `cargo run --release -p paraleon-bench --bin exp_fig8_9 [--paper] [--pretrained]`

use paraleon::prelude::*;
use paraleon_bench::{
    all_schemes, gbps_of, print_table, telemetry_begin, telemetry_dump, write_json, Scale,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    scheme: String,
    t_ms: Vec<f64>,
    goodput_gbps: Vec<f64>,
    rtt_us: Vec<f64>,
    mu_mice: Vec<f64>,
    trigger_times_ms: Vec<f64>,
    influx_start_ms: f64,
    influx_end_ms: f64,
}

/// Run one scheme through the influx scenario; returns the time series.
/// The series are rebuilt from the exported telemetry dump (under
/// `results/telemetry/`), not from in-memory accumulators.
fn run_influx(scale: Scale, scheme: SchemeKind, seed: u64, fig: &str) -> Series {
    telemetry_begin();
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme(scheme.clone())
        .loop_config(LoopConfig {
            force_tuning: scheme.is_adaptive(),
            // React within a few ms of the influx (the trigger is checked
            // once per window).
            trigger_window: 4,
            ..LoopConfig::default()
        })
        .seed(seed)
        .build();
    // Background: ON-OFF alltoall across half the hosts.
    let n = scale.hosts() / 4;
    let mut a2a = AllToAll::new(AllToAllConfig {
        workers: (0..n).map(|i| i * 2).collect(),
        message_bytes: scale.llm_message(),
        off_time: 3 * MILLI,
        rounds: None,
    });
    // Influx: FB_Hadoop burst in the middle of the run.
    let total = match scale {
        Scale::Reduced => 120 * MILLI,
        Scale::Paper => 300 * MILLI,
    };
    let influx_start = total / 3;
    // The paper's influx lasts 30 ms at both scales.
    let influx_len = 30 * MILLI;
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: scale.hosts(),
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.5,
            start: influx_start,
            end: influx_start + influx_len,
        },
        FlowSizeDist::fb_hadoop(),
    );
    let mut rng = StdRng::seed_from_u64(21);
    let influx_flows = wl.generate(&mut rng);

    // Drive both workloads manually through the loop.
    let mut idx = 0;
    let mut next_round = Some(0u64);
    let mut seen = 0usize;
    let mut collective: std::collections::HashSet<u64> = Default::default();
    while cl.sim.now() < total {
        if let Some(t) = next_round {
            if cl.sim.now() >= t {
                for f in a2a
                    .start_round(cl.sim.now())
                    .expect("round start while idle")
                {
                    let qp = drivers::qp_id(f.src, f.dst);
                    collective.insert(cl.sim.add_flow_on_qp(
                        f.src,
                        f.dst,
                        f.bytes,
                        cl.sim.now(),
                        qp,
                    ));
                }
                next_round = None;
            }
        }
        let horizon = cl.sim.now() + 2 * MILLI;
        while idx < influx_flows.len() && influx_flows[idx].start <= horizon {
            let f = influx_flows[idx];
            if f.start >= cl.sim.now() {
                cl.sim.add_flow(f.src, f.dst, f.bytes, f.start);
            }
            idx += 1;
        }
        cl.step();
        let new = cl.completions[seen..].to_vec();
        seen = cl.completions.len();
        for r in new {
            if collective.remove(&r.flow) {
                if let Some(t) = a2a.on_flow_done(r.finish).expect("round in flight") {
                    next_round = Some(t);
                }
            }
        }
    }
    let dump = telemetry_dump(&format!("{}_{}", fig, scheme.name()));
    let goodput = dump.series_get("goodput_bytes_per_sec", 0);
    Series {
        scheme: scheme.name().to_string(),
        t_ms: goodput.iter().map(|&(t, _)| t as f64 / 1e6).collect(),
        goodput_gbps: goodput.iter().map(|&(_, v)| gbps_of(v)).collect(),
        rtt_us: dump
            .series_get("avg_rtt_ns", 0)
            .iter()
            .map(|&(_, v)| v / 1e3)
            .collect(),
        mu_mice: dump
            .series_get("mu_mice", 0)
            .iter()
            .map(|&(_, v)| v)
            .collect(),
        trigger_times_ms: dump
            .series_get("triggered", 0)
            .iter()
            .filter(|&&(_, v)| v > 0.5)
            .map(|&(t, _)| t as f64 / 1e6)
            .collect(),
        influx_start_ms: influx_start as f64 / 1e6,
        influx_end_ms: (influx_start + influx_len) as f64 / 1e6,
    }
}

/// Offline-pretrain PARALEON on a pure workload and snapshot its best
/// parameters (the Figure 9 "Pretrained" baselines).
fn pretrain_alltoall(scale: Scale) -> DcqcnParams {
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme(scale.paraleon())
        .loop_config(LoopConfig {
            force_tuning: true,
            ..LoopConfig::default()
        })
        .build();
    let n = scale.hosts() / 4;
    let mut a2a = AllToAll::new(AllToAllConfig {
        workers: (0..n).map(|i| i * 2).collect(),
        message_bytes: scale.llm_message(),
        off_time: 3 * MILLI,
        rounds: Some(12),
    });
    drivers::run_alltoall(&mut cl, &mut a2a, 0, 2 * SEC);
    cl.cell.last_params
}

fn pretrain_fb(scale: Scale) -> DcqcnParams {
    let mut cl = ClosedLoop::builder(scale.clos())
        .scheme(scale.paraleon())
        .loop_config(LoopConfig {
            force_tuning: true,
            ..LoopConfig::default()
        })
        .build();
    let wl = PoissonWorkload::new(
        PoissonConfig {
            hosts: scale.hosts(),
            host_bw_bytes_per_sec: 12.5e9,
            load: 0.3,
            start: 0,
            end: scale.fb_window(),
        },
        FlowSizeDist::fb_hadoop(),
    );
    let mut rng = StdRng::seed_from_u64(31);
    let flows = wl.generate(&mut rng);
    drivers::run_schedule(&mut cl, &flows, scale.fb_window());
    cl.cell.last_params
}

fn summarize(series: &[Series]) {
    let mut rows = Vec::new();
    for s in series {
        let influx: Vec<usize> = s
            .t_ms
            .iter()
            .enumerate()
            .filter(|(_, &t)| t > s.influx_start_ms && t <= s.influx_end_ms)
            .map(|(i, _)| i)
            .collect();
        let after: Vec<usize> = s
            .t_ms
            .iter()
            .enumerate()
            .filter(|(_, &t)| t > s.influx_end_ms)
            .map(|(i, _)| i)
            .collect();
        let mean_of = |idx: &[usize], v: &[f64]| {
            let vals: Vec<f64> = idx.iter().map(|&i| v[i]).filter(|x| *x > 0.0).collect();
            paraleon::stats::mean(&vals)
        };
        rows.push(vec![
            s.scheme.clone(),
            format!("{:.1}", mean_of(&influx, &s.rtt_us)),
            format!("{:.1}", mean_of(&influx, &s.goodput_gbps)),
            format!("{:.1}", mean_of(&after, &s.goodput_gbps)),
        ]);
    }
    print_table(
        "influx summary (lower influx-RTT and higher post-influx throughput are better)",
        &[
            "scheme",
            "influx RTT (us)",
            "influx TP (Gbps)",
            "post TP (Gbps)",
        ],
        &rows,
    );
}

fn main() {
    let scale = Scale::from_args();
    let pretrained_mode = std::env::args().any(|a| a == "--pretrained");
    if pretrained_mode {
        println!("Figure 9 reproduction ({} scale)", scale.label());
        println!("pretraining PARALEON offline on each pure workload...");
        let p1 = pretrain_alltoall(scale);
        let p2 = pretrain_fb(scale);
        let schemes = vec![
            SchemeKind::Static(p1, "Pretrained1"),
            SchemeKind::Static(p2, "Pretrained2"),
            scale.paraleon(),
        ];
        let series: Vec<Series> = schemes
            .into_iter()
            .map(|s| run_influx(scale, s, 7, "fig9"))
            .collect();
        summarize(&series);
        write_json("fig9", &series);
    } else {
        println!("Figure 8 reproduction ({} scale)", scale.label());
        let series: Vec<Series> = all_schemes(scale)
            .into_iter()
            .map(|s| run_influx(scale, s, 7, "fig8"))
            .collect();
        summarize(&series);
        write_json("fig8", &series);
    }
}
